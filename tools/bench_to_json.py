#!/usr/bin/env python3
"""Convert bench CSVs into a BENCH_<name>.json perf-trajectory record.

The bench binaries (bench/*.cpp) each mirror their printed table to a CSV.
This helper turns one or more of those CSVs into a single JSON document so
per-PR perf numbers can be committed and diffed across PRs (ROADMAP's
cross-cutting ask). Numbers are parsed where possible; everything else is
kept as strings.

Usage:
  tools/bench_to_json.py --name reads --out BENCH_reads.json \
      reads_memory.csv io_fastq_reader.csv \
      --metric "read_mem_ratio=reads_memory.csv:binned_quals:ratio"

Each CSV becomes {"file": ..., "columns": [...], "rows": [{col: val}]}.
--metric KEY=FILE:ROWKEY:COL pulls one headline scalar out of a table (the
row whose first column equals ROWKEY) into the top-level "metrics" map.
"""

import argparse
import csv
import json
import os
import sys


def parse_value(text):
    """Numbers become numbers; '12.3x' and '45.6%' keep their meaning."""
    t = text.strip()
    for suffix, scale in (("x", 1.0), ("%", 0.01)):
        if t.endswith(suffix):
            try:
                return float(t[: -len(suffix)]) * scale
            except ValueError:
                return t
    for cast in (int, float):
        try:
            return cast(t)
        except ValueError:
            continue
    return t


def load_csv(path):
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = list(reader)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    columns = rows[0]
    return {
        "file": os.path.basename(path),
        "columns": columns,
        "rows": [
            {c: parse_value(v) for c, v in zip(columns, row)}
            for row in rows[1:]
        ],
    }


def extract_metric(tables, spec):
    name, _, locator = spec.partition("=")
    try:
        fname, rowkey, col = locator.split(":")
    except ValueError:
        raise SystemExit(f"bad --metric '{spec}', want KEY=FILE:ROWKEY:COL")
    for table in tables:
        if table["file"] != os.path.basename(fname):
            continue
        first_col = table["columns"][0]
        for row in table["rows"]:
            if str(row.get(first_col)) == rowkey:
                if col not in row:
                    raise SystemExit(f"{fname}: no column '{col}'")
                return name, row[col]
        raise SystemExit(f"{fname}: no row with {first_col}={rowkey}")
    raise SystemExit(f"--metric '{spec}': {fname} not among the inputs")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csvs", nargs="+", help="bench CSV files")
    ap.add_argument("--name", required=True, help="bench group name")
    ap.add_argument("--out", help="output path (default BENCH_<name>.json)")
    ap.add_argument(
        "--metric",
        action="append",
        default=[],
        help="KEY=FILE:ROWKEY:COL headline scalar to lift to top level",
    )
    args = ap.parse_args(argv)

    tables = [load_csv(p) for p in args.csvs]
    doc = {
        "bench": args.name,
        "metrics": dict(extract_metric(tables, m) for m in args.metric),
        "tables": tables,
    }
    out = args.out or f"BENCH_{args.name}.json"
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out} ({len(tables)} tables)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
