// hipmer — command-line front end for the assembly pipeline.
//
//   hipmer assemble --reads lib.fastq --insert 400 [--reads lib2.fastq
//          --insert 4200 --scaffold-only] --k 31 --ranks 16
//          [--rounds 1] [--diploid] [--min-count auto|N]
//          [--out scaffolds.fasta]
//          [--checkpoint-dir DIR [--resume] [--keep-last N]
//           [--checkpoint-rounds-only]]
//   hipmer simulate (human|wheat|metagenome) --genome N --out-dir DIR
//   hipmer convert --fastq in.fastq --seqdb out.sdb     (either direction)
//   hipmer serve --listen /run/hipmer.sock [--ranks N] [--state-dir DIR]
//   hipmer submit --listen /run/hipmer.sock --reads lib.fastq --out f.fasta
//   hipmer status|cancel|stats|shutdown --listen /run/hipmer.sock [--job N]
//
// (`--serve`, `--submit` and `--status` are accepted as aliases for the
// corresponding subcommands.)
//
// `assemble` accepts interleaved paired-end FASTQ files (read names must
// carry pairing as "<lib>:<pair>/<mate>"; `simulate` writes that format).
// `--min-count auto` derives the erroneous-k-mer cutoff from the k-mer
// count histogram valley (see kcount/histogram.hpp).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/seqdb.hpp"
#include "kcount/histogram.hpp"
#include "pgas/fabric.hpp"
#include "pipeline/pipeline.hpp"
#include "server/client.hpp"
#include "server/job_server.hpp"
#include "sim/datasets.hpp"
#include "sim/metagenome_sim.hpp"
#include "util/options.hpp"

namespace {

using namespace hipmer;

/// argv[0] of this invocation — workers are spawned by re-exec'ing it.
std::string g_binary = "hipmer";

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hipmer assemble --reads FILE --insert N [--reads FILE "
               "--insert N --scaffold-only]...\n"
               "                  [--k 31] [--ranks 16] [--rounds 1] "
               "[--diploid] [--min-count auto|N] [--out FILE]\n"
               "                  [--packed-reads] [--shuffle-reads]\n"
               "                  [--checkpoint-dir DIR [--resume] "
               "[--keep-last N] [--checkpoint-rounds-only]]\n"
               "                  [--chaos-spec "
               "'drop=0.05,dup=0.02;store:corrupt=0.01;blackhole=2@merAligner'"
               " [--chaos-seed N]]\n"
               "                  [--fabric threads|proc] [--fabric-socket "
               "PATH] [--kill RANK@STAGE[:OCC[:STEP]][,hard]]\n"
               "  hipmer simulate (human|wheat|metagenome) [--genome N] "
               "[--species N] --out-dir DIR\n"
               "  hipmer convert (--fastq-to-seqdb IN OUT | "
               "--seqdb-to-fastq IN OUT)\n"
               "  hipmer serve --listen SOCK [--ranks N] [--state-dir DIR] "
               "[--max-queued N]\n"
               "               [--max-resident-bytes N] [--keep-last N] "
               "[--no-cache]\n"
               "               [--state-journal PATH | --no-journal] "
               "[--max-attempts N] [--retry-backoff-ms N]\n"
               "               [--fs-faults SPEC [--fs-fault-seed N]]\n"
               "  hipmer submit --listen SOCK --reads FILE [--insert N] "
               "[--scaffold-only]... --out FILE\n"
               "               [--tenant T] [--priority N] [--k N] "
               "[--min-count N] [--rounds N] [--diploid] [--resume]\n"
               "               [--no-cache] [--kill SPEC] [--chaos-spec S "
               "--chaos-seed N] [--deadline MS] [--attempts N] [--wait]\n"
               "  hipmer status --listen SOCK --job ID [--result]\n"
               "  hipmer cancel --listen SOCK --job ID\n"
               "  hipmer stats --listen SOCK\n"
               "  hipmer shutdown --listen SOCK\n");
  return 2;
}

/// `--reads`/`--insert`/`--scaffold-only` repeat per library, so they are
/// parsed positionally from argv rather than through util::Options.
std::vector<seq::ReadLibrary> parse_libraries(int argc, char** argv) {
  std::vector<seq::ReadLibrary> libraries;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reads") == 0 && i + 1 < argc) {
      seq::ReadLibrary lib;
      lib.fastq_path = argv[i + 1];
      lib.name = "lib" + std::to_string(libraries.size());
      lib.mean_insert = 400.0;
      libraries.push_back(lib);
    } else if (std::strcmp(argv[i], "--insert") == 0 && i + 1 < argc &&
               !libraries.empty()) {
      libraries.back().mean_insert = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--scaffold-only") == 0 &&
               !libraries.empty()) {
      libraries.back().for_contigging = false;
    }
  }
  return libraries;
}

// `--kill RANK@STAGE[:OCC[:STEP]][,hard]` specs are parsed by
// pgas::FaultPlan::parse (shared with the server's SUBMIT kill= rider).

/// SIGKILL + reap every worker the coordinator spawned (the restart path
/// must not leave half-dead workers holding the old sockets).
void reap_workers(pipeline::Pipeline* pipe) {
  if (pipe == nullptr) return;
  auto* fab = dynamic_cast<pgas::SocketFabric*>(&pipe->team().fabric());
  if (fab == nullptr) return;
  for (const long pid : fab->worker_pids()) {
    ::kill(static_cast<pid_t>(pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid), &status, 0);
    if (getenv("HIPMER_FABRIC_DEBUG")) {
      if (WIFEXITED(status))
        std::fprintf(stderr, "[fabdbg] worker pid %ld exited %d\n", pid, WEXITSTATUS(status));
      else if (WIFSIGNALED(status))
        std::fprintf(stderr, "[fabdbg] worker pid %ld signal %d\n", pid, WTERMSIG(status));
    }
  }
}

/// Final report + FASTA output — the primary process's job on every fabric.
int report_and_write(pipeline::Pipeline& pipe,
                     const pipeline::PipelineResult& result,
                     const std::string& out) {
  std::printf("%s", result.format_stages().c_str());
  if (pipe.team().transport().chaos_enabled()) {
    const std::string retries =
        pipe.team().transport().format_retry_histograms();
    std::printf("chaos retry histograms:\n%s",
                retries.empty() ? "  (no retries)\n" : retries.c_str());
  }
  std::printf("contigs:   %s\n",
              util::format_assembly_stats(result.contig_stats).c_str());
  std::printf("scaffolds: %s\n",
              util::format_assembly_stats(result.scaffold_stats).c_str());
  if (!io::write_fasta(out, result.scaffolds)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu scaffolds to %s\n", result.scaffolds.size(),
              out.c_str());
  return 0;
}

int cmd_assemble(int argc, char** argv) {
  util::Options opts(argc, argv);
  auto libraries = parse_libraries(argc, argv);
  if (libraries.empty()) {
    std::fprintf(stderr, "assemble: at least one --reads FILE required\n");
    return usage();
  }
  const int k = static_cast<int>(opts.get_int("k", 31));
  const int ranks = static_cast<int>(opts.get_int("ranks", 16));
  const std::string out = opts.get("out", "scaffolds.fasta");
  const std::string min_count = opts.get("min-count", "auto");

  pipeline::PipelineConfig cfg;
  cfg.k = k;
  cfg.scaffolding_rounds = static_cast<int>(opts.get_int("rounds", 1));
  cfg.merge_bubbles = opts.get_bool("diploid", false);
  // Perf knobs: 2-bit resident reads, and the post-alignment locality
  // shuffle. Neither changes the assembly output.
  cfg.packed_reads = opts.get_bool("packed-reads", false);
  cfg.shuffle_reads = opts.get_bool("shuffle-reads", false);
  if (min_count != "auto")
    cfg.kmer.min_count =
        static_cast<std::uint32_t>(std::strtoul(min_count.c_str(), nullptr, 10));
  cfg.checkpoint.dir = opts.get("checkpoint-dir", "");
  cfg.checkpoint.keep_last = static_cast<int>(opts.get_int("keep-last", 0));
  if (opts.get_bool("checkpoint-rounds-only", false))
    cfg.checkpoint.granularity = ckpt::CheckpointConfig::Granularity::kRound;
  const bool resume = opts.get_bool("resume", false);
  if (resume && cfg.checkpoint.dir.empty()) {
    std::fprintf(stderr, "assemble: --resume requires --checkpoint-dir DIR\n");
    return usage();
  }
  const std::string chaos_spec = opts.get("chaos-spec", "");
  if (!chaos_spec.empty()) {
    cfg.chaos = pgas::ChaosPlan::parse(
        static_cast<std::uint64_t>(opts.get_int("chaos-seed", 1)), chaos_spec);
  }
  cfg.sync_k();

  const std::string fabric = opts.get("fabric", "threads");
  const int worker_rank = static_cast<int>(opts.get_int("worker-rank", -1));
  std::string socket_path = opts.get("fabric-socket", "");
  const std::string kill_spec = opts.get("kill", "");
  if (fabric != "threads" && fabric != "proc") {
    std::fprintf(stderr, "assemble: --fabric must be threads or proc\n");
    return usage();
  }

  if (worker_rank > 0) {
    // ---- worker mode: host one rank, connect back, run the same SPMD
    // program. The coordinator resolved any auto min-count before spawning
    // and pinned it numerically into our argv.
    if (socket_path.empty() || min_count == "auto") {
      std::fprintf(stderr,
                   "assemble: --worker-rank requires --fabric-socket and a "
                   "numeric --min-count\n");
      return 2;
    }
    cfg.fabric.mode = pgas::FabricConfig::Mode::kProcWorker;
    cfg.fabric.my_rank = worker_rank;
    cfg.fabric.socket_path = socket_path;
    try {
      pipeline::Pipeline pipe(pgas::Topology{ranks, 4}, cfg);
      if (!kill_spec.empty())
        pipe.team().faults().set_plan(pgas::FaultPlan::parse(kill_spec));
      const auto result = pipe.execute_from_fastq(libraries, resume);
      (void)result;  // rank 0's process reports and writes the output
      return 0;
    } catch (const pgas::RankKilled& e) {
      if (getenv("HIPMER_FABRIC_DEBUG"))
        std::fprintf(stderr, "[fabdbg %d] worker %d RankKilled: %s\n",
                     (int)getpid(), worker_rank, e.what());
      return 75;  // "teammate died" — the coordinator respawns us
    }
  }

  if (min_count == "auto") {
    // Probe pass: run k-mer analysis cheaply at low rank count to get the
    // histogram, pick the valley, then run the real pipeline.
    pgas::ThreadTeam probe_team(pgas::Topology{std::min(ranks, 8), 4});
    kcount::KmerAnalysisConfig probe_cfg = cfg.kmer;
    kcount::KmerAnalysis probe(probe_team, probe_cfg);
    std::vector<std::unique_ptr<io::ParallelFastqReader>> readers;
    for (const auto& lib : libraries)
      if (lib.for_contigging)
        readers.push_back(std::make_unique<io::ParallelFastqReader>(lib.fastq_path));
    probe_team.run([&](pgas::Rank& rank) {
      std::vector<std::vector<seq::Read>> mine;
      std::vector<const std::vector<seq::Read>*> sets;
      for (auto& reader : readers) {
        mine.push_back(reader->read_my_records(rank));
        rank.barrier();
      }
      for (const auto& m : mine) sets.push_back(&m);
      probe.run(rank, sets);
    });
    cfg.kmer.min_count = kcount::choose_min_count(probe.histogram());
    std::printf("auto min-count: %u (histogram valley)\n", cfg.kmer.min_count);
  }

  if (fabric == "proc") {
    // ---- coordinator: rank 0 + router here, one spawned process per
    // remaining rank. A RankKilled unwind (suspect peer, kill -9'd worker)
    // reaps the team and respawns it in --resume mode against the
    // checkpoint directory, a bounded number of times.
    if (socket_path.empty())
      socket_path =
          "/tmp/hipmer-fabric-" + std::to_string(getpid()) + ".sock";
    const auto make_worker_argv = [&](const std::string& sock, bool with_kill,
                                      bool force_resume) {
      // This binary + the original arguments, with the fabric flags and any
      // auto-resolved min-count pinned down (workers never probe or spawn).
      std::vector<std::string> wargv;
      wargv.push_back(g_binary);
      bool has_resume = false;
      for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--min-count" || a == "--fabric" || a == "--fabric-socket") {
          ++i;
          continue;
        }
        if (a == "--kill") {
          ++i;
          if (with_kill && i < argc) {
            wargv.emplace_back("--kill");
            wargv.emplace_back(argv[i]);
          }
          continue;
        }
        if (a == "--resume") has_resume = true;
        wargv.push_back(a);
      }
      wargv.insert(wargv.end(),
                   {"--fabric", "proc", "--fabric-socket", sock, "--min-count",
                    std::to_string(cfg.kmer.min_count)});
      if (force_resume && !has_resume) wargv.emplace_back("--resume");
      return wargv;
    };

    bool do_resume = resume;
    for (int attempt = 0;; ++attempt) {
      const std::string sock =
          attempt == 0 ? socket_path
                       : socket_path + ".r" + std::to_string(attempt);
      cfg.fabric.mode = pgas::FabricConfig::Mode::kProcCoordinator;
      cfg.fabric.socket_path = sock;
      cfg.fabric.worker_argv = make_worker_argv(sock, attempt == 0, do_resume);
      std::unique_ptr<pipeline::Pipeline> pipe;
      try {
        pipe = std::make_unique<pipeline::Pipeline>(pgas::Topology{ranks, 4},
                                                    cfg);
        if (!kill_spec.empty() && attempt == 0)
          pipe->team().faults().set_plan(pgas::FaultPlan::parse(kill_spec));
        std::printf(
            "assembling %zu librar%s on %d ranks (%d processes), k=%d, "
            "min_count=%u...\n",
            libraries.size(), libraries.size() == 1 ? "y" : "ies", ranks,
            ranks, k, cfg.kmer.min_count);
        const auto result = pipe->execute_from_fastq(libraries, do_resume);
        return report_and_write(*pipe, result, out);
      } catch (const pgas::RankKilled& e) {
        reap_workers(pipe.get());
        if (attempt >= 2 || cfg.checkpoint.dir.empty()) {
          std::fprintf(stderr, "assemble: team died (%s)%s\n", e.what(),
                       cfg.checkpoint.dir.empty()
                           ? "; no --checkpoint-dir to resume from"
                           : "; giving up");
          return 1;
        }
        std::fprintf(stderr,
                     "assemble: %s; respawning workers and resuming from "
                     "checkpoint\n",
                     e.what());
        do_resume = true;
      }
    }
  }

  pipeline::Pipeline pipe(pgas::Topology{ranks, 4}, cfg);
  if (!kill_spec.empty())
    pipe.team().faults().set_plan(pgas::FaultPlan::parse(kill_spec));
  std::printf("assembling %zu librar%s on %d ranks, k=%d, min_count=%u...\n",
              libraries.size(), libraries.size() == 1 ? "y" : "ies", ranks, k,
              cfg.kmer.min_count);
  const auto result = pipe.execute_from_fastq(libraries, resume);
  return report_and_write(pipe, result, out);
}

int cmd_simulate(const std::string& kind, int argc, char** argv) {
  util::Options opts(argc, argv);
  const std::string out_dir = opts.get("out-dir", ".");
  const auto genome = static_cast<std::uint64_t>(opts.get_int("genome", 500'000));
  sim::Dataset ds;
  if (kind == "human") {
    ds = sim::make_human_like(genome, static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  } else if (kind == "wheat") {
    ds = sim::make_wheat_like(genome, static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  } else if (kind == "metagenome") {
    sim::MetagenomeConfig mc;
    mc.num_species = static_cast<int>(opts.get_int("species", 40));
    mc.mean_genome_length = genome / static_cast<std::uint64_t>(mc.num_species);
    mc.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    const auto mg = sim::simulate_metagenome(mc);
    ds.name = "metagenome";
    ds.libraries.push_back(seq::ReadLibrary{"pe", mc.mean_insert,
                                            mc.stddev_insert, mc.read_length,
                                            "", true});
    ds.reads.push_back(mg.reads);
  } else {
    return usage();
  }
  if (!sim::write_dataset_fastq(ds, out_dir)) {
    std::fprintf(stderr, "cannot write FASTQ files to %s\n", out_dir.c_str());
    return 1;
  }
  for (const auto& lib : ds.libraries)
    std::printf("wrote %s (insert %.0f)\n", lib.fastq_path.c_str(),
                lib.mean_insert);
  return 0;
}

// ---- server mode (src/server): long-lived job server + thin clients ----

int cmd_serve(int argc, char** argv) {
  util::Options opts(argc, argv);
  server::ServerConfig cfg;
  cfg.listen_path = opts.get("listen", "");
  if (cfg.listen_path.empty()) {
    std::fprintf(stderr, "serve: --listen SOCK required\n");
    return usage();
  }
  cfg.ranks = static_cast<int>(opts.get_int("ranks", 4));
  cfg.state_dir = opts.get("state-dir", "hipmer-server-state");
  cfg.admission.max_queued =
      static_cast<std::size_t>(opts.get_int("max-queued", 16));
  cfg.admission.max_resident_bytes = static_cast<std::uint64_t>(
      opts.get_int("max-resident-bytes", 4ll << 30));
  cfg.keep_last = static_cast<int>(opts.get_int("keep-last", 2));
  cfg.enable_cache = !opts.get_bool("no-cache", false);
  cfg.enable_journal = !opts.get_bool("no-journal", false);
  cfg.journal_path = opts.get("state-journal", "");
  cfg.max_attempts =
      static_cast<std::uint32_t>(opts.get_int("max-attempts", 3));
  cfg.retry_backoff_ms =
      static_cast<std::uint32_t>(opts.get_int("retry-backoff-ms", 200));
  cfg.fs_fault_spec = opts.get("fs-faults", "");
  cfg.fs_fault_seed =
      static_cast<std::uint64_t>(opts.get_int("fs-fault-seed", 1));
  server::JobServer srv(cfg);
  return srv.serve();
}

/// One request/response against --listen; prints the response lines.
int run_control_command(const std::string& sock, const std::string& command) {
  const auto resp = server::request(sock, command);
  if (!resp) {
    std::fprintf(stderr, "cannot reach server at %s\n", sock.c_str());
    return 1;
  }
  for (const auto& line : resp->lines) std::printf("%s\n", line.c_str());
  return resp->ok() ? 0 : 1;
}

int cmd_submit(int argc, char** argv) {
  util::Options opts(argc, argv);
  const std::string sock = opts.get("listen", "");
  const auto libraries = parse_libraries(argc, argv);
  const std::string out = opts.get("out", "");
  if (sock.empty() || libraries.empty() || out.empty()) {
    std::fprintf(stderr,
                 "submit: --listen SOCK, --reads FILE and --out FILE "
                 "required\n");
    return usage();
  }
  std::string reads;
  for (const auto& lib : libraries) {
    if (!reads.empty()) reads += ",";
    char insert[32];
    std::snprintf(insert, sizeof insert, "%g", lib.mean_insert);
    reads += lib.fastq_path + ":" + insert;
    if (!lib.for_contigging) reads += ":s";
  }
  std::string command = "SUBMIT reads=" + reads + " out=" + out +
                        " tenant=" + opts.get("tenant", "default") +
                        " priority=" + std::to_string(opts.get_int("priority", 0)) +
                        " k=" + std::to_string(opts.get_int("k", 31)) +
                        " rounds=" + std::to_string(opts.get_int("rounds", 1));
  if (opts.has("min-count"))
    command += " min_count=" + opts.get("min-count", "0");
  if (opts.get_bool("diploid", false)) command += " diploid=1";
  if (opts.get_bool("resume", false)) command += " resume=1";
  if (opts.get_bool("no-cache", false)) command += " cache=0";
  if (opts.has("kill")) command += " kill=" + opts.get("kill", "");
  if (opts.has("chaos-spec")) {
    command += " chaos=" + opts.get("chaos-spec", "") +
               " chaos_seed=" + std::to_string(opts.get_int("chaos-seed", 1));
  }
  if (opts.has("deadline"))
    command += " deadline=" + std::to_string(opts.get_int("deadline", 0));
  if (opts.has("attempts"))
    command += " attempts=" + std::to_string(opts.get_int("attempts", 0));

  const auto resp = server::request_with_retry(sock, command, 50, 100);
  if (!resp) {
    std::fprintf(stderr, "cannot reach server at %s\n", sock.c_str());
    return 1;
  }
  std::printf("%s\n", resp->first().c_str());
  if (!resp->ok()) return 1;
  const std::string id = server::response_field(resp->first(), "id");
  if (!opts.get_bool("wait", false)) return 0;

  // --wait: poll until the job lands in a terminal state, then print the
  // full RESULT (including per-stage timings). Exponential backoff with
  // jitter, capped at 2s — a fleet of waiting clients must not hammer the
  // server in lockstep.
  useconds_t delay_us = 25 * 1000;
  constexpr useconds_t kMaxDelayUs = 2'000'000;
  std::srand(static_cast<unsigned>(getpid()) ^
             static_cast<unsigned>(time(nullptr)));
  for (;;) {
    const auto status = server::request(sock, "STATUS id=" + id);
    if (!status || !status->ok()) {
      std::fprintf(stderr, "lost server while waiting for job %s\n",
                   id.c_str());
      return 1;
    }
    const std::string state =
        server::response_field(status->first(), "state", "?");
    if (state == "done" || state == "failed" || state == "cancelled" ||
        state == "quarantined") {
      const auto result = server::request(sock, "RESULT id=" + id);
      if (result)
        for (const auto& line : result->lines)
          std::printf("%s\n", line.c_str());
      return state == "done" ? 0 : 1;
    }
    // +-25% jitter decorrelates concurrent waiters.
    const useconds_t jitter = delay_us / 2 > 0
                                  ? static_cast<useconds_t>(
                                        std::rand() %
                                        static_cast<int>(delay_us / 2 + 1))
                                  : 0;
    usleep(delay_us - delay_us / 4 + jitter);
    delay_us = std::min(delay_us * 2, kMaxDelayUs);
  }
}

int cmd_control(const std::string& verb, int argc, char** argv) {
  util::Options opts(argc, argv);
  const std::string sock = opts.get("listen", "");
  if (sock.empty()) {
    std::fprintf(stderr, "%s: --listen SOCK required\n", verb.c_str());
    return usage();
  }
  if (verb == "stats") return run_control_command(sock, "STATS");
  if (verb == "shutdown") return run_control_command(sock, "SHUTDOWN");
  const std::string id = opts.get("job", "");
  if (id.empty()) {
    std::fprintf(stderr, "%s: --job ID required\n", verb.c_str());
    return usage();
  }
  if (verb == "cancel") return run_control_command(sock, "CANCEL id=" + id);
  const bool full = opts.get_bool("result", false);
  return run_control_command(sock,
                             (full ? "RESULT id=" : "STATUS id=") + id);
}

int cmd_convert(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 0; i + 2 < args.size(); ++i) {
    if (args[i] == "--fastq-to-seqdb") {
      const auto reads = io::read_fastq(args[i + 1]);
      if (!io::write_seqdb(args[i + 2], reads)) return 1;
      std::printf("wrote %zu records to %s\n", reads.size(), args[i + 2].c_str());
      return 0;
    }
    if (args[i] == "--seqdb-to-fastq") {
      const auto reads = io::read_seqdb(args[i + 1]);
      if (!io::write_fastq(args[i + 2], reads)) return 1;
      std::printf("wrote %zu records to %s\n", reads.size(), args[i + 2].c_str());
      return 0;
    }
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  // Workers are spawned by execv of this binary; resolve the stable path
  // (argv[0] may be relative to a cwd a worker no longer shares).
  char exe[4096];
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (n > 0) {
    exe[n] = '\0';
    g_binary = exe;
  } else {
    g_binary = argv[0];
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "assemble") return cmd_assemble(argc - 1, argv + 1);
    if (cmd == "simulate" && argc >= 3)
      return cmd_simulate(argv[2], argc - 2, argv + 2);
    if (cmd == "convert") return cmd_convert(argc - 1, argv + 1);
    if (cmd == "serve" || cmd == "--serve")
      return cmd_serve(argc - 1, argv + 1);
    if (cmd == "submit" || cmd == "--submit")
      return cmd_submit(argc - 1, argv + 1);
    if (cmd == "status" || cmd == "--status")
      return cmd_control("status", argc - 1, argv + 1);
    if (cmd == "cancel") return cmd_control("cancel", argc - 1, argv + 1);
    if (cmd == "stats") return cmd_control("stats", argc - 1, argv + 1);
    if (cmd == "shutdown")
      return cmd_control("shutdown", argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hipmer: %s\n", e.what());
    return 1;
  }
  return usage();
}
