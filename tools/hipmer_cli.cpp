// hipmer — command-line front end for the assembly pipeline.
//
//   hipmer assemble --reads lib.fastq --insert 400 [--reads lib2.fastq
//          --insert 4200 --scaffold-only] --k 31 --ranks 16
//          [--rounds 1] [--diploid] [--min-count auto|N]
//          [--out scaffolds.fasta]
//          [--checkpoint-dir DIR [--resume] [--keep-last N]
//           [--checkpoint-rounds-only]]
//   hipmer simulate (human|wheat|metagenome) --genome N --out-dir DIR
//   hipmer convert --fastq in.fastq --seqdb out.sdb     (either direction)
//
// `assemble` accepts interleaved paired-end FASTQ files (read names must
// carry pairing as "<lib>:<pair>/<mate>"; `simulate` writes that format).
// `--min-count auto` derives the erroneous-k-mer cutoff from the k-mer
// count histogram valley (see kcount/histogram.hpp).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/seqdb.hpp"
#include "kcount/histogram.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"
#include "sim/metagenome_sim.hpp"
#include "util/options.hpp"

namespace {

using namespace hipmer;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hipmer assemble --reads FILE --insert N [--reads FILE "
               "--insert N --scaffold-only]...\n"
               "                  [--k 31] [--ranks 16] [--rounds 1] "
               "[--diploid] [--min-count auto|N] [--out FILE]\n"
               "                  [--packed-reads] [--shuffle-reads]\n"
               "                  [--checkpoint-dir DIR [--resume] "
               "[--keep-last N] [--checkpoint-rounds-only]]\n"
               "                  [--chaos-spec "
               "'drop=0.05,dup=0.02;store:corrupt=0.01;blackhole=2@merAligner'"
               " [--chaos-seed N]]\n"
               "  hipmer simulate (human|wheat|metagenome) [--genome N] "
               "[--species N] --out-dir DIR\n"
               "  hipmer convert (--fastq-to-seqdb IN OUT | "
               "--seqdb-to-fastq IN OUT)\n");
  return 2;
}

/// `--reads`/`--insert`/`--scaffold-only` repeat per library, so they are
/// parsed positionally from argv rather than through util::Options.
std::vector<seq::ReadLibrary> parse_libraries(int argc, char** argv) {
  std::vector<seq::ReadLibrary> libraries;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reads") == 0 && i + 1 < argc) {
      seq::ReadLibrary lib;
      lib.fastq_path = argv[i + 1];
      lib.name = "lib" + std::to_string(libraries.size());
      lib.mean_insert = 400.0;
      libraries.push_back(lib);
    } else if (std::strcmp(argv[i], "--insert") == 0 && i + 1 < argc &&
               !libraries.empty()) {
      libraries.back().mean_insert = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--scaffold-only") == 0 &&
               !libraries.empty()) {
      libraries.back().for_contigging = false;
    }
  }
  return libraries;
}

int cmd_assemble(int argc, char** argv) {
  util::Options opts(argc, argv);
  auto libraries = parse_libraries(argc, argv);
  if (libraries.empty()) {
    std::fprintf(stderr, "assemble: at least one --reads FILE required\n");
    return usage();
  }
  const int k = static_cast<int>(opts.get_int("k", 31));
  const int ranks = static_cast<int>(opts.get_int("ranks", 16));
  const std::string out = opts.get("out", "scaffolds.fasta");
  const std::string min_count = opts.get("min-count", "auto");

  pipeline::PipelineConfig cfg;
  cfg.k = k;
  cfg.scaffolding_rounds = static_cast<int>(opts.get_int("rounds", 1));
  cfg.merge_bubbles = opts.get_bool("diploid", false);
  // Perf knobs: 2-bit resident reads, and the post-alignment locality
  // shuffle. Neither changes the assembly output.
  cfg.packed_reads = opts.get_bool("packed-reads", false);
  cfg.shuffle_reads = opts.get_bool("shuffle-reads", false);
  if (min_count != "auto")
    cfg.kmer.min_count =
        static_cast<std::uint32_t>(std::strtoul(min_count.c_str(), nullptr, 10));
  cfg.checkpoint.dir = opts.get("checkpoint-dir", "");
  cfg.checkpoint.keep_last = static_cast<int>(opts.get_int("keep-last", 0));
  if (opts.get_bool("checkpoint-rounds-only", false))
    cfg.checkpoint.granularity = ckpt::CheckpointConfig::Granularity::kRound;
  const bool resume = opts.get_bool("resume", false);
  if (resume && cfg.checkpoint.dir.empty()) {
    std::fprintf(stderr, "assemble: --resume requires --checkpoint-dir DIR\n");
    return usage();
  }
  const std::string chaos_spec = opts.get("chaos-spec", "");
  if (!chaos_spec.empty()) {
    cfg.chaos = pgas::ChaosPlan::parse(
        static_cast<std::uint64_t>(opts.get_int("chaos-seed", 1)), chaos_spec);
  }
  cfg.sync_k();

  if (min_count == "auto") {
    // Probe pass: run k-mer analysis cheaply at low rank count to get the
    // histogram, pick the valley, then run the real pipeline.
    pgas::ThreadTeam probe_team(pgas::Topology{std::min(ranks, 8), 4});
    kcount::KmerAnalysisConfig probe_cfg = cfg.kmer;
    kcount::KmerAnalysis probe(probe_team, probe_cfg);
    std::vector<std::unique_ptr<io::ParallelFastqReader>> readers;
    for (const auto& lib : libraries)
      if (lib.for_contigging)
        readers.push_back(std::make_unique<io::ParallelFastqReader>(lib.fastq_path));
    probe_team.run([&](pgas::Rank& rank) {
      std::vector<std::vector<seq::Read>> mine;
      std::vector<const std::vector<seq::Read>*> sets;
      for (auto& reader : readers) {
        mine.push_back(reader->read_my_records(rank));
        rank.barrier();
      }
      for (const auto& m : mine) sets.push_back(&m);
      probe.run(rank, sets);
    });
    cfg.kmer.min_count = kcount::choose_min_count(probe.histogram());
    std::printf("auto min-count: %u (histogram valley)\n", cfg.kmer.min_count);
  }

  pipeline::Pipeline pipe(pgas::Topology{ranks, 4}, cfg);
  std::printf("assembling %zu librar%s on %d ranks, k=%d, min_count=%u...\n",
              libraries.size(), libraries.size() == 1 ? "y" : "ies", ranks, k,
              cfg.kmer.min_count);
  const auto result = resume ? pipe.resume_from_fastq(libraries)
                             : pipe.run_from_fastq(libraries);
  std::printf("%s", result.format_stages().c_str());
  if (pipe.team().transport().chaos_enabled()) {
    const std::string retries = pipe.team().transport().format_retry_histograms();
    std::printf("chaos retry histograms:\n%s",
                retries.empty() ? "  (no retries)\n" : retries.c_str());
  }
  std::printf("contigs:   %s\n",
              util::format_assembly_stats(result.contig_stats).c_str());
  std::printf("scaffolds: %s\n",
              util::format_assembly_stats(result.scaffold_stats).c_str());
  if (!io::write_fasta(out, result.scaffolds)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu scaffolds to %s\n", result.scaffolds.size(),
              out.c_str());
  return 0;
}

int cmd_simulate(const std::string& kind, int argc, char** argv) {
  util::Options opts(argc, argv);
  const std::string out_dir = opts.get("out-dir", ".");
  const auto genome = static_cast<std::uint64_t>(opts.get_int("genome", 500'000));
  sim::Dataset ds;
  if (kind == "human") {
    ds = sim::make_human_like(genome, static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  } else if (kind == "wheat") {
    ds = sim::make_wheat_like(genome, static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  } else if (kind == "metagenome") {
    sim::MetagenomeConfig mc;
    mc.num_species = static_cast<int>(opts.get_int("species", 40));
    mc.mean_genome_length = genome / static_cast<std::uint64_t>(mc.num_species);
    mc.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    const auto mg = sim::simulate_metagenome(mc);
    ds.name = "metagenome";
    ds.libraries.push_back(seq::ReadLibrary{"pe", mc.mean_insert,
                                            mc.stddev_insert, mc.read_length,
                                            "", true});
    ds.reads.push_back(mg.reads);
  } else {
    return usage();
  }
  if (!sim::write_dataset_fastq(ds, out_dir)) {
    std::fprintf(stderr, "cannot write FASTQ files to %s\n", out_dir.c_str());
    return 1;
  }
  for (const auto& lib : ds.libraries)
    std::printf("wrote %s (insert %.0f)\n", lib.fastq_path.c_str(),
                lib.mean_insert);
  return 0;
}

int cmd_convert(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 0; i + 2 < args.size(); ++i) {
    if (args[i] == "--fastq-to-seqdb") {
      const auto reads = io::read_fastq(args[i + 1]);
      if (!io::write_seqdb(args[i + 2], reads)) return 1;
      std::printf("wrote %zu records to %s\n", reads.size(), args[i + 2].c_str());
      return 0;
    }
    if (args[i] == "--seqdb-to-fastq") {
      const auto reads = io::read_seqdb(args[i + 1]);
      if (!io::write_fastq(args[i + 2], reads)) return 1;
      std::printf("wrote %zu records to %s\n", reads.size(), args[i + 2].c_str());
      return 0;
    }
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "assemble") return cmd_assemble(argc - 1, argv + 1);
    if (cmd == "simulate" && argc >= 3)
      return cmd_simulate(argv[2], argc - 2, argv + 2);
    if (cmd == "convert") return cmd_convert(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hipmer: %s\n", e.what());
    return 1;
  }
  return usage();
}
