// wirecheck self-test fixture: the writer emits items.size() as a count but
// never writes the items (the loop was deleted in a refactor); the count
// prefix feeds nothing. Expected diagnostic: orphan-length-prefix.
// Never compiled — only scanned by tools/wirecheck/selftest.py.
#include <vector>

#include "io/wire.hpp"

namespace fixture {

// wire-schema: fixture_orphan writer
inline void put_items(hipmer::io::wire::Writer& w,
                      const std::vector<std::uint32_t>& items,
                      std::uint32_t checksum) {
  w.put_u32(static_cast<std::uint32_t>(items.size()));
  w.put_u32(checksum);
}

// wire-schema: fixture_orphan reader
inline void get_items(hipmer::io::wire::Reader& r) {
  const std::uint32_t count = r.get_u32_checked("item count");
  const std::uint32_t checksum = r.get_u32_checked("checksum");
  (void)count;
  (void)checksum;
}

}  // namespace fixture
