// wirecheck self-test fixture: the writer emits a u64 the reader consumes
// as a u32. Expected diagnostic: width-mismatch.
// Never compiled — only scanned by tools/wirecheck/selftest.py.
#include "io/wire.hpp"

namespace fixture {

// wire-schema: fixture_width writer
inline void put_totals(hipmer::io::wire::Writer& w, std::uint32_t count,
                       std::uint64_t total_bytes) {
  w.put_u32(count);
  w.put_u64(total_bytes);
}

// wire-schema: fixture_width reader
inline void get_totals(hipmer::io::wire::Reader& r) {
  const std::uint32_t count = r.get_u32_checked("count");
  const std::uint32_t total_bytes = r.get_u32_checked("total bytes");
  (void)count;
  (void)total_bytes;
}

}  // namespace fixture
