// wirecheck self-test fixture: the reader consumes the two fields in the
// opposite order from the writer. Expected diagnostic: field-mismatch.
// Never compiled — only scanned by tools/wirecheck/selftest.py.
#include "io/wire.hpp"

namespace fixture {

// wire-schema: fixture_reordered writer
inline void put_record(hipmer::io::wire::Writer& w, std::uint32_t id,
                       const std::string& name) {
  w.put_u32(id);
  w.put_bytes(name);
}

// wire-schema: fixture_reordered reader
inline void get_record(hipmer::io::wire::Reader& r) {
  const std::string name = r.get_bytes_checked("record name");
  const std::uint32_t id = r.get_u32_checked("record id");
  (void)name;
  (void)id;
}

}  // namespace fixture
