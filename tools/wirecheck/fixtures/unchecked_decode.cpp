// wirecheck self-test fixture: the reader decodes with the non-throwing
// getter API but the schema is not marked `trusted`, so truncation would be
// silently misparsed. Expected diagnostic: unchecked-decode.
// Never compiled — only scanned by tools/wirecheck/selftest.py.
#include "io/wire.hpp"

namespace fixture {

// wire-schema: fixture_unchecked writer
inline void put_value(hipmer::io::wire::Writer& w, std::uint32_t value) {
  w.put_u32(value);
}

// wire-schema: fixture_unchecked reader
inline std::uint32_t get_value(hipmer::io::wire::Reader& r) {
  return r.get_u32();
}

}  // namespace fixture
