// wirecheck self-test fixture: a symmetric writer/reader pair whose shape
// disagrees with the committed manifest.json next to it (which records the
// field as u64 at rev 1). `--check-manifest` against that manifest must
// fail with manifest-drift; the pair alone must scan clean.
// Never compiled — only scanned by tools/wirecheck/selftest.py.
#include "io/wire.hpp"

namespace fixture {

// wire-schema: fixture_stale writer
inline void put_version(hipmer::io::wire::Writer& w, std::uint32_t version) {
  w.put_u32(version);
}

// wire-schema: fixture_stale reader
inline std::uint32_t get_version(hipmer::io::wire::Reader& r) {
  return r.get_u32_checked("version");
}

}  // namespace fixture
