#!/usr/bin/env python3
"""Self-tests for wirecheck, runnable standalone or via ctest.

Three layers:
  1. Each broken fixture in fixtures/ must make wirecheck exit 1 and emit
     its expected diagnostic code (and no diagnostics of other codes, so a
     fixture cannot "pass" by tripping an unrelated parse error).
  2. The stale-manifest fixture must scan clean on its own but fail
     `--check-manifest` against its deliberately out-of-date manifest.json
     — proving the drift gate actually gates.
  3. The real tree must scan clean against the committed golden manifest
     (the same invocation CI runs), so a broken analyzer cannot pass its
     own fixtures while silently missing the codebase.

Exit status: 0 = all green, 1 = at least one expectation failed.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
WIRECHECK = HERE / "wirecheck.py"
ROOT = HERE.parent.parent

# (fixture file, expected diagnostic code)
BROKEN_FIXTURES = [
    ("reordered_field.cpp", "field-mismatch"),
    ("width_mismatch.cpp", "width-mismatch"),
    ("orphan_length_prefix.cpp", "orphan-length-prefix"),
    ("unchecked_decode.cpp", "unchecked-decode"),
]

DIAG_RE = re.compile(r"\[([a-z-]+)\]")


def wirecheck(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(WIRECHECK)] + args,
                          capture_output=True, text=True)


def diag_codes(output: str) -> set[str]:
    return set(DIAG_RE.findall(output))


def main() -> int:
    failures: list[str] = []

    for fname, expected in BROKEN_FIXTURES:
        proc = wirecheck([str(FIXTURES / fname)])
        codes = diag_codes(proc.stdout)
        if proc.returncode != 1:
            failures.append(f"{fname}: expected exit 1, got "
                            f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
        elif expected not in codes:
            failures.append(f"{fname}: expected diagnostic [{expected}], "
                            f"got {sorted(codes)}\n{proc.stdout}")
        elif codes != {expected}:
            failures.append(f"{fname}: unexpected extra diagnostics "
                            f"{sorted(codes - {expected})}\n{proc.stdout}")

    # The stale-manifest pair is well-formed on its own...
    stale = FIXTURES / "stale_manifest"
    proc = wirecheck([str(stale / "pair.cpp")])
    if proc.returncode != 0:
        failures.append(f"stale_manifest/pair.cpp: expected clean scan, got "
                        f"exit {proc.returncode}\n{proc.stdout}{proc.stderr}")
    # ...but must fail the drift gate against its committed manifest.
    proc = wirecheck([str(stale / "pair.cpp"), "--check-manifest",
                      "--manifest", str(stale / "manifest.json")])
    if proc.returncode != 1 or "manifest-drift" not in diag_codes(proc.stdout):
        failures.append(f"stale_manifest: expected exit 1 with "
                        f"[manifest-drift], got exit {proc.returncode}\n"
                        f"{proc.stdout}{proc.stderr}")

    # The real tree against the real golden manifest: the CI invocation.
    proc = wirecheck(["--root", str(ROOT), "--check-manifest"])
    if proc.returncode != 0:
        failures.append(f"tree scan: expected clean, got exit "
                        f"{proc.returncode}\n{proc.stdout}{proc.stderr}")

    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}", file=sys.stderr)
        return 1
    print(f"wirecheck selftest: {len(BROKEN_FIXTURES)} broken fixtures, the "
          f"drift gate, and the tree scan all behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
