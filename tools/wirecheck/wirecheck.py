#!/usr/bin/env python3
"""Wire-schema extraction and writer/reader symmetry analysis.

Every codec pair in the tree that puts bytes on a wire (fabric frames,
transport envelopes, checkpoint shards, DistHashMap batches, the job
server's line protocol) is annotated at the function definition:

    // wire-schema: <message> writer
    // wire-schema: <message> reader [trusted] [stream]

wirecheck parses each annotated function body — put_/get_ call order,
POD widths, length-prefix/loop pairing, string and blob framing — into a
field sequence, then diffs the writer's declared schema against the
reader's. The checks are deliberately *syntactic* (per function body, no
compilation database), same philosophy as lint_phases.py: they catch the
drift a reviewer could in principle see, before any test runs.

Schema model (one node per wire field):

    ["u8"|"u16"|"u32"|"u64"|"i32"|"i64"|"char"|"f32"|"f64"]   scalar
    ["pod", "<Type>"]      trivially-copyable struct, named type
    ["bytes"]              u32-length-prefixed byte string
    ["blob", "<spec>"]     raw bytes framed by an earlier field (decl form)
    ["magic", "<kConst>"]  format magic (u32)
    ["crc32"]              CRC-32C integrity word
    ["rest"]               everything to the end of the payload
    ["loop", <bind>, [children]]   repeated group; bind = "prev" (count is
                           the nearest preceding scalar), a hint label, or
                           "stream" (reads until exhausted)
    ["opt", [children]]    flag-guarded group
    ["ref", "<schema>"]    call into another annotated codec

Extraction sources, in priority order:
  1. `// wire-decl: <node>` lines under the annotation (one field per
     line; used where the body is not put_/get_ shaped, e.g. seqdb's
     string-based codec and the server's hex-framed line protocol);
  2. the body's put_*/get_* calls, plus trailing `// wire: <node>` hints
     on lines the scanner cannot type on its own (`put_pod` of a deduced
     argument, memcpy'd `rest` tails), standalone `// wire: crc32` /
     `// wire: magic <kConst>` markers for fields consumed away from the
     Reader, and `// wire: loop <label>` on loops whose bound is carried
     out of band (e.g. the team size);
  3. `// wire-helper: <name> <node>` on a helper function teaches the
     scanner that calls to it produce that node (e.g. get_flag -> u8).

Rule packs (finding lines are grep-able by the code in brackets):

  symmetry
    [field-mismatch]      writer and reader disagree on a field's kind
    [width-mismatch]      same kind, different scalar width
    [field-count]         one side has more fields than the other
    [loop-mismatch]       loop bounds bind differently on the two sides
    [orphan-loop]         a loop with no preceding count and no hint
    [orphan-length-prefix] a writer emits a `.size()` count that no loop
                          or blob consumes
    [writer-divergence]   two writers of one schema disagree
    [missing-reader] / [missing-writer]  annotated half without its twin

  robustness
    [unchecked-decode]    a reader not marked `trusted` uses the
                          non-throwing getter API (get_u32 / get_pod /
                          get_bytes without _checked)
    [crc-missing]         the writer emits a CRC but the reader never
                          verifies one

  drift gating (--check-manifest, against tools/wirecheck/schemas.json)
    [manifest-drift]      extracted schema differs from the committed
                          manifest entry without a rev bump
    [manifest-missing]    schema in the tree but not in the manifest
    [manifest-stale]      schema in the manifest but not in the tree

Suppression: `// wirecheck: allow(<code>): <reason>` on the annotation
line or inside the function suppresses that code for that schema. The
reason is mandatory — a bare allow() is itself a finding
[unexplained-suppression].

The manifest doubles as the input of the generated corruption tests
(tools/wirecheck/gen_schema_tests.py): each entry carries an `integrity`
field — "crc" when the schema carries its own CRC (sweeps expect every
flip/truncation to be rejected outright), "delegated" when integrity is
the envelope's job (sweeps expect rejection OR a decode that visibly
differs from the original).

Usage:
  wirecheck.py [--root DIR] [--manifest FILE] [--check-manifest]
               [--update-manifest] [--dump] [--verbose] [PATH...]
Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}

# Schemas that the generated sweep harness intentionally does not drive
# end-to-end, with the reason recorded here (these are the only allowed
# "sweep": "none" entries; gen_schema_tests.py re-checks the set).
SWEEP_OVERRIDES = {
    "ckpt_aux_stats": "fragment of ckpt_manifest; swept inside it",
    "contig_req": "private ContigStore RPC codec; two fixed PODs, "
    "exercised end-to-end by the fabric frame sweeps",
}

SCHEMA_RE = re.compile(
    r"//\s*wire-schema:\s*([a-z0-9_]+)\s+(writer|reader)((?:\s+\w+)*)"
)
DECL_RE = re.compile(r"//\s*wire-decl:\s*(.+?)\s*$")
HELPER_RE = re.compile(r"//\s*wire-helper:\s*([A-Za-z_]\w*)\s+(\S.*?)\s*$")
HINT_RE = re.compile(r"//\s*wire:\s*(.+?)\s*$")
ALLOW_RE = re.compile(r"//\s*wirecheck:\s*allow\(([a-z-]+)\)(:\s*(\S.*))?")
MAGIC_ID_RE = re.compile(r"\bk\w*Magic\b")
CRC_CALL_RE = re.compile(r"\bcrc32c?\s*\(")

SCALARS = {
    "u8": 1, "u16": 2, "u32": 4, "u64": 8,
    "i8": 1, "i16": 2, "i32": 4, "i64": 8,
    "char": 1, "f32": 4, "f64": 8,
}

TYPE_ALIASES = {
    "std::uint8_t": "u8", "uint8_t": "u8",
    "std::uint16_t": "u16", "uint16_t": "u16",
    "std::uint32_t": "u32", "uint32_t": "u32",
    "std::uint64_t": "u64", "uint64_t": "u64",
    "std::int8_t": "i8", "int8_t": "i8",
    "std::int16_t": "i16", "int16_t": "i16",
    "std::int32_t": "i32", "int32_t": "i32",
    "std::int64_t": "i64", "int64_t": "i64",
    "std::size_t": "u64", "size_t": "u64",
    "float": "f32", "double": "f64", "char": "char",
    "std::byte": "u8",
}

METHOD_CALL_RE = re.compile(
    r"(?:\.|->)\s*(get_u32|get_u64|get_bytes|get_pod|get_raw|get_read"
    r"|put_u32|put_u64|put_bytes|put_pod)"
    r"(_checked)?\s*(<[^;]*?>)?\s*\("
)
FREE_CALL_RE = re.compile(r"(?<![\w.>])([A-Za-z_]\w*)\s*\(")
CONTROL_RE = re.compile(r"^\s*(?:\}\s*)?(for|while|if|else\s+if|else)\b")
FUNC_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*\($")


def norm_type(t: str) -> str:
    t = re.sub(r"\s+", " ", t.strip())
    return TYPE_ALIASES.get(t, t)


def type_node(t: str) -> list:
    n = norm_type(t)
    return [n] if n in SCALARS else ["pod", n]


@dataclass
class Codec:
    schema: str
    role: str          # "writer" | "reader"
    attrs: list[str]   # trusted, stream
    path: Path
    line: int          # 1-based line of the annotation
    func: str = ""
    nodes: list = field(default_factory=list)
    declared: bool = False
    unchecked_lines: list[int] = field(default_factory=list)
    allows: dict[str, str] = field(default_factory=dict)
    bare_allows: list[int] = field(default_factory=list)


@dataclass
class Finding:
    path: Path
    line: int
    code: str
    message: str
    schema: str = ""

    def render(self) -> str:
        tag = f" (schema {self.schema})" if self.schema else ""
        return f"{self.path}:{self.line}: [{self.code}] {self.message}{tag}"


def parse_decl(text: str) -> list:
    """One `wire-decl` field: `[opt] <kind>[ <arg>]`."""
    toks = text.split()
    wrap_opt = toks and toks[0] == "opt"
    if wrap_opt:
        toks = toks[1:]
    if not toks:
        raise ValueError("empty wire-decl")
    kind = toks[0]
    if kind in SCALARS:
        node = [kind]
    elif kind == "pod":
        node = ["pod", norm_type(" ".join(toks[1:]))]
    elif kind == "bytes":
        node = ["bytes"]
    elif kind == "crc32":
        node = ["crc32"]
    elif kind == "rest":
        node = ["rest"]
    elif kind == "blob":
        node = ["blob", " ".join(toks[1:])]
    elif kind == "magic":
        node = ["magic", toks[1] if len(toks) > 1 else "?"]
    else:
        raise ValueError(f"unknown wire-decl kind '{kind}'")
    return ["opt", [node]] if wrap_opt else node


def parse_hint(text: str) -> tuple[str, list | str | None]:
    """A `// wire:` hint. Returns (kind, payload):
    ("node", node) for field-typed hints, ("loop", label), ("magic", const),
    ("crc32", None), ("rest", None)."""
    toks = text.split()
    kind = toks[0]
    if kind == "loop":
        return ("loop", toks[1] if len(toks) > 1 else "prev")
    if kind == "magic":
        return ("magic", toks[1] if len(toks) > 1 else "?")
    if kind == "crc32":
        return ("crc32", None)
    if kind == "rest":
        return ("rest", None)
    if kind == "pod":
        return ("node", type_node(" ".join(toks[1:])))
    if kind in SCALARS:
        return ("node", [kind])
    raise ValueError(f"unknown wire hint '{text}'")


class FileScanner:
    """Per-file pass: finds annotations, captures bodies, extracts nodes."""

    def __init__(self, path: Path, text: str, helpers: dict[str, list]):
        self.path = path
        self.lines = text.splitlines()
        self.helpers = helpers
        self.errors: list[Finding] = []

    # -- annotation discovery ------------------------------------------

    def collect_helpers(self) -> None:
        for i, line in enumerate(self.lines):
            m = HELPER_RE.search(line)
            if not m:
                continue
            try:
                _, payload = parse_hint(m.group(2))
                if isinstance(payload, list):
                    self.helpers[m.group(1)] = payload
                else:
                    raise ValueError("helper hint must be a field node")
            except ValueError as e:
                self.errors.append(
                    Finding(self.path, i + 1, "bad-annotation", str(e)))

    def scan(self) -> list[Codec]:
        codecs = []
        for i, line in enumerate(self.lines):
            m = SCHEMA_RE.search(line)
            if not m:
                continue
            codec = Codec(
                schema=m.group(1),
                role=m.group(2),
                attrs=m.group(3).split(),
                path=self.path,
                line=i + 1,
            )
            am = ALLOW_RE.search(line)
            if am:
                self._record_allow(codec, am, i + 1)
            self._extract(codec, i + 1)
            codecs.append(codec)
        return codecs

    def _record_allow(self, codec: Codec, m, lineno: int) -> None:
        code, reason = m.group(1), m.group(3)
        if reason:
            codec.allows[code] = reason
        else:
            codec.bare_allows.append(lineno)

    # -- body capture ---------------------------------------------------

    def _extract(self, codec: Codec, start: int) -> None:
        """start = 0-based index just past the annotation line."""
        decls: list = []
        i = start
        # Leading comment block: wire-decl lines and ordinary comments.
        while i < len(self.lines):
            stripped = self.lines[i].strip()
            dm = DECL_RE.search(stripped)
            if dm:
                try:
                    decls.append(parse_decl(dm.group(1)))
                except ValueError as e:
                    self.errors.append(
                        Finding(self.path, i + 1, "bad-annotation", str(e),
                                codec.schema))
                i += 1
                continue
            if stripped.startswith("//") or stripped.startswith("template"):
                i += 1
                continue
            break
        # Signature: accumulate until the opening '('.
        sig = ""
        sig_start = i
        while i < len(self.lines):
            sig += " " + self.lines[i].strip()
            if "(" in sig:
                break
            i += 1
        head = sig[: sig.index("(") + 1].strip() if "(" in sig else ""
        nm = FUNC_NAME_RE.search(head)
        if not nm:
            self.errors.append(
                Finding(self.path, codec.line, "bad-annotation",
                        "annotation is not followed by a function definition",
                        codec.schema))
            return
        codec.func = nm.group(1)
        if decls:
            codec.nodes = decls
            codec.declared = True
            return
        # Body: from the first '{' after the signature to its match.
        body_lines, body_start = self._capture_body(sig_start)
        if body_lines is None:
            self.errors.append(
                Finding(self.path, codec.line, "bad-annotation",
                        f"cannot find body of {codec.func}", codec.schema))
            return
        parser = BodyParser(self, codec, body_lines, body_start)
        codec.nodes = parser.parse()

    def _capture_body(self, sig_start: int):
        depth = 0
        started = False
        first = None
        for i in range(sig_start, len(self.lines)):
            for ch in self.lines[i]:
                if ch == "{":
                    if not started:
                        started = True
                        first = i
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if started and depth == 0:
                        return self.lines[first : i + 1], first
            if i - sig_start > 400:
                break
        return None, 0


class BodyParser:
    """Turns an annotated function body into a node list.

    Line-oriented: control-flow headers (`for`/`while`/`if`/`else`) open
    nested scopes (braced, single-line, or two-line unbraced); every other
    line is scanned for wire calls and hints.
    """

    def __init__(self, scanner: FileScanner, codec: Codec,
                 lines: list[str], start: int):
        self.sc = scanner
        self.codec = codec
        self.lines = lines
        self.start = start  # 0-based index of lines[0] in the file

    def parse(self) -> list:
        nodes, _ = self._block(0, len(self.lines))
        return nodes

    def lineno(self, i: int) -> int:
        return self.start + i + 1

    # -- block parsing --------------------------------------------------

    def _block(self, i: int, end: int) -> tuple[list, int]:
        nodes: list = []
        while i < end:
            line = self.lines[i]
            ctrl = CONTROL_RE.match(line)
            if ctrl and not line.strip().startswith("//"):
                i = self._control(nodes, i, end, ctrl.group(1))
                continue
            self._scan_line(nodes, line, i)
            i += 1
        return nodes, i

    @staticmethod
    def _strip(line: str) -> str:
        line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        return re.sub(r"//.*$", "", line)

    def _control(self, nodes: list, i: int, end: int, kw: str) -> int:
        """Parse one control statement starting at line i; append a loop/opt
        node if its body produced wire fields. Wire calls in the header's
        condition (e.g. `if (r.get_u32_checked(...) != kMagic)`) belong to
        the ENCLOSING scope and are scanned into `nodes` directly. Returns
        the next index."""
        # Accumulate header lines until the control parens balance.
        header = self.lines[i]
        j = i
        while (self._strip(header).count("(")
               > self._strip(header).count(")")) and j + 1 < end:
            j += 1
            header += " " + self.lines[j]
        hint = None
        hm = HINT_RE.search(header)
        if hm:
            try:
                hint = parse_hint(hm.group(1))
            except ValueError as e:
                self.sc.errors.append(Finding(
                    self.sc.path, self.lineno(i), "bad-annotation", str(e),
                    self.codec.schema))
        code = self._strip(header)
        # Split into condition (inside the control parens) and tail (after).
        cond, tail = "", code
        if kw != "else":
            op = code.find("(")
            if op >= 0:
                depth = 0
                close = -1
                for pos in range(op, len(code)):
                    if code[pos] == "(":
                        depth += 1
                    elif code[pos] == ")":
                        depth -= 1
                        if depth == 0:
                            close = pos
                            break
                if close >= 0:
                    cond = code[op + 1 : close]
                    tail = code[close + 1 :]
        else:
            tail = code[code.find("else") + 4 :]
        # Condition-side wire calls surface in the enclosing scope.
        self._wire_calls(nodes, cond, i, None)

        children: list = []
        if "{" in tail:
            after_brace = tail.split("{", 1)[1]
            if after_brace.strip():
                self._scan_fragment(children, after_brace, j, nodes)
            # Find the matching close brace, counting from the header. A
            # leading `}` on the header (`} else {`) closes the previous
            # block, not this one — drop it before counting.
            depth = 0
            opened = False
            k = i
            while k < end:
                text_k = self._strip(self.lines[k])
                if k == i:
                    text_k = text_k.lstrip().lstrip("}")
                for ch in text_k:
                    if ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                if opened and depth <= 0:
                    break
                k += 1
            inner, _ = self._block(j + 1, k)
            children.extend(inner)
            nxt = k + 1
        elif tail.strip() and tail.strip() != ";":
            # Single-line body after the header.
            self._scan_fragment(children, tail, j, nodes)
            nxt = j + 1
        elif tail.strip() == ";":
            nxt = j + 1
        else:
            # Unbraced body on the following line(s), up to its ';'.
            k = j + 1
            while k < end:
                self._scan_fragment(children, self.lines[k], k, nodes)
                if self._strip(self.lines[k]).rstrip().endswith(";"):
                    break
                k += 1
            nxt = k + 1
        if not children:
            return nxt
        if kw in ("for", "while"):
            label = "prev"
            if hint and hint[0] == "loop":
                label = hint[1]
            elif "stream" in self.codec.attrs:
                label = "stream"
            nodes.append(["loop", label, children])
        else:
            nodes.append(["opt", children])
        return nxt

    def _scan_fragment(self, children: list, text: str, i: int,
                       raw_parent: list) -> None:
        """Scan a control-statement body fragment. A lone get_raw whose
        length field lives in the enclosing scope (`if (len > 0)
        r.get_raw(...)`) merges there instead of opening a group."""
        hint = None
        hm = HINT_RE.search(text)
        if hm:
            try:
                hint = parse_hint(hm.group(1))
            except ValueError:
                hint = None
        code = self._strip(text)
        if "get_raw" in code and not children:
            self._absorb_raw(raw_parent, i)
            return
        self._wire_calls(children, code, i, hint)
        if not children and hint is not None:
            kind, payload = hint
            if kind == "node":
                children.append(payload)
            elif kind == "rest":
                children.append(["rest"])

    # -- line scanning --------------------------------------------------

    def _scan_line(self, nodes: list, line: str, i: int) -> None:
        am = ALLOW_RE.search(line)
        if am:
            code, reason = am.group(1), am.group(3)
            if reason:
                self.codec.allows[code] = reason
            else:
                self.codec.bare_allows.append(self.lineno(i))
        hint = None
        hm = HINT_RE.search(line)
        if hm:
            try:
                hint = parse_hint(hm.group(1))
            except ValueError as e:
                self.sc.errors.append(Finding(
                    self.sc.path, self.lineno(i), "bad-annotation", str(e),
                    self.codec.schema))
        code_part = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        code_part = re.sub(r"//.*$", "", code_part)

        produced = self._wire_calls(nodes, code_part, i, hint)
        if produced or hint is None:
            return
        # Standalone hints: fields consumed/produced away from this Reader
        # or by code the scanner cannot type.
        kind, payload = hint
        if kind == "magic":
            nodes.append(["magic", payload])
        elif kind == "crc32":
            nodes.append(["crc32"])
        elif kind == "rest":
            nodes.append(["rest"])
        elif kind == "node":
            nodes.append(payload)
        # ("loop", ...) on a non-control line is meaningless; ignore.

    def _wire_calls(self, nodes: list, code: str, i: int, hint) -> bool:
        """Scan one comment-stripped line for wire calls; returns True if
        any node was produced (the hint, if present, types the call)."""
        produced = False
        want = "put" if self.codec.role == "writer" else "get"

        for m in METHOD_CALL_RE.finditer(code):
            name, checked, targ = m.group(1), m.group(2), m.group(3)
            if not name.startswith(want):
                continue  # writers ignore gets and vice versa
            produced = True
            if want == "get" and not checked and name != "get_raw" \
                    and "trusted" not in self.codec.attrs:
                self.codec.unchecked_lines.append(self.lineno(i))
            base = name.replace("put_", "").replace("get_", "")
            if base == "raw":
                self._absorb_raw(nodes, i)
                continue
            if base == "read":
                nodes.append(["ref", "read_record"])
                continue
            if base == "bytes":
                nodes.append(["bytes"])
                continue
            if base == "pod":
                if hint and hint[0] == "node":
                    node = list(hint[1])
                elif targ:
                    node = type_node(targ.strip("<>"))
                else:
                    # put_pod(static_cast<T>(...)) names its own width.
                    sc_m = re.match(r"\s*static_cast\s*<([^<>]+)>",
                                    code[m.end():])
                    if sc_m:
                        node = type_node(sc_m.group(1))
                    else:
                        self.sc.errors.append(Finding(
                            self.sc.path, self.lineno(i), "bad-annotation",
                            "cannot infer put_pod/get_pod type; add a "
                            "`// wire: pod <T>` hint", self.codec.schema))
                        continue
            else:
                node = [base]
            # u32-shaped fields may really be magics, CRCs, or counts —
            # whether they arrived via put_u32 or a pod<u32> getter.
            if node[0] in ("u32", "u64"):
                if hint and hint[0] == "magic":
                    node = ["magic", hint[1]]
                elif hint and hint[0] == "crc32":
                    node = ["crc32"]
                elif self._is_magic(code, i):
                    node = ["magic", self._magic_name(code, i)]
                elif want == "put" and CRC_CALL_RE.search(code):
                    node = ["crc32"]
                elif want == "put" and ".size()" in code:
                    node = [node[0], "len"]
            nodes.append(node)
        if produced:
            return True

        # Free-function calls: annotated codec refs and declared helpers.
        for m in FREE_CALL_RE.finditer(code):
            name = m.group(1)
            if name in self.sc.helpers:
                if want == "get":
                    nodes.append(list(self.sc.helpers[name]))
                    produced = True
                continue
            ref = CALL_REGISTRY.get((name, self.codec.role))
            if ref is not None and ref != self.codec.schema:
                nodes.append(["ref", ref])
                produced = True
        return produced

    def _absorb_raw(self, nodes: list, i: int) -> None:
        """get_raw: merges a preceding length scalar into a bytes node, is
        absorbed by a pending rest node, or errors."""
        if nodes and nodes[-1] == ["rest"]:
            return
        if nodes and nodes[-1] and nodes[-1][0] in ("u32", "u64"):
            nodes[-1] = ["bytes"]
            return
        if nodes and nodes[-1] == ["bytes"]:
            return  # already merged (require/resize/get_raw multi-line)
        self.sc.errors.append(Finding(
            self.sc.path, self.lineno(i), "bad-annotation",
            "get_raw with no preceding length field or rest hint",
            self.codec.schema))

    def _is_magic(self, code: str, i: int) -> bool:
        return self._magic_name(code, i) is not None

    def _magic_name(self, code: str, i: int):
        m = MAGIC_ID_RE.search(code)
        if m:
            return m.group(0)
        # The comparison may sit on the following line or two — but only
        # look there when this line calls its field a magic (the reader
        # convention, e.g. get_u32_checked("ufx magic")); otherwise an
        # ordinary count read adjacent to a magic mention would be
        # misclassified.
        raw = self.lines[i] if 0 <= i < len(self.lines) else ""
        if "magic" not in raw.lower():
            return None
        for k in (1, 2):
            if i + k < len(self.lines):
                m = MAGIC_ID_RE.search(self.lines[i + k])
                if m:
                    return m.group(0)
        return None


# (function name, role) -> schema, for ref resolution. Filled in pass 1.
CALL_REGISTRY: dict[tuple[str, str], str] = {}


# ---------------------------------------------------------------------------
# analysis


def strip_integrity(nodes: list) -> tuple[list, bool, bool]:
    """Remove crc32/magic nodes from a node list (recursively for groups).
    Returns (stripped, has_crc, has_magic)."""
    out = []
    has_crc = has_magic = False
    for n in nodes:
        if n[0] == "crc32":
            has_crc = True
        elif n[0] == "magic":
            has_magic = True
            out.append(n)  # magics stay positional; compared by const name
        elif n[0] == "loop":
            child, c, g = strip_integrity(n[2])
            has_crc |= c
            has_magic |= g
            out.append(["loop", n[1], child])
        elif n[0] == "opt":
            child, c, g = strip_integrity(n[1])
            has_crc |= c
            has_magic |= g
            out.append(["opt", child])
        else:
            out.append(n)
    return out, has_crc, has_magic


def node_desc(n: list) -> str:
    if n[0] == "pod":
        return f"pod {n[1]}"
    if n[0] == "loop":
        return f"loop[{n[1]}]"
    if n[0] in ("ref", "magic", "blob"):
        return f"{n[0]} {n[1]}"
    return n[0]


class Analyzer:
    def __init__(self, codecs: list[Codec], verbose: bool = False):
        self.codecs = codecs
        self.verbose = verbose
        self.findings: list[Finding] = []
        self.by_schema: dict[str, dict[str, list[Codec]]] = {}
        for c in codecs:
            self.by_schema.setdefault(c.schema, {}).setdefault(
                c.role, []).append(c)

    def _emit(self, codec: Codec, line: int, code: str, msg: str) -> None:
        if code in codec.allows:
            return
        self.findings.append(Finding(codec.path, line, code, msg,
                                     codec.schema))

    # expansion of refs for structural diffing
    def _expand(self, nodes: list, role: str, seen: tuple = ()) -> list:
        out = []
        for n in nodes:
            if n[0] == "ref":
                target = n[1]
                if target in seen:
                    continue
                roles = self.by_schema.get(target, {})
                peers = roles.get(role, [])
                if peers:
                    out.extend(self._expand(peers[0].nodes, role,
                                            seen + (target,)))
                else:
                    out.append(n)
            elif n[0] == "loop":
                out.append(["loop", n[1],
                            self._expand(n[2], role, seen)])
            elif n[0] == "opt":
                out.append(["opt", self._expand(n[1], role, seen)])
            else:
                out.append(n)
        return out

    def run(self) -> list[Finding]:
        for codec in self.codecs:
            for lineno in codec.bare_allows:
                self.findings.append(Finding(
                    codec.path, lineno, "unexplained-suppression",
                    "allow() without a reason — write "
                    "`// wirecheck: allow(<code>): <why>`", codec.schema))
            for lineno in codec.unchecked_lines:
                self._emit(codec, lineno, "unchecked-decode",
                           "reader uses the non-throwing getter API on a "
                           "schema not marked `trusted`")
            if codec.role == "writer" and not codec.declared:
                self._writer_prefix_check(codec)
        for schema, roles in sorted(self.by_schema.items()):
            self._check_schema(schema, roles)
        return self.findings

    def _writer_prefix_check(self, codec: Codec) -> None:
        def walk(nodes: list) -> None:
            for idx, n in enumerate(nodes):
                if n[0] in ("u32", "u64") and len(n) > 1 and n[1] == "len":
                    nxt = nodes[idx + 1] if idx + 1 < len(nodes) else None
                    if nxt is None or nxt[0] not in ("loop", "bytes", "blob",
                                                     "rest"):
                        self._emit(codec, codec.line, "orphan-length-prefix",
                                   "writer emits a size() count that no "
                                   "loop or blob consumes")
                if n[0] == "loop":
                    walk(n[2])
                elif n[0] == "opt":
                    walk(n[1])
        walk(codec.nodes)

    def _check_schema(self, schema: str, roles: dict) -> None:
        writers = roles.get("writer", [])
        readers = roles.get("reader", [])
        if not readers:
            w = writers[0]
            self._emit(w, w.line, "missing-reader",
                       "writer has no annotated reader")
            return
        if not writers:
            r = readers[0]
            self._emit(r, r.line, "missing-writer",
                       "reader has no annotated writer")
            return
        # Writers of one schema must agree with each other.
        base = self._canon(writers[0], "writer")
        for w in writers[1:]:
            if self._canon(w, "writer") != base:
                self._emit(w, w.line, "writer-divergence",
                           f"disagrees with the writer at "
                           f"{writers[0].path}:{writers[0].line}")
        for w in writers:
            for r in readers:
                self._diff_pair(schema, w, r)

    def _canon(self, codec: Codec, role: str) -> list:
        nodes = self._expand(codec.nodes, role)
        stripped, _, _ = strip_integrity(nodes)
        return stripped

    def _diff_pair(self, schema: str, w: Codec, r: Codec) -> None:
        wn = self._expand(w.nodes, "writer")
        rn = self._expand(r.nodes, "reader")
        ws, w_crc, _ = strip_integrity(wn)
        rs, r_crc, _ = strip_integrity(rn)
        if w_crc and not r_crc:
            self._emit(r, r.line, "crc-missing",
                       "writer emits a CRC the reader never verifies")
        ctx = f"writer {w.path.name}:{w.line} vs reader {r.path.name}:{r.line}"
        self._diff_nodes(schema, r, ws, rs, ctx, [])
        self._orphan_loops(w)
        self._orphan_loops(r)

    def _orphan_loops(self, codec: Codec) -> None:
        def walk(nodes: list) -> None:
            for idx, n in enumerate(nodes):
                if n[0] == "loop":
                    if n[1] == "prev":
                        prev = nodes[idx - 1] if idx > 0 else None
                        if prev is None or prev[0] not in ("u32", "u64"):
                            self._emit(codec, codec.line, "orphan-loop",
                                       "loop has no preceding count field "
                                       "and no `// wire: loop <label>` hint")
                    walk(n[2])
                elif n[0] == "opt":
                    walk(n[1])
        if not codec.declared:
            walk(codec.nodes)

    def _diff_nodes(self, schema: str, r: Codec, ws: list, rs: list,
                    ctx: str, trail: list) -> None:
        where = "/".join(trail) or "top level"
        if len(ws) != len(rs):
            self._emit(r, r.line, "field-count",
                       f"writer has {len(ws)} fields, reader {len(rs)} at "
                       f"{where} ({ctx}); writer: "
                       f"{[node_desc(n) for n in ws]}, reader: "
                       f"{[node_desc(n) for n in rs]}")
            return
        for idx, (a, b) in enumerate(zip(ws, rs)):
            spot = f"field {idx} at {where}"
            if a[0] != b[0]:
                # A scalar/scalar disagreement is a width problem when both
                # are scalars; anything else is a kind mismatch.
                if a[0] in SCALARS and b[0] in SCALARS:
                    self._emit(r, r.line, "width-mismatch",
                               f"{spot}: writer {node_desc(a)} vs reader "
                               f"{node_desc(b)} ({ctx})")
                else:
                    self._emit(r, r.line, "field-mismatch",
                               f"{spot}: writer {node_desc(a)} vs reader "
                               f"{node_desc(b)} ({ctx})")
                continue
            kind = a[0]
            if kind in SCALARS:
                continue
            if kind == "pod" and norm_type(a[1]) != norm_type(b[1]):
                self._emit(r, r.line, "field-mismatch",
                           f"{spot}: writer pod {a[1]} vs reader pod {b[1]} "
                           f"({ctx})")
            elif kind == "magic" and a[1] != b[1]:
                self._emit(r, r.line, "field-mismatch",
                           f"{spot}: writer magic {a[1]} vs reader magic "
                           f"{b[1]} ({ctx})")
            elif kind == "blob" and a[1] != b[1]:
                self._emit(r, r.line, "field-mismatch",
                           f"{spot}: writer blob[{a[1]}] vs reader "
                           f"blob[{b[1]}] ({ctx})")
            elif kind == "ref" and a[1] != b[1]:
                self._emit(r, r.line, "field-mismatch",
                           f"{spot}: writer ref {a[1]} vs reader ref {b[1]} "
                           f"({ctx})")
            elif kind == "loop":
                if a[1] != b[1]:
                    self._emit(r, r.line, "loop-mismatch",
                               f"{spot}: writer loop bound '{a[1]}' vs "
                               f"reader loop bound '{b[1]}' ({ctx})")
                self._diff_nodes(schema, r, a[2], b[2], ctx,
                                 trail + [f"loop{idx}"])
            elif kind == "opt":
                self._diff_nodes(schema, r, a[1], b[1], ctx,
                                 trail + [f"opt{idx}"])


# ---------------------------------------------------------------------------
# manifest


def manifest_entry(analyzer: Analyzer, schema: str, roles: dict) -> dict:
    writers = roles.get("writer", [])
    readers = roles.get("reader", [])
    w_nodes = writers[0].nodes if writers else []
    r_nodes = readers[0].nodes if readers else []
    _, w_crc, _ = strip_integrity(analyzer._expand(w_nodes, "writer"))
    integrity = "crc" if w_crc else "delegated"
    sweep = "reject" if w_crc else "detect"
    if schema in SWEEP_OVERRIDES:
        sweep = "none"
    entry = {
        "integrity": integrity,
        "sweep": sweep,
        "writer": w_nodes,
        "reader": r_nodes,
    }
    if schema in SWEEP_OVERRIDES:
        entry["sweep_reason"] = SWEEP_OVERRIDES[schema]
    return entry


def build_manifest(analyzer: Analyzer, old: dict | None) -> dict:
    schemas = {}
    for schema, roles in sorted(analyzer.by_schema.items()):
        entry = manifest_entry(analyzer, schema, roles)
        old_entry = (old or {}).get("schemas", {}).get(schema)
        if old_entry is None:
            entry["rev"] = 1
        elif (old_entry.get("writer") != entry["writer"]
              or old_entry.get("reader") != entry["reader"]):
            entry["rev"] = int(old_entry.get("rev", 0)) + 1
        else:
            entry["rev"] = int(old_entry.get("rev", 1))
        schemas[schema] = entry
    return {"format": 1, "schemas": schemas}


def check_manifest(analyzer: Analyzer, manifest_path: Path) -> list[Finding]:
    findings: list[Finding] = []
    try:
        committed = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [Finding(manifest_path, 1, "manifest-drift",
                        f"cannot read manifest: {e}")]
    fresh = build_manifest(analyzer, committed)
    old_schemas = committed.get("schemas", {})
    new_schemas = fresh["schemas"]
    for name, entry in sorted(new_schemas.items()):
        old = old_schemas.get(name)
        if old is None:
            findings.append(Finding(
                manifest_path, 1, "manifest-missing",
                f"schema '{name}' is in the tree but not in the manifest; "
                f"run --update-manifest"))
            continue
        if (old.get("writer") != entry["writer"]
                or old.get("reader") != entry["reader"]):
            findings.append(Finding(
                manifest_path, 1, "manifest-drift",
                f"schema '{name}' changed on disk (manifest rev "
                f"{old.get('rev')}); run --update-manifest to record the "
                f"new shape and bump the rev"))
    for name in sorted(old_schemas):
        if name not in new_schemas:
            findings.append(Finding(
                manifest_path, 1, "manifest-stale",
                f"manifest lists schema '{name}' which no longer exists in "
                f"the tree; run --update-manifest"))
    return findings


# ---------------------------------------------------------------------------
# driver


def gather_files(paths: list[Path]) -> list[Path]:
    files = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in SUFFIXES))
        elif p.suffix in SUFFIXES:
            files.append(p)
    return files


def run(paths: list[Path], verbose: bool = False):
    helpers: dict[str, list] = {}
    scanners = []
    errors: list[Finding] = []
    for f in gather_files(paths):
        try:
            text = f.read_text(errors="replace")
        except OSError:
            continue
        if "wire-schema:" not in text and "wire-helper:" not in text:
            continue
        sc = FileScanner(f, text, helpers)
        sc.collect_helpers()
        scanners.append(sc)

    # Pass 1: find annotations and function names (for ref resolution).
    CALL_REGISTRY.clear()
    pre: list[tuple[FileScanner, list[Codec]]] = []
    for sc in scanners:
        codecs = sc.scan()
        pre.append((sc, codecs))
        for c in codecs:
            if c.func:
                CALL_REGISTRY[(c.func, c.role)] = c.schema

    # Pass 2: re-extract with the registry populated.
    codecs: list[Codec] = []
    for sc, _ in pre:
        sc.errors.clear()
        for c in sc.scan():
            codecs.append(c)
        errors.extend(sc.errors)

    analyzer = Analyzer(codecs, verbose)
    findings = errors + analyzer.run()
    return analyzer, findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path)
    ap.add_argument("--root", type=Path, default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--manifest", type=Path, default=None)
    ap.add_argument("--check-manifest", action="store_true")
    ap.add_argument("--update-manifest", action="store_true")
    ap.add_argument("--dump", action="store_true",
                    help="print the extracted schemas and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    root = args.root or Path(__file__).resolve().parent.parent.parent
    paths = args.paths or [root / "src"]
    manifest_path = args.manifest or Path(__file__).resolve().parent / "schemas.json"

    analyzer, findings = run(paths, args.verbose)

    if args.dump:
        fresh = build_manifest(analyzer, None)
        json.dump(fresh, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    if args.update_manifest:
        old = None
        if manifest_path.exists():
            try:
                old = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                old = None
        fresh = build_manifest(analyzer, old)
        manifest_path.write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        print(f"wirecheck: wrote {manifest_path} "
              f"({len(fresh['schemas'])} schemas)")

    if args.check_manifest and not args.update_manifest:
        findings.extend(check_manifest(analyzer, manifest_path))

    for f in findings:
        print(f.render())
    if args.verbose and not findings:
        print(f"wirecheck: {len(analyzer.codecs)} codecs across "
              f"{len(analyzer.by_schema)} schemas, all symmetric")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
