#!/usr/bin/env python3
"""Syntactic phase-discipline lint for the PGAS table API.

The runtime checker (HIPMER_CHECKED) catches contract violations that
actually execute; this lint catches the ones a reviewer can see in the
source without running anything. It is deliberately *syntactic* — per
function body, no data flow — so it stays fast enough for a pre-commit
hook and never needs a compilation database.

Rules (one finding line each, grep-able by the code in brackets):

  [flush-missing]      a function enqueues buffered stores
                       (`update_buffered`) but contains no `flush(` call.
                       Buffered rows that survive the function are invisible
                       to the owner until some other code flushes them.
  [drain-missing]      a function queues buffered lookups (`find_buffered`)
                       but never drains them (`process_lookups`).
  [cache-undropped]    a function enables a read cache
                       (`enable_read_cache`) and never drops it
                       (`disable_read_cache`). A cache that outlives its
                       read phase serves stale data after the next write
                       phase (the runtime rule stale-cache-across-write).
  [flush-unpublished]  a function flushes buffered stores but never reaches
                       a barrier-crossing collective afterwards: the rows
                       are at their owners, but no rank may read them until
                       a barrier publishes the phase change.

False-positive escape hatch: a finding is suppressed by a trailing or
preceding comment `// lint-phases: allow(<code>)` naming the rule, e.g.

    map.update_buffered(rank, k, v);  // lint-phases: allow(flush-missing)

Functions split a protocol across helpers legitimately (a class may flush
in one method and barrier in another); the allow-comment documents that at
the call site, which is exactly the reviewable artifact we want.

When an entire file is a legitimate exception — a chaos/robustness test
that drives half-protocols on purpose, or a harness whose every function
would need the same allow — a file-scoped comment anywhere in the file

    // lint-phases: allow-file(<code>)

merges that rule into every function's allows. Prefer the per-line form;
allow-file is for files where per-line comments would outnumber the code.

Usage: lint_phases.py [--verbose] DIR_OR_FILE...
Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}

ALLOW_RE = re.compile(r"lint-phases:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"lint-phases:\s*allow-file\(([a-z-]+)\)")

# Calls that cross a barrier and therefore publish a flushed write phase.
BARRIER_RE = re.compile(
    r"\.(barrier|allreduce\w*|allgather\w*|broadcast|exscan\w*|alltoallv)\s*\("
)

# `flush(rank...)` — the PGAS drain always takes the caller's Rank first,
# which distinguishes it from iostream flush() and engine-internal flushes.
FLUSH_RE = re.compile(r"(?:\.|->)flush\s*\(\s*rank\b")
UPDATE_BUFFERED_RE = re.compile(r"(?:\.|->)update_buffered\s*\(")
FIND_BUFFERED_RE = re.compile(r"(?:\.|->)find_buffered\s*\(")
PROCESS_LOOKUPS_RE = re.compile(r"(?:\.|->)process_lookups\s*\(")
ENABLE_CACHE_RE = re.compile(r"(?:\.|->)enable_read_cache\s*\(")
DISABLE_CACHE_RE = re.compile(r"(?:\.|->)disable_read_cache\s*\(")

# A line that *defines* one of the API entry points (the PGAS layer itself)
# rather than calling it; files under src/pgas implement the API and are
# exempt from caller-side rules.
PGAS_DIR = "src/pgas"


def strip_comments_and_strings(line: str) -> str:
    """Remove // comments and string/char literal contents (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Function:
    """A function body: its lines (1-based numbers) and per-rule allows."""

    def __init__(self, start_line: int):
        self.start_line = start_line
        self.lines: list[tuple[int, str]] = []  # (lineno, stripped code)
        self.allows: set[str] = set()

    def find_all(self, regex: re.Pattern) -> list[int]:
        return [no for no, code in self.lines if regex.search(code)]


def split_functions(text: str) -> list[Function]:
    """Carve the file into top-level-ish brace-balanced function bodies.

    Heuristic: a body starts at a `{` on a line whose code portion contains
    `(` ... `)` before it (function signature or lambda) and ends when the
    brace depth returns to its opening level. Nested lambdas stay inside
    their enclosing function — phase protocols routinely span the SPMD
    lambda passed to team.run(), and splitting there would hide the pairing.
    """
    functions: list[Function] = []
    current: Function | None = None
    depth = 0
    open_depth = 0
    in_block_comment = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        # Strip /* ... */ spans that open (and maybe close) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2 :]
        code = strip_comments_and_strings(line)

        allow = ALLOW_RE.search(raw)
        if current is not None and allow:
            current.allows.add(allow.group(1))

        if current is not None:
            current.lines.append((lineno, code))

        for ch in code:
            if ch == "{":
                if current is None and depth >= 0:
                    # Treat every outermost brace block as a "function";
                    # namespace/class blocks contribute their member
                    # definitions, which is the granularity we want.
                    current = Function(lineno)
                    current.lines.append((lineno, code))
                    if allow:
                        current.allows.add(allow.group(1))
                    open_depth = depth
                depth += 1
            elif ch == "}":
                depth -= 1
                if current is not None and depth == open_depth:
                    functions.append(current)
                    current = None
    if current is not None:
        functions.append(current)
    return functions


def lint_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8", errors="replace")
    findings: list[str] = []
    in_pgas = PGAS_DIR in str(path).replace("\\", "/")
    # File-scoped suppressions apply to every function in the file.
    file_allows = set(ALLOW_FILE_RE.findall(text))

    for fn in split_functions(text):
        fn.allows |= file_allows
        if in_pgas:
            # The PGAS layer defines these entry points; pairing rules are
            # caller-side obligations.
            continue
        updates = fn.find_all(UPDATE_BUFFERED_RE)
        flushes = fn.find_all(FLUSH_RE)
        if updates and not flushes and "flush-missing" not in fn.allows:
            findings.append(
                f"{path}:{updates[0]}: [flush-missing] update_buffered with no "
                "flush() in the same function (rows invisible to owners until "
                "someone else flushes)"
            )
        finds = fn.find_all(FIND_BUFFERED_RE)
        drains = fn.find_all(PROCESS_LOOKUPS_RE)
        if finds and not drains and "drain-missing" not in fn.allows:
            findings.append(
                f"{path}:{finds[0]}: [drain-missing] find_buffered with no "
                "process_lookups() in the same function (queued lookups never "
                "answered)"
            )
        enables = fn.find_all(ENABLE_CACHE_RE)
        disables = fn.find_all(DISABLE_CACHE_RE)
        if enables and not disables and "cache-undropped" not in fn.allows:
            findings.append(
                f"{path}:{enables[0]}: [cache-undropped] enable_read_cache "
                "with no disable_read_cache in the same function (cache may "
                "outlive its read phase)"
            )
        if flushes and "flush-unpublished" not in fn.allows:
            last_flush = flushes[-1]
            barriers = fn.find_all(BARRIER_RE)
            if not any(b >= last_flush for b in barriers):
                findings.append(
                    f"{path}:{last_flush}: [flush-unpublished] flush() with no "
                    "barrier-crossing collective after it in this function "
                    "(flushed rows are unpublished until a barrier)"
                )
    return findings


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = Path(arg)
        if p.is_dir():
            files.extend(
                sorted(
                    f
                    for f in p.rglob("*")
                    if f.suffix in SUFFIXES and f.is_file()
                )
            )
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint_phases: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    args = [a for a in argv if a != "--verbose"]
    verbose = len(args) != len(argv)
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    files = collect(args)
    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f))
    for line in findings:
        print(line)
    if verbose or findings:
        print(
            f"lint_phases: {len(files)} files, {len(findings)} finding(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
