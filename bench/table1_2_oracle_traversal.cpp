// Tables 1 & 2 — communication-avoiding de Bruijn graph traversal (§3.2,
// §5.2).
//
// Protocol, as in the paper: assemble one individual ("NA12878"), build the
// oracle partitioning from its contigs, then traverse the de Bruijn graph
// of a *different individual of the same species* (0.2% diverged) under
// three regimes: no oracle, "oracle-1" (1x memory) and "oracle-4" (4x
// memory). Table 1 reports traversal speedup; Table 2 the fraction of
// traversal lookups that leave the node and the reduction in off-node
// communication. Paper numbers at 480/1,920 cores: speedups 1.4x/2.8x and
// 1.3x/1.9x; off-node lookups 92.8% -> 54.6% (oracle-1) -> 22.8%
// (oracle-4).
//
// Table 2 is additionally broken down by lookup path: the same read-probe
// workload resolved fine-grained (one message per off-node key), batched
// (lookups aggregated per owner), and batched behind the per-rank software
// read cache — the journal version's cached + aggregated lookups.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "dbg/contig_generator.hpp"
#include "dbg/oracle.hpp"
#include "kcount/kmer_analysis.hpp"
#include "pipeline/pipeline.hpp"
#include "seq/kmer_scanner.hpp"
#include "sim/datasets.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "util/timer.hpp"

namespace {

using namespace hipmer;

struct TraversalRun {
  double modeled = 0.0;
  double wall = 0.0;
  dbg::ContigGenerator::LookupStats lookups;
};

/// K-mer analysis for `reads` on `team`; returns the analysis object.
std::unique_ptr<kcount::KmerAnalysis> analyze(pgas::ThreadTeam& team,
                                              const std::vector<seq::Read>& reads,
                                              int k) {
  kcount::KmerAnalysisConfig cfg;
  cfg.k = k;
  auto ka = std::make_unique<kcount::KmerAnalysis>(team, cfg);
  team.run([&](pgas::Rank& rank) {
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += static_cast<std::size_t>(rank.nranks()))
      mine.push_back(reads[i]);
    ka->run(rank, mine);
  });
  return ka;
}

TraversalRun traverse(pgas::ThreadTeam& team, kcount::KmerAnalysis& ka, int k,
                      const dbg::OraclePartition* oracle,
                      const pgas::MachineModel& machine,
                      std::vector<dbg::Contig>* contigs_out = nullptr,
                      std::unique_ptr<dbg::ContigGenerator>* gen_out = nullptr) {
  std::size_t total_ufx = 0;
  for (int r = 0; r < team.nranks(); ++r) total_ufx += ka.ufx(r).size();
  dbg::ContigGenConfig cfg;
  cfg.k = k;
  auto gen = std::make_unique<dbg::ContigGenerator>(team, cfg, total_ufx);
  if (oracle) gen->set_oracle(oracle);
  team.run(
      [&](pgas::Rank& rank) { gen->build_graph(rank, ka.ufx(rank.id())); });

  const auto before = team.snapshot_all();
  util::WallTimer timer;
  team.run([&](pgas::Rank& rank) { gen->traverse(rank); });
  TraversalRun run;
  run.wall = timer.seconds();
  run.modeled = machine.phase_seconds_no_io(
      bench::snapshot_delta(before, team.snapshot_all()));
  run.lookups = gen->total_lookup_stats();
  if (contigs_out) *contigs_out = gen->all_contigs();
  if (gen_out) *gen_out = std::move(gen);
  return run;
}

/// The three ways a read-only phase can probe the distributed graph. Fine
/// issues one message per off-node key; batched aggregates lookups per
/// owner; cached additionally fronts the batched path with the per-rank
/// software read cache (journal version of the paper, §"caching and
/// aggregated lookups").
enum class LookupPath { kFine, kBatched, kBatchedCached };

struct ProbeResult {
  std::uint64_t offnode_msgs = 0;
  std::uint64_t cache_hits = 0;
};

/// Oracle-traversal probe workload: each rank resolves the k-mers of its
/// share of `reads` against the (already traversed) graph via `path`.
ProbeResult probe_lookups(pgas::ThreadTeam& team, dbg::ContigGenerator& gen,
                          const std::vector<seq::Read>& reads, int k,
                          LookupPath path) {
  const auto before = team.snapshot_all();
  team.run([&](pgas::Rank& rank) {
    auto& graph = gen.graph();
    if (path == LookupPath::kBatchedCached)
      graph.enable_read_cache(rank, 1 << 15);
    auto sink = [](const seq::KmerT&, const dbg::ContigGenerator::Node*,
                   std::uint64_t) {};
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += static_cast<std::size_t>(rank.nranks())) {
      for (seq::KmerScanner<seq::KmerT::kMaxK> it(reads[i].seq, k); !it.done();
           it.next()) {
        if (path == LookupPath::kFine) {
          (void)graph.find(rank, it.canonical());
        } else {
          graph.find_buffered(rank, it.canonical(), 0, sink);
        }
      }
    }
    if (path != LookupPath::kFine) graph.process_lookups(rank, sink);
    if (path == LookupPath::kBatchedCached) graph.disable_read_cache(rank);
    rank.barrier();
  });
  const auto total =
      bench::sum_stats(bench::snapshot_delta(before, team.snapshot_all()));
  return ProbeResult{total.offnode_msgs, total.read_cache_hits};
}

/// Off-node messages charged to gap closing by a full pipeline run, with
/// or without the locality-aware read shuffle.
std::uint64_t pipeline_gap_offnode(const pgas::Topology& topo,
                                   sim::Dataset& ds, bool shuffle) {
  pipeline::PipelineConfig cfg;
  cfg.k = 31;
  // Wheat-style settings: the repetitive genome fragments into many
  // contigs, so scaffolding actually has gaps to close.
  cfg.scaffolding_rounds = 2;
  cfg.merge_bubbles = false;
  cfg.sync_k();
  cfg.packed_reads = shuffle;
  cfg.shuffle_reads = shuffle;
  pipeline::Pipeline pipe(topo, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);
  std::uint64_t n = 0;
  for (const auto& s : result.stages)
    if (s.name == pipeline::kStageGapClosing) n += s.comm.offnode_msgs;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 600'000));
  const int k = static_cast<int>(opts.get_int("k", 31));

  // Two individuals of the same species (paper: humans differ by 0.1-0.4%).
  sim::GenomeConfig gc;
  gc.length = genome_len;
  gc.repeat_fraction = 0.12;  // enough contigs for balanced oracle assignment
  gc.repeat_families = 8;
  gc.repeat_unit_length = 200;
  gc.seed = 515;
  const auto individual1 = sim::simulate_genome(gc);
  sim::Genome individual2;
  individual2.primary = sim::mutate_individual(individual1.primary, 0.002, 517);

  sim::LibraryConfig lc;
  lc.read_length = 101;
  lc.coverage = 18.0;
  lc.error_rate = 0.001;
  lc.seed = 519;
  const auto reads1 = sim::simulate_library(individual1, lc);
  lc.seed = 521;
  const auto reads2 = sim::simulate_library(individual2, lc);
  std::printf("Tables 1+2 reproduction: %llu bp individuals, %zu/%zu reads\n",
              static_cast<unsigned long long>(genome_len), reads1.size(),
              reads2.size());

  // Smaller wheat-like dataset for the full-pipeline gap-closing off-node
  // probe: the point is the shuffle-off/on message contrast, not assembly
  // scale, and the repetitive genome is what leaves gaps to close.
  auto gap_ds = sim::make_wheat_like(
      static_cast<std::uint64_t>(opts.get_int("gap-genome", 200'000)), 823);

  pgas::MachineModel machine;
  // Paper concurrencies 480 and 1,920 map to our two scale points.
  std::vector<bench::ScalePoint> axis{{16, 4}, {64, 4}};
  if (opts.has("ranks"))
    axis = {{static_cast<int>(opts.get_int("ranks", 16)), 4}};

  util::TextTable t1({"ranks", "no_oracle_s", "oracle1_s", "oracle4_s",
                      "speedup1", "speedup4", "wall_no", "wall_o4"});
  util::TextTable t2({"ranks", "lookup_path", "offnode_msgs", "msgs_vs_fine",
                      "offnode_no", "offnode_o1", "offnode_o4",
                      "offnode_o4node", "onnode_o4node", "reduction_o1",
                      "reduction_o4"});

  for (const auto& scale : axis) {
    pgas::ThreadTeam team(scale.topology());
    // Individual 1: assemble and learn the oracle from its contigs.
    auto ka1 = analyze(team, reads1, k);
    std::vector<dbg::Contig> contigs1;
    traverse(team, *ka1, k, nullptr, machine, &contigs1);
    std::vector<std::string> contig_seqs;
    std::size_t total_kmers = 0;
    for (const auto& c : contigs1) {
      contig_seqs.push_back(c.seq);
      total_kmers += c.seq.size();
    }
    const auto oracle1 = dbg::OraclePartition::build(
        contig_seqs, k, scale.topology(), total_kmers);
    const auto oracle4 = dbg::OraclePartition::build(
        contig_seqs, k, scale.topology(), total_kmers * 4);
    // §3.2's SMP refinement: "working with node IDs instead of processor
    // IDs ... avoids the off-node communication while performing
    // intra-node accesses".
    const auto oracle4n = dbg::OraclePartition::build(
        contig_seqs, k, scale.topology(), total_kmers * 4,
        dbg::OraclePartition::Granularity::kNode);

    // Individual 2: traverse its graph under the three regimes. The
    // oracle-4 generator is kept alive for the lookup-path probes below.
    auto ka2 = analyze(team, reads2, k);
    const auto none = traverse(team, *ka2, k, nullptr, machine);
    const auto o1 = traverse(team, *ka2, k, &oracle1, machine);
    std::unique_ptr<dbg::ContigGenerator> gen4;
    const auto o4 = traverse(team, *ka2, k, &oracle4, machine, nullptr, &gen4);
    const auto o4n = traverse(team, *ka2, k, &oracle4n, machine);

    // Lookup-path comparison on the same workload: resolve individual 2's
    // read k-mers against the oracle-4 graph fine-grained, batched, and
    // batched behind the software read cache.
    const auto p_fine = probe_lookups(team, *gen4, reads2, k, LookupPath::kFine);
    const auto p_batched =
        probe_lookups(team, *gen4, reads2, k, LookupPath::kBatched);
    const auto p_cached =
        probe_lookups(team, *gen4, reads2, k, LookupPath::kBatchedCached);

    t1.add_row({std::to_string(scale.ranks),
                util::TextTable::fmt(none.modeled, 4),
                util::TextTable::fmt(o1.modeled, 4),
                util::TextTable::fmt(o4.modeled, 4),
                util::TextTable::fmt(none.modeled / o1.modeled, 2) + "x",
                util::TextTable::fmt(none.modeled / o4.modeled, 2) + "x",
                util::TextTable::fmt(none.wall, 2),
                util::TextTable::fmt(o4.wall, 2)});
    const double fn = none.lookups.offnode_fraction();
    const double f1 = o1.lookups.offnode_fraction();
    const double f4 = o4.lookups.offnode_fraction();
    const double f4n = o4n.lookups.offnode_fraction();
    const double f4n_on =
        static_cast<double>(o4n.lookups.onnode) /
        static_cast<double>(std::max<std::uint64_t>(1, o4n.lookups.total()));
    struct PathRow {
      const char* name;
      std::uint64_t msgs;
    };
    for (const auto& pr :
         {PathRow{"fine", p_fine.offnode_msgs},
          PathRow{"batched", p_batched.offnode_msgs},
          PathRow{"batched_cache", p_cached.offnode_msgs}}) {
      const double vs_fine =
          static_cast<double>(p_fine.offnode_msgs) /
          static_cast<double>(std::max<std::uint64_t>(1, pr.msgs));
      t2.add_row({std::to_string(scale.ranks), pr.name,
                  std::to_string(pr.msgs),
                  util::TextTable::fmt(vs_fine, 1) + "x",
                  util::TextTable::fmt_pct(fn), util::TextTable::fmt_pct(f1),
                  util::TextTable::fmt_pct(f4), util::TextTable::fmt_pct(f4n),
                  util::TextTable::fmt_pct(f4n_on),
                  util::TextTable::fmt_pct(1.0 - f1 / fn),
                  util::TextTable::fmt_pct(1.0 - f4 / fn)});
    }

    // Same off-node story for gap closing's read fetches: without the
    // locality-aware read shuffle a gap's supporting reads live wherever
    // ingest placed them; with --shuffle-reads they were moved to the
    // contig owner after alignment, so the fetch path stays on-rank. The
    // two rows run the full pipeline shuffle-off/on on one individual's
    // reads (assembly output is byte-identical; only comm counters move).
    const auto gap_off = pipeline_gap_offnode(scale.topology(), gap_ds, false);
    const auto gap_shuf = pipeline_gap_offnode(scale.topology(), gap_ds, true);
    for (const auto& pr : {PathRow{"gapclose_fetch", gap_off},
                           PathRow{"gapclose_fetch_shuffled", gap_shuf}}) {
      const double vs_unshuffled =
          static_cast<double>(gap_off) /
          static_cast<double>(std::max<std::uint64_t>(1, pr.msgs));
      t2.add_row({std::to_string(scale.ranks), pr.name,
                  std::to_string(pr.msgs),
                  util::TextTable::fmt(vs_unshuffled, 1) + "x", "-", "-", "-",
                  "-", "-", "-", "-"});
    }
    std::printf("[ranks=%d] oracle collision rates: 1x=%.3f 4x=%.3f, "
                "memory: %zu KB / %zu KB; probe cache hits: %llu\n",
                scale.ranks, oracle1.collision_rate(), oracle4.collision_rate(),
                oracle1.memory_bytes() >> 10, oracle4.memory_bytes() >> 10,
                static_cast<unsigned long long>(p_cached.cache_hits));
  }

  bench::emit("table1_oracle_traversal",
              "Table 1: traversal speedup from oracle partitioning "
              "(paper: 1.4x/2.8x at 480 cores, 1.3x/1.9x at 1,920)",
              t1);
  bench::emit("table2_offnode_lookups",
              "Table 2: off-node traversal lookups (paper: 92.8% no-oracle "
              "-> 54.6% oracle-1 -> 22.8% oracle-4; reductions 41-76%), "
              "plus off-node messages by lookup path "
              "(fine / batched / batched+cache) on the oracle-4 graph, and "
              "gap closing's read-fetch messages without vs with "
              "--shuffle-reads",
              t2);
  return 0;
}
