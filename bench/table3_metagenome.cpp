// Table 3 — k-mer analysis and contig generation on the Twitchell wetlands
// metagenome (§5.4).
//
// Paper content being reproduced:
//   - two large concurrencies (10K/20K cores -> our two scale points), with
//     k-mer analysis and contig generation scaling while file I/O stays
//     flat (the filesystem is saturated at both points — I/O is reported
//     in its own column for exactly that reason);
//   - the community's flat k-mer histogram: "only 36% of k-mers have a
//     single count (versus 95% for human)", which blunts the Bloom filter
//     and inflates the main table's working set. We report the measured
//     singleton fractions for both datasets side by side.
//
// Per the paper, the pipeline stops after contig generation for
// metagenomes ("single-genome logic may introduce errors in the
// scaffolding of a metagenome").

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "dbg/contig_generator.hpp"
#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "kcount/kmer_analysis.hpp"
#include "sim/datasets.hpp"
#include "sim/metagenome_sim.hpp"
#include "util/timer.hpp"

namespace {

using namespace hipmer;

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int species = static_cast<int>(opts.get_int("species", 40));
  const auto mean_len =
      static_cast<std::uint64_t>(opts.get_int("mean-genome", 20'000));
  const int k = static_cast<int>(opts.get_int("k", 31));
  const std::string workdir =
      opts.get("workdir", std::filesystem::temp_directory_path().string());

  sim::MetagenomeConfig mc;
  mc.num_species = species;
  mc.mean_genome_length = mean_len;
  mc.total_coverage = static_cast<double>(opts.get_int("coverage", 10));
  mc.seed = 3331;
  std::printf("Table 3 reproduction: simulating %d-species metagenome...\n",
              species);
  const auto mg = sim::simulate_metagenome(mc);
  std::printf("community: %zu species, %zu reads\n", mg.species.size(),
              mg.reads.size());

  const std::string fastq = workdir + "/metagenome.fastq";
  if (!io::write_fastq(fastq, mg.reads)) {
    std::fprintf(stderr, "cannot write %s\n", fastq.c_str());
    return 1;
  }

  pgas::MachineModel machine;
  // The paper's two concurrencies, 10K and 20K cores.
  std::vector<bench::ScalePoint> axis{{32, 4}, {64, 4}};
  if (opts.has("ranks")) axis = {{static_cast<int>(opts.get_int("ranks", 32)), 4}};

  util::TextTable table({"ranks", "kmer_analysis_s", "contig_gen_s",
                         "file_io_s", "distinct_kmers", "singleton_frac",
                         "contigs", "wall_s"});
  for (const auto& scale : axis) {
    pgas::ThreadTeam team(scale.topology());
    util::WallTimer wall;

    // File I/O, reported separately like the paper's third column.
    io::ParallelFastqReader reader(fastq);
    std::vector<std::vector<seq::Read>> reads(
        static_cast<std::size_t>(scale.ranks));
    auto before = team.snapshot_all();
    team.run([&](pgas::Rank& rank) {
      reads[static_cast<std::size_t>(rank.id())] = reader.read_my_records(rank);
    });
    const double io_s = machine.io_phase_seconds(
        bench::snapshot_delta(before, team.snapshot_all()), scale.topology());

    // K-mer analysis.
    kcount::KmerAnalysisConfig kcfg;
    kcfg.k = k;
    kcount::KmerAnalysis ka(team, kcfg);
    before = team.snapshot_all();
    team.run([&](pgas::Rank& rank) {
      ka.run(rank, reads[static_cast<std::size_t>(rank.id())]);
    });
    const double kmer_s = machine.phase_seconds_no_io(
        bench::snapshot_delta(before, team.snapshot_all()));

    // Contig generation.
    std::size_t total_ufx = 0;
    for (int r = 0; r < scale.ranks; ++r) total_ufx += ka.ufx(r).size();
    dbg::ContigGenConfig ccfg;
    ccfg.k = k;
    dbg::ContigGenerator gen(team, ccfg, total_ufx);
    before = team.snapshot_all();
    team.run([&](pgas::Rank& rank) {
      gen.build_graph(rank, ka.ufx(rank.id()));
      gen.traverse(rank);
    });
    const double contig_s = machine.phase_seconds_no_io(
        bench::snapshot_delta(before, team.snapshot_all()));

    std::size_t contigs = 0;
    for (int r = 0; r < scale.ranks; ++r) contigs += gen.contigs(r).size();
    table.add_row({std::to_string(scale.ranks),
                   util::TextTable::fmt(kmer_s, 3),
                   util::TextTable::fmt(contig_s, 3),
                   util::TextTable::fmt(io_s, 3),
                   std::to_string(ka.distinct_kmers()),
                   util::TextTable::fmt_pct(ka.singleton_fraction()),
                   std::to_string(contigs),
                   util::TextTable::fmt(wall.seconds(), 2)});
  }
  bench::emit("table3_metagenome",
              "Table 3: metagenome k-mer analysis + contig generation "
              "(paper: both computations scale 10K->20K cores, I/O flat)",
              table);

  // The singleton-fraction contrast vs a human-like isolate (paper: 36% vs
  // 95%).
  {
    auto human = sim::make_human_like(
        static_cast<std::uint64_t>(opts.get_int("human-genome", 300'000)), 3399);
    pgas::ThreadTeam team(pgas::Topology{16, 4});
    kcount::KmerAnalysisConfig kcfg;
    kcfg.k = k;
    kcount::KmerAnalysis ka(team, kcfg);
    team.run([&](pgas::Rank& rank) {
      std::vector<seq::Read> mine;
      for (std::size_t i = static_cast<std::size_t>(rank.id());
           i < human.reads[0].size(); i += 16)
        mine.push_back(human.reads[0][i]);
      ka.run(rank, mine);
    });
    util::TextTable contrast({"dataset", "singleton_fraction"});
    contrast.add_row({"human_like", util::TextTable::fmt_pct(ka.singleton_fraction())});
    // Re-run metagenome singleton fraction from the first scale point above
    // is already printed; recompute cheaply at 16 ranks for the contrast.
    kcount::KmerAnalysis ka2(team, kcfg);
    team.run([&](pgas::Rank& rank) {
      std::vector<seq::Read> mine;
      for (std::size_t i = static_cast<std::size_t>(rank.id());
           i < mg.reads.size(); i += 16)
        mine.push_back(mg.reads[i]);
      ka2.run(rank, mine);
    });
    contrast.add_row({"metagenome", util::TextTable::fmt_pct(ka2.singleton_fraction())});
    bench::emit("table3_singleton_contrast",
                "Singleton k-mer fraction (paper: human 95%, metagenome 36%)",
                contrast);
  }
  return 0;
}
