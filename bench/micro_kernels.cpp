// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// pipeline: k-mer packing/canonicalization, Bloom filter ops, Misra-Gries
// offers, distributed hash-map updates (fine-grained vs aggregated — the
// per-element cost side of the "aggregating stores" optimization), and the
// alignment extension kernels.

#include <benchmark/benchmark.h>

#include <random>

#include "align/smith_waterman.hpp"
#include "kcount/bloom_filter.hpp"
#include "kcount/hyperloglog.hpp"
#include "kcount/misra_gries.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/kmer_iterator.hpp"
#include "seq/types.hpp"
#include "sim/genome_sim.hpp"

namespace {

using namespace hipmer;
using seq::KmerT;

std::string random_seq(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return sim::random_dna(n, rng);
}

void BM_KmerFromString(benchmark::State& state) {
  const auto s = random_seq(64, 1);
  for (auto _ : state) {
    auto km = KmerT::from_string(
        std::string_view(s).substr(0, static_cast<std::size_t>(state.range(0))));
    benchmark::DoNotOptimize(km);
  }
}
BENCHMARK(BM_KmerFromString)->Arg(21)->Arg(31)->Arg(51)->Arg(63);

void BM_KmerCanonical(benchmark::State& state) {
  const auto km = KmerT::from_string(
      random_seq(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto canon = km.canonical();
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_KmerCanonical)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerIterator(benchmark::State& state) {
  const auto s = random_seq(10'000, 3);
  for (auto _ : state) {
    std::uint64_t h = 0;
    for (seq::KmerIterator<KmerT::kMaxK> it(s, 31); !it.done(); it.next())
      h ^= it.canonical().hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size() - 30));
}
BENCHMARK(BM_KmerIterator);

void BM_BloomTestAndSet(benchmark::State& state) {
  kcount::BloomFilter bloom(1 << 20);
  std::mt19937_64 rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(bloom.test_and_set(rng()));
}
BENCHMARK(BM_BloomTestAndSet);

void BM_HyperLogLogAdd(benchmark::State& state) {
  kcount::HyperLogLog hll;
  std::mt19937_64 rng(7);
  for (auto _ : state) hll.add_hash(rng());
  benchmark::DoNotOptimize(hll.estimate());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_MisraGriesOffer(benchmark::State& state) {
  // Zipf-ish stream: mixture of hot and cold items.
  kcount::MisraGries<std::uint64_t> mg(
      static_cast<std::size_t>(state.range(0)));
  std::mt19937_64 rng(9);
  for (auto _ : state) {
    const std::uint64_t x = (rng() & 7) == 0 ? rng() % 16 : rng();
    mg.offer(x);
  }
}
BENCHMARK(BM_MisraGriesOffer)->Arg(1024)->Arg(32768);

struct SumMerge {
  void operator()(std::uint64_t& a, const std::uint64_t& b) const { a += b; }
};

void BM_DistMapUpdate(benchmark::State& state) {
  // Single-rank team: measures the data-structure cost (bucket lock +
  // probe + merge), the per-element term of aggregating stores.
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  pgas::DistHashMap<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                    SumMerge>
      map(team,
          {.global_capacity = 1 << 20,
           .flush_threshold = static_cast<std::size_t>(state.range(0))});
  team.run([&](pgas::Rank& rank) {
    std::mt19937_64 rng(11);
    for (auto _ : state) {
      map.update_buffered(rank, rng() % (1 << 20), 1);
    }
    map.flush(rank);
  });
}
BENCHMARK(BM_DistMapUpdate)->Arg(1)->Arg(64)->Arg(512);

void BM_DiagonalExtend(benchmark::State& state) {
  const auto target = random_seq(200, 13);
  auto query = target.substr(20, 100);
  query[50] = seq::complement_base(query[50]);
  for (auto _ : state) {
    auto aln = align::diagonal_extend(query, target, 20);
    benchmark::DoNotOptimize(aln);
  }
}
BENCHMARK(BM_DiagonalExtend);

void BM_BandedSW(benchmark::State& state) {
  const auto target = random_seq(200, 17);
  auto query = target.substr(20, 100);
  query.erase(50, 2);  // indel to force the banded path to matter
  for (auto _ : state) {
    auto aln = align::banded_smith_waterman(
        query, target, 20, static_cast<std::int32_t>(state.range(0)));
    benchmark::DoNotOptimize(aln);
  }
}
BENCHMARK(BM_BandedSW)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
