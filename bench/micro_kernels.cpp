// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// pipeline: k-mer packing/canonicalization, Bloom filter ops, Misra-Gries
// offers, distributed hash-map updates (fine-grained vs aggregated — the
// per-element cost side of the "aggregating stores" optimization), and the
// alignment extension kernels.
//
// The k-mer section benchmarks each word-parallel kernel *against its
// retained base-loop `*_reference` twin* at k = 21 / 31 / 51, and a custom
// main() additionally runs a fixed-budget timing harness over the same pairs
// and mirrors the ns/op + speedup numbers to micro_kernels.csv, so the perf
// trajectory of these kernels is tracked in the same CSV scheme as the
// paper-figure benches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "align/smith_waterman.hpp"
#include "kcount/bloom_filter.hpp"
#include "kcount/hyperloglog.hpp"
#include "kcount/misra_gries.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/kmer_scanner.hpp"
#include "seq/types.hpp"
#include "sim/genome_sim.hpp"
#include "util/table.hpp"

namespace {

using namespace hipmer;
using seq::KmerT;

std::string random_seq(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return sim::random_dna(n, rng);
}

std::vector<KmerT> random_kmers(int k, std::size_t n, std::uint64_t seed) {
  const auto s = random_seq(n + static_cast<std::size_t>(k), seed);
  std::vector<KmerT> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(KmerT::from_string(
        std::string_view(s).substr(i, static_cast<std::size_t>(k))));
  return out;
}

void BM_KmerFromString(benchmark::State& state) {
  const auto s = random_seq(64, 1);
  for (auto _ : state) {
    auto km = KmerT::from_string(
        std::string_view(s).substr(0, static_cast<std::size_t>(state.range(0))));
    benchmark::DoNotOptimize(km);
  }
}
BENCHMARK(BM_KmerFromString)->Arg(21)->Arg(31)->Arg(51)->Arg(63);

void BM_KmerRevcomp(benchmark::State& state) {
  const auto km = KmerT::from_string(
      random_seq(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto rc = km.revcomp();
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_KmerRevcomp)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerRevcompReference(benchmark::State& state) {
  const auto km = KmerT::from_string(
      random_seq(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto rc = km.revcomp_reference();
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_KmerRevcompReference)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerCanonical(benchmark::State& state) {
  const auto km = KmerT::from_string(
      random_seq(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto canon = km.canonical();
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_KmerCanonical)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerCanonicalReference(benchmark::State& state) {
  const auto km = KmerT::from_string(
      random_seq(static_cast<std::size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto canon = km.canonical_reference();
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_KmerCanonicalReference)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerScanner(benchmark::State& state) {
  const auto s = random_seq(10'000, 3);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint64_t h = 0;
    for (seq::KmerScanner<KmerT::kMaxK> it(s, k); !it.done(); it.next())
      h ^= it.canonical().hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(s.size() - static_cast<std::size_t>(k) + 1));
}
BENCHMARK(BM_KmerScanner)->Arg(21)->Arg(31)->Arg(51);

void BM_KmerScannerReference(benchmark::State& state) {
  // The seed-era sliding extraction: one base-loop shift per window plus a
  // full O(k) revcomp + base-loop compare to canonicalize.
  const auto s = random_seq(10'000, 3);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint64_t h = 0;
    KmerT km = KmerT::from_string(
        std::string_view(s).substr(0, static_cast<std::size_t>(k)));
    h ^= km.canonical_reference().hash();
    for (std::size_t i = static_cast<std::size_t>(k); i < s.size(); ++i) {
      km = km.shifted_left_reference(seq::base_to_code(s[i]));
      h ^= km.canonical_reference().hash();
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(s.size() - static_cast<std::size_t>(k) + 1));
}
BENCHMARK(BM_KmerScannerReference)->Arg(21)->Arg(31)->Arg(51);

void BM_BloomTestAndSet(benchmark::State& state) {
  kcount::BloomFilter bloom(1 << 20);
  std::mt19937_64 rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(bloom.test_and_set(rng()));
}
BENCHMARK(BM_BloomTestAndSet);

void BM_HyperLogLogAdd(benchmark::State& state) {
  kcount::HyperLogLog hll;
  std::mt19937_64 rng(7);
  for (auto _ : state) hll.add_hash(rng());
  benchmark::DoNotOptimize(hll.estimate());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_MisraGriesOffer(benchmark::State& state) {
  // Zipf-ish stream: mixture of hot and cold items.
  kcount::MisraGries<std::uint64_t> mg(
      static_cast<std::size_t>(state.range(0)));
  std::mt19937_64 rng(9);
  for (auto _ : state) {
    const std::uint64_t x = (rng() & 7) == 0 ? rng() % 16 : rng();
    mg.offer(x);
  }
}
BENCHMARK(BM_MisraGriesOffer)->Arg(1024)->Arg(32768);

struct SumMerge {
  void operator()(std::uint64_t& a, const std::uint64_t& b) const { a += b; }
};

void BM_DistMapUpdate(benchmark::State& state) {
  // Single-rank team: measures the data-structure cost (bucket lock +
  // probe + merge), the per-element term of aggregating stores.
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  pgas::DistHashMap<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                    SumMerge>
      map(team,
          {.global_capacity = 1 << 20,
           .flush_threshold = static_cast<std::size_t>(state.range(0))});
  team.run([&](pgas::Rank& rank) {
    std::mt19937_64 rng(11);
    for (auto _ : state) {
      map.update_buffered(rank, rng() % (1 << 20), 1);
    }
    // Nothing reads the table afterwards; the bench only measures the
    // store path.  // lint-phases: allow(flush-unpublished)
    map.flush(rank);
  });
}
BENCHMARK(BM_DistMapUpdate)->Arg(1)->Arg(64)->Arg(512);

void BM_DiagonalExtend(benchmark::State& state) {
  const auto target = random_seq(200, 13);
  auto query = target.substr(20, 100);
  query[50] = seq::complement_base(query[50]);
  for (auto _ : state) {
    auto aln = align::diagonal_extend(query, target, 20);
    benchmark::DoNotOptimize(aln);
  }
}
BENCHMARK(BM_DiagonalExtend);

void BM_BandedSW(benchmark::State& state) {
  const auto target = random_seq(200, 17);
  auto query = target.substr(20, 100);
  query.erase(50, 2);  // indel to force the banded path to matter
  for (auto _ : state) {
    auto aln = align::banded_smith_waterman(
        query, target, 20, static_cast<std::int32_t>(state.range(0)));
    benchmark::DoNotOptimize(aln);
  }
}
BENCHMARK(BM_BandedSW)->Arg(2)->Arg(4)->Arg(8);

// ---- CSV harness: word-parallel kernels vs base-loop references ----

/// Measure ns per logical operation: grows the repeat count until the
/// kernel has run for at least ~20ms.
template <typename F>
double ns_per_op(F&& fn, std::size_t ops_per_call) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::size_t calls = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t c = 0; c < calls; ++c) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns >= 2e7 || calls >= (std::size_t{1} << 22))
      return ns / static_cast<double>(calls * ops_per_call);
    calls *= 4;
  }
}

void write_kernel_csv() {
  util::TextTable table({"kernel", "k", "ref_ns_per_op", "word_ns_per_op",
                         "speedup", "word_mops_per_s"});
  const std::size_t n = 4096;
  for (const int k : {21, 31, 51}) {
    const auto kmers = random_kmers(k, n, static_cast<std::uint64_t>(k) * 977);
    const auto s = random_seq(100'000, static_cast<std::uint64_t>(k) * 71);
    const std::size_t windows = s.size() - static_cast<std::size_t>(k) + 1;

    struct Row {
      const char* kernel;
      double ref_ns;
      double word_ns;
    };
    std::vector<Row> rows;

    rows.push_back(
        {"revcomp",
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto rc = km.revcomp_reference();
                 benchmark::DoNotOptimize(rc);
               }
             },
             n),
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto rc = km.revcomp();
                 benchmark::DoNotOptimize(rc);
               }
             },
             n)});

    rows.push_back(
        {"canonical",
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto canon = km.canonical_reference();
                 benchmark::DoNotOptimize(canon);
               }
             },
             n),
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto canon = km.canonical();
                 benchmark::DoNotOptimize(canon);
               }
             },
             n)});

    rows.push_back(
        {"shift",
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto next = km.shifted_left_reference(seq::kBaseG);
                 benchmark::DoNotOptimize(next);
               }
             },
             n),
         ns_per_op(
             [&] {
               for (const auto& km : kmers) {
                 auto next = km.shifted_left(seq::kBaseG);
                 benchmark::DoNotOptimize(next);
               }
             },
             n)});

    rows.push_back(
        {"compare",
         ns_per_op(
             [&] {
               bool acc = false;
               for (std::size_t i = 0; i + 1 < kmers.size(); ++i)
                 acc ^= KmerT::less_reference(kmers[i], kmers[i + 1]);
               benchmark::DoNotOptimize(acc);
             },
             n - 1),
         ns_per_op(
             [&] {
               bool acc = false;
               for (std::size_t i = 0; i + 1 < kmers.size(); ++i)
                 acc ^= kmers[i] < kmers[i + 1];
               benchmark::DoNotOptimize(acc);
             },
             n - 1)});

    rows.push_back(
        {"sliding_extraction",
         ns_per_op(
             [&] {
               std::uint64_t h = 0;
               KmerT km = KmerT::from_string(
                   std::string_view(s).substr(0, static_cast<std::size_t>(k)));
               h ^= km.canonical_reference().hash();
               for (std::size_t i = static_cast<std::size_t>(k); i < s.size();
                    ++i) {
                 km = km.shifted_left_reference(seq::base_to_code(s[i]));
                 h ^= km.canonical_reference().hash();
               }
               benchmark::DoNotOptimize(h);
             },
             windows),
         ns_per_op(
             [&] {
               std::uint64_t h = 0;
               for (seq::KmerScanner<KmerT::kMaxK> it(s, k); !it.done();
                    it.next())
                 h ^= it.canonical().hash();
               benchmark::DoNotOptimize(h);
             },
             windows)});

    for (const auto& row : rows) {
      table.add_row({row.kernel, std::to_string(k),
                     util::TextTable::fmt(row.ref_ns, 2),
                     util::TextTable::fmt(row.word_ns, 2),
                     util::TextTable::fmt(row.ref_ns / row.word_ns, 2),
                     util::TextTable::fmt(1e3 / row.word_ns, 1)});
    }
  }
  std::printf("\n=== k-mer kernels: word-parallel vs reference ===\n%s\n",
              table.to_string().c_str());
  const std::string csv = "micro_kernels.csv";
  if (table.write_csv(csv))
    std::printf("[csv written to %s]\n", csv.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_kernel_csv();
  return 0;
}
