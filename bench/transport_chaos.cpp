// Transport chaos overhead — what the delivery protocol costs, and what
// each fault schedule costs on top of it.
//
// Two layers are swept across the built-in chaos schedules:
//
//   1. **Raw envelope throughput**: every rank streams fixed-size payloads
//      to every peer through Transport::send (frame + CRC-32C + seq/ack +
//      retry). The clean row is the protocol's intrinsic overhead; the
//      lossy rows show how retries/backoff scale with the fault rate.
//   2. **Distributed store path**: the k-mer counting inner loop
//      (update_buffered -> flush) with the table's batches riding the
//      lossy fabric. This is the number that matters for the pipeline:
//      end-to-end store throughput including dedup/reorder bookkeeping.
//
// Assemblies are byte-identical under every schedule (tests/test_chaos.cpp
// asserts that); this bench reports what that guarantee costs.

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "pgas/chaos.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/fault.hpp"
#include "pgas/thread_team.hpp"
#include "pgas/transport.hpp"
#include "util/timer.hpp"

namespace {

using namespace hipmer;

struct Schedule {
  const char* name;
  const char* spec;
};
constexpr Schedule kSchedules[] = {
    {"clean", ""},
    {"drop10", "drop=0.10"},
    {"dup5", "dup=0.05"},
    {"reorder30", "reorder=0.30"},
    {"delay30", "delay=0.30"},
    {"corrupt5", "corrupt=0.05"},
    {"combined", "drop=0.08,dup=0.04,reorder=0.10,delay=0.10,corrupt=0.03"},
};

struct Measured {
  double seconds;
  pgas::CommStatsSnapshot comm;
};

/// Raw envelope streaming: `batches` payloads of `payload_bytes` from every
/// rank to every other rank, then drain.
Measured raw_envelopes(const pgas::Topology& topo, const char* spec,
                       int batches, std::size_t payload_bytes) {
  pgas::ThreadTeam team(topo);
  team.transport().set_plan(pgas::ChaosPlan::parse(4242, spec));
  const auto ch = team.transport().open_channel("bench/raw");
  const auto before = team.snapshot_all();
  util::WallTimer timer;
  team.run([&](pgas::Rank& rank) {
    std::vector<std::byte> payload(payload_bytes);
    std::memset(payload.data(), 0x5a, payload.size());
    auto sink = [](int, const std::byte*, std::size_t) {};
    for (int b = 0; b < batches; ++b)
      for (int dst = 0; dst < rank.nranks(); ++dst) {
        if (dst == rank.id()) continue;
        team.transport().send(rank.id(), dst, ch, payload, rank.stats(), sink);
      }
    team.transport().drain(rank.id(), ch, rank.stats(), sink);
    rank.barrier();
  });
  const double secs = timer.seconds();
  return {secs, bench::sum_stats(bench::snapshot_delta(before, team.snapshot_all()))};
}

struct AddMerge {
  void operator()(std::uint32_t& existing, const std::uint32_t& incoming) const {
    existing += incoming;
  }
};

/// The k-mer counting inner loop: `ops` buffered increments per rank into a
/// distributed table whose batches travel the lossy fabric.
Measured store_path(const pgas::Topology& topo, const char* spec, int ops) {
  pgas::ThreadTeam team(topo);
  team.transport().set_plan(pgas::ChaosPlan::parse(4242, spec));
  using Table = pgas::DistHashMap<std::uint64_t, std::uint32_t,
                                  std::hash<std::uint64_t>, AddMerge>;
  Table counts(team, Table::Config{50'000, 512});
  counts.set_name("bench/counts");
  const auto before = team.snapshot_all();
  util::WallTimer timer;
  team.run([&](pgas::Rank& rank) {
    std::uint64_t key = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(rank.id() + 1);
    for (int i = 0; i < ops; ++i) {
      key = key * 6364136223846793005ull + 1442695040888963407ull;
      counts.update_buffered(rank, key % 50000, 1u);
    }
    counts.flush(rank);
    rank.barrier();
  });
  const double secs = timer.seconds();
  return {secs, bench::sum_stats(bench::snapshot_delta(before, team.snapshot_all()))};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const int rpn = static_cast<int>(opts.get_int("ranks-per-node", 4));
  const int batches = static_cast<int>(opts.get_int("batches", 2000));
  const auto payload = static_cast<std::size_t>(opts.get_int("payload", 4096));
  const int ops = static_cast<int>(opts.get_int("ops", 200'000));
  const pgas::Topology topo{ranks, rpn};

  util::TextTable raw({"schedule", "wall_s", "MB_per_s", "retries", "dups",
                       "reorders", "corrupts"});
  for (const auto& s : kSchedules) {
    const auto m = raw_envelopes(topo, s.spec, batches, payload);
    const double bytes = static_cast<double>(batches) * static_cast<double>(payload) *
                         static_cast<double>(ranks) * static_cast<double>(ranks - 1);
    raw.add_row({s.name, util::TextTable::fmt(m.seconds, 3),
                 util::TextTable::fmt(bytes / 1e6 / m.seconds, 1),
                 std::to_string(m.comm.transport_retries),
                 std::to_string(m.comm.transport_dups),
                 std::to_string(m.comm.transport_reorders),
                 std::to_string(m.comm.transport_corrupts)});
  }
  bench::emit("transport_chaos_raw",
              "raw envelope throughput under chaos schedules (" +
                  std::to_string(ranks) + " ranks, " + std::to_string(payload) +
                  "B payloads)",
              raw);

  util::TextTable store({"schedule", "wall_s", "Mops_per_s", "retries",
                         "dups", "reorders", "corrupts"});
  for (const auto& s : kSchedules) {
    const auto m = store_path(topo, s.spec, ops);
    const double total_ops = static_cast<double>(ops) * static_cast<double>(ranks);
    store.add_row({s.name, util::TextTable::fmt(m.seconds, 3),
                   util::TextTable::fmt(total_ops / 1e6 / m.seconds, 2),
                   std::to_string(m.comm.transport_retries),
                   std::to_string(m.comm.transport_dups),
                   std::to_string(m.comm.transport_reorders),
                   std::to_string(m.comm.transport_corrupts)});
  }
  bench::emit("transport_chaos_store",
              "buffered store throughput under chaos schedules (" +
                  std::to_string(ranks) + " ranks)",
              store);
  return 0;
}
