#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "pgas/comm_stats.hpp"
#include "pgas/machine_model.hpp"
#include "pgas/topology.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

/// Shared plumbing for the per-table/figure bench binaries.
///
/// Every bench reproduces one table or figure from the paper's §5. Two time
/// axes are reported (see pgas/machine_model.hpp): measured wall seconds on
/// this host (meaningful only as a sanity check — logical ranks share the
/// host's cores) and modeled seconds from the communication counters, which
/// carry the scaling *shape* the paper's plots show. Each binary prints the
/// table and mirrors it to a CSV next to the executable.
namespace hipmer::bench {

/// Default strong-scaling axis: logical ranks standing in for the paper's
/// 480..15,360 Edison cores. ranks_per_node=4 keeps a realistic
/// multi-node on/off-node split at every point.
struct ScalePoint {
  int ranks;
  int ranks_per_node;

  [[nodiscard]] pgas::Topology topology() const {
    return pgas::Topology{ranks, ranks_per_node};
  }
};

inline std::vector<ScalePoint> default_scale_axis(const util::Options& opts) {
  const auto rpn = static_cast<int>(opts.get_int("ranks-per-node", 4));
  std::vector<ScalePoint> axis;
  if (opts.has("ranks")) {
    axis.push_back(ScalePoint{static_cast<int>(opts.get_int("ranks", 8)), rpn});
    return axis;
  }
  const auto max_ranks = static_cast<int>(opts.get_int("max-ranks", 64));
  for (int r = 8; r <= max_ranks; r *= 2) axis.push_back(ScalePoint{r, rpn});
  return axis;
}

/// Aggregate a per-rank snapshot delta.
inline pgas::CommStatsSnapshot sum_stats(
    const std::vector<pgas::CommStatsSnapshot>& per_rank) {
  pgas::CommStatsSnapshot total;
  for (const auto& s : per_rank) total += s;
  return total;
}

inline std::vector<pgas::CommStatsSnapshot> snapshot_delta(
    const std::vector<pgas::CommStatsSnapshot>& before,
    const std::vector<pgas::CommStatsSnapshot>& after) {
  std::vector<pgas::CommStatsSnapshot> delta(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) delta[i] = after[i] - before[i];
  return delta;
}

/// Current and peak resident set size of this process in bytes, read from
/// /proc/self/status (VmRSS / VmHWM). Returns 0 on platforms without
/// procfs — callers should treat 0 as "unavailable", not "no memory".
struct ResidentMemory {
  std::size_t current_bytes = 0;
  std::size_t peak_bytes = 0;
};

inline ResidentMemory resident_memory() {
  ResidentMemory mem;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1)
      mem.current_bytes = static_cast<std::size_t>(kb) * 1024;
    else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1)
      mem.peak_bytes = static_cast<std::size_t>(kb) * 1024;
  }
  std::fclose(f);
  return mem;
}

/// Print the table and write `<name>.csv` beside the binary.
inline void emit(const std::string& name, const std::string& title,
                 const util::TextTable& table) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), table.to_string().c_str());
  const std::string csv = name + ".csv";
  if (table.write_csv(csv)) std::printf("[csv written to %s]\n", csv.c_str());
}

}  // namespace hipmer::bench
