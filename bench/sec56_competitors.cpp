// §5.6 — comparison with competing parallel de novo assemblers, plus the
// headline Meraculous comparison from §1/§7.
//
// Paper numbers at 960 cores on the human dataset:
//   - Ray 2.3.0:   10h46m end-to-end   (~13x slower than HipMer)
//   - ABySS 1.3.6: 13h26m for contig generation alone (~16x slower than
//     HipMer's entire end-to-end run), scaffolding not distributed
//   - original Meraculous: 23.8h vs HipMer's 8.4 minutes (~170x)
//
// The comparators here are reduced re-implementations sharing HipMer's
// correctness-critical code but reproducing each competitor's *structural*
// deficits (serial FASTQ I/O, no Bloom filter / heavy hitters, fine-grained
// unaggregated communication, single-node scaffolding) — see
// src/baseline/baselines.hpp. The expected result is the paper's ordering
// and rough magnitudes: HipMer << Ray-like < ABySS-like, and a large
// HipMer-vs-serial-Meraculous ratio.

#include <cstdio>
#include <filesystem>

#include "baseline/baselines.hpp"
#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 250'000));
  const int ranks = static_cast<int>(opts.get_int("ranks", 64));
  const std::string workdir =
      opts.get("workdir", std::filesystem::temp_directory_path().string());

  auto ds = sim::make_human_like(genome_len, 5657);
  if (!sim::write_dataset_fastq(ds, workdir)) {
    std::fprintf(stderr, "cannot write FASTQ files\n");
    return 1;
  }
  std::printf("Sec. 5.6 reproduction: human-like %llu bp at %d ranks\n",
              static_cast<unsigned long long>(genome_len), ranks);

  const pgas::Topology topo{ranks, 4};
  pgas::MachineModel machine;

  // HipMer itself.
  pipeline::PipelineConfig cfg;
  cfg.k = 31;
  cfg.sync_k();
  pipeline::Pipeline hipmer_pipe(topo, cfg);
  const auto hipmer_result = hipmer_pipe.run_from_fastq(ds.libraries);
  const double hipmer_s = hipmer_result.modeled_total();

  baseline::BaselineConfig bc;
  bc.k = 31;
  bc.machine = machine;

  const auto ray = baseline::run_raylike(topo, bc, ds.libraries);
  const auto abyss = baseline::run_abysslike(topo, bc, ds.libraries);
  const auto mer = baseline::run_serial_meraculous(bc, ds.reads, ds.libraries);

  auto stage_sum = [](const baseline::BaselineResult& r,
                      std::initializer_list<const char*> names) {
    double total = 0;
    for (const auto& s : r.stages)
      for (const char* n : names)
        if (s.name == n) total += s.modeled_seconds;
    return total;
  };

  util::TextTable table({"assembler", "end_to_end_s", "vs_hipmer",
                         "contig_gen_s", "io_s", "wall_s"});
  table.add_row({"hipmer", util::TextTable::fmt(hipmer_s, 2), "1.00x",
                 util::TextTable::fmt(
                     hipmer_result.modeled_for(pipeline::kStageKmerAnalysis) +
                         hipmer_result.modeled_for(pipeline::kStageContigGen),
                     2),
                 util::TextTable::fmt(hipmer_result.modeled_for(pipeline::kStageIo), 2),
                 util::TextTable::fmt(hipmer_result.wall_total(), 1)});
  for (const auto* r : {&ray, &abyss, &mer}) {
    table.add_row(
        {r->assembler, util::TextTable::fmt(r->modeled_total(), 2),
         util::TextTable::fmt(r->modeled_total() / hipmer_s, 1) + "x",
         util::TextTable::fmt(
             stage_sum(*r, {pipeline::kStageKmerAnalysis,
                            pipeline::kStageContigGen}),
             2),
         util::TextTable::fmt(stage_sum(*r, {pipeline::kStageIo}), 2),
         util::TextTable::fmt(r->wall_total(), 1)});
  }
  hipmer::bench::emit(
      "sec56_competitors",
      "Sec. 5.6: end-to-end comparison (paper at 960 cores: Ray ~13x, "
      "ABySS contig-gen ~16x, serial Meraculous ~170x slower than HipMer)",
      table);
  return 0;
}
