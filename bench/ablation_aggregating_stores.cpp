// Ablation — the two memory/communication optimizations DESIGN.md calls
// out beyond the headline figures:
//
//   1. **Aggregating stores** (§4.1/§4.6 and [13]): batching distributed
//      hash-table updates cuts the message count on the critical path by
//      the batch factor. We sweep the batch size on the k-mer counting
//      phase and report message counts + modeled time.
//   2. **Bloom filter** (§3.1): admitting k-mers into the main table only
//      on their second sighting keeps the (overwhelmingly singleton,
//      erroneous) majority of distinct k-mers out — "memory requirement
//      reductions of up to 85%". We report main-table entries and resident
//      bytes with and without the filter.

#include <cstdio>

#include "bench_common.hpp"
#include "kcount/kmer_analysis.hpp"
#include "pgas/thread_team.hpp"
#include "sim/datasets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 400'000));
  const int ranks = static_cast<int>(opts.get_int("ranks", 16));
  auto ds = sim::make_human_like(genome_len, 2221);
  const pgas::Topology topo{ranks, 4};
  pgas::MachineModel machine;

  auto run = [&](bool bloom, std::size_t flush) {
    pgas::ThreadTeam team(topo);
    kcount::KmerAnalysisConfig cfg;
    cfg.k = 31;
    cfg.use_bloom = bloom;
    cfg.flush_threshold = flush;
    auto ka = std::make_unique<kcount::KmerAnalysis>(team, cfg);
    const auto before = team.snapshot_all();
    team.run([&](pgas::Rank& rank) {
      std::vector<seq::Read> mine;
      for (std::size_t i = static_cast<std::size_t>(rank.id());
           i < ds.reads[0].size(); i += static_cast<std::size_t>(ranks))
        mine.push_back(ds.reads[0][i]);
      ka->run(rank, mine);
    });
    const auto delta = bench::snapshot_delta(before, team.snapshot_all());
    struct Out {
      double modeled;
      std::uint64_t msgs;
      std::size_t entries;
      std::size_t bloom_bytes;
    } out{machine.phase_seconds_no_io(delta),
          bench::sum_stats(delta).total_msgs(), ka->peak_table_entries(),
          ka->bloom_bytes()};
    return out;
  };

  util::TextTable agg({"flush_batch", "messages", "modeled_s", "msg_reduction"});
  double base_msgs = 0;
  for (std::size_t flush : {std::size_t{1}, std::size_t{16}, std::size_t{128},
                            std::size_t{512}, std::size_t{2048}}) {
    const auto r = run(true, flush);
    if (base_msgs == 0) base_msgs = static_cast<double>(r.msgs);
    agg.add_row({std::to_string(flush), std::to_string(r.msgs),
                 util::TextTable::fmt(r.modeled, 3),
                 util::TextTable::fmt(base_msgs / static_cast<double>(r.msgs), 1) + "x"});
  }
  bench::emit("ablation_aggregating_stores",
              "Ablation: aggregating-stores batch size on k-mer counting "
              "(messages shrink ~linearly with the batch)",
              agg);

  util::TextTable bloom({"config", "main_table_entries", "bloom_bytes",
                         "entry_reduction"});
  const auto with = run(true, 512);
  const auto without = run(false, 512);
  bloom.add_row({"bloom_on", std::to_string(with.entries),
                 std::to_string(with.bloom_bytes),
                 util::TextTable::fmt_pct(
                     1.0 - static_cast<double>(with.entries) /
                               static_cast<double>(without.entries))});
  bloom.add_row({"bloom_off", std::to_string(without.entries), "0", "0.0%"});
  bench::emit("ablation_bloom_filter",
              "Ablation: Bloom filter singleton exclusion (paper: up to 85% "
              "memory reduction on error-containing data)",
              bloom);
  return 0;
}
