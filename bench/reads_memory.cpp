// Resident read-store memory: packed arena vs std::vector<seq::Read>.
//
// The packed store (src/seq/packed_reads.hpp) is the PR's headline memory
// claim: 2-bit bases + exception list, mode-dispatched quality compression
// and an offset-indexed name arena should cut resident read bytes >= 3x
// against the seed's three-heap-strings-per-record representation. This
// bench measures it two ways on the same records:
//
//   * accounted bytes — each store's own memory_bytes() (capacity-true,
//     what the containers hold), the primary ratio the README quotes;
//   * process RSS deltas — /proc/self/status before/after building each
//     store, tying the accounting to what the OS actually charges us.
//
// Two quality models bracket the codec: the simulator's i.i.d. Phred
// [30,41] stream (high entropy, RLE-hostile — the 4-bit band mode carries
// it) and binned-bursty qualities as modern basecallers emit (RLE wins).
// Plain stores are measured as built, matching what the seed pipeline
// held; packed arenas are compacted post-ingest exactly as the pipeline
// leaves them.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "seq/read_store.hpp"
#include "sim/datasets.hpp"
#include "util/table.hpp"

namespace {

// Rewrite qualities with a binned-bursty model: four quantized score
// levels, geometric run lengths (mean ~10).
void rebin_quals(std::vector<hipmer::seq::Read>& reads, unsigned seed) {
  static const char kBins[] = {'#', '-', '8', 'F'};
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> bin(0, 3);
  for (auto& r : reads) {
    char cur = kBins[bin(rng)];
    for (auto& c : r.quals) {
      if (coin(rng) < 0.1) cur = kBins[bin(rng)];
      c = cur;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 1'000'000));
  const double coverage = static_cast<double>(opts.get_int("coverage", 25));

  auto ds = sim::make_human_like(genome_len, 4242, coverage);
  std::vector<seq::Read> sim_reads;
  for (auto& lib : ds.reads)
    sim_reads.insert(sim_reads.end(), lib.begin(), lib.end());
  std::vector<seq::Read> binned_reads = sim_reads;
  rebin_quals(binned_reads, 77);

  struct Case {
    const char* name;
    const std::vector<seq::Read>* reads;
  };
  const Case cases[] = {{"sim_iid_quals", &sim_reads},
                        {"binned_quals", &binned_reads}};

  util::TextTable table({"dataset", "reads", "bases", "plain_MB", "packed_MB",
                         "ratio", "plain_B_per_read", "packed_B_per_read",
                         "plain_rss_MB", "packed_rss_MB"});
  // Keep every store alive until the end so RSS deltas are not polluted by
  // the allocator recycling freed pages.
  std::vector<seq::ReadStore> keep;
  keep.reserve(2 * std::size(cases));
  for (const auto& c : cases) {
    std::size_t bases = 0;
    for (const auto& r : *c.reads) bases += r.seq.size();

    const auto rss0 = bench::resident_memory();
    keep.emplace_back(true);
    auto& packed = keep.back();
    packed.reserve(c.reads->size(), bases);
    for (const auto& r : *c.reads) packed.append(r);
    packed.shrink_to_fit();
    const auto rss1 = bench::resident_memory();

    keep.emplace_back(false);
    auto& plain = keep.back();
    for (const auto& r : *c.reads) plain.append(r);
    const auto rss2 = bench::resident_memory();

    const auto n = static_cast<double>(c.reads->size());
    const auto plain_b = static_cast<double>(plain.memory_bytes());
    const auto packed_b = static_cast<double>(packed.memory_bytes());
    table.add_row(
        {c.name, std::to_string(c.reads->size()), std::to_string(bases),
         util::TextTable::fmt(plain_b / 1e6, 2),
         util::TextTable::fmt(packed_b / 1e6, 2),
         util::TextTable::fmt(plain_b / packed_b, 2),
         util::TextTable::fmt(plain_b / n, 1),
         util::TextTable::fmt(packed_b / n, 1),
         util::TextTable::fmt(static_cast<double>(rss2.current_bytes -
                                                  rss1.current_bytes) /
                                  1e6,
                              2),
         util::TextTable::fmt(static_cast<double>(rss1.current_bytes -
                                                  rss0.current_bytes) /
                                  1e6,
                              2)});
  }

  bench::emit("reads_memory",
              "Resident read memory: packed 2-bit arena vs "
              "std::vector<seq::Read> (plain as-built, packed compacted "
              "post-ingest as the pipeline holds them)",
              table);
  return 0;
}
