// Figure 8 — end-to-end strong scaling of the full pipeline for human
// (left) and wheat (right), broken into k-mer analysis / contig generation
// / scaffolding (§5.5).
//
// Paper shapes being reproduced:
//   - overall speedups of 11.9x over a 32x concurrency range (human) and
//     5.9x over 16x (wheat) — good but sub-ideal scaling, increasingly
//     I/O- and imbalance-limited at the top;
//   - the stage mix at the base concurrency: scaffolding dominates (~68%
//     for human at 960 cores), k-mer analysis next (~28%), contig
//     generation least (~4%).

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace hipmer;

void run_genome(const std::string& label, sim::Dataset& ds, int rounds,
                bool merge_bubbles, const std::vector<bench::ScalePoint>& axis,
                int k, const std::string& workdir) {
  // End-to-end includes the parallel FASTQ read, as in the paper.
  if (!sim::write_dataset_fastq(ds, workdir))
    std::fprintf(stderr, "warning: cannot write FASTQ to %s\n", workdir.c_str());

  util::TextTable table({"ranks", "io_s", "kmer_s", "contig_s", "scaffold_s",
                         "total_s", "speedup", "kmer_pct", "contig_pct",
                         "scaffold_pct", "wall_s"});
  double base_total = 0.0;
  int base_ranks = 0;
  for (const auto& scale : axis) {
    pipeline::PipelineConfig cfg;
    cfg.k = k;
    cfg.scaffolding_rounds = rounds;
    cfg.merge_bubbles = merge_bubbles;
    cfg.sync_k();
    pipeline::Pipeline pipe(scale.topology(), cfg);
    const auto result = pipe.run_from_fastq(ds.libraries);

    const double io = result.modeled_for(pipeline::kStageIo);
    const double kmer = result.modeled_for(pipeline::kStageKmerAnalysis);
    const double contig = result.modeled_for(pipeline::kStageContigGen);
    const double scaffold = result.modeled_for(pipeline::kStageAligner) +
                            result.modeled_for(pipeline::kStageGapClosing) +
                            result.modeled_for(pipeline::kStageScaffoldRest);
    const double total = io + kmer + contig + scaffold;
    if (base_ranks == 0) {
      base_ranks = scale.ranks;
      base_total = total;
    }
    const double nonio = kmer + contig + scaffold;
    table.add_row({std::to_string(scale.ranks), util::TextTable::fmt(io, 3),
                   util::TextTable::fmt(kmer, 3),
                   util::TextTable::fmt(contig, 3),
                   util::TextTable::fmt(scaffold, 3),
                   util::TextTable::fmt(total, 3),
                   util::TextTable::fmt(base_total / total, 2) + "x",
                   util::TextTable::fmt_pct(kmer / nonio),
                   util::TextTable::fmt_pct(contig / nonio),
                   util::TextTable::fmt_pct(scaffold / nonio),
                   util::TextTable::fmt(result.wall_total(), 2)});
  }
  bench::emit("fig8_end_to_end_" + label,
              "Fig. 8 (" + label + "): end-to-end strong scaling (modeled "
              "seconds; paper human: 11.9x over 32x ranks; stage mix at "
              "base concurrency ~28% kmer / 4% contig / 68% scaffold)",
              table);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto human_len =
      static_cast<std::uint64_t>(opts.get_int("human-genome", 300'000));
  const auto wheat_len =
      static_cast<std::uint64_t>(opts.get_int("wheat-genome", 350'000));
  const auto axis = bench::default_scale_axis(opts);
  const std::string workdir =
      opts.get("workdir", std::filesystem::temp_directory_path().string());

  std::printf("Fig. 8 reproduction (human-like %llu bp, wheat-like %llu bp)\n",
              static_cast<unsigned long long>(human_len),
              static_cast<unsigned long long>(wheat_len));

  auto human = sim::make_human_like(human_len, 817);
  run_genome("human", human, 1, true, axis, 31, workdir);

  auto wheat = sim::make_wheat_like(wheat_len, 819);
  run_genome("wheat", wheat, 4, false, axis, 31, workdir);
  return 0;
}
