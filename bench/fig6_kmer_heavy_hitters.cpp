// Figure 6 — strong scaling of k-mer analysis on wheat, with and without
// the heavy-hitter optimization (§3.1, §5.1).
//
// Paper result being reproduced: on the heavily repetitive wheat genome the
// default owner-computes counting is communication-bound — the hot owners
// of the ultra-frequent repeat k-mers serialize the run, and the
// communication share of the critical path grows from 23% (960 cores) to
// 68% (15,360). Treating heavy hitters specially (local accumulation + one
// final reduction) caps that share (16% -> 22% in the paper) and yields up
// to 2.4x at scale. We expect the same shape: flat-ish comm% with heavy
// hitters, growing comm% and a widening gap without.
//
// Also reproduced: the paper's θ-insensitivity claim ("performance was not
// sensitive to the choice of θ, which was varied between 1K and 64K with
// negligible (less than 10%) performance difference").

#include <cstdio>

#include "bench_common.hpp"
#include "kcount/kmer_analysis.hpp"
#include "pgas/thread_team.hpp"
#include "sim/datasets.hpp"
#include "util/timer.hpp"

namespace {

using namespace hipmer;

struct RunResult {
  double wall = 0.0;
  double modeled = 0.0;
  double comm_fraction = 0.0;
  std::size_t heavy_hitters = 0;
};

RunResult run_once(const sim::Dataset& ds, const bench::ScalePoint& scale,
                   bool heavy_hitters, std::size_t mg_capacity,
                   const pgas::MachineModel& machine) {
  pgas::ThreadTeam team(scale.topology());
  kcount::KmerAnalysisConfig cfg;
  cfg.k = 21;
  cfg.use_heavy_hitters = heavy_hitters;
  cfg.mg_capacity = mg_capacity;
  kcount::KmerAnalysis ka(team, cfg);

  const auto before = team.snapshot_all();
  util::WallTimer timer;
  team.run([&](pgas::Rank& rank) {
    std::vector<const std::vector<seq::Read>*> sets;
    std::vector<std::vector<seq::Read>> mine(ds.reads.size());
    for (std::size_t lib = 0; lib < ds.reads.size(); ++lib) {
      if (!ds.libraries[lib].for_contigging) continue;
      for (std::size_t i = 0; i < ds.reads[lib].size(); ++i) {
        if (static_cast<int>((i / 2) % static_cast<std::size_t>(rank.nranks())) ==
            rank.id())
          mine[lib].push_back(ds.reads[lib][i]);
      }
      sets.push_back(&mine[lib]);
    }
    ka.run(rank, sets);
  });

  RunResult result;
  result.wall = timer.seconds();
  const auto delta = bench::snapshot_delta(before, team.snapshot_all());
  result.modeled = machine.phase_seconds_no_io(delta);
  result.comm_fraction = machine.comm_fraction(delta);
  result.heavy_hitters = ka.heavy_hitters().size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 600'000));
  std::printf("Figure 6 reproduction: wheat-like genome of %llu bp\n",
              static_cast<unsigned long long>(genome_len));
  auto ds = sim::make_wheat_like(genome_len, 4243);
  std::printf("dataset: %llu reads, %llu bases\n",
              static_cast<unsigned long long>(ds.total_reads()),
              static_cast<unsigned long long>(ds.total_bases()));

  pgas::MachineModel machine;
  const auto axis = bench::default_scale_axis(opts);

  util::TextTable table({"ranks", "default_s", "hh_s", "speedup",
                         "default_comm", "hh_comm", "hh_count",
                         "default_wall_s", "hh_wall_s"});
  for (const auto& scale : axis) {
    const auto def = run_once(ds, scale, false, 32768, machine);
    const auto hh = run_once(ds, scale, true, 32768, machine);
    table.add_row({std::to_string(scale.ranks),
                   util::TextTable::fmt(def.modeled, 3),
                   util::TextTable::fmt(hh.modeled, 3),
                   util::TextTable::fmt(def.modeled / hh.modeled, 2) + "x",
                   util::TextTable::fmt_pct(def.comm_fraction),
                   util::TextTable::fmt_pct(hh.comm_fraction),
                   std::to_string(hh.heavy_hitters),
                   util::TextTable::fmt(def.wall, 2),
                   util::TextTable::fmt(hh.wall, 2)});
  }
  bench::emit("fig6_kmer_heavy_hitters",
              "Fig. 6: k-mer analysis on wheat — default vs heavy hitters "
              "(modeled seconds; paper: up to 2.4x at scale)",
              table);

  // θ sensitivity (paper: <10% across 1K..64K).
  util::TextTable theta({"theta", "modeled_s", "vs_32K"});
  const auto scale = axis.back();
  const double ref = run_once(ds, scale, true, 32768, machine).modeled;
  for (std::size_t t : {1024u, 8192u, 32768u, 65536u}) {
    const auto r = run_once(ds, scale, true, t, machine);
    theta.add_row({std::to_string(t), util::TextTable::fmt(r.modeled, 3),
                   util::TextTable::fmt_pct(r.modeled / ref - 1.0)});
  }
  bench::emit("fig6_theta_sensitivity",
              "θ sensitivity at the largest concurrency (paper: <10%)",
              theta);
  return 0;
}
