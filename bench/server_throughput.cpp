// Assembly-as-a-service throughput — what the job server sustains when
// tenants pile on.
//
// Three tables:
//
//   1. **Concurrent submissions**: 1/4/8 client threads submit the same
//      (input, config) job back-to-back and wait for completion, the
//      multi-tenant resubmission pattern the server exists for. The
//      executor runs one assembly at a time over the persistent team, so
//      this measures queueing + per-job reset overhead — and how far the
//      shared artifact cache bends the curve once the first job has
//      populated it.
//   2. **Cache miss vs hit**: per-stage wall of a cold job against an
//      identical resubmission. The hit skips the k-mer analysis stage
//      outright, which dominates a cold run's wall time.
//   3. **Crash recovery**: build a backlog, stop the server with the
//      backlog still queued, and time the restart — write-ahead journal
//      replay alone, restart until the control socket answers PING, and
//      the wall to drain the re-admitted backlog to completion.
//
// Correctness is asserted elsewhere (tests/test_server.cpp: served output
// is byte-identical to a one-shot run, hit or miss); this bench reports
// what the server side of that guarantee delivers.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "io/fastq.hpp"
#include "pipeline/pipeline.hpp"
#include "server/client.hpp"
#include "server/job_server.hpp"
#include "sim/datasets.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hipmer;
namespace fs = std::filesystem;

struct Harness {
  fs::path dir;
  std::string socket;
  std::string fastq;
  std::string submit_args;
  std::unique_ptr<server::JobServer> srv;
  std::thread thread;

  ~Harness() {
    (void)server::request(socket, "SHUTDOWN");
    thread.join();
    srv.reset();
    fs::remove_all(dir);
  }
};

std::unique_ptr<Harness> start_server(int ranks, std::uint64_t genome,
                                      std::uint64_t seed) {
  auto h = std::make_unique<Harness>();
  h->dir = fs::temp_directory_path() /
           ("hipmer_srvbench_" + std::to_string(std::random_device{}()));
  fs::create_directories(h->dir);
  h->socket = (h->dir / "ctl.sock").string();
  h->fastq = (h->dir / "reads.fastq").string();

  auto ds = sim::make_human_like(genome, seed, 15.0);
  if (!io::write_fastq(h->fastq, ds.reads[0])) return nullptr;
  char insert[32];
  std::snprintf(insert, sizeof insert, "%g", ds.libraries[0].mean_insert);
  h->submit_args =
      "reads=" + h->fastq + ":" + insert + " k=31 min_count=3 out=";

  server::ServerConfig sc;
  sc.listen_path = h->socket;
  sc.ranks = ranks;
  sc.cores = 4;
  sc.state_dir = (h->dir / "state").string();
  h->srv = std::make_unique<server::JobServer>(sc);
  auto* srv = h->srv.get();
  h->thread = std::thread([srv] { (void)srv->serve(); });
  return h;
}

/// SUBMIT one job and poll STATUS until terminal. Returns the job id, or 0
/// on failure.
std::uint64_t run_job(const Harness& h, const std::string& out,
                      const std::string& extra = "") {
  const auto resp = server::request_with_retry(
      h.socket, "SUBMIT " + h.submit_args + (h.dir / out).string() + extra,
      100, 50);
  if (!resp || !resp->ok()) return 0;
  const auto id = std::strtoull(
      server::response_field(resp->first(), "id", "0").c_str(), nullptr, 10);
  for (;;) {
    const auto status =
        server::request(h.socket, "STATUS id=" + std::to_string(id));
    if (!status || !status->ok()) return 0;
    const auto state = server::response_field(status->first(), "state");
    if (state == "done") return id;
    if (state == "failed" || state == "cancelled") return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Wall seconds of one stage from the RESULT reply (0 when absent — which
/// for kmer_analysis is exactly the cache-hit signature).
double stage_wall(const Harness& h, std::uint64_t id, const std::string& stage) {
  const auto resp = server::request(h.socket, "RESULT id=" + std::to_string(id));
  if (!resp) return 0.0;
  double total = 0.0;
  for (const auto& line : resp->lines) {
    char name[64];
    double wall = 0.0, modeled = 0.0;
    if (std::sscanf(line.c_str(), "STAGE %63s %lf %lf", name, &wall,
                    &modeled) == 3 &&
        stage == name)
      total += wall;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const auto genome = static_cast<std::uint64_t>(opts.get_int("genome", 60000));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 4242));

  // ---- Cache miss vs hit ----
  // A dedicated server so the sweep below starts from its own cold cache.
  {
    auto h = start_server(ranks, genome, seed);
    if (!h) return 1;
    util::WallTimer cold_timer;
    const auto cold = run_job(*h, "cold.fasta");
    const double cold_wall = cold_timer.seconds();
    util::WallTimer warm_timer;
    const auto warm = run_job(*h, "warm.fasta");
    const double warm_wall = warm_timer.seconds();
    if (cold == 0 || warm == 0) return 1;

    const double cold_kmer = stage_wall(*h, cold, pipeline::kStageKmerAnalysis);
    const double warm_kmer = stage_wall(*h, warm, pipeline::kStageKmerAnalysis);
    util::TextTable table({"job", "job_wall_s", "kmer_wall_s", "speedup"});
    table.add_row({"cache_miss", util::TextTable::fmt(cold_wall, 3),
                   util::TextTable::fmt(cold_kmer, 3), "1.00x"});
    table.add_row({"cache_hit", util::TextTable::fmt(warm_wall, 3),
                   util::TextTable::fmt(warm_kmer, 3),
                   util::TextTable::fmt(cold_wall / warm_wall, 2) + "x"});
    bench::emit("server_cache", "artifact cache: miss vs hit", table);
  }

  // ---- Concurrent submissions ----
  util::TextTable table(
      {"clients", "jobs", "wall_s", "jobs_per_min", "cache_hits"});
  for (const int clients : {1, 4, 8}) {
    auto h = start_server(ranks, genome, seed);
    if (!h) return 1;
    // Each sweep point starts cold: the first completed job populates the
    // cache, the rest ride it — the steady state a busy server sits in.
    const int jobs_per_client = 2;
    std::atomic<int> completed{0};
    util::WallTimer timer;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        for (int j = 0; j < jobs_per_client; ++j) {
          const auto out =
              "c" + std::to_string(c) + "_" + std::to_string(j) + ".fasta";
          if (run_job(*h, out) != 0) completed.fetch_add(1);
        }
      });
    for (auto& t : threads) t.join();
    const double wall = timer.seconds();
    const int total = clients * jobs_per_client;
    if (completed.load() != total) {
      std::fprintf(stderr, "only %d/%d jobs completed\n", completed.load(),
                   total);
      return 1;
    }
    const auto stats = server::request(h->socket, "STATS");
    const std::string hits =
        stats ? server::response_field(stats->first(), "cache_hits", "0") : "0";
    table.add_row({std::to_string(clients), std::to_string(total),
                   util::TextTable::fmt(wall, 2),
                   util::TextTable::fmt(60.0 * total / wall, 1), hits});
  }
  bench::emit("server_throughput", "served jobs/min vs concurrent clients",
              table);

  // ---- Crash recovery ----
  // One completed job settles the artifact cache, then a backlog of
  // submissions is left queued when the server stops: SHUTDOWN halts
  // dispatch without draining, which is exactly the on-disk state a crash
  // leaves behind (journal with live SUBMITs and no FINISH). The restart
  // replays the journal, re-admits the backlog, and drains it.
  {
    auto h = start_server(ranks, genome, seed);
    if (!h) return 1;
    if (run_job(*h, "seed.fasta") == 0) return 1;

    const int backlog = 6;
    std::vector<std::uint64_t> ids;
    for (int j = 0; j < backlog; ++j) {
      const auto out = (h->dir / ("recov" + std::to_string(j) + ".fasta"));
      const auto resp = server::request_with_retry(
          h->socket, "SUBMIT " + h->submit_args + out.string(), 100, 50);
      if (!resp || !resp->ok()) return 1;
      ids.push_back(std::strtoull(
          server::response_field(resp->first(), "id", "0").c_str(), nullptr,
          10));
    }
    (void)server::request(h->socket, "SHUTDOWN");
    h->thread.join();
    h->srv.reset();

    // Replay latency in isolation: open the journal the stopped server
    // left behind and fold it back into a job table.
    const auto journal_path = (h->dir / "state" / "journal.bin").string();
    std::size_t records = 0;
    double replay_ms = 0.0;
    {
      util::WallTimer replay_timer;
      server::JobJournal journal(journal_path);
      const auto replay = journal.open_and_replay();
      if (!replay) return 1;
      const auto jobs = server::reconstruct_jobs(replay->events);
      replay_ms = replay_timer.seconds() * 1e3;
      records = replay->events.size();
      if (jobs.empty()) return 1;
    }

    // Restart on the same state dir and time until the control plane
    // answers, then until the recovered backlog has fully drained.
    server::ServerConfig sc;
    sc.listen_path = h->socket;
    sc.ranks = ranks;
    sc.cores = 4;
    sc.state_dir = (h->dir / "state").string();
    util::WallTimer restart_timer;
    h->srv = std::make_unique<server::JobServer>(sc);
    auto* srv = h->srv.get();
    h->thread = std::thread([srv] { (void)srv->serve(); });
    const auto ping = server::request_with_retry(h->socket, "PING", 400, 5);
    if (!ping || !ping->ok()) return 1;
    const double ready_ms = restart_timer.seconds() * 1e3;

    int recovered = 0;
    for (const auto id : ids) {
      for (;;) {
        const auto status =
            server::request(h->socket, "STATUS id=" + std::to_string(id));
        if (!status || !status->ok()) return 1;
        const auto state = server::response_field(status->first(), "state");
        if (state == "done") {
          ++recovered;
          break;
        }
        if (state == "failed" || state == "cancelled" ||
            state == "quarantined")
          break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    const double drain_s = restart_timer.seconds();
    if (recovered != backlog) {
      std::fprintf(stderr, "only %d/%d backlog jobs recovered\n", recovered,
                   backlog);
      return 1;
    }

    util::TextTable recovery({"scenario", "backlog_jobs", "journal_records",
                              "replay_ms", "ready_ms", "drain_s",
                              "recovered"});
    recovery.add_row({"stop_restart", std::to_string(backlog),
                      std::to_string(records),
                      util::TextTable::fmt(replay_ms, 3),
                      util::TextTable::fmt(ready_ms, 1),
                      util::TextTable::fmt(drain_s, 2),
                      std::to_string(recovered)});
    bench::emit("server_recovery",
                "crash recovery: journal replay + backlog drain", recovery);
  }
  return 0;
}
