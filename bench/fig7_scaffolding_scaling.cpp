// Figure 7 — strong scaling of scaffolding for human (left) and wheat
// (right), broken into merAligner / gap closing / remaining scaffolding
// modules (§5.3).
//
// Paper shapes being reproduced:
//   - merAligner is the most expensive scaffolding component and scales
//     best (0.64 efficiency at 32x for human);
//   - gap closing scales worse (I/O- and tail-bound);
//   - the "rest" of scaffolding is comparatively small for human but a
//     much larger fraction for wheat, because the repetitive genome
//     fragments into far more contigs (less graph contraction) and the
//     pipeline runs *four rounds* of scaffolding, inflating the serial
//     ordering/orientation component.

#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace hipmer;

std::uint64_t gap_offnode_msgs(const pipeline::PipelineResult& result) {
  std::uint64_t n = 0;
  for (const auto& s : result.stages)
    if (s.name == pipeline::kStageGapClosing) n += s.comm.offnode_msgs;
  return n;
}

void run_genome(const std::string& label, sim::Dataset& ds, int rounds,
                bool merge_bubbles, const std::vector<bench::ScalePoint>& axis,
                int k) {
  util::TextTable table({"ranks", "aligner_s", "gapclose_s", "rest_s",
                         "total_s", "efficiency", "aligner_eff", "wall_s",
                         "gap_offnode_msgs", "gap_offnode_shuffled",
                         "offnode_reduction"});
  double base_total = 0.0;
  double base_aligner = 0.0;
  int base_ranks = 0;
  for (const auto& scale : axis) {
    pipeline::PipelineConfig cfg;
    cfg.k = k;
    cfg.scaffolding_rounds = rounds;
    cfg.merge_bubbles = merge_bubbles;
    cfg.sync_k();
    pipeline::Pipeline pipe(scale.topology(), cfg);
    const auto result = pipe.run(ds.reads, ds.libraries);

    // Same assembly with the locality-aware read shuffle (and the packed
    // store it is designed around): gap closing's remote read fetches
    // become local, shrinking its off-node message count. Output is
    // byte-identical, so only the comm counters differ.
    pipeline::PipelineConfig shuf_cfg = cfg;
    shuf_cfg.packed_reads = true;
    shuf_cfg.shuffle_reads = true;
    pipeline::Pipeline shuf_pipe(scale.topology(), shuf_cfg);
    const auto shuf_result = shuf_pipe.run(ds.reads, ds.libraries);

    const double aligner = result.modeled_for(pipeline::kStageAligner);
    const double gaps = result.modeled_for(pipeline::kStageGapClosing);
    const double rest = result.modeled_for(pipeline::kStageScaffoldRest);
    const double total = aligner + gaps + rest;
    if (base_ranks == 0) {
      base_ranks = scale.ranks;
      base_total = total;
      base_aligner = aligner;
    }
    const double ratio = static_cast<double>(scale.ranks) / base_ranks;
    const auto gap_msgs = gap_offnode_msgs(result);
    const auto gap_msgs_shuf = gap_offnode_msgs(shuf_result);
    table.add_row(
        {std::to_string(scale.ranks), util::TextTable::fmt(aligner, 3),
         util::TextTable::fmt(gaps, 3), util::TextTable::fmt(rest, 3),
         util::TextTable::fmt(total, 3),
         util::TextTable::fmt(base_total / total / ratio, 2),
         util::TextTable::fmt(base_aligner / aligner / ratio, 2),
         util::TextTable::fmt(result.wall_for(pipeline::kStageAligner) +
                                  result.wall_for(pipeline::kStageGapClosing) +
                                  result.wall_for(pipeline::kStageScaffoldRest),
                              2),
         std::to_string(gap_msgs), std::to_string(gap_msgs_shuf),
         util::TextTable::fmt(gap_msgs_shuf == 0
                                  ? 0.0
                                  : static_cast<double>(gap_msgs) /
                                        static_cast<double>(gap_msgs_shuf),
                              2)});
  }
  bench::emit("fig7_scaffolding_" + label,
              "Fig. 7 (" + label + "): scaffolding strong scaling — "
              "merAligner / gap closing / rest (modeled seconds); last "
              "columns contrast gap closing's off-node messages without vs "
              "with --shuffle-reads",
              table);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto human_len =
      static_cast<std::uint64_t>(opts.get_int("human-genome", 300'000));
  const auto wheat_len =
      static_cast<std::uint64_t>(opts.get_int("wheat-genome", 350'000));
  const auto axis = bench::default_scale_axis(opts);

  std::printf("Fig. 7 reproduction (human-like %llu bp, wheat-like %llu bp)\n",
              static_cast<unsigned long long>(human_len),
              static_cast<unsigned long long>(wheat_len));

  auto human = sim::make_human_like(human_len, 717);
  run_genome("human", human, /*rounds=*/1, /*merge_bubbles=*/true, axis, 31);

  auto wheat = sim::make_wheat_like(wheat_len, 719);
  // "the execution of the wheat pipeline ... requires four rounds of
  // scaffolding, resulting in even more overhead within the contig
  // ordering/orientation module."
  run_genome("wheat", wheat, /*rounds=*/4, /*merge_bubbles=*/false, axis, 31);
  return 0;
}
