// §3.3 — parallel block FASTQ reader throughput.
//
// Paper claim being reproduced: the sampling + boundary-fast-forward block
// reader "obtains close to the I/O bandwidth achieved by reading SeqDB",
// i.e. it parallelizes cleanly, unlike the serial readers of Ray/ABySS.
// We measure (a) real wall throughput of the reader on this host across
// rank counts — correctness-equivalent shards, one pread stream per rank —
// and (b) the modeled seconds including the filesystem saturation term,
// contrasting the parallel reader with a serial read of the same file.

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/seqdb.hpp"
#include "pgas/thread_team.hpp"
#include "seq/read_store.hpp"
#include "sim/datasets.hpp"
#include "util/timer.hpp"

namespace {
std::atomic<std::size_t> benchmark_sink{0};
}  // namespace

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 800'000));
  const std::string workdir =
      opts.get("workdir", std::filesystem::temp_directory_path().string());

  auto ds = sim::make_human_like(genome_len, 9119, 25.0);
  if (!sim::write_dataset_fastq(ds, workdir)) return 1;
  const std::string path = ds.libraries[0].fastq_path;
  const std::string sdb_path = workdir + "/reader_bench.sdb";
  if (!io::write_seqdb(sdb_path, ds.reads[0])) return 1;
  const auto file_size = std::filesystem::file_size(path);
  const auto sdb_size = std::filesystem::file_size(sdb_path);
  std::printf("§3.3 reproduction: FASTQ %.1f MB, SeqDB %.1f MB "
              "(compression factor %.2fx)\n",
              static_cast<double>(file_size) / 1e6,
              static_cast<double>(sdb_size) / 1e6,
              static_cast<double>(file_size) / static_cast<double>(sdb_size));

  pgas::MachineModel machine;
  util::TextTable table({"ranks", "records", "wall_s", "wall_MBps",
                         "seqdb_wall_s", "seqdb_MBps", "modeled_io_s",
                         "serial_modeled_io_s", "plain_read_MB",
                         "packed_read_MB", "read_mem_ratio"});
  for (const auto& scale : bench::default_scale_axis(opts)) {
    pgas::ThreadTeam team(scale.topology());
    io::ParallelFastqReader reader(path);
    std::vector<std::size_t> counts(static_cast<std::size_t>(scale.ranks));
    const auto before = team.snapshot_all();
    util::WallTimer timer;
    team.run([&](pgas::Rank& rank) {
      counts[static_cast<std::size_t>(rank.id())] =
          reader.read_my_records(rank).size();
    });
    const double wall = timer.seconds();
    // Resident read memory, plain vs packed ingest of the same shards
    // (packed arenas compacted post-ingest, as the pipeline leaves them).
    std::vector<seq::ReadStore> plain_stores(
        static_cast<std::size_t>(scale.ranks), seq::ReadStore(false));
    std::vector<seq::ReadStore> packed_stores(
        static_cast<std::size_t>(scale.ranks), seq::ReadStore(true));
    team.run([&](pgas::Rank& rank) {
      const auto r = static_cast<std::size_t>(rank.id());
      reader.read_my_records(rank, plain_stores[r]);
      reader.read_my_records(rank, packed_stores[r]);
      packed_stores[r].shrink_to_fit();
    });
    std::size_t plain_bytes = 0;
    std::size_t packed_bytes = 0;
    for (const auto& s : plain_stores) plain_bytes += s.memory_bytes();
    for (const auto& s : packed_stores) packed_bytes += s.memory_bytes();
    // SeqDB comparison: the block-indexed binary reader on the same data.
    io::ParallelSeqdbReader sdb_reader(sdb_path);
    util::WallTimer sdb_timer;
    team.run([&](pgas::Rank& rank) {
      auto mine = sdb_reader.read_my_records(rank);
      benchmark_sink += mine.size();
    });
    const double sdb_wall = sdb_timer.seconds();
    const double modeled = machine.io_phase_seconds(
        bench::snapshot_delta(before, team.snapshot_all()), scale.topology());
    // Serial comparison: all bytes on one node.
    std::vector<std::uint64_t> serial_node_bytes(
        static_cast<std::size_t>(scale.topology().num_nodes()), 0);
    serial_node_bytes[0] = file_size;
    const double serial = machine.io_seconds_distributed(serial_node_bytes);
    std::size_t records = 0;
    for (auto c : counts) records += c;
    table.add_row({std::to_string(scale.ranks), std::to_string(records),
                   util::TextTable::fmt(wall, 3),
                   util::TextTable::fmt(static_cast<double>(file_size) / 1e6 / wall, 1),
                   util::TextTable::fmt(sdb_wall, 3),
                   util::TextTable::fmt(static_cast<double>(sdb_size) / 1e6 / sdb_wall, 1),
                   util::TextTable::fmt(modeled, 4),
                   util::TextTable::fmt(serial, 4),
                   util::TextTable::fmt(static_cast<double>(plain_bytes) / 1e6, 2),
                   util::TextTable::fmt(static_cast<double>(packed_bytes) / 1e6, 2),
                   util::TextTable::fmt(static_cast<double>(plain_bytes) /
                                            static_cast<double>(packed_bytes),
                                        2)});
  }
  hipmer::bench::emit(
      "io_fastq_reader",
      "§3.3: parallel block FASTQ reader vs SeqDB-style binary reader "
      "(paper: the FASTQ reader obtains close to SeqDB bandwidth, up to "
      "compression factor differences); modeled I/O scales until the "
      "filesystem saturates, serial reading does not scale at all",
      table);
  return 0;
}
