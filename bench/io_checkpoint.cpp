// Checkpoint subsystem — snapshot/restore throughput per pipeline stage.
//
// Runs the full pipeline on a simulated human-like dataset with stage
// checkpointing enabled, then reports, per snapshotted artifact: shard
// count, on-disk size, snapshot (write) seconds and MB/s taken from the
// pipeline's "checkpoint" stage reports, and restore (read + CRC verify +
// decode) seconds and MB/s measured by replaying every manifest entry on a
// fresh team. The restore path exercises exactly what Pipeline::resume
// does per entry: parallel shard reads, integrity checks, artifact decode.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/artifacts.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/snapshot_store.hpp"
#include "pgas/thread_team.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 400'000));
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const int rounds = static_cast<int>(opts.get_int("rounds", 2));
  const std::string workdir =
      opts.get("workdir", std::filesystem::temp_directory_path().string());
  const std::string ckpt_dir = workdir + "/io_checkpoint_run";
  std::filesystem::remove_all(ckpt_dir);

  std::printf("simulating human-like dataset (%llu bp)...\n",
              static_cast<unsigned long long>(genome_len));
  auto ds = sim::make_human_like(genome_len, 20260806);

  pipeline::PipelineConfig cfg;
  cfg.k = 31;
  cfg.kmer.min_count = 3;
  cfg.scaffolding_rounds = rounds;
  cfg.checkpoint.dir = ckpt_dir;
  cfg.sync_k();

  pipeline::Pipeline pipe(pgas::Topology{ranks, 4}, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);
  std::printf("assembled: %zu scaffolds, contig N50 %llu\n",
              result.scaffolds.size(),
              static_cast<unsigned long long>(result.contig_stats.n50));

  // One "checkpoint" stage report per committed snapshot, in commit order;
  // the manifest entries (sorted by seq) are the same sequence.
  std::vector<const pipeline::StageReport*> snaps;
  for (const auto& s : result.stages)
    if (s.name == pipeline::kStageCheckpoint) snaps.push_back(&s);

  ckpt::SnapshotStore store(ckpt_dir);
  auto manifest = store.load_manifest();
  if (!manifest || manifest->entries.size() != snaps.size()) {
    std::fprintf(stderr, "manifest/report mismatch (%zu entries, %zu reports)\n",
                 manifest ? manifest->entries.size() : 0, snaps.size());
    return 1;
  }
  std::sort(manifest->entries.begin(), manifest->entries.end(),
            [](const auto& a, const auto& b) { return a.seq < b.seq; });

  // Restore measurement: parallel shard read + CRC verify + decode per
  // entry, on a fresh team (what resume does per manifest entry).
  pgas::ThreadTeam read_team(pgas::Topology{ranks, 4});
  util::TextTable table({"stage", "shards", "bytes", "write_s", "write_MBps",
                         "read_s", "read_MBps"});
  for (std::size_t i = 0; i < manifest->entries.size(); ++i) {
    const auto& entry = manifest->entries[i];
    std::uint64_t bytes = 0;
    for (const auto b : entry.shard_bytes) bytes += b;

    util::WallTimer timer;
    read_team.run([&](pgas::Rank& rank) {
      for (std::uint32_t s = static_cast<std::uint32_t>(rank.id());
           s < entry.shard_count; s += static_cast<std::uint32_t>(ranks)) {
        const auto payload = store.read_shard(entry, s);
        if (!payload) continue;
        const int progress = ckpt::stage_progress(entry.stage);
        bool ok = false;
        if (entry.stage == ckpt::kStageReads) {
          ok = ckpt::decode_reads_shard(*payload).has_value();
        } else if (entry.stage == ckpt::kStageUfx) {
          ok = ckpt::decode_ufx_shard(*payload).has_value();
        } else if (entry.stage == ckpt::kStageContigs) {
          ok = ckpt::decode_contigs_shard(*payload).has_value();
        } else if (ckpt::progress_is_alignments(progress)) {
          ok = ckpt::decode_alignments_shard(*payload).has_value();
        } else {
          ok = ckpt::decode_scaffolds_shard(*payload).has_value();
        }
        if (!ok) std::fprintf(stderr, "decode failed: %s\n", entry.stage.c_str());
      }
      rank.barrier();
    });
    const double read_s = timer.seconds();

    const double write_s = snaps[i]->wall_seconds;
    const double mb = static_cast<double>(bytes) / 1e6;
    table.add_row({entry.stage, std::to_string(entry.shard_count),
                   std::to_string(bytes),
                   util::TextTable::fmt(write_s),
                   util::TextTable::fmt(write_s > 0 ? mb / write_s : 0.0),
                   util::TextTable::fmt(read_s),
                   util::TextTable::fmt(read_s > 0 ? mb / read_s : 0.0)});
  }

  bench::emit("io_checkpoint", "checkpoint snapshot/restore throughput",
              table);
  std::filesystem::remove_all(ckpt_dir);
  return 0;
}
