// Quickstart: assemble a simulated genome end-to-end with the HipMer
// pipeline and inspect the result.
//
//   ./quickstart [--genome 200000] [--ranks 8] [--k 31] [--out out.fasta]
//
// What this demonstrates:
//   1. building a dataset (simulated diploid genome + paired-end reads with
//      sequencing errors — substitute your own FASTQ via the library list);
//   2. configuring and running the full pipeline (k-mer analysis -> contig
//      generation -> bubble merging -> alignment -> scaffolding -> gap
//      closing);
//   3. reading the per-stage timing/communication report and assembly
//      statistics;
//   4. writing the scaffolds as FASTA.

#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 200'000));
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const int k = static_cast<int>(opts.get_int("k", 31));
  const std::string out_path = opts.get("out", "quickstart_scaffolds.fasta");

  // 1. A dataset: diploid "human-like" genome with one paired-end library.
  std::printf("simulating %llu bp diploid genome + reads...\n",
              static_cast<unsigned long long>(genome_len));
  auto dataset = sim::make_human_like(genome_len, /*seed=*/1234);
  std::printf("  %llu reads, %llu bases (%.1fx coverage)\n",
              static_cast<unsigned long long>(dataset.total_reads()),
              static_cast<unsigned long long>(dataset.total_bases()),
              static_cast<double>(dataset.total_bases()) /
                  static_cast<double>(genome_len));

  // 2. Configure and run. `sync_k()` propagates k into every stage config.
  pipeline::PipelineConfig config;
  config.k = k;
  config.merge_bubbles = true;  // diploid sample: merge haplotype bubbles
  config.kmer.min_count = 3;    // ~20x + 0.8% errors: drop repeated miscalls
  // Note: do NOT set contig.min_contig_len on diploid data — heterozygous
  // bubble paths are only 2k-1 bases long and must survive to be merged.
  config.sync_k();
  pipeline::Pipeline pipeline(pgas::Topology{ranks, 4}, config);
  std::printf("assembling on %d ranks (k=%d)...\n", ranks, k);
  const auto result = pipeline.run(dataset.reads, dataset.libraries);

  // 3. Reports.
  std::printf("\nper-stage times (wall = this host; modeled = Edison-like "
              "machine model):\n%s",
              result.format_stages().c_str());
  std::printf("k-mer spectrum: %llu distinct, %.1f%% singletons, %zu heavy hitters\n",
              static_cast<unsigned long long>(result.distinct_kmers),
              result.singleton_fraction * 100.0, result.heavy_hitters);
  std::printf("contigs:   %s\n",
              util::format_assembly_stats(result.contig_stats).c_str());
  std::printf("scaffolds: %s\n",
              util::format_assembly_stats(result.scaffold_stats).c_str());
  if (!result.insert_estimates.empty())
    std::printf("estimated insert size: %.1f +/- %.1f (%llu pairs sampled)\n",
                result.insert_estimates[0].mean,
                result.insert_estimates[0].stddev,
                static_cast<unsigned long long>(result.insert_estimates[0].samples));
  std::printf("gap closing: %llu/%llu closed (span %llu, walk %llu, patch %llu)\n",
              static_cast<unsigned long long>(result.closure_stats.gaps_closed),
              static_cast<unsigned long long>(result.closure_stats.gaps_total),
              static_cast<unsigned long long>(result.closure_stats.closed_by_span),
              static_cast<unsigned long long>(result.closure_stats.closed_by_walk),
              static_cast<unsigned long long>(result.closure_stats.closed_by_patch));

  // 4. Output.
  if (io::write_fasta(out_path, result.scaffolds)) {
    std::printf("wrote %zu scaffolds to %s\n", result.scaffolds.size(),
                out_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
