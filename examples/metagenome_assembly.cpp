// Metagenome contig generation (§5.4) — assemble a simulated multi-species
// community through k-mer analysis + contig generation, the part of the
// pipeline the paper runs on the Twitchell wetlands data ("we will only
// execute HipMer through the uncontested contig generation").
//
//   ./metagenome_assembly [--species 40] [--ranks 16] [--coverage 20]
//
// Demonstrates the metagenome-specific behaviors the paper discusses:
//   - the flat k-mer count histogram (low singleton fraction vs isolates);
//   - rare community members falling below assembly depth ("typically 90%
//     of the reads cannot be assembled" in real soil data);
//   - per-species recovery as a function of abundance.

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "dbg/contig_generator.hpp"
#include "kcount/kmer_analysis.hpp"
#include "seq/kmer_scanner.hpp"
#include "sim/metagenome_sim.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  using seq::KmerT;
  util::Options opts(argc, argv);
  sim::MetagenomeConfig mc;
  mc.num_species = static_cast<int>(opts.get_int("species", 40));
  mc.mean_genome_length =
      static_cast<std::uint64_t>(opts.get_int("mean-genome", 25'000));
  mc.total_coverage = static_cast<double>(opts.get_int("coverage", 20));
  mc.seed = 777;
  const int ranks = static_cast<int>(opts.get_int("ranks", 16));
  const int k = static_cast<int>(opts.get_int("k", 31));

  std::printf("simulating %d-species community...\n", mc.num_species);
  const auto mg = sim::simulate_metagenome(mc);
  std::printf("  %zu reads from %zu species\n", mg.reads.size(),
              mg.species.size());

  pgas::ThreadTeam team(pgas::Topology{ranks, 4});
  kcount::KmerAnalysisConfig kcfg;
  kcfg.k = k;
  kcfg.min_count = 2;  // low threshold: rare species live near the floor
  kcount::KmerAnalysis ka(team, kcfg);
  team.run([&](pgas::Rank& rank) {
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id());
         i < mg.reads.size(); i += static_cast<std::size_t>(ranks))
      mine.push_back(mg.reads[i]);
    ka.run(rank, mine);
  });

  std::printf("\nk-mer spectrum: %llu distinct, singleton fraction %.1f%% "
              "(isolates are typically far higher — the Bloom filter "
              "eliminates less here, as in the paper)\n",
              static_cast<unsigned long long>(ka.distinct_kmers()),
              ka.singleton_fraction() * 100.0);
  // Histogram head: the "much flatter" distribution of §5.4.
  std::printf("count histogram (2..10): ");
  for (int c = 2; c <= 10; ++c)
    std::printf("%llu ", static_cast<unsigned long long>(ka.histogram()[static_cast<std::size_t>(c)]));
  std::printf("\n");

  std::size_t ufx = 0;
  for (int r = 0; r < ranks; ++r) ufx += ka.ufx(r).size();
  dbg::ContigGenConfig ccfg;
  ccfg.k = k;
  ccfg.min_contig_len = static_cast<std::size_t>(2 * k);
  dbg::ContigGenerator gen(team, ccfg, ufx);
  team.run([&](pgas::Rank& rank) {
    gen.build_graph(rank, ka.ufx(rank.id()));
    gen.traverse(rank);
  });
  const auto contigs = gen.all_contigs();

  std::vector<std::uint64_t> lengths;
  for (const auto& c : contigs) lengths.push_back(c.seq.size());
  std::printf("\ncontigs: %s\n",
              util::format_assembly_stats(
                  util::compute_assembly_stats(std::move(lengths)))
                  .c_str());

  // Per-species recovery vs abundance: k-mers of each species found in the
  // assembled contigs.
  std::unordered_set<KmerT, seq::KmerHashT> assembled;
  for (const auto& c : contigs)
    for (seq::KmerScanner<KmerT::kMaxK> it(c.seq, k); !it.done(); it.next())
      assembled.insert(it.canonical());

  struct SpeciesRow {
    double abundance;
    double coverage;
    double recovered;
  };
  std::vector<SpeciesRow> rows;
  std::uint64_t community_bases = 0;
  for (const auto& g : mg.species) community_bases += g.primary.size();
  for (std::size_t s = 0; s < mg.species.size(); ++s) {
    const auto& genome = mg.species[s].primary;
    std::size_t found = 0;
    std::size_t total = 0;
    for (seq::KmerScanner<KmerT::kMaxK> it(genome, k); !it.done(); it.next()) {
      found += assembled.contains(it.canonical());
      ++total;
    }
    // Approximate realized coverage of this species.
    const double cov = mc.total_coverage * mg.abundance[s] *
                       static_cast<double>(mg.species.size());
    rows.push_back(SpeciesRow{mg.abundance[s], cov,
                              total == 0 ? 0.0
                                         : static_cast<double>(found) /
                                               static_cast<double>(total)});
  }
  std::sort(rows.begin(), rows.end(), [](const SpeciesRow& a, const SpeciesRow& b) {
    return a.abundance > b.abundance;
  });
  util::TextTable table({"abundance", "approx_coverage", "genome_recovered"});
  for (const auto& row : rows)
    table.add_row({util::TextTable::fmt_pct(row.abundance),
                   util::TextTable::fmt(row.coverage, 1) + "x",
                   util::TextTable::fmt_pct(row.recovered)});
  std::printf("\nper-species recovery (sorted by abundance — rare members "
              "fall below assembly depth, the paper's 'low-abundance "
              "organisms' effect):\n%s",
              table.to_string().c_str());
  return 0;
}
