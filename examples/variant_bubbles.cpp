// Diploid bubble merging (§4.2) — show how heterozygous variation breaks
// contigs into bubbles and how the bubble-contig graph merges them back.
//
//   ./variant_bubbles [--genome 150000] [--het 0.004] [--ranks 8]
//
// The program assembles the same diploid dataset twice — with bubble
// merging off and on — and reports the contig-level effect: without
// merging, every heterozygous site splits the assembly around a pair of
// haplotype paths; with merging, the deeper path is kept and the flanks
// are stitched through, restoring contiguity.

#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hipmer;
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 150'000));
  const double het = opts.get_double("het", 0.004);
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));

  // A diploid genome at the high end of human heterozygosity.
  sim::Dataset ds;
  ds.name = "diploid";
  sim::GenomeConfig gc;
  gc.length = genome_len;
  gc.heterozygosity = het;
  gc.seed = 99;
  ds.genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.name = "pe";
  lc.read_length = 101;
  lc.mean_insert = 400.0;
  lc.stddev_insert = 30.0;
  lc.coverage = 24.0;
  lc.error_rate = 0.002;
  lc.seed = 101;
  ds.libraries.push_back(seq::ReadLibrary{"pe", 400.0, 30.0, 101, "", true});
  ds.reads.push_back(sim::simulate_library(ds.genome, lc));
  std::printf("diploid genome: %llu bp, heterozygosity %.2f%% (~%d SNP sites)\n",
              static_cast<unsigned long long>(genome_len), het * 100.0,
              static_cast<int>(het * static_cast<double>(genome_len)));

  util::TextTable table({"bubble_merging", "contigs", "contig_N50",
                         "scaffolds", "scaffold_N50"});
  for (const bool merge : {false, true}) {
    pipeline::PipelineConfig cfg;
    cfg.k = 31;
    cfg.merge_bubbles = merge;
    cfg.kmer.min_count = 3;
    cfg.sync_k();
    pipeline::Pipeline pipe(pgas::Topology{ranks, 4}, cfg);
    const auto result = pipe.run(ds.reads, ds.libraries);
    table.add_row({merge ? "on" : "off",
                   std::to_string(result.num_contigs),
                   std::to_string(result.contig_stats.n50),
                   std::to_string(result.scaffolds.size()),
                   std::to_string(result.scaffold_stats.n50)});
    if (merge)
      std::printf("(with merging on, the contig count collapses as "
                  "flank-path-flank chains compress)\n");
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
