// Multi-k assembly sweep with oracle partitioning — the §3.2 use case:
// "Typically, computational biologists begin the genome assembly process
// ... with a reasonable initial k value. Different k lengths are then
// explored to optimize the quality of the assembly output. Thus we can
// generate our oracle partitioning function during the initial contig
// generation phase, and use it to significantly reduce communication for
// subsequent assemblies that explore different k values."
//
//   ./multi_k_sweep [--genome 300000] [--ranks 16]
//
// The program assembles once at the initial k, builds the oracle from the
// draft contigs, then re-assembles at several other k values with and
// without the oracle, reporting assembly quality (to pick the best k) and
// the off-node communication saved.

#include <cstdio>

#include "dbg/contig_generator.hpp"
#include "dbg/oracle.hpp"
#include "kcount/kmer_analysis.hpp"
#include "sim/datasets.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hipmer;

struct KResult {
  util::AssemblyStats stats;
  dbg::ContigGenerator::LookupStats lookups;
  std::vector<std::string> contig_seqs;
};

KResult assemble_at_k(pgas::ThreadTeam& team,
                      const std::vector<seq::Read>& reads, int k,
                      const dbg::OraclePartition* oracle) {
  kcount::KmerAnalysisConfig kcfg;
  kcfg.k = k;
  kcfg.min_count = 3;
  kcount::KmerAnalysis ka(team, kcfg);
  team.run([&](pgas::Rank& rank) {
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += static_cast<std::size_t>(rank.nranks()))
      mine.push_back(reads[i]);
    ka.run(rank, mine);
  });
  std::size_t ufx = 0;
  for (int r = 0; r < team.nranks(); ++r) ufx += ka.ufx(r).size();
  dbg::ContigGenConfig ccfg;
  ccfg.k = k;
  ccfg.min_contig_len = static_cast<std::size_t>(2 * k);
  dbg::ContigGenerator gen(team, ccfg, ufx);
  if (oracle) gen.set_oracle(oracle);
  team.run([&](pgas::Rank& rank) {
    gen.build_graph(rank, ka.ufx(rank.id()));
    gen.traverse(rank);
  });
  KResult result;
  result.lookups = gen.total_lookup_stats();
  std::vector<std::uint64_t> lengths;
  for (const auto& contig : gen.all_contigs()) {
    lengths.push_back(contig.seq.size());
    result.contig_seqs.push_back(contig.seq);
  }
  result.stats = util::compute_assembly_stats(std::move(lengths));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto genome_len =
      static_cast<std::uint64_t>(opts.get_int("genome", 300'000));
  const int ranks = static_cast<int>(opts.get_int("ranks", 16));
  const int initial_k = static_cast<int>(opts.get_int("initial-k", 25));

  auto ds = sim::make_human_like(genome_len, 4242);
  const auto& reads = ds.reads[0];
  const pgas::Topology topo{ranks, 4};
  pgas::ThreadTeam team(topo);

  // Draft assembly at the initial k; learn the oracle from its contigs.
  std::printf("draft assembly at k=%d...\n", initial_k);
  const auto draft = assemble_at_k(team, reads, initial_k, nullptr);
  std::printf("  draft: %s\n", util::format_assembly_stats(draft.stats).c_str());

  std::size_t draft_kmers = 0;
  for (const auto& c : draft.contig_seqs) draft_kmers += c.size();

  util::TextTable table({"k", "contigs", "N50", "offnode_no_oracle",
                         "offnode_with_oracle", "comm_saved"});
  for (int k : {21, 29, 33, 41, 51}) {
    // The oracle vector is rebuilt from the *draft* contigs at the new k —
    // the contigs barely change between nearby k values, which is exactly
    // the genetic-similarity insight.
    const auto oracle = dbg::OraclePartition::build(draft.contig_seqs, k, topo,
                                                    draft_kmers * 4);
    const auto plain = assemble_at_k(team, reads, k, nullptr);
    const auto oracled = assemble_at_k(team, reads, k, &oracle);
    const double off_plain = plain.lookups.offnode_fraction();
    const double off_oracle = oracled.lookups.offnode_fraction();
    table.add_row({std::to_string(k), std::to_string(oracled.stats.num_sequences),
                   std::to_string(oracled.stats.n50),
                   util::TextTable::fmt_pct(off_plain),
                   util::TextTable::fmt_pct(off_oracle),
                   util::TextTable::fmt_pct(1.0 - off_oracle / off_plain)});
  }
  std::printf("\nk sweep (oracle built once from the k=%d draft):\n%s",
              initial_k, table.to_string().c_str());
  std::printf("pick the k with the best N50; every sweep point after the "
              "draft ran with oracle-partitioned communication.\n");
  return 0;
}
