#include "pgas/comm_stats.hpp"

#include <sstream>

namespace hipmer::pgas {

CommStatsSnapshot& CommStatsSnapshot::operator+=(
    const CommStatsSnapshot& o) noexcept {
  work_units += o.work_units;
  serial_work_units += o.serial_work_units;
  local_accesses += o.local_accesses;
  onnode_msgs += o.onnode_msgs;
  offnode_msgs += o.offnode_msgs;
  onnode_bytes += o.onnode_bytes;
  offnode_bytes += o.offnode_bytes;
  recv_ops += o.recv_ops;
  read_cache_hits += o.read_cache_hits;
  read_cache_misses += o.read_cache_misses;
  transport_retries += o.transport_retries;
  transport_dups += o.transport_dups;
  transport_reorders += o.transport_reorders;
  transport_corrupts += o.transport_corrupts;
  io_read_bytes += o.io_read_bytes;
  io_write_bytes += o.io_write_bytes;
  collectives += o.collectives;
  return *this;
}

CommStatsSnapshot& CommStatsSnapshot::operator-=(
    const CommStatsSnapshot& o) noexcept {
  work_units -= o.work_units;
  serial_work_units -= o.serial_work_units;
  local_accesses -= o.local_accesses;
  onnode_msgs -= o.onnode_msgs;
  offnode_msgs -= o.offnode_msgs;
  onnode_bytes -= o.onnode_bytes;
  offnode_bytes -= o.offnode_bytes;
  recv_ops -= o.recv_ops;
  read_cache_hits -= o.read_cache_hits;
  read_cache_misses -= o.read_cache_misses;
  transport_retries -= o.transport_retries;
  transport_dups -= o.transport_dups;
  transport_reorders -= o.transport_reorders;
  transport_corrupts -= o.transport_corrupts;
  io_read_bytes -= o.io_read_bytes;
  io_write_bytes -= o.io_write_bytes;
  collectives -= o.collectives;
  return *this;
}

std::string CommStatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "work=" << work_units << " serial=" << serial_work_units
     << " local=" << local_accesses << " on_msgs=" << onnode_msgs
     << " off_msgs=" << offnode_msgs << " on_B=" << onnode_bytes
     << " off_B=" << offnode_bytes << " recv=" << recv_ops
     << " cacheH=" << read_cache_hits << " cacheM=" << read_cache_misses
     << " retry=" << transport_retries << " dup=" << transport_dups
     << " reord=" << transport_reorders << " corrupt=" << transport_corrupts
     << " ioR=" << io_read_bytes << " ioW=" << io_write_bytes
     << " coll=" << collectives;
  return os.str();
}

}  // namespace hipmer::pgas
