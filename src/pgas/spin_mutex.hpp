#pragma once

#include <atomic>
#include <thread>

/// One-byte spinlock.
///
/// Distributed hash-table shards carry one lock per bucket; a std::mutex
/// (40 bytes on glibc) per bucket would dwarf the entries themselves
/// (Per.16: use compact data structures). Critical sections here are a few
/// dozen nanoseconds (probe a bucket, merge a value), so spinning is
/// appropriate.
namespace hipmer::pgas {

class SpinMutex {
 public:
  SpinMutex() = default;
  SpinMutex(const SpinMutex&) = delete;
  SpinMutex& operator=(const SpinMutex&) = delete;

  void lock() noexcept {
    // A few relaxed polls first; then yield so an oversubscribed host (many
    // logical ranks per hardware thread) can schedule the holder instead of
    // burning the whole quantum spinning.
    int attempts = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++attempts > 16) std::this_thread::yield();
    }
  }

  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace hipmer::pgas
