#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "pgas/aggregating_engine.hpp"
#include "pgas/checked.hpp"
#include "pgas/phase_checker.hpp"
#include "pgas/thread_team.hpp"
#include "pgas/transport.hpp"

/// All-to-all record exchange over the lossy-transport envelope path: the
/// communication substrate of the read shuffle (and any future
/// redistribution stage). Callers hand in opaque byte records addressed to
/// a destination rank; the engine batches them per destination, the
/// transport ships each batch under the usual seq/CRC/retry protocol (so
/// the shuffle survives drop/dup/reorder chaos like every other channel),
/// and `collect()` returns — after a flush + drain + barrier — every
/// record addressed to the calling rank, grouped by source rank in
/// per-link send order. That ordering is deterministic for a fixed send
/// pattern, which the shuffle's byte-identity guarantee builds on.
///
/// Phase discipline: sends are batched stores on this channel's
/// CheckedTable; `collect()` is the phase boundary that flushes and drains
/// before its barrier, so the checker's undrained-at-barrier invariant
/// holds by construction. Construct in a serial context (channel
/// registration is not thread-safe), use inside the SPMD region.
namespace hipmer::pgas {

class ShuffleExchange {
 public:
  ShuffleExchange(ThreadTeam& team, const std::string& name,
                  std::size_t flush_threshold = 64)
      : team_(&team),
        engine_(static_cast<std::uint32_t>(team.nranks()), flush_threshold),
        inbox_(static_cast<std::size_t>(team.nranks()))
#if defined(HIPMER_CHECKED)
        ,
        checked_(team.checker(), name,
                 [this](int r) {
                   return engine_.pending(r) +
                          team_->transport().pending(r, channel_);
                 },
                 [](int) { return std::size_t{0}; })
#endif
  {
    channel_ = team.transport().open_channel(name + "/records");
    for (auto& row : inbox_)
      row.resize(static_cast<std::size_t>(team.nranks()));
    if (team.multiprocess()) {
      // Inbound batches that crossed the fabric land in the same
      // inbox_[dst][src] cell the threads fabric writes, so collect()'s
      // grouping and ordering are identical on both backends.
      team.transport().set_handler(
          channel_,
          [this](int src, int dst, const std::byte* data, std::size_t size) {
            auto& stream = inbox_[static_cast<std::size_t>(dst)]
                                 [static_cast<std::size_t>(src)];
            stream.insert(stream.end(), data, data + size);
          });
    }
  }

  /// Queue one record from `rank` toward `dest`. May flush a full batch
  /// through the transport before returning.
  void send(Rank& rank, int dest, std::vector<std::byte> record
            HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    checked_.on_store(rank.id(), CheckedTable::Path::kBatched,
                      to_site(hipmer_site));
#endif
    engine_.enqueue(rank.id(), static_cast<std::uint32_t>(dest),
                    std::move(record),
                    [&](std::uint32_t d, std::vector<std::vector<std::byte>>&
                                             batch) { ship(rank, d, batch); });
  }

  /// Records queued by `rank` that have not yet been delivered.
  [[nodiscard]] std::size_t pending(int rank) const {
    return engine_.pending(rank) + team_->transport().pending(rank, channel_);
  }

  /// Phase boundary: flush + drain this rank's sends, barrier, then return
  /// every record addressed to this rank, grouped by source rank ascending
  /// and in send order within each source. A trailing barrier makes the
  /// exchange reusable for the next round.
  [[nodiscard]] std::vector<std::vector<std::byte>> collect(
      Rank& rank HIPMER_SITE_DEFAULT) {
    const int me = rank.id();
    engine_.flush(me, [&](std::uint32_t d,
                          std::vector<std::vector<std::byte>>& batch) {
      ship(rank, d, batch);
    });
    team_->transport().drain(
        me, channel_, rank.stats(),
        [this, me](int dst, const std::byte* data, std::size_t size) {
          auto& stream = inbox_[static_cast<std::size_t>(dst)]
                               [static_cast<std::size_t>(me)];
          stream.insert(stream.end(), data, data + size);
        });
    rank.barrier();
#if defined(HIPMER_CHECKED)
    // The read side of the exchange: everything was flushed and drained
    // above, so this must validate as a post-flush batched read.
    checked_.on_lookup(rank.id(), CheckedTable::Path::kBatched,
                       to_site(hipmer_site));
#endif
    std::vector<std::vector<std::byte>> records;
    for (auto& stream : inbox_[static_cast<std::size_t>(me)]) {
      std::size_t pos = 0;
      while (pos + 4 <= stream.size()) {
        std::uint32_t len = 0;
        std::memcpy(&len, stream.data() + pos, 4);
        pos += 4;
        if (pos + len > stream.size()) break;
        records.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                             stream.begin() +
                                 static_cast<std::ptrdiff_t>(pos + len));
        pos += len;
      }
      stream.clear();
      stream.shrink_to_fit();
    }
    rank.barrier();
    return records;
  }

 private:
  /// Frame a batch (u32 length prefix per record) and ship it. Delivery
  /// appends the framed bytes into inbox_[dst][src]; only src's thread
  /// ever writes that cell and only dst reads it after the collect
  /// barrier, so the grid needs no locks.
  void ship(Rank& rank, std::uint32_t dest,
            std::vector<std::vector<std::byte>>& batch) {
    if (batch.empty()) return;
    std::size_t total = 0;
    for (const auto& rec : batch) total += 4 + rec.size();
    std::vector<std::byte> payload;
    payload.reserve(total);
    for (const auto& rec : batch) {
      const auto len = static_cast<std::uint32_t>(rec.size());
      const auto* lp = reinterpret_cast<const std::byte*>(&len);
      payload.insert(payload.end(), lp, lp + 4);
      payload.insert(payload.end(), rec.begin(), rec.end());
    }
    const int src = rank.id();
    rank.charge_message(static_cast<int>(dest), payload.size(), batch.size());
    team_->transport().send(
        src, static_cast<int>(dest), channel_, std::move(payload),
        rank.stats(),
        [this, src](int dst, const std::byte* data, std::size_t size) {
          auto& stream = inbox_[static_cast<std::size_t>(dst)]
                               [static_cast<std::size_t>(src)];
          stream.insert(stream.end(), data, data + size);
        });
  }

  ThreadTeam* team_;
  Transport::ChannelId channel_ = 0;
  AggregatingEngine<std::vector<std::byte>> engine_;
  /// inbox_[dst][src]: framed record stream awaiting collect().
  std::vector<std::vector<std::vector<std::byte>>> inbox_;
#if defined(HIPMER_CHECKED)
  mutable CheckedTable checked_;
#endif
};

}  // namespace hipmer::pgas
