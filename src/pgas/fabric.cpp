#include "pgas/fabric.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <sstream>

#include "io/wire.hpp"
#include "pgas/fault.hpp"
#include "util/hash.hpp"

namespace hipmer::pgas {

namespace {

/// Await deadline: a peer that produces no frame for this long while we
/// block is treated as dead (belt-and-braces under kill -9; the normal
/// path is the router's EOF -> RANKDOWN broadcast).
constexpr int kAwaitDeadlineMs = 600 * 1000;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = fcntl(fd, F_GETFD, 0);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("fabric: " + what + ": " + std::strerror(errno));
}

/// Fixed-size prefix of every frame: magic, kind, channel, src, dst, len.
constexpr std::size_t kHeaderBytes = kFrameHeaderBytes;

/// Try to pop one complete frame off the front of `buf`. On success the
/// consumed bytes are erased and `raw` (when non-null) receives the exact
/// wire bytes, so a router can forward without re-encoding.
bool pop_frame(std::vector<std::byte>& buf, Frame& out,
               std::vector<std::byte>* raw) {
  if (buf.size() < kHeaderBytes) return false;
  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  std::memcpy(&magic, buf.data(), 4);
  if (magic != kFrameMagic)
    throw io::wire::CorruptError("wire: corrupt: fabric frame magic mismatch");
  std::memcpy(&len, buf.data() + 5 * sizeof(std::uint32_t), 4);
  const std::size_t total = kHeaderBytes + len + sizeof(std::uint32_t);
  if (buf.size() < total) return false;
  out = decode_frame(buf.data(), total);
  if (raw != nullptr) raw->assign(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

/// Blocking read of exactly one frame (handshake only, before the
/// nonblocking regime starts). Throws after `deadline_ms`.
Frame read_frame_blocking(int fd, std::vector<std::byte>& buf,
                          int deadline_ms) {
  Frame f;
  const auto start = std::chrono::steady_clock::now();
  while (!pop_frame(buf, f, nullptr)) {
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (waited > deadline_ms)
      throw std::runtime_error("fabric: handshake timeout");
    struct pollfd p{fd, POLLIN, 0};
    const int rc = poll(&p, 1, 100);
    if (rc <= 0) continue;
    std::byte chunk[4096];
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n == 0) throw std::runtime_error("fabric: peer closed during handshake");
    if (n < 0) {
      if (errno == EAGAIN || errno == EINTR) continue;
      sys_fail("handshake read");
    }
    buf.insert(buf.end(), chunk, chunk + n);
  }
  return f;
}

void write_fully(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EINTR) {
        struct pollfd p{fd, POLLOUT, 0};
        poll(&p, 1, 100);
        continue;
      }
      sys_fail("handshake write");
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

// ---- router (coordinator process) -----------------------------------------

/// Single-threaded frame switch. Per-connection FIFO in and out; never
/// blocks (nonblocking writes with per-connection outbound queues), so a
/// stalled endpoint can delay only its own traffic.
struct SocketFabric::Router {
  struct Conn {
    int fd = -1;
    int rank = -1;
    std::vector<std::byte> rx;
    std::vector<std::byte> tx;
    bool eof = false;
    bool bye = false;
  };

  int nranks = 0;
  std::vector<Conn> conns;  // one per rank, index == rank

  // Barrier round state.
  int arrived = 0;
  std::vector<std::vector<std::byte>> slot_cache;
  std::vector<bool> slot_dirty;
  std::vector<bool> rank_arrived;
  bool records_all = true;
  std::vector<std::vector<std::byte>> record_cache;  // raw encoded records

  // Serial round state.
  int serial_arrived = 0;
  std::vector<std::vector<std::byte>> serial_parts;
  std::vector<bool> serial_in;

  bool down_broadcast = false;
  bool closing = false;  // rank 0 said BYE; drain and exit

  explicit Router(int p)
      : nranks(p),
        conns(static_cast<std::size_t>(p)),
        slot_cache(static_cast<std::size_t>(p)),
        slot_dirty(static_cast<std::size_t>(p), false),
        rank_arrived(static_cast<std::size_t>(p), false),
        record_cache(static_cast<std::size_t>(p)),
        serial_parts(static_cast<std::size_t>(p)),
        serial_in(static_cast<std::size_t>(p), false) {}

  void enqueue(int rank, const std::vector<std::byte>& bytes) {
    Conn& c = conns[static_cast<std::size_t>(rank)];
    if (c.eof || c.bye) return;  // frames to a dead peer evaporate
    c.tx.insert(c.tx.end(), bytes.begin(), bytes.end());
  }

  void broadcast(const std::vector<std::byte>& bytes, int except = -1) {
    for (int r = 0; r < nranks; ++r)
      if (r != except) enqueue(r, bytes);
  }

  void mark_down(int rank) {
    if (down_broadcast) return;
    if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] router mark_down rank=%d\n", (int)getpid(), rank);
    down_broadcast = true;
    Frame down;
    down.kind = FrameKind::kRankDown;
    down.src = static_cast<std::uint32_t>(rank);
    broadcast(encode_frame(down), rank);
  }

  void on_barrier(int src, const Frame& f) {
    auto msg = decode_barrier_collect(f.payload.data(), f.payload.size());
    if (msg.slot_changed) {
      slot_cache[static_cast<std::size_t>(src)] = std::move(msg.slot);
      slot_dirty[static_cast<std::size_t>(src)] = true;
    }
    if (msg.has_record) {
      record_cache[static_cast<std::size_t>(src)] = std::move(msg.record);
    } else {
      records_all = false;
    }
    if (!rank_arrived[static_cast<std::size_t>(src)]) {
      rank_arrived[static_cast<std::size_t>(src)] = true;
      ++arrived;
    }
    if (arrived < nranks) return;
    // Round complete: release with every slot that changed since the last
    // release plus (when all endpoints provided one) the full record set.
    ReleaseMsg rel_msg;
    rel_msg.records_all = records_all;
    for (int rank = 0; rank < nranks; ++rank) {
      if (!slot_dirty[static_cast<std::size_t>(rank)]) continue;
      rel_msg.slots.emplace_back(static_cast<std::uint32_t>(rank),
                                 slot_cache[static_cast<std::size_t>(rank)]);
      slot_dirty[static_cast<std::size_t>(rank)] = false;
    }
    if (records_all) rel_msg.records = record_cache;
    Frame rel;
    rel.kind = FrameKind::kRelease;
    rel.payload = encode_release(rel_msg);
    arrived = 0;
    std::fill(rank_arrived.begin(), rank_arrived.end(), false);
    records_all = true;
    broadcast(encode_frame(rel));
  }

  void on_serial(int src, const Frame& f) {
    if (!serial_in[static_cast<std::size_t>(src)]) {
      serial_in[static_cast<std::size_t>(src)] = true;
      serial_parts[static_cast<std::size_t>(src)] = f.payload;
      ++serial_arrived;
    }
    if (serial_arrived < nranks) return;
    Frame rel;
    rel.kind = FrameKind::kSerialRelease;
    rel.payload = encode_serial_release(serial_parts);
    for (auto& part : serial_parts) {
      part.clear();
      part.shrink_to_fit();
    }
    serial_arrived = 0;
    std::fill(serial_in.begin(), serial_in.end(), false);
    broadcast(encode_frame(rel));
  }

  void handle(int src, Frame& f, const std::vector<std::byte>& raw) {
    switch (f.kind) {
      case FrameKind::kData:
      case FrameKind::kOneway:
      case FrameKind::kRpcReq:
      case FrameKind::kRpcResp:
        enqueue(static_cast<int>(f.dst), raw);
        break;
      case FrameKind::kBarrier:
        on_barrier(src, f);
        break;
      case FrameKind::kSerial:
        on_serial(src, f);
        break;
      case FrameKind::kRankDown:
        mark_down(static_cast<int>(f.src));
        break;
      case FrameKind::kBye:
        conns[static_cast<std::size_t>(src)].bye = true;
        if (src == 0) closing = true;
        break;
      default:
        break;  // HELLO/ROSTER/RELEASE never reach the router mid-run
    }
  }

  [[nodiscard]] bool finished() const {
    for (const auto& c : conns)
      if (!c.eof && !c.bye) return false;
    return true;
  }

  void loop() {
    auto closing_since = std::chrono::steady_clock::now();
    bool was_closing = false;
    while (!finished()) {
      if (closing && !was_closing) {
        was_closing = true;
        closing_since = std::chrono::steady_clock::now();
      }
      if (was_closing) {
        // Rank 0 is gone; give stragglers a grace period to BYE/EOF, then
        // stop routing (the coordinator will SIGKILL leftovers anyway).
        const auto waited =
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - closing_since)
                .count();
        if (waited > 10) break;
      }
      std::vector<struct pollfd> fds;
      std::vector<int> ranks;
      for (int r = 0; r < nranks; ++r) {
        Conn& c = conns[static_cast<std::size_t>(r)];
        if (c.eof || c.fd < 0) continue;
        short events = POLLIN;
        if (!c.tx.empty()) events |= POLLOUT;
        fds.push_back({c.fd, events, 0});
        ranks.push_back(r);
      }
      if (fds.empty()) break;
      const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        Conn& c = conns[static_cast<std::size_t>(ranks[i])];
        if ((fds[i].revents & POLLOUT) != 0 && !c.tx.empty()) {
          const ssize_t n = write(c.fd, c.tx.data(), c.tx.size());
          if (n > 0)
            c.tx.erase(c.tx.begin(), c.tx.begin() + n);
          else if (n < 0 && errno != EAGAIN && errno != EINTR)
            c.eof = true;
        }
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          std::byte chunk[65536];
          for (;;) {
            const ssize_t n = read(c.fd, chunk, sizeof chunk);
            if (n > 0) {
              c.rx.insert(c.rx.end(), chunk, chunk + n);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EINTR)) break;
            // EOF or hard error.
            if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] router eof rank=%d n=%zd errno=%d\n", (int)getpid(), ranks[i], n, errno);
            c.eof = true;
            if (!c.bye) mark_down(ranks[i]);
            break;
          }
          Frame f;
          std::vector<std::byte> raw;
          try {
            while (pop_frame(c.rx, f, &raw)) handle(ranks[i], f, raw);
          } catch (const io::wire::Error& we) {
            // A corrupt byte stream from a peer is indistinguishable from
            // a dying peer: declare it down.
            if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] router corrupt rank=%d: %s\n", (int)getpid(), ranks[i], we.what());
            c.eof = true;
            if (!c.bye) mark_down(ranks[i]);
          }
        }
        if (c.bye || c.eof) {
          // Flush whatever is queued toward a live peer; drop the rest.
          if (c.eof) {
            c.tx.clear();
          }
        }
      }
    }
    for (auto& c : conns) {
      if (c.fd >= 0) {
        close(c.fd);
        c.fd = -1;
      }
    }
  }
};

// ---- SocketFabric ----------------------------------------------------------

SocketFabric::SocketFabric(int nranks, int my_rank)
    : Fabric(nranks), my_rank_(my_rank) {}

std::unique_ptr<SocketFabric> SocketFabric::coordinator(
    int nranks, const std::string& socket_path,
    const std::vector<std::string>& worker_argv) {
  auto fab = std::unique_ptr<SocketFabric>(new SocketFabric(nranks, 0));
  // Ignore SIGPIPE once: a write to a freshly-dead worker must surface as
  // EPIPE (handled) rather than kill the coordinator.
  signal(SIGPIPE, SIG_IGN);

  const int listen_fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) sys_fail("socket");
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("fabric: socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(socket_path.c_str());
  if (bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0)
    sys_fail("bind " + socket_path);
  if (listen(listen_fd, nranks) != 0) sys_fail("listen");

  // Spawn workers 1..P-1: same binary, same arguments, plus the rank flag.
  for (int r = 1; r < nranks; ++r) {
    std::vector<std::string> argv = worker_argv;
    argv.emplace_back("--worker-rank");
    argv.emplace_back(std::to_string(r));
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (auto& a : argv) cargv.push_back(a.data());
    cargv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0) sys_fail("fork");
    if (pid == 0) {
      execv(cargv[0], cargv.data());
      _exit(127);
    }
    fab->pids_.push_back(static_cast<long>(pid));
  }

  // Handshake: accept P-1 connections, read HELLO{rank} from each.
  fab->router_ = std::make_unique<Router>(nranks);
  int accepted = 0;
  const auto start = std::chrono::steady_clock::now();
  while (accepted < nranks - 1) {
    const auto waited = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (waited > 60) {
      close(listen_fd);
      throw std::runtime_error("fabric: workers failed to connect");
    }
    struct pollfd p{listen_fd, POLLIN, 0};
    if (poll(&p, 1, 200) <= 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    set_cloexec(fd);
    std::vector<std::byte> buf;
    const Frame hello = read_frame_blocking(fd, buf, 30 * 1000);
    if (hello.kind != FrameKind::kHello)
      throw std::runtime_error("fabric: expected HELLO");
    const int rank = static_cast<int>(hello.src);
    if (rank <= 0 || rank >= nranks)
      throw std::runtime_error("fabric: HELLO with bad rank");
    auto& conn = fab->router_->conns[static_cast<std::size_t>(rank)];
    conn.fd = fd;
    conn.rank = rank;
    conn.rx = std::move(buf);  // bytes past HELLO belong to the stream
    ++accepted;
  }
  close(listen_fd);
  unlink(socket_path.c_str());

  // Rank 0's endpoint is a socketpair to the router.
  int sp[2];
  if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sp) != 0)
    sys_fail("socketpair");
  fab->fd_ = sp[0];
  fab->router_->conns[0].fd = sp[1];
  fab->router_->conns[0].rank = 0;

  // Confirm the roster, then go nonblocking and start routing.
  Frame roster;
  roster.kind = FrameKind::kRoster;
  roster.payload = encode_roster(static_cast<std::uint32_t>(nranks));
  const auto roster_bytes = encode_frame(roster);
  for (int r = 1; r < nranks; ++r)
    write_fully(fab->router_->conns[static_cast<std::size_t>(r)].fd,
                roster_bytes);
  for (auto& conn : fab->router_->conns)
    if (conn.fd >= 0) set_nonblocking(conn.fd);
  set_nonblocking(fab->fd_);
  Router* router = fab->router_.get();
  fab->router_thread_ = std::thread([router] { router->loop(); });
  return fab;
}

std::unique_ptr<SocketFabric> SocketFabric::worker(
    int nranks, int my_rank, const std::string& socket_path) {
  auto fab = std::unique_ptr<SocketFabric>(new SocketFabric(nranks, my_rank));
  signal(SIGPIPE, SIG_IGN);
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket");
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("fabric: socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) ==
        0)
      break;
    const auto waited = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (waited > 30) sys_fail("connect " + socket_path);
    struct timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.src = static_cast<std::uint32_t>(my_rank);
  write_fully(fd, encode_frame(hello));
  std::vector<std::byte> buf;
  const Frame roster = read_frame_blocking(fd, buf, 60 * 1000);
  if (roster.kind != FrameKind::kRoster)
    throw std::runtime_error("fabric: expected ROSTER");
  const auto p = decode_roster(roster.payload.data(), roster.payload.size());
  if (static_cast<int>(p) != nranks)
    throw std::runtime_error("fabric: roster team-size mismatch");
  fab->fd_ = fd;
  fab->rx_ = std::move(buf);
  set_nonblocking(fd);
  return fab;
}

SocketFabric::~SocketFabric() {
  if (fd_ >= 0) {
    try {
      Frame bye;
      bye.kind = FrameKind::kBye;
      bye.src = static_cast<std::uint32_t>(my_rank_);
      send_frame(bye);
      pump_writes();
    } catch (...) {
      // Best-effort: the peer may already be gone.
    }
    close(fd_);
    fd_ = -1;
  }
  if (router_thread_.joinable()) router_thread_.join();
}

// ---- endpoint I/O ----------------------------------------------------------

void SocketFabric::read_ready() {
  std::byte chunk[65536];
  for (;;) {
    const ssize_t n = read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      rx_.insert(rx_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EINTR)) break;
    // EOF / error: the router died (coordinator crashed). Treat as the
    // whole team going down.
    if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] endpoint rank=%d read eof n=%zd errno=%d\n", (int)getpid(), my_rank_, n, errno);
    if (down_rank_ < 0) down_rank_ = 0;
    break;
  }
  Frame f;
  while (pop_frame(rx_, f, nullptr)) inbox_.push_back(std::move(f));
}

void SocketFabric::pump_writes() {
  while (!tx_.empty()) {
    const ssize_t n = write(fd_, tx_.data(), tx_.size());
    if (n > 0) {
      tx_.erase(tx_.begin(), tx_.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EINTR)) {
      // Full socket: drain inbound while we wait so the router (which may
      // be blocked writing to us) can make progress — the classic
      // both-sides-writing deadlock is broken here.
      struct pollfd p{fd_, POLLIN | POLLOUT, 0};
      if (poll(&p, 1, 100) > 0 && (p.revents & POLLIN) != 0) read_ready();
      continue;
    }
    if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] endpoint rank=%d write fail errno=%d\n", (int)getpid(), my_rank_, errno);
    if (down_rank_ < 0) down_rank_ = 0;
    tx_.clear();
    return;
  }
}

void SocketFabric::send_frame(const Frame& f) {
  const auto bytes = encode_frame(f);
  tx_.insert(tx_.end(), bytes.begin(), bytes.end());
  pump_writes();
}

void SocketFabric::check_down() {
  if (down_rank_ >= 0 && !down_delivered_) {
    down_delivered_ = true;
    if (down_hook_) down_hook_(down_rank_);
    throw RankKilled(my_rank_, "aborting with killed teammate");
  }
  if (down_rank_ >= 0)
    throw RankKilled(my_rank_, "aborting with killed teammate");
}

/// Serve one queued frame. Returns false when the inbox is empty.
bool SocketFabric::dispatch_one() {
  if (inbox_.empty()) return false;
  Frame f = std::move(inbox_.front());
  inbox_.pop_front();
  switch (f.kind) {
    case FrameKind::kData:
      if (data_sink_)
        data_sink_(f.channel, static_cast<int>(f.src), static_cast<int>(f.dst),
                   f.payload.data(), f.payload.size());
      break;
    case FrameKind::kOneway: {
      if (f.channel >= oneways_.size() || !oneways_[f.channel])
        throw std::runtime_error("fabric: oneway to unregistered service");
      oneways_[f.channel](static_cast<int>(f.src), f.payload.data(),
                          f.payload.size());
      break;
    }
    case FrameKind::kRpcReq: {
      if (f.channel >= rpcs_.size() || !rpcs_[f.channel])
        throw std::runtime_error("fabric: rpc to unregistered service");
      Frame resp;
      resp.kind = FrameKind::kRpcResp;
      resp.channel = f.channel;
      resp.src = static_cast<std::uint32_t>(my_rank_);
      resp.dst = f.src;
      resp.payload = rpcs_[f.channel](static_cast<int>(f.src),
                                      f.payload.data(), f.payload.size());
      send_frame(resp);
      break;
    }
    case FrameKind::kRpcResp:
      rpc_resp_ = std::move(f.payload);
      break;
    case FrameKind::kRelease: {
      auto msg = decode_release(f.payload.data(), f.payload.size(), nranks_);
      for (auto& [rank, slot] : msg.slots) {
        if (static_cast<int>(rank) != my_rank_ && slot_writer_)
          slot_writer_(static_cast<int>(rank), std::move(slot));
      }
      if (msg.records_all) {
        for (int rank = 0; rank < nranks_; ++rank) {
          if (rank == my_rank_ || !record_installer_) continue;
          const auto& rec = msg.records[static_cast<std::size_t>(rank)];
          const auto record = decode_barrier_record(rec.data(), rec.size());
          record_installer_(rank, record.kind, record.file, record.line,
                            record.func);
        }
      }
      released_ = true;
      break;
    }
    case FrameKind::kSerialRelease:
      serial_resp_ = decode_serial_release(f.payload.data(), f.payload.size());
      break;
    case FrameKind::kRankDown:
      if (getenv("HIPMER_FABRIC_DEBUG")) fprintf(stderr, "[fabdbg %d] endpoint rank=%d got RANKDOWN src=%u\n", (int)getpid(), my_rank_, f.src);
      if (down_rank_ < 0) down_rank_ = static_cast<int>(f.src);
      break;
    default:
      break;
  }
  return true;
}

void SocketFabric::await(const std::function<bool()>& done) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    while (dispatch_one()) {
      if (done()) return;
      check_down();
    }
    if (done()) return;
    check_down();
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (waited > kAwaitDeadlineMs)
      throw std::runtime_error("fabric: await deadline exceeded");
    struct pollfd p{fd_, POLLIN, 0};
    const int rc = poll(&p, 1, 200);
    if (rc < 0 && errno != EINTR) sys_fail("poll");
    if (rc > 0) read_ready();
  }
}

// ---- Fabric interface ------------------------------------------------------

void SocketFabric::ship(std::uint32_t channel, int src, int dst,
                        const std::vector<std::byte>& envelope) {
  assert(dst != my_rank_);
  Frame f;
  f.kind = FrameKind::kData;
  f.channel = channel;
  f.src = static_cast<std::uint32_t>(src);
  f.dst = static_cast<std::uint32_t>(dst);
  f.payload = envelope;
  send_frame(f);
}

void SocketFabric::send_oneway(std::uint32_t service, int dst,
                               std::vector<std::byte> payload) {
  assert(dst != my_rank_);
  Frame f;
  f.kind = FrameKind::kOneway;
  f.channel = service;
  f.src = static_cast<std::uint32_t>(my_rank_);
  f.dst = static_cast<std::uint32_t>(dst);
  f.payload = std::move(payload);
  send_frame(f);
}

std::vector<std::byte> SocketFabric::rpc(std::uint32_t service, int dst,
                                         std::vector<std::byte> payload) {
  assert(dst != my_rank_);
  // One outstanding request per process: the single rank thread issues an
  // RPC and serves inbound frames (including peers' RPCs — handlers never
  // block) until the response lands, so there is no nesting.
  assert(!rpc_pending_);
  rpc_pending_ = true;
  rpc_resp_.reset();
  Frame f;
  f.kind = FrameKind::kRpcReq;
  f.channel = service;
  f.src = static_cast<std::uint32_t>(my_rank_);
  f.dst = static_cast<std::uint32_t>(dst);
  f.payload = std::move(payload);
  send_frame(f);
  try {
    await([this] { return rpc_resp_.has_value(); });
  } catch (...) {
    rpc_pending_ = false;
    throw;
  }
  rpc_pending_ = false;
  auto resp = std::move(*rpc_resp_);
  rpc_resp_.reset();
  return resp;
}

void SocketFabric::poll_until(const std::function<bool()>& done) {
  await(done);
}

void SocketFabric::progress() {
  struct pollfd p{fd_, POLLIN, 0};
  if (poll(&p, 1, 0) > 0) read_ready();
  while (dispatch_one()) {
  }
  check_down();
}

void SocketFabric::barrier(const BarrierPoint& pt) {
  Frame f;
  f.kind = FrameKind::kBarrier;
  f.src = static_cast<std::uint32_t>(my_rank_);
  const auto& slot = *pt.slot;
  BarrierCollectMsg msg;
  msg.slot_changed = !have_pub_ || slot != last_pub_;
  if (msg.slot_changed) {
    msg.slot = slot;
    last_pub_ = slot;
    have_pub_ = true;
  }
  msg.has_record = pt.has_record;
  if (pt.has_record) {
    BarrierRecordMsg record;
    record.kind = pt.record_kind;
    record.file = pt.record_file;
    record.line = pt.record_line;
    record.func = pt.record_func;
    msg.record = encode_barrier_record(record);
  }
  f.payload = encode_barrier_collect(msg);
  released_ = false;
  send_frame(f);
  await([this] { return released_; });
}

void SocketFabric::abandon(int rank) { announce_down(rank); }

std::vector<std::vector<std::byte>> SocketFabric::serial_exchange(
    std::vector<std::byte> mine) {
  Frame f;
  f.kind = FrameKind::kSerial;
  f.src = static_cast<std::uint32_t>(my_rank_);
  f.payload = std::move(mine);
  serial_resp_.reset();
  send_frame(f);
  await([this] { return serial_resp_.has_value(); });
  auto parts = std::move(*serial_resp_);
  serial_resp_.reset();
  return parts;
}

void SocketFabric::announce_down(int rank) {
  if (announced_down_) return;
  announced_down_ = true;
  try {
    Frame f;
    f.kind = FrameKind::kRankDown;
    f.src = static_cast<std::uint32_t>(rank);
    send_frame(f);
    pump_writes();
  } catch (...) {
    // The router may already be gone; the EOF path covers us.
  }
}

}  // namespace hipmer::pgas
