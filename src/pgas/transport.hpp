#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/wire.hpp"
#include "pgas/chaos.hpp"
#include "pgas/comm_stats.hpp"
#include "pgas/fault.hpp"
#include "util/hash.hpp"

/// Lossy-fabric transport under the aggregating comm paths.
///
/// The SPMD simulator delivers batches by running the receiver-side apply
/// function directly on the sender's thread — a perfect fabric. This layer
/// interposes the delivery-guarantee machinery a real network backend
/// would need, so the protocol above (DistHashMap's batched stores and
/// lookups) is exercised against loss, duplication, reordering and
/// corruption instead of assuming exactly-once in-order delivery:
///
///   - every batch travels in a CRC-32C-framed *envelope* carrying a
///     per-(channel, src, dst) sequence number;
///   - the receiver acks, drops duplicates idempotently (seq < expected),
///     and reorder-buffers out-of-sequence envelopes (seq > expected);
///   - the sender retries unacked envelopes with exponential backoff and
///     deterministic jitter up to a deadline (`max_attempts`);
///   - a peer that exhausts the deadline is declared *suspect*: the
///     transport trips the team's FaultInjector (all ranks unwind through
///     the established RankKilled path) and throws PeerSuspect so the
///     caller can degrade (drop caches, clear in-flight rows) before the
///     pipeline resumes from its last checkpoint.
///
/// Faults are injected by a seeded deterministic ChaosPlan (chaos.hpp);
/// with no plan armed, every envelope still runs the full seq/CRC protocol
/// but always takes the clean-delivery path, so the machinery is exercised
/// (and stays TSan-clean) on every ordinary test run.
///
/// Threading: all state for link (channel, src, dst) is read and written
/// only by rank `src`'s thread — delivery is simulated synchronously on
/// the initiator, exactly like the one-sided ops above it — so links need
/// no locks. Channel registration happens in serial context (structure
/// constructors between team.run calls); per-channel chaos counters are
/// relaxed atomics because all ranks bump them.
namespace hipmer::pgas {

class Fabric;

/// Thrown by the sender whose peer exceeded the retry deadline. Derives
/// RankKilled so ThreadTeam::run's unwind machinery (arrive_and_drop, the
/// shared fired flag) treats a suspect peer exactly like a killed rank.
class PeerSuspect : public RankKilled {
 public:
  PeerSuspect(int rank, int peer, const std::string& channel, int attempts)
      : RankKilled(rank, "peer " + std::to_string(peer) +
                             " suspect on channel '" + channel + "' after " +
                             std::to_string(attempts) + " attempts"),
        peer_(peer) {}

  [[nodiscard]] int peer() const noexcept { return peer_; }

 private:
  int peer_;
};

/// Decoded envelope. The wire layout (io::wire framing) is
///   [u32 magic][u32 channel][u32 src][u32 dst][u64 seq]
///   [u32 payload_len][payload bytes][u32 crc32c]
/// with the CRC covering every preceding byte.
struct Envelope {
  std::uint32_t channel = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;
};

inline constexpr std::uint32_t kEnvelopeMagic = 0x48564E45u;  // "ENVH"

[[nodiscard]] std::vector<std::byte> frame_envelope(const Envelope& env);
/// Throws io::wire::TruncatedError (naming the field that ran off the end)
/// or io::wire::CorruptError (bad magic / CRC mismatch / inconsistent
/// lengths).
[[nodiscard]] Envelope decode_envelope(const std::byte* data,
                                       std::size_t size);

class Transport {
 public:
  using ChannelId = std::uint32_t;

  /// Retry-histogram buckets: sends that succeeded on attempt 0, 1, ...,
  /// with the last bucket absorbing everything >= kHistBuckets-1.
  static constexpr std::size_t kHistBuckets = 8;

  Transport(int nranks, FaultInjector& faults)
      : nranks_(nranks), faults_(&faults) {
    channels_.reserve(kMaxChannels);
  }

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Attach the delivery fabric (called once by ThreadTeam before any
  /// traffic). On a multi-process fabric, sends to remote ranks ship the
  /// framed envelope over it instead of running the receiver state machine
  /// locally; the protocol above (seq/dedup/reorder/retry/chaos fates) is
  /// unchanged — the sender computes chaos fates deterministically, so it
  /// knows the outcome of every attempt without an ack round-trip.
  void attach_fabric(Fabric& fabric);

  /// Whether `rank`'s receive state machine lives in another process.
  [[nodiscard]] bool remote(int rank) const noexcept {
    return multiproc_ && rank != my_rank_;
  }

  /// Receiver-side apply function for envelopes arriving over a
  /// multi-process fabric, registered per channel (serial context). The
  /// threads fabric never uses it — local delivery stays the inline
  /// `deliver` callable handed to send()/drain().
  using WireHandler = std::function<void(int src, int dst,
                                         const std::byte* data,
                                         std::size_t size)>;
  void set_handler(ChannelId ch, WireHandler fn);

  /// Entry point for an envelope that crossed the fabric: runs the
  /// receiver state machine (CRC check, dedup, reorder buffering) against
  /// this process's half of the (channel, src, dst) link and applies via
  /// the channel's registered handler. `stats` is this process's mirror of
  /// the *sender's* counters, so dup/corrupt/reorder counts land where the
  /// threads fabric puts them and global sums agree across backends.
  void on_wire(ChannelId ch, int src, int dst, const std::byte* data,
               std::size_t size, CommStats& stats);

  /// Register a named channel (serial context: structure constructors run
  /// between team.run calls). The name keys per-channel chaos overrides
  /// and labels the retry histogram.
  ChannelId open_channel(std::string name);

  /// Rename a channel (serial context) — tables learn their diagnostic
  /// name after construction via set_name. Re-resolves chaos overrides.
  void set_channel_name(ChannelId ch, std::string name);

  /// Arm (or disarm, with a default plan) the chaos schedule. Serial
  /// context only.
  void set_plan(ChaosPlan plan);

  /// Serial context, between jobs on a long-lived team: drop every
  /// channel (each job constructs its comm structures — and therefore its
  /// channels — afresh, and the registry cap would otherwise exhaust
  /// after ~100 jobs), clear stage/blackhole/suspect state, and start
  /// link sequencing over. Must not be called while any registered
  /// structure is alive.
  void reset_for_job();

  [[nodiscard]] const ChaosPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool chaos_enabled() const noexcept { return chaos_on_; }

  /// Serial context: announce the next stage so blackhole rules can arm.
  void begin_stage(const std::string& name);

  /// Rank currently blackholed by a triggered rule, or -1.
  [[nodiscard]] int blackholed_rank() const noexcept {
    return blackhole_rank_;
  }
  /// Peer declared suspect by a retry-deadline expiry, or -1.
  [[nodiscard]] int suspect_peer() const noexcept {
    return suspect_peer_.load(std::memory_order_relaxed);
  }

  /// Retry deadline: a send that is not acked within this many delivery
  /// attempts declares the peer suspect. With per-attempt loss p the
  /// probability of a false suspect is p^max_attempts (~1e-20 at p=0.1).
  void set_max_attempts(int n) { max_attempts_ = n < 1 ? 1 : n; }
  [[nodiscard]] int max_attempts() const noexcept { return max_attempts_; }

  /// Send one batch payload from `src` to `dst` on `ch`. `deliver(dst,
  /// data, size)` is the receiver-side apply function; it is invoked
  /// exactly once per distinct envelope, in per-link seq order, and never
  /// for duplicates. It may be invoked zero times now (envelope held in
  /// the in-network limbo under reorder/delay chaos) — callers drain at
  /// phase boundaries. Throws PeerSuspect after the retry deadline.
  template <typename Deliver>
  void send(int src, int dst, ChannelId ch, std::vector<std::byte> payload,
            CommStats& stats, Deliver&& deliver);

  /// Release every in-network (limbo) envelope from `src` on `ch`, in
  /// order. Must be called where the protocol needs "all sends applied"
  /// (DistHashMap::flush / process_lookups do); after drain, pending() is
  /// 0 and every reorder buffer the drain touched is empty.
  template <typename Deliver>
  void drain(int src, ChannelId ch, CommStats& stats, Deliver&& deliver);

  /// Envelopes from `src` still in the network (limbo) on `ch`. Counted
  /// into the table drain invariants (a limbo'd store batch is un-applied
  /// state exactly like an unflushed row).
  [[nodiscard]] std::size_t pending(int src, ChannelId ch) const;

  /// Per-channel retry histogram + backoff accounting, for CommStats-style
  /// reporting ("channel kcount.counts/store: 9841 0-retry, 112 1-retry,
  /// ..."). Aggregated over all ranks.
  struct ChannelReport {
    std::string name;
    std::array<std::uint64_t, kHistBuckets> attempts_hist{};
    std::uint64_t backoff_ticks = 0;
  };
  [[nodiscard]] std::vector<ChannelReport> channel_reports() const;
  [[nodiscard]] std::string format_retry_histograms() const;

 private:
  /// Per-(src, dst) link state. Owned exclusively by src's thread.
  struct Link {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_recv_seq = 0;
    /// Received ahead of sequence, keyed by seq (framed envelope bytes).
    std::map<std::uint64_t, std::vector<std::byte>> reorder;
    /// In-network envelopes (reorder/delay fates): released FIFO when
    /// `countdown` later sends complete on this link, or at drain().
    struct Held {
      std::vector<std::byte> env;
      int countdown = 1;
    };
    std::deque<Held> limbo;
  };

  struct Channel {
    std::string name;
    ChaosProbs probs;  // resolved against the plan at open/rename/set_plan
    /// rows[src] — lazily allocated vector of P links, touched only by
    /// src's thread (the AggregatingEngine row idiom). On a multi-process
    /// fabric the halves of a link are disjoint: process r touches
    /// rows[r][*] as a sender (send seq, limbo) and rows[*][r] as a
    /// receiver (recv seq, reorder buffer), so the same layout serves
    /// both backends without locks.
    std::vector<std::unique_ptr<std::vector<Link>>> rows;
    /// Receiver-side apply for fabric-delivered envelopes (proc only).
    WireHandler handler;
    std::array<std::atomic<std::uint64_t>, kHistBuckets> hist{};
    std::atomic<std::uint64_t> backoff_ticks{0};
  };

  Link& link_of(Channel& chan, int src, int dst) {
    auto& slot = chan.rows[static_cast<std::size_t>(src)];
    if (slot == nullptr)
      slot = std::make_unique<std::vector<Link>>(
          static_cast<std::size_t>(nranks_));
    return (*slot)[static_cast<std::size_t>(dst)];
  }

  Channel& channel(ChannelId ch) {
    assert(ch < count_.load(std::memory_order_acquire));
    return *channels_[ch];
  }

  [[nodiscard]] bool blackholed(int src, int dst) const noexcept {
    const int bh = blackhole_rank_;
    return bh >= 0 && (src == bh || dst == bh);
  }

  /// Deterministic virtual backoff for the k-th retry: exponential base
  /// with decorrelated jitter. No thread sleeps — the simulated fabric
  /// retries instantly — but the ticks are accounted per channel so tests
  /// and reports can assert the policy.
  [[nodiscard]] std::uint64_t backoff_ticks(std::uint32_t ch, int src,
                                            int dst, std::uint64_t seq,
                                            int attempt) const noexcept {
    const std::uint64_t base = 16;
    const int shift = attempt < 10 ? attempt : 10;
    const std::uint64_t jitter =
        chaos_mix(plan_.seed, ch, src, dst, seq,
                  0x6a697474ULL ^ static_cast<std::uint64_t>(attempt)) %
        base;
    return (base << shift) + jitter;
  }

  enum class Receipt { kAck, kRejected };

  /// Receiver-side state machine, run on the sender's thread (synchronous
  /// simulated delivery). Dedup/reorder decisions precede the user apply;
  /// `next_recv_seq` advances *before* deliver runs so an envelope whose
  /// handler throws mid-apply is never re-applied by a retry (idempotence
  /// under at-least-once).
  template <typename Deliver>
  Receipt receive(ChannelId ch, Link& link,
                  const std::vector<std::byte>& env_bytes, CommStats& stats,
                  Deliver&& deliver) {
    Envelope env;
    try {
      env = decode_envelope(env_bytes.data(), env_bytes.size());
    } catch (const io::wire::Error&) {
      // Truncated or corrupt frame: reject so the sender retransmits.
      stats.add_transport_corrupt();
      return Receipt::kRejected;
    }
    if (env.seq < link.next_recv_seq) {
      // Duplicate of an envelope already applied (or a retransmit racing
      // its own late ack): idempotent drop.
      stats.add_transport_dup();
      return Receipt::kAck;
    }
    if (env.seq > link.next_recv_seq) {
      // Out of sequence: hold until the gap fills. A duplicate of an
      // already-buffered future envelope is still a duplicate.
      if (link.reorder.count(env.seq) != 0) {
        stats.add_transport_dup();
      } else {
        stats.add_transport_reorder();
        link.reorder.emplace(env.seq, env_bytes);
      }
      return Receipt::kAck;
    }
    link.next_recv_seq = env.seq + 1;  // advance BEFORE apply (idempotence)
    deliver(static_cast<int>(env.dst), env.payload.data(),
            env.payload.size());
    // The fresh envelope may have filled the gap in front of buffered
    // successors; apply them in order. Extraction precedes apply for the
    // same exception-safety reason.
    while (!link.reorder.empty() &&
           link.reorder.begin()->first == link.next_recv_seq) {
      auto node = link.reorder.extract(link.reorder.begin());
      Envelope next = decode_envelope(node.mapped().data(),
                                      node.mapped().size());
      link.next_recv_seq = next.seq + 1;
      deliver(static_cast<int>(next.dst), next.payload.data(),
              next.payload.size());
    }
    (void)ch;
    return Receipt::kAck;
  }

  /// Count down and release in-network envelopes after a completed send
  /// on the same link. Pops before applying so reentrant sends from a
  /// deliver handler never see a half-released deque.
  template <typename Deliver>
  void release_limbo(ChannelId ch, Link& link, CommStats& stats,
                     Deliver&& deliver) {
    for (auto& held : link.limbo) --held.countdown;
    while (!link.limbo.empty() && link.limbo.front().countdown <= 0) {
      auto env = std::move(link.limbo.front().env);
      link.limbo.pop_front();
      receive(ch, link, env, stats, deliver);  // pristine bytes: always acked
    }
  }

  [[noreturn]] void declare_suspect(int src, int dst, Channel& chan,
                                    Link& link, int attempts);

  /// Remote-destination counterpart of send()'s fate loop: identical
  /// chaos decisions and retry/histogram accounting, but attempts ship
  /// envelopes over the fabric instead of running receive() locally.
  void send_remote(ChannelId ch, Channel& chan, Link& link, int src, int dst,
                   std::vector<std::byte>&& wire, std::uint64_t seq,
                   CommStats& stats);
  void ship_remote(ChannelId ch, int dst, const std::vector<std::byte>& wire);
  void release_limbo_remote(ChannelId ch, Link& link, int dst);

  int nranks_;
  FaultInjector* faults_;
  Fabric* fabric_ = nullptr;
  bool multiproc_ = false;
  int my_rank_ = -1;
  ChaosPlan plan_;
  bool chaos_on_ = false;
  /// Stage occurrence counts + armed blackhole (serial-context writes,
  /// like FaultInjector's plan state; thread creation synchronizes).
  std::map<std::string, int> stage_seen_;
  int blackhole_rank_ = -1;
  int max_attempts_ = 24;
  std::atomic<int> suspect_peer_{-1};

  /// Channel registry. Appended under mutex; readers index the vector
  /// without locking, which is safe because the capacity is reserved up
  /// front (open_channel asserts the bound) so the element array never
  /// reallocates.
  static constexpr std::size_t kMaxChannels = 1024;
  mutable std::mutex open_mu_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<std::uint32_t> count_{0};
};

// ---- template implementations ----

template <typename Deliver>
void Transport::send(int src, int dst, ChannelId ch,
                     std::vector<std::byte> payload, CommStats& stats,
                     Deliver&& deliver) {
  Channel& chan = channel(ch);
  Link& link = link_of(chan, src, dst);
  Envelope env;
  env.channel = ch;
  env.src = static_cast<std::uint32_t>(src);
  env.dst = static_cast<std::uint32_t>(dst);
  env.seq = link.next_send_seq++;
  env.payload = std::move(payload);
  std::vector<std::byte> wire = frame_envelope(env);

  if (remote(dst)) {
    // The receiver's state machine lives in dst's process; `deliver` is
    // unused there (the channel's registered handler applies instead).
    send_remote(ch, chan, link, src, dst, std::move(wire), env.seq, stats);
    return;
  }

  // Loopback (self-send) and chaos-off traffic still runs the full
  // seq/CRC/dedup protocol, but the fabric never misbehaves: a self-send
  // never crosses the network, even on a blackholed rank.
  const bool lossy =
      src != dst && (blackholed(src, dst) || (chaos_on_ && chan.probs.any()));
  if (!lossy) {
    receive(ch, link, wire, stats, deliver);
    chan.hist[0].fetch_add(1, std::memory_order_relaxed);
    release_limbo(ch, link, stats, deliver);
    return;
  }

  int attempt = 0;
  for (;;) {
    bool acked = false;
    bool in_network = false;
    ChaosFate fate = blackholed(src, dst)
                         ? ChaosFate::kDrop
                         : chaos_fate(chan.probs, plan_.seed, ch, src, dst,
                                      env.seq, attempt);
    switch (fate) {
      case ChaosFate::kDeliver:
        acked = receive(ch, link, wire, stats, deliver) == Receipt::kAck;
        break;
      case ChaosFate::kDrop:
        break;  // lost in the fabric
      case ChaosFate::kDuplicate: {
        // Fabric-level duplication: the same frame arrives twice; the
        // second copy is deduped by the receiver (seq < expected).
        acked = receive(ch, link, wire, stats, deliver) == Receipt::kAck;
        receive(ch, link, wire, stats, deliver);
        break;
      }
      case ChaosFate::kCorrupt: {
        // Flip one byte of a copy (the sender keeps the pristine frame
        // for the retransmit). The receiver's CRC rejects it.
        std::vector<std::byte> bad = wire;
        const std::uint64_t h =
            chaos_mix(plan_.seed, ch, src, dst, env.seq,
                      0x636f7272ULL ^ static_cast<std::uint64_t>(attempt));
        const std::size_t pos = static_cast<std::size_t>(h % bad.size());
        const auto bit = static_cast<unsigned>((h >> 32) & 7);
        bad[pos] ^= static_cast<std::byte>(1u << bit);
        receive(ch, link, bad, stats, deliver);  // rejected: CRC mismatch
        break;
      }
      case ChaosFate::kReorder:
        link.limbo.push_back(Link::Held{std::move(wire), 1});
        in_network = true;
        break;
      case ChaosFate::kDelay:
        link.limbo.push_back(Link::Held{std::move(wire), 2});
        in_network = true;
        break;
    }
    if (in_network) return;  // will ack on a later release/drain
    if (acked) {
      const std::size_t bucket = static_cast<std::size_t>(attempt) <
                                         kHistBuckets - 1
                                     ? static_cast<std::size_t>(attempt)
                                     : kHistBuckets - 1;
      chan.hist[bucket].fetch_add(1, std::memory_order_relaxed);
      release_limbo(ch, link, stats, deliver);
      return;
    }
    ++attempt;
    stats.add_transport_retry();
    chan.backoff_ticks.fetch_add(
        backoff_ticks(ch, src, dst, env.seq, attempt),
        std::memory_order_relaxed);
    if (attempt >= max_attempts_) declare_suspect(src, dst, chan, link, attempt);
  }
}

template <typename Deliver>
void Transport::drain(int src, ChannelId ch, CommStats& stats,
                      Deliver&& deliver) {
  Channel& chan = channel(ch);
  auto* row = chan.rows[static_cast<std::size_t>(src)].get();
  if (row == nullptr) return;
  for (int dst = 0; dst < nranks_; ++dst) {
    Link& link = (*row)[static_cast<std::size_t>(dst)];
    if (remote(dst)) {
      // Ship everything still in the simulated network; the receiver's
      // reorder buffer empties once the late envelopes land (guaranteed
      // applied before the next barrier release by router FIFO order).
      while (!link.limbo.empty()) {
        auto env = std::move(link.limbo.front().env);
        link.limbo.pop_front();
        ship_remote(ch, dst, env);
      }
      continue;
    }
    while (!link.limbo.empty()) {
      auto env = std::move(link.limbo.front().env);
      link.limbo.pop_front();
      receive(ch, link, env, stats, deliver);
    }
    // Limbo held the only gaps; once it drains, everything buffered
    // out-of-sequence has been applied.
    assert(link.reorder.empty());
  }
}

inline std::size_t Transport::pending(int src, ChannelId ch) const {
  const Channel& chan = *channels_[ch];
  const auto* row = chan.rows[static_cast<std::size_t>(src)].get();
  if (row == nullptr) return 0;
  std::size_t total = 0;
  for (const auto& link : *row) total += link.limbo.size();
  return total;
}

}  // namespace hipmer::pgas
