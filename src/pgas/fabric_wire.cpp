#include "pgas/fabric_wire.hpp"

#include <sstream>

#include "io/wire.hpp"
#include "util/hash.hpp"

namespace hipmer::pgas {

namespace {

std::string_view as_view(const std::vector<std::byte>& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::vector<std::byte> to_bytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

/// Wire booleans are strict 0/1: any other value means the stream is not
/// what the writer produced, and accepting it would let corrupt bytes
/// decode to the same message (the byte-flip sweeps catch exactly this).
// wire-helper: get_flag u8
bool get_flag(io::wire::Reader& r, const char* field) {
  const auto v = r.get_pod_checked<std::uint8_t>(field);
  if (v > 1)
    throw io::wire::CorruptError(std::string("wire: corrupt: flag '") + field +
                                 "' is neither 0 nor 1");
  return v != 0;
}

}  // namespace

// wire-schema: fabric_frame writer
std::vector<std::byte> encode_frame(const Frame& f) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + f.payload.size() + 4);
  io::wire::Writer w(out);
  w.put_u32(kFrameMagic);
  w.put_u32(static_cast<std::uint32_t>(f.kind));
  w.put_u32(f.channel);
  w.put_u32(f.src);
  w.put_u32(f.dst);
  w.put_bytes(as_view(f.payload));
  w.put_u32(util::crc32c(out.data(), out.size()));
  return out;
}

// wire-schema: fabric_frame reader
Frame decode_frame(const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  const auto magic = r.get_pod_checked<std::uint32_t>("frame magic");
  if (magic != kFrameMagic)
    throw io::wire::CorruptError("wire: corrupt: fabric frame magic mismatch");
  Frame f;
  const auto kind = r.get_pod_checked<std::uint32_t>("frame kind");
  if (kind < static_cast<std::uint32_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint32_t>(FrameKind::kBye))
    throw io::wire::CorruptError("wire: corrupt: unknown fabric frame kind");
  f.kind = static_cast<FrameKind>(kind);
  f.channel = r.get_pod_checked<std::uint32_t>("frame channel");
  f.src = r.get_pod_checked<std::uint32_t>("frame src");
  f.dst = r.get_pod_checked<std::uint32_t>("frame dst");
  const auto len = r.get_pod_checked<std::uint32_t>("frame payload length");
  r.require(len, "frame payload");
  f.payload.resize(len);
  if (len > 0) r.get_raw(f.payload.data(), len, "frame payload");
  const std::size_t covered = size - r.remaining();
  const auto stored = r.get_pod_checked<std::uint32_t>("frame crc");  // wire: crc32
  const std::uint32_t computed = util::crc32c(data, covered);
  if (stored != computed) {
    std::ostringstream os;
    os << "wire: corrupt: fabric frame crc mismatch (stored 0x" << std::hex
       << stored << ", computed 0x" << computed << ")";
    throw io::wire::CorruptError(os.str());
  }
  if (!r.done())
    throw io::wire::CorruptError("wire: corrupt: trailing bytes after frame");
  return f;
}

// wire-schema: fabric_barrier_record writer
std::vector<std::byte> encode_barrier_record(const BarrierRecordMsg& msg) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(msg.kind);
  w.put_bytes(msg.file);
  w.put_u32(msg.line);
  w.put_bytes(msg.func);
  return out;
}

// wire-schema: fabric_barrier_record reader
BarrierRecordMsg decode_barrier_record(const std::byte* data,
                                       std::size_t size) {
  io::wire::Reader r(data, size);
  BarrierRecordMsg msg;
  msg.kind = r.get_u32_checked("record kind");
  msg.file = r.get_bytes_checked("record file");
  msg.line = r.get_u32_checked("record line");
  msg.func = r.get_bytes_checked("record func");
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after barrier record");
  return msg;
}

// wire-schema: fabric_barrier_collect writer
std::vector<std::byte> encode_barrier_collect(const BarrierCollectMsg& msg) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_pod<std::uint8_t>(msg.slot_changed ? 1 : 0);
  if (msg.slot_changed) {
    w.put_bytes(as_view(msg.slot));
  }
  w.put_pod<std::uint8_t>(msg.has_record ? 1 : 0);
  if (msg.has_record) {
    w.put_bytes(as_view(msg.record));
  }
  return out;
}

// wire-schema: fabric_barrier_collect reader
BarrierCollectMsg decode_barrier_collect(const std::byte* data,
                                         std::size_t size) {
  io::wire::Reader r(data, size);
  BarrierCollectMsg msg;
  msg.slot_changed = get_flag(r, "barrier slot flag");
  if (msg.slot_changed) {
    msg.slot = to_bytes(r.get_bytes_checked("barrier slot"));
  }
  msg.has_record = get_flag(r, "barrier record flag");
  if (msg.has_record) {
    msg.record = to_bytes(r.get_bytes_checked("barrier record"));
  }
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after barrier collect");
  return msg;
}

// wire-schema: fabric_release writer
std::vector<std::byte> encode_release(const ReleaseMsg& msg) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(static_cast<std::uint32_t>(msg.slots.size()));
  for (const auto& [rank, slot] : msg.slots) {
    w.put_u32(rank);
    w.put_bytes(as_view(slot));
  }
  w.put_pod<std::uint8_t>(msg.records_all ? 1 : 0);
  if (msg.records_all) {
    for (const auto& rec : msg.records) {  // wire: loop nranks
      w.put_bytes(as_view(rec));
    }
  }
  return out;
}

// wire-schema: fabric_release reader
ReleaseMsg decode_release(const std::byte* data, std::size_t size,
                          int nranks) {
  io::wire::Reader r(data, size);
  ReleaseMsg msg;
  const auto nchanged = r.get_u32_checked("release count");
  for (std::uint32_t i = 0; i < nchanged; ++i) {
    const auto rank = r.get_u32_checked("release rank");
    auto slot = to_bytes(r.get_bytes_checked("release slot"));
    msg.slots.emplace_back(rank, std::move(slot));
  }
  msg.records_all = get_flag(r, "release record flag");
  if (msg.records_all) {
    for (int rank = 0; rank < nranks; ++rank) {  // wire: loop nranks
      msg.records.push_back(to_bytes(r.get_bytes_checked("release record")));
    }
  }
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after release");
  return msg;
}

// wire-schema: fabric_roster writer
std::vector<std::byte> encode_roster(std::uint32_t nranks) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(nranks);
  return out;
}

// wire-schema: fabric_roster reader
std::uint32_t decode_roster(const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  const auto nranks = r.get_u32_checked("roster nranks");
  if (!r.done())
    throw io::wire::CorruptError("wire: corrupt: trailing bytes after roster");
  return nranks;
}

// wire-schema: fabric_serial_release writer
std::vector<std::byte> encode_serial_release(
    const std::vector<std::vector<std::byte>>& parts) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(static_cast<std::uint32_t>(parts.size()));
  for (const auto& part : parts) {
    w.put_bytes(as_view(part));
  }
  return out;
}

// wire-schema: fabric_serial_release reader
std::vector<std::vector<std::byte>> decode_serial_release(
    const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  const auto p = r.get_u32_checked("serial count");
  std::vector<std::vector<std::byte>> parts;
  parts.reserve(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    parts.push_back(to_bytes(r.get_bytes_checked("serial part")));
  }
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after serial release");
  return parts;
}

}  // namespace hipmer::pgas
