#pragma once

#include <cassert>

/// Rank-to-node mapping for the simulated machine.
///
/// HipMer's communication optimizations distinguish *on-node* accesses
/// (shared-memory, cheap) from *off-node* accesses (network, expensive);
/// the oracle partitioner even has a node-granularity mode (§3.2). The
/// simulator keeps that structure: P logical ranks are grouped into nodes of
/// `ranks_per_node` consecutive ranks, mirroring Edison's 24 cores/node.
namespace hipmer::pgas {

struct Topology {
  int nranks = 1;
  int ranks_per_node = 24;  // Edison: two 12-core Ivy Bridge sockets.

  [[nodiscard]] constexpr int node_of(int rank) const noexcept {
    return rank / ranks_per_node;
  }

  [[nodiscard]] constexpr int num_nodes() const noexcept {
    return (nranks + ranks_per_node - 1) / ranks_per_node;
  }

  [[nodiscard]] constexpr bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return nranks >= 1 && ranks_per_node >= 1;
  }
};

}  // namespace hipmer::pgas
