#include "pgas/thread_team.hpp"

#include <cassert>
#include <mutex>

namespace hipmer::pgas {

ThreadTeam::ThreadTeam(Topology topo)
    : topo_(topo),
      barrier_(topo.nranks),
      transport_(topo.nranks, faults_),
#if defined(HIPMER_CHECKED)
      checker_(*this, topo.nranks),
#endif
      slots_(static_cast<std::size_t>(topo.nranks)) {
  assert(topo_.valid());
  stats_.reserve(static_cast<std::size_t>(topo_.nranks));
  for (int r = 0; r < topo_.nranks; ++r)
    stats_.push_back(std::make_unique<CommStats>());
}

void ThreadTeam::run(const std::function<void(Rank&)>& fn) {
#if defined(HIPMER_CHECKED)
  // A run() boundary is a full synchronization point — the previous SPMD
  // body's threads joined before this one spawns — so stores from an
  // earlier run() can never race reads in this one. Advance every rank's
  // epoch (serial context) so the checker sees the boundary as it would a
  // barrier.
  for (int r = 0; r < topo_.nranks; ++r) checker_.advance_epoch(r);
#endif
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&](int rank_id) {
    Rank rank(*this, rank_id);
    try {
      fn(rank);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // A rank that dies mid-phase would deadlock peers waiting at the next
      // barrier. Keep satisfying barriers until everyone drains: drop this
      // rank's participation by arriving without work. There is no portable
      // way to know how many barriers remain, so we adopt the discipline
      // that SPMD bodies must not throw between collectives except at
      // top-level; tests enforce this by construction. Here we simply
      // arrive-and-drop so remaining ranks are released once.
      barrier_.arrive_and_drop();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(topo_.nranks));
  for (int r = 0; r < topo_.nranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<CommStatsSnapshot> ThreadTeam::snapshot_all() const {
  std::vector<CommStatsSnapshot> out;
  out.reserve(stats_.size());
  for (const auto& s : stats_) out.push_back(s->snapshot());
  return out;
}

void ThreadTeam::reset_stats() {
  for (auto& s : stats_) s->reset();
}

}  // namespace hipmer::pgas
