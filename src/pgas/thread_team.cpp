#include "pgas/thread_team.hpp"

#include <cassert>
#include <mutex>

namespace hipmer::pgas {

namespace {

std::unique_ptr<Fabric> make_fabric(int nranks, const FabricConfig& cfg) {
  switch (cfg.mode) {
    case FabricConfig::Mode::kProcCoordinator:
      return SocketFabric::coordinator(nranks, cfg.socket_path,
                                       cfg.worker_argv);
    case FabricConfig::Mode::kProcWorker:
      return SocketFabric::worker(nranks, cfg.my_rank, cfg.socket_path);
    case FabricConfig::Mode::kThreads:
      break;
  }
  return std::make_unique<InProcessFabric>(nranks);
}

}  // namespace

ThreadTeam::ThreadTeam(Topology topo, FabricConfig fabric)
    : topo_(topo),
      fabric_(make_fabric(topo.nranks, fabric)),
      transport_(topo.nranks, faults_),
#if defined(HIPMER_CHECKED)
      checker_(*this, topo.nranks),
#endif
      slots_(static_cast<std::size_t>(topo.nranks)) {
  assert(topo_.valid());
  stats_.reserve(static_cast<std::size_t>(topo_.nranks));
  for (int r = 0; r < topo_.nranks; ++r)
    stats_.push_back(std::make_unique<CommStats>());

  transport_.attach_fabric(*fabric_);
  // Inbound envelopes run the receiver state machine against this
  // process's link half, charging receiver-observed events (dup, corrupt,
  // reorder) to this process's mirror of the *sender's* counters so
  // global sums match the threads fabric.
  fabric_->set_data_sink([this](std::uint32_t ch, int src, int dst,
                                const std::byte* data, std::size_t size) {
    transport_.on_wire(ch, src, dst, data, size, stats(src));
  });
  // Remote ranks' collective slots arrive at barrier release.
  fabric_->set_slot_writer([this](int rank, std::vector<std::byte> slot) {
    slots_[static_cast<std::size_t>(rank)] = std::move(slot);
  });
  // A RANKDOWN trips the shared kill flag before the fabric's await throws
  // RankKilled, so degrade paths (DistHashMap, caches) observe a fired
  // injector exactly like a local kill.
  fabric_->set_down_hook([this](int rank) {
    (void)rank;
    faults_.trip();
  });
#if defined(HIPMER_CHECKED)
  fabric_->set_record_installer(
      [this](int rank, std::uint32_t kind, const std::string& file,
             std::uint32_t line, const std::string& func) {
        checker_.install_record(rank, static_cast<int>(kind), file, line,
                                func);
      });
#endif
}

void ThreadTeam::run(const std::function<void(Rank&)>& fn) {
#if defined(HIPMER_CHECKED)
  // A run() boundary is a full synchronization point — the previous SPMD
  // body's threads joined before this one spawns — so stores from an
  // earlier run() can never race reads in this one. Advance every rank's
  // epoch (serial context) so the checker sees the boundary as it would a
  // barrier.
  for (int r = 0; r < topo_.nranks; ++r) checker_.advance_epoch(r);
#endif
  if (multiprocess()) {
    // One rank per process: the SPMD body runs directly on this thread. A
    // throw announces this rank down so peers unwind through RankKilled at
    // their next fabric await instead of hanging.
    Rank rank(*this, my_rank());
    try {
      fn(rank);
    } catch (...) {
      fabric_->announce_down(my_rank());
      throw;
    }
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&](int rank_id) {
    Rank rank(*this, rank_id);
    try {
      fn(rank);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // A rank that dies mid-phase would deadlock peers waiting at the next
      // barrier. Keep satisfying barriers until everyone drains: drop this
      // rank's participation by arriving without work. There is no portable
      // way to know how many barriers remain, so we adopt the discipline
      // that SPMD bodies must not throw between collectives except at
      // top-level; tests enforce this by construction. Here we simply
      // arrive-and-drop so remaining ranks are released once.
      fabric_->abandon(rank_id);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(topo_.nranks));
  for (int r = 0; r < topo_.nranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<CommStatsSnapshot> ThreadTeam::snapshot_all() const {
  std::vector<CommStatsSnapshot> out;
  out.reserve(stats_.size());
  for (const auto& s : stats_) out.push_back(s->snapshot());
  return out;
}

std::vector<CommStatsSnapshot> ThreadTeam::snapshot_all_global() {
  auto local = snapshot_all();
  if (!multiprocess()) return local;
  const std::size_t bytes = local.size() * sizeof(CommStatsSnapshot);
  std::vector<std::byte> mine(bytes);
  std::memcpy(mine.data(), local.data(), bytes);
  auto parts = fabric_->serial_exchange(std::move(mine));
  std::vector<CommStatsSnapshot> global(local.size());
  for (const auto& part : parts) {
    if (part.size() < bytes) continue;
    for (std::size_t r = 0; r < global.size(); ++r) {
      CommStatsSnapshot snap;
      std::memcpy(&snap, part.data() + r * sizeof(CommStatsSnapshot),
                  sizeof(CommStatsSnapshot));
      global[r] += snap;
    }
  }
  return global;
}

void ThreadTeam::reset_stats() {
  for (auto& s : stats_) s->reset();
}

void ThreadTeam::reset_for_job() {
  faults_.clear();
  transport_.reset_for_job();
  fabric_->reset_sync();
  reset_stats();
#if defined(HIPMER_CHECKED)
  checker_.reset_for_job();
#endif
}

}  // namespace hipmer::pgas
