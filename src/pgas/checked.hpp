#pragma once

/// Compile-time plumbing for the phase-discipline checker (HIPMER_CHECKED).
///
/// The checker needs the *call site* of every table operation so a violation
/// can report both sides of a conflict ("lookup at align/mer_aligner.cpp:142
/// while rank 3 still had stores buffered from kcount/kmer_analysis.cpp:88").
/// When HIPMER_CHECKED is on, every instrumented entry point grows a trailing
/// defaulted `std::source_location` parameter; when it is off the parameter
/// — and every checker hook — compiles away entirely, so the unchecked build
/// is bit-for-bit the uninstrumented code path.
///
/// Usage in an instrumented signature:
///
///   void update(Rank& rank, const K& key, const V& delta,
///               Policy policy = Policy::kInsert HIPMER_SITE_DEFAULT);
///
/// and to forward the site to an inner call:  inner(args HIPMER_SITE_FWD);

#if defined(HIPMER_CHECKED)

#include <source_location>

namespace hipmer::pgas {
using CallSite = std::source_location;
}  // namespace hipmer::pgas

// Trailing defaulted parameter capturing the caller's location.
#define HIPMER_SITE_DEFAULT \
  , ::hipmer::pgas::CallSite hipmer_site = ::hipmer::pgas::CallSite::current()
// Matching parameter for out-of-line definitions / non-defaulted positions.
#define HIPMER_SITE_PARAM , ::hipmer::pgas::CallSite hipmer_site
// Forward the captured site to an inner instrumented call.
#define HIPMER_SITE_FWD , hipmer_site
// Variants for functions where the site is the only parameter.
#define HIPMER_SITE_DEFAULT0 \
  ::hipmer::pgas::CallSite hipmer_site = ::hipmer::pgas::CallSite::current()
#define HIPMER_SITE_PARAM0 ::hipmer::pgas::CallSite hipmer_site

#else

#define HIPMER_SITE_DEFAULT
#define HIPMER_SITE_PARAM
#define HIPMER_SITE_FWD
#define HIPMER_SITE_DEFAULT0
#define HIPMER_SITE_PARAM0

#endif  // HIPMER_CHECKED

namespace hipmer::pgas {

/// RAII opt-out from the phase rules for one table on one rank: UPC's
/// "relaxed" access mode made explicit. Some protocols *are* mixed-phase by
/// design — the traversal's speculative claim/abort loop interleaves fine
/// RMW claims with batched pre-screen lookups inside a single epoch, and is
/// correct because every entry it touches is guarded by its own claim state.
/// Wrapping such a block in a RelaxedPhase documents that at the call site
/// and silences the checker for exactly that scope; everything outside it
/// stays strict. Compiles to nothing when HIPMER_CHECKED is off.
#if defined(HIPMER_CHECKED)
template <typename Table>
class RelaxedPhase {
 public:
  template <typename RankT>
  RelaxedPhase(RankT& rank, Table& table) : table_(&table), rank_(rank.id()) {
    table_->checked_relaxed_begin(rank_);
  }
  ~RelaxedPhase() { table_->checked_relaxed_end(rank_); }
  RelaxedPhase(const RelaxedPhase&) = delete;
  RelaxedPhase& operator=(const RelaxedPhase&) = delete;

 private:
  Table* table_;
  int rank_;
};
#else
template <typename Table>
class RelaxedPhase {
 public:
  template <typename RankT>
  RelaxedPhase(RankT&, Table&) {}
  RelaxedPhase(const RelaxedPhase&) = delete;
  RelaxedPhase& operator=(const RelaxedPhase&) = delete;
};
#endif

}  // namespace hipmer::pgas
