#pragma once

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>

/// Rank fault injection for checkpoint/restart testing.
///
/// A `FaultPlan` names one rank and one point in the pipeline — a stage (by
/// the name the driver announces via `begin_stage`), which execution of that
/// stage (stages repeat across scaffolding rounds), and the n-th *fault
/// point* the rank passes inside it. Fault points are every collective
/// barrier entry plus an explicit poll at stage entry, so `step = 0` kills a
/// rank exactly at the stage boundary and larger steps kill it mid-stage,
/// between collectives.
///
/// Death semantics mirror a real job: once the planned rank throws
/// `RankKilled`, a shared flag makes every other rank throw at its own next
/// fault point, so no survivor computes past the crash with a missing
/// teammate. Fault points sit at barrier *entry*, after the rank has
/// published any collective payload, so peers released by the dying rank's
/// `arrive_and_drop` never read a half-written slot. A ThreadTeam that took
/// a fault is dead for the rest of that run — `std::barrier::arrive_and_drop`
/// shrinks the barrier — exactly like a killed SPMD job: restart means a
/// fresh team (`pipeline::Pipeline::resume`), or, for a long-lived server,
/// `ThreadTeam::reset_for_job`, which rebuilds the sync state at full
/// strength before the next job.
namespace hipmer::pgas {

struct FaultPlan {
  /// Rank to kill; -1 disarms the plan.
  int rank = -1;
  /// Stage name at which to kill (as announced by FaultInjector::begin_stage).
  std::string stage;
  /// Which execution of that stage (0 = first; stages repeat across rounds).
  int occurrence = 0;
  /// Which fault point within the stage on that rank (0 = stage entry,
  /// k > 0 = the k-th barrier the rank enters inside the stage).
  int step = 0;
  /// SIGKILL the hosting process at the fault point instead of throwing —
  /// a real `kill -9` of a worker on the multi-process fabric (peers learn
  /// of it from the router's EOF -> RANKDOWN broadcast, not the in-process
  /// fired flag). Never set this on the threads fabric: it would kill the
  /// whole simulation.
  bool hard = false;

  [[nodiscard]] bool armed() const noexcept {
    return rank >= 0 && !stage.empty();
  }

  /// Parse "RANK@STAGE[:OCC[:STEP]][,hard]" (the CLI's --kill and the
  /// server's SUBMIT kill= rider). Throws std::runtime_error on a spec
  /// with no '@'.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

/// Thrown on the killed rank, and on every other rank at its next fault
/// point once the kill fired.
class RankKilled : public std::runtime_error {
 public:
  RankKilled(int rank, const std::string& what)
      : std::runtime_error("rank " + std::to_string(rank) + " killed: " + what),
        rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

class FaultInjector {
 public:
  /// Serial context (between team.run calls). Re-arming clears prior state.
  void set_plan(FaultPlan plan) {
    plan_ = std::move(plan);
    fired_.store(false, std::memory_order_relaxed);
    seen_.clear();
    matched_ = false;
    steps_.store(0, std::memory_order_relaxed);
  }

  void clear() { set_plan(FaultPlan{}); }

  [[nodiscard]] bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  /// Externally declare the team dead — the suspect-peer escalation path
  /// of the transport (pgas/transport.hpp). Every rank throws RankKilled
  /// at its next fault point, exactly as if a planned kill had fired.
  void trip() noexcept { fired_.store(true, std::memory_order_release); }

  /// Serial context: announce the stage the next team.run executes.
  void begin_stage(const std::string& name) {
    if (!plan_.armed()) return;
    const int occurrence = seen_[name]++;
    matched_ = name == plan_.stage && occurrence == plan_.occurrence;
    steps_.store(0, std::memory_order_relaxed);
  }

  /// Called by every rank at each fault point; throws RankKilled when the
  /// plan fires (on the planned rank) or has fired (on everyone else).
  void on_fault_point(int rank) {
    // Acquire/release on fired_: the store below publishes the dying
    // rank's final state (its aborted stage's partial writes, the plan
    // text in the exception) and the load here must observe it before a
    // survivor acts on the kill. Relaxed ordering let a survivor race
    // past a fault point without seeing the flag set by a kill that
    // already happened-before its barrier entry.
    if (fired_.load(std::memory_order_acquire))
      throw RankKilled(rank, "aborting with killed teammate");
    if (!matched_ || rank != plan_.rank) return;
    const int step = steps_.fetch_add(1, std::memory_order_relaxed);
    if (step == plan_.step) {
      if (plan_.hard) std::raise(SIGKILL);  // no cleanup, like a real kill -9
      fired_.store(true, std::memory_order_release);
      throw RankKilled(rank, "fault plan at stage '" + plan_.stage +
                                 "' occurrence " +
                                 std::to_string(plan_.occurrence) + " step " +
                                 std::to_string(plan_.step));
    }
  }

 private:
  FaultPlan plan_;
  /// Executions seen per stage name (mutated only in serial context).
  std::map<std::string, int> seen_;
  /// Whether the currently running stage matches the plan (written in
  /// serial context, read by team threads; thread creation synchronizes).
  bool matched_ = false;
  std::atomic<int> steps_{0};
  std::atomic<bool> fired_{false};
};

inline FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string s = spec;
  const auto comma = s.find(',');
  if (comma != std::string::npos) {
    plan.hard = s.substr(comma + 1) == "hard";
    s = s.substr(0, comma);
  }
  const auto at = s.find('@');
  if (at == std::string::npos)
    throw std::runtime_error(
        "bad kill spec (want RANK@STAGE[:OCC[:STEP]][,hard]): " + spec);
  plan.rank = std::atoi(s.substr(0, at).c_str());
  std::string rest = s.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    const std::string tail = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    const auto colon2 = tail.find(':');
    if (colon2 != std::string::npos) {
      plan.occurrence = std::atoi(tail.substr(0, colon2).c_str());
      plan.step = std::atoi(tail.substr(colon2 + 1).c_str());
    } else {
      plan.occurrence = std::atoi(tail.c_str());
    }
  }
  plan.stage = rest;
  return plan;
}

}  // namespace hipmer::pgas
