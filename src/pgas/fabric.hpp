#pragma once

#include <barrier>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pgas/fabric_wire.hpp"

/// Pluggable communication fabric: the *delivery* half of the comm stack.
///
/// The transport (pgas/transport.hpp) owns the protocol — sequencing,
/// dedup, reorder buffering, retry, chaos fates. The fabric underneath owns
/// only delivery: ship bytes from (channel, src) to dst, poll for inbound
/// frames, and provide the synchronization primitives the SPMD engine
/// needs (barrier with collective-slot publication, serial-context
/// exchange, request/response). Two backends:
///
///   - `InProcessFabric` — every rank is a std::thread in this address
///     space. Delivery is the direct call the simulator always made: the
///     sender runs the receiver's state machine synchronously on its own
///     thread, and the barrier is a std::barrier (both refactored here out
///     of transport.cpp / thread_team.cpp). Nothing crosses a socket.
///
///   - `SocketFabric` — every rank is a separate OS process. Rank 0 lives
///     in the coordinating process together with a router thread; ranks
///     1..P-1 are spawned via fork/exec of this binary in `--worker-rank`
///     mode and connect to a Unix-domain socket. All frames flow through
///     the router (a star), which preserves per-connection FIFO order —
///     the property the barrier-as-flush-point contract builds on: every
///     DATA frame a rank sent before its BARRIER is forwarded to its
///     destination's socket before that socket's RELEASE, so serving
///     inbound frames until RELEASE applies everything from the closing
///     phase.
///
/// Handler/service ids are assigned in registration order. Registration
/// happens in serial context during SPMD structure construction, which
/// executes identically in every process, so the ids agree across the team
/// without negotiation.
///
/// Death: a worker that exits without BYE (crash, kill -9) or announces
/// itself down (RankKilled unwind) triggers a RANKDOWN broadcast; every
/// peer trips its FaultInjector and unwinds through the established
/// RankKilled path, surfacing to the driver as a suspect peer exactly like
/// a retry-deadline expiry, so Pipeline::resume restarts from checkpoint.
namespace hipmer::pgas {

// Frame, FrameKind, kFrameMagic and every fabric codec live in
// pgas/fabric_wire.hpp — the wire formats are separated from the delivery
// machinery so wirecheck and the schema sweeps see plain free functions.

class Fabric {
 public:
  /// Receiver entry for kData frames: wired by ThreadTeam to
  /// Transport::on_wire with the sender's stats mirror.
  using DataSink = std::function<void(std::uint32_t channel, int src, int dst,
                                      const std::byte* data, std::size_t size)>;
  /// Fire-and-forget service handler (src, payload).
  using OnewayFn =
      std::function<void(int src, const std::byte* data, std::size_t size)>;
  /// Request/response service handler: returns the response payload.
  using RpcFn = std::function<std::vector<std::byte>(
      int src, const std::byte* data, std::size_t size)>;

  explicit Fabric(int nranks) : nranks_(nranks) {}
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] virtual bool multiprocess() const noexcept = 0;
  /// The one rank hosted by this process (-1 when all ranks are local).
  [[nodiscard]] virtual int my_rank() const noexcept { return -1; }
  /// Whether `rank`'s memory is in this address space.
  [[nodiscard]] bool is_local(int rank) const noexcept {
    return !multiprocess() || rank == my_rank();
  }

  // ---- registries (deterministic construction order => matching ids) ----
  void set_data_sink(DataSink sink) { data_sink_ = std::move(sink); }
  std::uint32_t register_oneway(OnewayFn fn) {
    oneways_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(oneways_.size() - 1);
  }
  std::uint32_t register_rpc(RpcFn fn) {
    rpcs_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(rpcs_.size() - 1);
  }

  // ---- delivery (remote ranks only; local delivery is the direct call) ----
  /// Ship a framed transport envelope to `dst` on `channel`.
  virtual void ship(std::uint32_t channel, int src, int dst,
                    const std::vector<std::byte>& envelope) = 0;
  virtual void send_oneway(std::uint32_t service, int dst,
                           std::vector<std::byte> payload) = 0;
  /// Single-outstanding request/response; serves inbound frames while
  /// blocked so cross-rank progress is guaranteed.
  virtual std::vector<std::byte> rpc(std::uint32_t service, int dst,
                                     std::vector<std::byte> payload) = 0;
  /// Serve inbound frames until `done()` — the await primitive for
  /// protocol layers (outstanding lookup replies, ...).
  virtual void poll_until(const std::function<bool()>& done) = 0;
  /// Serve whatever is already queued or readable, without blocking.
  /// Spin-wait loops (claim-retry, chain traversal) must call this: the
  /// local state they watch is mutated by peer RPCs, which on a
  /// multiprocess fabric land only when the hosting rank serves its inbox.
  /// In-process backends need nothing — peers mutate shared memory
  /// directly.
  virtual void progress() {}

  /// Serial context, between jobs on a long-lived team: rebuild whatever
  /// synchronization state a previous job's fault unwind consumed. The
  /// in-process barrier shrinks permanently when a killed rank
  /// arrive_and_drops, so a server reusing the team across jobs must
  /// restore the full arrival count before the next SPMD body runs.
  /// Backends with no reusable sync state (one process per rank dies with
  /// its job) leave this a no-op.
  virtual void reset_sync() {}

  // ---- synchronization ----
  struct BarrierPoint {
    int rank = 0;
    /// This rank's collective slot, published at the barrier (multiprocess
    /// backends mirror changed slots to every process at release).
    const std::vector<std::byte>* slot = nullptr;
    /// HIPMER_CHECKED barrier record, exchanged so the phase checker's
    /// mismatched-collective comparison runs unmodified across processes.
    bool has_record = false;
    std::uint32_t record_kind = 0;
    const char* record_file = "?";
    std::uint32_t record_line = 0;
    const char* record_func = "?";
  };
  virtual void barrier(const BarrierPoint& pt) = 0;
  /// A rank unwinding out of the SPMD body abandons outstanding barriers.
  virtual void abandon(int rank) = 0;
  /// Serial-context exchange: every process contributes `mine`, every
  /// process receives all P contributions indexed by rank. In-process
  /// backends return just {mine} — the caller already sees all ranks.
  virtual std::vector<std::vector<std::byte>> serial_exchange(
      std::vector<std::byte> mine) = 0;
  /// Broadcast that `rank` is dead (RankKilled unwind).
  virtual void announce_down(int rank) { (void)rank; }

  // ---- hooks wired by ThreadTeam ----
  /// Install a remote rank's published collective slot.
  void set_slot_writer(std::function<void(int, std::vector<std::byte>)> w) {
    slot_writer_ = std::move(w);
  }
  /// Install a remote rank's barrier record (HIPMER_CHECKED).
  void set_record_installer(
      std::function<void(int rank, std::uint32_t kind, const std::string& file,
                         std::uint32_t line, const std::string& func)>
          ins) {
    record_installer_ = std::move(ins);
  }
  /// Called once when a RANKDOWN arrives (trips the FaultInjector before
  /// the serving await throws RankKilled).
  void set_down_hook(std::function<void(int rank)> h) {
    down_hook_ = std::move(h);
  }

 protected:
  int nranks_;
  DataSink data_sink_;
  std::vector<OnewayFn> oneways_;
  std::vector<RpcFn> rpcs_;
  std::function<void(int, std::vector<std::byte>)> slot_writer_;
  std::function<void(int, std::uint32_t, const std::string&, std::uint32_t,
                     const std::string&)>
      record_installer_;
  std::function<void(int)> down_hook_;
};

/// All ranks are std::threads in this address space: delivery is the
/// direct synchronous call (the transport runs the receiver state machine
/// on the sender's thread), the barrier is a std::barrier. The remote
/// delivery entry points are unreachable by construction.
class InProcessFabric final : public Fabric {
 public:
  explicit InProcessFabric(int nranks) : Fabric(nranks) {
    barrier_.emplace(nranks);
  }

  [[nodiscard]] bool multiprocess() const noexcept override { return false; }

  void ship(std::uint32_t, int, int, const std::vector<std::byte>&) override {
    throw std::logic_error("InProcessFabric: ship() on a local fabric");
  }
  void send_oneway(std::uint32_t, int, std::vector<std::byte>) override {
    throw std::logic_error("InProcessFabric: send_oneway() on a local fabric");
  }
  std::vector<std::byte> rpc(std::uint32_t, int,
                             std::vector<std::byte>) override {
    throw std::logic_error("InProcessFabric: rpc() on a local fabric");
  }
  void poll_until(const std::function<bool()>& done) override {
    // Local delivery is synchronous: anything awaited is already done.
    assert(done());
    (void)done;
  }

  void barrier(const BarrierPoint&) override { barrier_->arrive_and_wait(); }
  void abandon(int) override { barrier_->arrive_and_drop(); }
  std::vector<std::vector<std::byte>> serial_exchange(
      std::vector<std::byte> mine) override {
    std::vector<std::vector<std::byte>> out;
    out.push_back(std::move(mine));
    return out;
  }

  /// Rebuild the barrier at full strength: arrive_and_drop from a
  /// RankKilled unwind shrank the expected count for good, and
  /// std::barrier is neither movable nor resettable — re-emplace it.
  void reset_sync() override { barrier_.emplace(nranks_); }

 private:
  // optional<>: see reset_sync.
  std::optional<std::barrier<>> barrier_;
};

/// One rank per OS process over Unix-domain sockets through a router
/// thread in the coordinating (rank 0) process. Nonblocking buffered I/O
/// on every connection: an endpoint that must wait (barrier release, RPC
/// response, outstanding replies) serves inbound frames meanwhile, and a
/// blocked write drains reads into the inbox so the router/endpoint pair
/// can never deadlock on full socket buffers.
class SocketFabric final : public Fabric {
 public:
  /// Rank 0 + router: bind `socket_path`, spawn nranks-1 workers by
  /// fork/exec of `worker_argv` + ["--worker-rank", R], handshake
  /// (HELLO/ROSTER), start routing.
  static std::unique_ptr<SocketFabric> coordinator(
      int nranks, const std::string& socket_path,
      const std::vector<std::string>& worker_argv);
  /// Worker rank `my_rank`: connect to the coordinator's socket.
  static std::unique_ptr<SocketFabric> worker(int nranks, int my_rank,
                                              const std::string& socket_path);

  ~SocketFabric() override;

  [[nodiscard]] bool multiprocess() const noexcept override { return true; }
  [[nodiscard]] int my_rank() const noexcept override { return my_rank_; }
  /// Worker process ids, for reaping/killing on resume (coordinator only).
  [[nodiscard]] const std::vector<long>& worker_pids() const noexcept {
    return pids_;
  }

  void ship(std::uint32_t channel, int src, int dst,
            const std::vector<std::byte>& envelope) override;
  void send_oneway(std::uint32_t service, int dst,
                   std::vector<std::byte> payload) override;
  std::vector<std::byte> rpc(std::uint32_t service, int dst,
                             std::vector<std::byte> payload) override;
  void poll_until(const std::function<bool()>& done) override;
  void progress() override;

  void barrier(const BarrierPoint& pt) override;
  void abandon(int rank) override;
  std::vector<std::vector<std::byte>> serial_exchange(
      std::vector<std::byte> mine) override;
  void announce_down(int rank) override;

 private:
  struct Router;

  SocketFabric(int nranks, int my_rank);

  void send_frame(const Frame& f);
  void pump_writes();
  void read_ready();
  bool dispatch_one();
  void check_down();
  void await(const std::function<bool()>& done);

  int my_rank_ = 0;
  int fd_ = -1;
  std::vector<std::byte> rx_;
  std::vector<std::byte> tx_;
  std::deque<Frame> inbox_;

  // Barrier state: last published slot (delta detection) + release flag.
  std::vector<std::byte> last_pub_;
  bool have_pub_ = false;
  bool released_ = false;

  bool rpc_pending_ = false;
  std::optional<std::vector<std::byte>> rpc_resp_;
  std::optional<std::vector<std::vector<std::byte>>> serial_resp_;

  int down_rank_ = -1;
  bool down_delivered_ = false;
  bool announced_down_ = false;

  // Coordinator only.
  std::unique_ptr<Router> router_;
  std::thread router_thread_;
  std::vector<long> pids_;
};

}  // namespace hipmer::pgas
