#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// Wire formats of the socket fabric, split from the fabric machinery so
/// every codec is a plain annotated free function (wirecheck extracts and
/// diffs writer/reader pairs; tests/test_wire_schemas.cpp sweeps each one
/// with byte flips and truncation).
///
/// Two layers:
///   - the framed envelope every byte on a fabric socket travels in
///     (`Frame` + encode_frame/decode_frame, crc32c-protected), and
///   - the synchronization message payloads that ride inside frames
///     (roster, barrier collect/release, serial release, barrier record).
/// Payload codecs decode post-CRC bytes, but still use the throwing Reader
/// API: a router bug or a version-skewed peer produces a clean CorruptError
/// (peer declared down) instead of a misparse.
namespace hipmer::pgas {

/// One fabric frame. Wire layout (io::wire framing, crc32c like the
/// transport envelope):
///   [u32 magic][u32 kind][u32 channel][u32 src][u32 dst]
///   [u32 payload_len][payload][u32 crc32c]
/// `channel` is the transport channel for kData and the service id for
/// kOneway / kRpcReq / kRpcResp; 0 otherwise.
enum class FrameKind : std::uint32_t {
  kHello = 1,       ///< worker -> coordinator: "rank src is connected"
  kRoster,          ///< coordinator -> worker: team size confirmation
  kData,            ///< a framed transport envelope (channel = ChannelId)
  kBarrier,         ///< endpoint -> router: slot publication + arrival
  kRelease,         ///< router -> endpoints: barrier complete, slot updates
  kSerial,          ///< endpoint -> router: serial-context contribution
  kSerialRelease,   ///< router -> endpoints: all P contributions
  kOneway,          ///< fire-and-forget service message (lookup replies)
  kRpcReq,          ///< request to a registered RPC service (RMW, fetch)
  kRpcResp,         ///< response to the single outstanding RPC
  kRankDown,        ///< src is dead; everyone unwinds via RankKilled
  kBye,             ///< clean shutdown of src's endpoint
};

struct Frame {
  FrameKind kind = FrameKind::kData;
  std::uint32_t channel = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<std::byte> payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x48424146u;  // "FABH"

/// Fixed-size prefix of every frame: magic, kind, channel, src, dst, len.
inline constexpr std::size_t kFrameHeaderBytes = 6 * sizeof(std::uint32_t);

[[nodiscard]] std::vector<std::byte> encode_frame(const Frame& f);
/// Throws io::wire::TruncatedError / CorruptError like decode_envelope.
[[nodiscard]] Frame decode_frame(const std::byte* data, std::size_t size);

// ---- synchronization message payloads --------------------------------------

/// HIPMER_CHECKED barrier record: which collective a rank executed, so the
/// phase checker's mismatched-collective comparison runs across processes.
struct BarrierRecordMsg {
  std::uint32_t kind = 0;
  std::string file;
  std::uint32_t line = 0;
  std::string func;
};

[[nodiscard]] std::vector<std::byte> encode_barrier_record(
    const BarrierRecordMsg& msg);
[[nodiscard]] BarrierRecordMsg decode_barrier_record(
    const std::byte* data, std::size_t size);

/// Endpoint -> router at a barrier: the rank's collective-slot publication
/// (delta-encoded: only when it changed since the last publication) and its
/// optional encoded BarrierRecordMsg.
struct BarrierCollectMsg {
  bool slot_changed = false;
  std::vector<std::byte> slot;    ///< meaningful when slot_changed
  bool has_record = false;
  std::vector<std::byte> record;  ///< encoded BarrierRecordMsg when has_record
};

[[nodiscard]] std::vector<std::byte> encode_barrier_collect(
    const BarrierCollectMsg& msg);
[[nodiscard]] BarrierCollectMsg decode_barrier_collect(
    const std::byte* data, std::size_t size);

/// Router -> endpoints on barrier completion: every slot that changed since
/// the last release, plus (when every endpoint supplied one) the full
/// record set, one encoded BarrierRecordMsg per rank.
struct ReleaseMsg {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> slots;
  bool records_all = false;
  std::vector<std::vector<std::byte>> records;  ///< size nranks iff records_all
};

[[nodiscard]] std::vector<std::byte> encode_release(const ReleaseMsg& msg);
/// `nranks` bounds the record loop — the count is team state, not wire data.
[[nodiscard]] ReleaseMsg decode_release(const std::byte* data,
                                        std::size_t size, int nranks);

/// Coordinator -> worker roster confirmation (handshake).
[[nodiscard]] std::vector<std::byte> encode_roster(std::uint32_t nranks);
[[nodiscard]] std::uint32_t decode_roster(const std::byte* data,
                                          std::size_t size);

/// Router -> endpoints: all P serial-context contributions, indexed by rank.
[[nodiscard]] std::vector<std::byte> encode_serial_release(
    const std::vector<std::vector<std::byte>>& parts);
[[nodiscard]] std::vector<std::vector<std::byte>> decode_serial_release(
    const std::byte* data, std::size_t size);

}  // namespace hipmer::pgas
