#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/hash.hpp"

/// Seeded, deterministic fault schedules for the lossy transport.
///
/// A `ChaosPlan` describes how the simulated fabric misbehaves: per-channel
/// probabilities of dropping, duplicating, reordering, delaying or
/// corrupting an envelope, plus targeted "blackhole rank R after stage S"
/// rules that silence a peer entirely (the scenario that escalates to
/// suspect-peer unwind + checkpoint resume). Every decision is a pure
/// function of (seed, channel, src, dst, seq, attempt) — there is no RNG
/// state to share between rank threads, so schedules are reproducible
/// regardless of thread interleaving and the same seed replays the same
/// faults.
///
/// The plan composes with `FaultPlan` rank kills: both are armed on the
/// team (faults() / transport()), stages are announced to both through
/// `ThreadTeam::begin_stage`, and a chaos-declared suspect peer unwinds
/// through the same `RankKilled` path a planned kill uses.
namespace hipmer::pgas {

/// Per-channel misbehavior probabilities. Fates are mutually exclusive per
/// delivery attempt (one uniform draw against cumulative thresholds), so
/// the sum should stay <= 1; anything left over is a clean delivery.
struct ChaosProbs {
  double drop = 0.0;     ///< envelope lost; sender retries after backoff
  double dup = 0.0;      ///< envelope delivered twice; receiver dedups
  double reorder = 0.0;  ///< envelope held until the next send on the link
  double delay = 0.0;    ///< envelope held for two sends (or until drain)
  double corrupt = 0.0;  ///< one byte flipped; receiver CRC rejects, retry

  [[nodiscard]] bool any() const noexcept {
    return drop > 0 || dup > 0 || reorder > 0 || delay > 0 || corrupt > 0;
  }
};

/// Silence every envelope to or from `rank` once `stage` has begun its
/// `occurrence`-th execution. The victim's peers exhaust their retry
/// deadline and declare it suspect.
struct BlackholeRule {
  int rank = -1;
  std::string stage;
  int occurrence = 0;

  [[nodiscard]] bool armed() const noexcept {
    return rank >= 0 && !stage.empty();
  }
};

class ChaosPlan {
 public:
  std::uint64_t seed = 0;
  /// Probabilities for channels with no matching override.
  ChaosProbs defaults;
  /// (substring pattern, probs) — a channel named "kcount.counts/store"
  /// matches patterns "kcount", "counts" or "store"; the last matching
  /// override wins, so specific rules go after general ones.
  std::vector<std::pair<std::string, ChaosProbs>> per_channel;
  std::vector<BlackholeRule> blackholes;

  [[nodiscard]] bool enabled() const noexcept {
    if (defaults.any() || !blackholes.empty()) return true;
    for (const auto& [pattern, probs] : per_channel)
      if (probs.any()) return true;
    return false;
  }

  [[nodiscard]] ChaosProbs resolve(const std::string& channel) const {
    ChaosProbs probs = defaults;
    for (const auto& [pattern, override_probs] : per_channel)
      if (channel.find(pattern) != std::string::npos) probs = override_probs;
    return probs;
  }

  /// Parse a `--chaos-spec` string. Grammar (clauses separated by ';'):
  ///   clause    := [pattern ':'] kv (',' kv)*
  ///              | 'blackhole=' RANK '@' STAGE ['#' OCCURRENCE]
  ///   kv        := ('drop'|'dup'|'reorder'|'delay'|'corrupt') '=' FLOAT
  /// Example: "drop=0.05,dup=0.02;lookup:corrupt=0.01;blackhole=2@merAligner"
  /// Throws std::invalid_argument on malformed input.
  static ChaosPlan parse(std::uint64_t seed, const std::string& spec);
};

/// What the fabric does to one delivery attempt of one envelope.
enum class ChaosFate { kDeliver, kDrop, kDuplicate, kReorder, kDelay, kCorrupt };

/// Deterministic per-attempt draw: a pure hash of the plan seed and the
/// envelope's identity. `salt` selects independent sub-streams (fate pick,
/// corrupt position, backoff jitter) from the same identity.
[[nodiscard]] inline std::uint64_t chaos_mix(std::uint64_t seed,
                                             std::uint32_t channel, int src,
                                             int dst, std::uint64_t seq,
                                             std::uint64_t salt) noexcept {
  std::uint64_t h = util::hash_combine(seed, channel);
  h = util::hash_combine(
      h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
             static_cast<std::uint32_t>(dst));
  h = util::hash_combine(h, seq);
  h = util::hash_combine(h, salt);
  return util::mix64(h);
}

/// Map a 64-bit hash to [0, 1).
[[nodiscard]] inline double chaos_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// One fate per attempt, exclusive by cumulative thresholds. Reorder/delay
/// apply only to the first attempt: a retry is already late, and holding
/// retries could starve the retry loop of its deadline.
[[nodiscard]] inline ChaosFate chaos_fate(const ChaosProbs& p,
                                          std::uint64_t seed,
                                          std::uint32_t channel, int src,
                                          int dst, std::uint64_t seq,
                                          int attempt) noexcept {
  const double u = chaos_unit(
      chaos_mix(seed, channel, src, dst, seq,
                0x66617465ULL ^ static_cast<std::uint64_t>(attempt)));
  double edge = p.drop;
  if (u < edge) return ChaosFate::kDrop;
  edge += p.corrupt;
  if (u < edge) return ChaosFate::kCorrupt;
  edge += p.dup;
  if (u < edge) return ChaosFate::kDuplicate;
  if (attempt == 0) {
    edge += p.reorder;
    if (u < edge) return ChaosFate::kReorder;
    edge += p.delay;
    if (u < edge) return ChaosFate::kDelay;
  }
  return ChaosFate::kDeliver;
}

}  // namespace hipmer::pgas
