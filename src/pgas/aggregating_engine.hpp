#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

/// Generic per-destination aggregation: the buffering half of §4.1's
/// "aggregating stores", factored out of DistHashMap so any stage can batch
/// any operation type toward any owner.
///
/// The engine owns a P×P grid of op buffers, indexed
/// [initiator][destination]. Each initiating rank touches only its own row,
/// so no locking is needed; a rank's row is allocated lazily on its first
/// buffered op (a table that never buffers — or a rank that never
/// participates — costs O(P) pointers, not O(P²) vectors).
///
/// The engine is pure buffering policy: *what a batch means* (applying
/// hash-table updates, answering lookups, shipping reads) and *what it
/// costs* (CommStats charging) belong to the caller, which receives each
/// full batch through a flush callback `fn(dest, ops)`.
namespace hipmer::pgas {

template <typename Op>
class AggregatingEngine {
 public:
  /// `nranks` sizes the grid; `flush_threshold` is the batch size at which
  /// a destination buffer is handed to the flush callback automatically.
  AggregatingEngine(std::uint32_t nranks, std::size_t flush_threshold)
      : nranks_(nranks),
        flush_threshold_(flush_threshold == 0 ? 1 : flush_threshold),
        rows_(nranks) {}

  [[nodiscard]] std::size_t flush_threshold() const noexcept {
    return flush_threshold_;
  }

  /// Buffer `op` from `initiator` toward `dest`. When the destination
  /// buffer reaches the threshold it is passed to `fn(dest, ops)` and
  /// cleared. `fn` may be invoked before this call returns.
  ///
  /// The batch is moved *out* of the grid before `fn` runs: if the flush
  /// callback throws after handing the batch to a transport (which stamped
  /// it with a sequence number), the ops must not linger in the buffer to
  /// be re-sent under a fresh sequence number — that would defeat the
  /// receiver's duplicate suppression.
  template <typename FlushFn>
  void enqueue(int initiator, std::uint32_t dest, Op op, FlushFn&& fn) {
    auto& row = row_of(initiator);
    auto& buf = row[dest];
    buf.push_back(std::move(op));
    if (buf.size() >= flush_threshold_) {
      std::vector<Op> batch;
      batch.swap(buf);
      fn(dest, batch);
      // Success path: give the allocation back so the steady state stays
      // zero-allocation per batch.
      if (buf.empty()) {
        batch.clear();
        buf = std::move(batch);
      }
    }
  }

  /// Drain all of `initiator`'s outgoing buffers through `fn(dest, ops)`.
  /// Destinations are drained round-robin starting at the initiator's
  /// successor — a fixed 0..P-1 order would hammer rank 0 with P
  /// near-simultaneous batches at every phase boundary (flush storm) while
  /// the high ranks idle.
  template <typename FlushFn>
  void flush(int initiator, FlushFn&& fn) {
    auto* row = rows_[static_cast<std::size_t>(initiator)].get();
    if (row == nullptr) return;  // never buffered anything
    const auto start = (static_cast<std::uint32_t>(initiator) + 1) % nranks_;
    for (std::uint32_t i = 0; i < nranks_; ++i) {
      const std::uint32_t dest = (start + i) % nranks_;
      auto& buf = (*row)[dest];
      if (buf.empty()) continue;
      std::vector<Op> batch;  // moved out first — see enqueue
      batch.swap(buf);
      fn(dest, batch);
      if (buf.empty()) {
        batch.clear();
        buf = std::move(batch);
      }
    }
  }

  /// Discard everything `initiator` has buffered, without invoking any
  /// flush callback. Used when degrading after a suspect peer: in-flight
  /// rows are stale (the team is unwinding to a checkpoint) and must not
  /// be shipped by a later flush.
  void clear(int initiator) {
    auto* row = rows_[static_cast<std::size_t>(initiator)].get();
    if (row == nullptr) return;
    for (auto& buf : *row) buf.clear();
  }

  /// Ops currently buffered by `initiator` across all destinations. Zero
  /// after flush() — the post-flush drain invariant the tests assert.
  [[nodiscard]] std::size_t pending(int initiator) const {
    const auto* row = rows_[static_cast<std::size_t>(initiator)].get();
    if (row == nullptr) return 0;
    std::size_t total = 0;
    for (const auto& buf : *row) total += buf.size();
    return total;
  }

 private:
  using Row = std::vector<std::vector<Op>>;

  Row& row_of(int initiator) {
    auto& slot = rows_[static_cast<std::size_t>(initiator)];
    if (slot == nullptr) slot = std::make_unique<Row>(nranks_);
    return *slot;
  }

  std::uint32_t nranks_;
  std::size_t flush_threshold_;
  // rows_[initiator] — lazily allocated; only `initiator` writes its slot,
  // so the unique_ptr needs no synchronization.
  std::vector<std::unique_ptr<Row>> rows_;
};

}  // namespace hipmer::pgas
