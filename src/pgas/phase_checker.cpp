#include "pgas/phase_checker.hpp"

#if defined(HIPMER_CHECKED)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "pgas/thread_team.hpp"

namespace hipmer::pgas {

namespace {

std::string format_site(const SiteInfo& s) {
  std::ostringstream out;
  out << (s.file != nullptr ? s.file : "?") << ":" << s.line;
  if (s.function != nullptr && s.function[0] != '\0')
    out << " (" << s.function << ")";
  return out.str();
}

std::mutex g_handler_mu;

void default_handler(const Violation& v) {
  std::fprintf(stderr, "%s\n", v.to_string().c_str());
  std::fflush(stderr);
  std::abort();
}

ViolationHandler& handler_ref() {
  static ViolationHandler handler = default_handler;
  return handler;
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "HIPMER_CHECKED violation: " << rule << "\n"
      << "  table: " << table << "\n"
      << "  rank " << rank << " at " << format_site(site) << "\n";
  if (other_rank >= 0)
    out << "  conflicts with rank " << other_rank << " at "
        << format_site(other_site) << "\n";
  if (!detail.empty()) out << "  " << detail << "\n";
  return out.str();
}

PhaseViolation::PhaseViolation(Violation v)
    : std::runtime_error(v.to_string()), v_(std::move(v)) {}

ViolationHandler set_violation_handler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mu);
  ViolationHandler previous = std::move(handler_ref());
  handler_ref() = handler ? std::move(handler) : default_handler;
  return previous;
}

// ---- PhaseChecker ----

const char* PhaseChecker::kind_name(int kind) {
  switch (kind) {
    case kBarrier: return "barrier";
    case kAllreduce: return "allreduce";
    case kAllgather: return "allgather";
    case kAllgatherv: return "allgatherv";
    case kBroadcast: return "broadcast";
    case kExscan: return "exscan";
    case kAlltoallv: return "alltoallv";
    default: return "unknown-collective";
  }
}

PhaseChecker::PhaseChecker(ThreadTeam& team, int nranks)
    : team_(&team), nranks_(nranks) {
  slots_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    slots_.push_back(std::make_unique<RankSlot>());
}

void PhaseChecker::register_table(CheckedTable* table) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  tables_.push_back(table);
}

void PhaseChecker::unregister_table(CheckedTable* table) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  tables_.erase(std::remove(tables_.begin(), tables_.end(), table),
                tables_.end());
}

void PhaseChecker::reset_for_job() {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    tables_.clear();
  }
  for (auto& slot : slots_) {
    slot->epoch.store(0, std::memory_order_relaxed);
    slot->scope_kind = kBarrier;
    slot->scope_depth = 0;
    slot->scope_site = SiteInfo{};
    slot->record_kind = kBarrier;
    slot->record_site = SiteInfo{};
  }
  tripped_.store(false, std::memory_order_release);
}

void PhaseChecker::pre_barrier(int rank, int kind, SiteInfo site) {
  if (!suppressed()) {
    // Snapshot the registry so a table check (which takes the table's own
    // lock) never nests inside the registry lock.
    std::vector<CheckedTable*> tables;
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      tables = tables_;
    }
    for (CheckedTable* t : tables) t->check_undrained_at_barrier(rank, site);
  }
  auto& slot = *slots_[static_cast<std::size_t>(rank)];
  slot.record_kind = kind;
  slot.record_site = site;
}

void PhaseChecker::compare_barrier_records(int rank) {
  if (suppressed()) return;
  const auto& mine = *slots_[static_cast<std::size_t>(rank)];
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank) continue;
    const auto& theirs = *slots_[static_cast<std::size_t>(r)];
    if (theirs.record_kind == mine.record_kind) continue;
    Violation v;
    v.rule = kRuleMismatchedCollective;
    v.table = "(collectives)";
    v.rank = rank;
    v.site = mine.record_site;
    v.other_rank = r;
    v.other_site = theirs.record_site;
    v.detail = std::string("this rank entered ") + kind_name(mine.record_kind) +
               ", rank " + std::to_string(r) + " entered " +
               kind_name(theirs.record_kind) +
               " at the same barrier instance (epoch " +
               std::to_string(epoch(rank)) + ")";
    report(v);
    return;
  }
}

void PhaseChecker::install_record(int rank, int kind, const std::string& file,
                                  unsigned line, const std::string& func) {
  auto& slot = *slots_[static_cast<std::size_t>(rank)];
  slot.record_kind = kind;
  std::lock_guard<std::mutex> lock(intern_mu_);
  slot.record_site = SiteInfo{interned_.insert(file).first->c_str(), line,
                              interned_.insert(func).first->c_str()};
}

void PhaseChecker::push_collective(int rank, int kind, SiteInfo site) noexcept {
  auto& slot = *slots_[static_cast<std::size_t>(rank)];
  if (slot.scope_depth == 0) {
    slot.scope_kind = kind;
    slot.scope_site = site;
  }
  ++slot.scope_depth;
}

void PhaseChecker::pop_collective(int rank) noexcept {
  auto& slot = *slots_[static_cast<std::size_t>(rank)];
  if (--slot.scope_depth == 0) slot.scope_kind = kBarrier;
}

int PhaseChecker::scope_kind(int rank) const noexcept {
  return slots_[static_cast<std::size_t>(rank)]->scope_kind;
}

bool PhaseChecker::in_collective(int rank) const noexcept {
  return slots_[static_cast<std::size_t>(rank)]->scope_depth > 0;
}

SiteInfo PhaseChecker::scope_site(int rank) const noexcept {
  return slots_[static_cast<std::size_t>(rank)]->scope_site;
}

bool PhaseChecker::suppressed() const {
  return tripped_.load(std::memory_order_relaxed) || team_->faults().fired();
}

void PhaseChecker::report(const Violation& v) {
  // Set the flag before invoking the handler: peers released by this rank's
  // unwind (arrive_and_drop) must skip their own checks instead of piling
  // secondary diagnostics on top of the first.
  tripped_.store(true, std::memory_order_release);
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mu);
    handler = handler_ref();
  }
  handler(v);
}

// ---- CheckedTable ----

CheckedTable::CheckedTable(PhaseChecker& checker, std::string name,
                           PendingFn pending_stores, PendingFn pending_lookups)
    : checker_(&checker),
      name_(std::move(name)),
      pending_stores_(std::move(pending_stores)),
      pending_lookups_(std::move(pending_lookups)),
      states_(static_cast<std::size_t>(checker.nranks())) {
  checker_->register_table(this);
}

CheckedTable::~CheckedTable() { checker_->unregister_table(this); }

void CheckedTable::set_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  name_ = std::move(name);
}

std::string CheckedTable::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return name_;
}

void CheckedTable::conflict(const char* rule, int rank, SiteInfo site,
                            int other_rank, const Event& other,
                            const std::string& detail) {
  Violation v;
  v.rule = rule;
  v.table = name_;
  v.rank = rank;
  v.site = site;
  v.other_rank = other_rank;
  v.other_site = other.site;
  v.detail = detail;
  checker_->report(v);
}

void CheckedTable::on_store(int rank, Path path, SiteInfo site) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t e = checker_->epoch(rank);
  auto& mine = states_[static_cast<std::size_t>(rank)];
  const bool relaxed = mine.relaxed_depth > 0;
  if (!relaxed && !checker_->suppressed()) {
    // store-during-READ: another rank read this table in the current epoch;
    // a store now races those lookups — a barrier must "reopen" the table
    // for writing first.
    for (int r = 0; r < checker_->nranks(); ++r) {
      if (r == rank) continue;
      const auto& theirs = states_[static_cast<std::size_t>(r)];
      for (const Event* ev : {&theirs.fine_lookup, &theirs.batched_lookup}) {
        if (ev->epoch == e && !ev->relaxed) {
          conflict(kRuleStoreDuringRead, rank, site, r, *ev,
                   "store in epoch " + std::to_string(e) +
                       " while the table is in its READ phase (no barrier "
                       "since that lookup)");
          return;
        }
      }
    }
    // mixed-access: fine and batched stores to one table in one epoch defeat
    // the aggregation accounting and the flush discipline.
    if (path == Path::kFine && mine.batched_store.epoch == e &&
        !mine.batched_store.relaxed) {
      conflict(kRuleMixedAccess, rank, site, rank, mine.batched_store,
               "fine-grained store in epoch " + std::to_string(e) +
                   " mixed with buffered stores in the same phase");
      return;
    }
    if (path == Path::kBatched && mine.fine_store.epoch == e &&
        !mine.fine_store.relaxed) {
      conflict(kRuleMixedAccess, rank, site, rank, mine.fine_store,
               "buffered store in epoch " + std::to_string(e) +
                   " mixed with fine-grained stores in the same phase");
      return;
    }
  }
  Event ev{e, site, relaxed};
  if (path == Path::kBatched) {
    mine.batched_store = ev;
    mine.store_enqueue_site = site;
  } else {
    mine.fine_store = ev;
  }
  last_store_ = ev;
  last_store_rank_ = rank;
}

void CheckedTable::on_lookup(int rank, Path path, SiteInfo site) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t e = checker_->epoch(rank);
  auto& mine = states_[static_cast<std::size_t>(rank)];
  const bool relaxed = mine.relaxed_depth > 0;
  if (!relaxed && !checker_->suppressed()) {
    // lookup-during-WRITE, case 1: this rank still has buffered stores it
    // never flushed — the lookup could miss its own writes.
    if (pending_stores_ && pending_stores_(rank) > 0) {
      Event pending{e, mine.store_enqueue_site, false};
      conflict(kRuleLookupDuringWrite, rank, site, rank, pending,
               "lookup with " + std::to_string(pending_stores_(rank)) +
                   " of this rank's stores still buffered (flush + barrier "
                   "required before the READ phase)");
      return;
    }
    // case 2: another rank stored in this epoch; without a barrier between,
    // this lookup races that write.
    for (int r = 0; r < checker_->nranks(); ++r) {
      if (r == rank) continue;
      const auto& theirs = states_[static_cast<std::size_t>(r)];
      for (const Event* ev : {&theirs.fine_store, &theirs.batched_store}) {
        if (ev->epoch == e && !ev->relaxed) {
          conflict(kRuleLookupDuringWrite, rank, site, r, *ev,
                   "lookup in epoch " + std::to_string(e) +
                       " while the table is in its WRITE phase (no barrier "
                       "since that store)");
          return;
        }
      }
    }
    if (path == Path::kFine && mine.batched_lookup.epoch == e &&
        !mine.batched_lookup.relaxed) {
      conflict(kRuleMixedAccess, rank, site, rank, mine.batched_lookup,
               "fine-grained lookup in epoch " + std::to_string(e) +
                   " mixed with buffered lookups in the same phase");
      return;
    }
    if (path == Path::kBatched && mine.fine_lookup.epoch == e &&
        !mine.fine_lookup.relaxed) {
      conflict(kRuleMixedAccess, rank, site, rank, mine.fine_lookup,
               "buffered lookup in epoch " + std::to_string(e) +
                   " mixed with fine-grained lookups in the same phase");
      return;
    }
  }
  Event ev{e, site, relaxed};
  if (path == Path::kBatched) {
    mine.batched_lookup = ev;
    mine.lookup_enqueue_site = site;
  } else {
    mine.fine_lookup = ev;
  }
}

void CheckedTable::on_cache_consult(int rank, std::uint64_t cache_seen_version,
                                    std::uint64_t table_version,
                                    std::size_t cache_size, SiteInfo site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& mine = states_[static_cast<std::size_t>(rank)];
  if (mine.relaxed_depth > 0 || checker_->suppressed()) return;
  // seen_version 0 = cache never synced (fresh); empty cache = nothing
  // stale to serve. Anything else means entries from before the write
  // phase are still resident — the cache should have been dropped.
  if (cache_seen_version == 0 || cache_seen_version == table_version ||
      cache_size == 0)
    return;
  conflict(kRuleStaleCache, rank, site, last_store_rank_, last_store_,
           "read cache holds " + std::to_string(cache_size) +
               " entries from table version " +
               std::to_string(cache_seen_version) + " but the table is at " +
               std::to_string(table_version) +
               " (cache survived a write phase; disable it before writing)");
}

void CheckedTable::relaxed_begin(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  ++states_[static_cast<std::size_t>(rank)].relaxed_depth;
}

void CheckedTable::relaxed_end(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  --states_[static_cast<std::size_t>(rank)].relaxed_depth;
}

void CheckedTable::check_undrained_at_barrier(int rank, SiteInfo barrier_site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& mine = states_[static_cast<std::size_t>(rank)];
  const std::size_t stores = pending_stores_ ? pending_stores_(rank) : 0;
  const std::size_t lookups = pending_lookups_ ? pending_lookups_(rank) : 0;
  if (stores == 0 && lookups == 0) return;
  const bool store_side = stores > 0;
  Event pending{checker_->epoch(rank),
                store_side ? mine.store_enqueue_site : mine.lookup_enqueue_site,
                false};
  conflict(kRuleUndrained, rank, barrier_site, rank, pending,
           "barrier entered with " + std::to_string(stores) +
               " buffered store ops and " + std::to_string(lookups) +
               " pending lookups on this rank (flush()/process_lookups() "
               "must drain before the phase boundary)");
}

}  // namespace hipmer::pgas

#endif  // HIPMER_CHECKED
