#pragma once

#include <cstddef>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "pgas/checked.hpp"
#include "pgas/comm_stats.hpp"
#include "pgas/fabric.hpp"
#include "pgas/fault.hpp"
#include "pgas/topology.hpp"
#include "pgas/transport.hpp"

#if defined(HIPMER_CHECKED)
#include "pgas/phase_checker.hpp"
#endif

/// SPMD execution engine: the stand-in for the UPC runtime.
///
/// A `ThreadTeam` launches P logical ranks, each as a real `std::thread`
/// running the same function (single program, multiple data) with its own
/// `Rank` handle. Shared distributed structures (DistHashMap etc.) are
/// accessed concurrently exactly as UPC shared arrays would be — one-sided,
/// with the initiating rank touching the owner's memory directly — so
/// synchronization bugs are real bugs here, not simulation artifacts.
///
/// Collectives (barrier / reductions / gathers / broadcast) mirror the small
/// set HipMer needs. They are implemented over a per-rank slot buffer plus a
/// `std::barrier`, and each participation is charged to the rank's comm
/// stats so the machine model sees synchronization costs.
namespace hipmer::pgas {

class ThreadTeam;

/// Per-rank handle passed to the SPMD function.
class Rank {
 public:
  Rank(ThreadTeam& team, int rank) : team_(&team), rank_(rank) {}

  [[nodiscard]] int id() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept;
  [[nodiscard]] const Topology& topology() const noexcept;
  [[nodiscard]] int node() const noexcept {
    return topology().node_of(rank_);
  }
  [[nodiscard]] bool is_root() const noexcept { return rank_ == 0; }

  /// This rank's own counters (mutable: application code charges work here).
  [[nodiscard]] CommStats& stats() noexcept;
  /// Another rank's counters — used by one-sided ops to charge the owner's
  /// service time (`recv_ops`).
  [[nodiscard]] CommStats& stats_of(int rank) noexcept;

  ThreadTeam& team() noexcept { return *team_; }

  /// Serve already-arrived fabric traffic without blocking. Any spin-wait
  /// on locally-visible state that a *peer* mutates (claim words, chain
  /// states) must call this each iteration: on the multiprocess fabric the
  /// peer's mutation is an RPC that lands only when this rank serves its
  /// inbox. No-op on the in-process fabric.
  void progress();

  /// Charge one message of `bytes` payload carrying `ops` logical
  /// operations against `owner`'s shard: the initiator's counters are
  /// bumped with the locality-classified message, the owner's with the
  /// service ops. A self-targeted message is a local access. This is the
  /// single accounting rule every one-sided structure (DistHashMap, the
  /// aggregating engine's users, ContigStore) shares.
  void charge_message(int owner, std::size_t bytes, std::size_t ops = 1);

  // ---- Collectives (must be called by every rank, in the same order) ----
  //
  // Under HIPMER_CHECKED every collective carries its caller's source
  // location and tags its internal barriers with its kind, so the checker
  // can report "rank 0 entered allgather, rank 1 entered barrier" with both
  // call sites when the SPMD bodies diverge.

  void barrier(HIPMER_SITE_DEFAULT0);

  /// Reduce `value` with `op` across ranks; every rank gets the result.
  template <typename T, typename Op>
  T allreduce(const T& value, Op op HIPMER_SITE_DEFAULT);

  template <typename T>
  T allreduce_sum(const T& value HIPMER_SITE_DEFAULT) {
    return allreduce(
        value, [](const T& a, const T& b) { return a + b; } HIPMER_SITE_FWD);
  }
  template <typename T>
  T allreduce_max(const T& value HIPMER_SITE_DEFAULT) {
    return allreduce(
        value,
        [](const T& a, const T& b) { return a < b ? b : a; } HIPMER_SITE_FWD);
  }
  template <typename T>
  T allreduce_min(const T& value HIPMER_SITE_DEFAULT) {
    return allreduce(
        value,
        [](const T& a, const T& b) { return b < a ? b : a; } HIPMER_SITE_FWD);
  }

  /// Every rank contributes one T; every rank receives all P values.
  template <typename T>
  std::vector<T> allgather(const T& value HIPMER_SITE_DEFAULT);

  /// Every rank contributes a vector<T> of any length; every rank receives
  /// the concatenation in rank order.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& values HIPMER_SITE_DEFAULT);

  /// Rank `root`'s value is returned on every rank.
  template <typename T>
  T broadcast(const T& value, int root = 0 HIPMER_SITE_DEFAULT);

  /// Exclusive prefix sum over ranks (rank r receives sum of values of
  /// ranks 0..r-1). Used to assign globally unique contig ids.
  template <typename T>
  T exscan_sum(const T& value HIPMER_SITE_DEFAULT);

  /// All-to-all personalized exchange: `out[r]` goes to rank r; the return
  /// value is the concatenation of what every rank sent to *this* rank.
  /// Message accounting: one message per non-empty destination, classified
  /// on/off-node by the topology.
  template <typename T>
  std::vector<T> alltoallv(
      const std::vector<std::vector<T>>& out HIPMER_SITE_DEFAULT);

 private:
  ThreadTeam* team_;
  int rank_;
};

/// Which delivery backend a team runs on, and this process's place in it.
struct FabricConfig {
  enum class Mode {
    kThreads,          ///< all ranks are std::threads here (InProcessFabric)
    kProcCoordinator,  ///< this process hosts rank 0 + router, spawns workers
    kProcWorker,       ///< this process hosts rank `my_rank`, connects back
  };
  Mode mode = Mode::kThreads;
  int my_rank = 0;          ///< worker only
  std::string socket_path;  ///< proc modes: the Unix-domain rendezvous
  /// Coordinator only: argv prefix for spawning workers (the binary plus
  /// every flag needed to reconstruct this configuration; the fabric
  /// appends ["--worker-rank", R]).
  std::vector<std::string> worker_argv;
};

/// Owns the threads, the collective scratch space and per-rank stats.
class ThreadTeam {
 public:
  explicit ThreadTeam(Topology topo, FabricConfig fabric = {});

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Run `fn(Rank&)` on every rank; blocks until all ranks return.
  /// If any rank throws, the first exception is rethrown here after all
  /// threads have joined.
  void run(const std::function<void(Rank&)>& fn);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] int nranks() const noexcept { return topo_.nranks; }

  /// The delivery backend (see pgas/fabric.hpp).
  [[nodiscard]] Fabric& fabric() noexcept { return *fabric_; }
  /// True when each rank is a separate OS process (SocketFabric).
  [[nodiscard]] bool multiprocess() const noexcept {
    return fabric_->multiprocess();
  }
  /// The one rank hosted by this process (-1 when all ranks are local).
  [[nodiscard]] int my_rank() const noexcept { return fabric_->my_rank(); }
  /// Whether this process performs team-wide side effects (final output,
  /// checkpoint commits): the only process in threads mode, rank 0's in
  /// proc mode.
  [[nodiscard]] bool is_primary() const noexcept {
    return !multiprocess() || my_rank() == 0;
  }
  /// Whether `rank`'s shards/memory live in this process.
  [[nodiscard]] bool is_local(int rank) const noexcept {
    return fabric_->is_local(rank);
  }

  [[nodiscard]] CommStats& stats(int rank) noexcept { return *stats_[rank]; }

  /// Rank fault injection (see pgas/fault.hpp). Disarmed by default; drivers
  /// announce stages via faults().begin_stage and ranks poll at barriers.
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }

  /// Lossy-fabric transport under the batched comm paths (see
  /// pgas/transport.hpp). Perfect fabric by default; a ChaosPlan arms it.
  [[nodiscard]] Transport& transport() noexcept { return transport_; }

  /// Announce the next stage to both fault machineries (the kill plans of
  /// faults() and the blackhole rules of transport()). Drivers should call
  /// this rather than faults().begin_stage directly.
  void begin_stage(const std::string& name) {
    faults_.begin_stage(name);
    transport_.begin_stage(name);
  }

#if defined(HIPMER_CHECKED)
  /// Phase-discipline checker (see pgas/phase_checker.hpp). Tables register
  /// here; barriers advance epochs and validate the drain/match invariants.
  [[nodiscard]] PhaseChecker& checker() noexcept { return checker_; }
#endif

  /// Snapshot of every rank's counters as charged in *this process*
  /// (callable between/after runs, or by rank 0 after a barrier). On a
  /// multi-process fabric these are partial: handler-side charges land in
  /// the observing process's mirror of the initiator's counters.
  [[nodiscard]] std::vector<CommStatsSnapshot> snapshot_all() const;

  /// Global counters: elementwise sum of every process's mirrors over the
  /// fabric (serial context). Identical to snapshot_all() in threads mode.
  [[nodiscard]] std::vector<CommStatsSnapshot> snapshot_all_global();

  void reset_stats();

  /// Serial context, between jobs on a long-lived team: clear fault plans,
  /// drop every transport channel, rebuild the fabric's sync state (a
  /// RankKilled unwind shrinks the in-process barrier for good), zero the
  /// comm counters, and (checked builds) reset the phase checker. After
  /// this the team is indistinguishable from a freshly constructed one.
  /// Must not be called while any run is in flight.
  void reset_for_job();

  // ---- serial-context exchange (multi-process SPMD setup/teardown) ----
  /// Every process contributes `mine`; every process receives all P
  /// contributions rank-indexed. On the threads fabric returns just
  /// {mine} — serial code there already sees every rank's data.
  std::vector<std::vector<std::byte>> serial_exchange(
      std::vector<std::byte> mine) {
    return fabric_->serial_exchange(std::move(mine));
  }

  /// Serial-context sum of a trivially copyable accumulator across
  /// processes. Identity on the threads fabric.
  template <typename T>
  [[nodiscard]] T serial_sum(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "serial_sum requires a trivially copyable type");
    if (!multiprocess()) return value;
    std::vector<std::byte> mine(sizeof(T));
    std::memcpy(mine.data(), &value, sizeof(T));
    auto parts = fabric_->serial_exchange(std::move(mine));
    T acc{};
    for (const auto& p : parts) {
      T x{};
      if (p.size() >= sizeof(T)) std::memcpy(&x, p.data(), sizeof(T));
      acc = acc + x;
    }
    return acc;
  }

  /// Serial-context concatenation of per-process byte payloads in rank
  /// order. Identity ({mine} semantics) on the threads fabric.
  [[nodiscard]] std::vector<std::byte> serial_concat(
      std::vector<std::byte> mine) {
    if (!multiprocess()) return mine;
    auto parts = fabric_->serial_exchange(std::move(mine));
    std::vector<std::byte> out;
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  // ---- internals used by Rank's collectives ----
  void arrive_barrier(int rank) {
    Fabric::BarrierPoint pt;
    pt.rank = rank;
    pt.slot = &slots_[static_cast<std::size_t>(rank)];
#if defined(HIPMER_CHECKED)
    // Ship the record published by pre_barrier so the mismatch comparison
    // sees every process's collective kind and call site.
    pt.has_record = true;
    pt.record_kind = static_cast<std::uint32_t>(checker_.record_kind(rank));
    const SiteInfo site = checker_.record_site(rank);
    pt.record_file = site.file;
    pt.record_line = site.line;
    pt.record_func = site.function;
#endif
    fabric_->barrier(pt);
  }
  std::vector<std::byte>& slot(int rank) { return slots_[rank]; }

 private:
  Topology topo_;
  std::unique_ptr<Fabric> fabric_;
  FaultInjector faults_;
  Transport transport_;
#if defined(HIPMER_CHECKED)
  PhaseChecker checker_;
#endif
  std::vector<std::vector<std::byte>> slots_;
  // unique_ptr: CommStats holds atomics (non-movable) and we also want each
  // rank's counters on separate cache lines.
  std::vector<std::unique_ptr<CommStats>> stats_;
};

// ---- Rank inline/template implementations ----

inline int Rank::nranks() const noexcept { return team_->nranks(); }
inline const Topology& Rank::topology() const noexcept {
  return team_->topology();
}
inline CommStats& Rank::stats() noexcept { return team_->stats(rank_); }
inline void Rank::progress() { team_->fabric().progress(); }
inline CommStats& Rank::stats_of(int rank) noexcept {
  return team_->stats(rank);
}

inline void Rank::charge_message(int owner, std::size_t bytes,
                                 std::size_t ops) {
  if (owner == rank_) {
    stats().add_local_access(ops);
    return;
  }
  if (topology().same_node(owner, rank_)) {
    stats().add_onnode_msg(bytes);
  } else {
    stats().add_offnode_msg(bytes);
  }
  stats_of(owner).add_recv_ops(ops);
}

inline void Rank::barrier(HIPMER_SITE_PARAM0) {
  // Fault point: polled before arriving, so a killed rank has already
  // published any collective payload and its catch-side arrive_and_drop
  // releases peers with consistent slots.
  team_->faults().on_fault_point(rank_);
  stats().add_collective();
#if defined(HIPMER_CHECKED)
  // Checked protocol: validate drained tables, publish this rank's
  // (collective kind, call site) record, then double-barrier — the first
  // phase makes every record fresh, the comparison runs between phases,
  // and the second phase keeps records stable until everyone has read
  // them. A rank that unwinds (RankKilled / PhaseViolation) satisfies the
  // outstanding phase via arrive_and_drop in ThreadTeam::run, so the
  // two-phase shape stays deadlock-free; comparisons are skipped once a
  // fault or violation fired.
  PhaseChecker& chk = team_->checker();
  const int kind = chk.scope_kind(rank_);
  const SiteInfo site =
      chk.in_collective(rank_) ? chk.scope_site(rank_) : to_site(hipmer_site);
  chk.pre_barrier(rank_, kind, site);
  team_->arrive_barrier(rank_);
  chk.compare_barrier_records(rank_);
  team_->arrive_barrier(rank_);
  chk.advance_epoch(rank_);
#else
  team_->arrive_barrier(rank_);
#endif
}

template <typename T>
std::vector<T> Rank::allgather(const T& value HIPMER_SITE_PARAM) {
  static_assert(std::is_trivially_copyable_v<T>,
                "allgather requires a trivially copyable type");
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_,
                               PhaseChecker::kAllgather, to_site(hipmer_site));
#endif
  auto& my_slot = team_->slot(rank_);
  my_slot.resize(sizeof(T));
  std::memcpy(my_slot.data(), &value, sizeof(T));
  barrier();
  std::vector<T> result(static_cast<std::size_t>(nranks()));
  for (int r = 0; r < nranks(); ++r) {
    // A rank killed before publishing (fault injection) leaves a stale slot;
    // skip undersized ones so survivors reach their own fault point instead
    // of reading out of bounds.
    const auto& s = team_->slot(r);
    if (s.size() < sizeof(T)) continue;
    std::memcpy(&result[static_cast<std::size_t>(r)], s.data(), sizeof(T));
  }
  barrier();  // keep slots alive until every rank has read them
  return result;
}

template <typename T, typename Op>
T Rank::allreduce(const T& value, Op op HIPMER_SITE_PARAM) {
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_,
                               PhaseChecker::kAllreduce, to_site(hipmer_site));
#endif
  auto all = allgather(value HIPMER_SITE_FWD);
  T acc = all[0];
  for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
  return acc;
}

template <typename T>
std::vector<T> Rank::allgatherv(const std::vector<T>& values HIPMER_SITE_PARAM) {
  static_assert(std::is_trivially_copyable_v<T>,
                "allgatherv requires a trivially copyable type");
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_,
                               PhaseChecker::kAllgatherv, to_site(hipmer_site));
#endif
  auto& my_slot = team_->slot(rank_);
  my_slot.resize(values.size() * sizeof(T));
  if (!values.empty())
    std::memcpy(my_slot.data(), values.data(), my_slot.size());
  barrier();
  std::vector<T> result;
  for (int r = 0; r < nranks(); ++r) {
    const auto& s = team_->slot(r);
    const std::size_t n = s.size() / sizeof(T);
    const std::size_t old = result.size();
    result.resize(old + n);
    if (n > 0) std::memcpy(result.data() + old, s.data(), s.size());
  }
  barrier();
  return result;
}

template <typename T>
T Rank::broadcast(const T& value, int root HIPMER_SITE_PARAM) {
  static_assert(std::is_trivially_copyable_v<T>,
                "broadcast requires a trivially copyable type");
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_,
                               PhaseChecker::kBroadcast, to_site(hipmer_site));
#endif
  if (rank_ == root) {
    auto& s = team_->slot(root);
    s.resize(sizeof(T));
    std::memcpy(s.data(), &value, sizeof(T));
  }
  barrier();
  T result{};
  const auto& s = team_->slot(root);
  if (s.size() >= sizeof(T)) std::memcpy(&result, s.data(), sizeof(T));
  barrier();
  return result;
}

template <typename T>
T Rank::exscan_sum(const T& value HIPMER_SITE_PARAM) {
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_, PhaseChecker::kExscan,
                               to_site(hipmer_site));
#endif
  auto all = allgather(value HIPMER_SITE_FWD);
  T acc{};
  for (int r = 0; r < rank_; ++r) acc = acc + all[static_cast<std::size_t>(r)];
  return acc;
}

template <typename T>
std::vector<T> Rank::alltoallv(
    const std::vector<std::vector<T>>& out HIPMER_SITE_PARAM) {
  static_assert(std::is_trivially_copyable_v<T>,
                "alltoallv requires a trivially copyable type");
#if defined(HIPMER_CHECKED)
  CollectiveScope hipmer_scope(team_->checker(), rank_,
                               PhaseChecker::kAlltoallv, to_site(hipmer_site));
#endif
  // Layout this rank's outgoing data as [count_0 .. count_{P-1}] [payloads].
  const auto p = static_cast<std::size_t>(nranks());
  auto& my_slot = team_->slot(rank_);
  std::size_t payload = 0;
  for (const auto& v : out) payload += v.size() * sizeof(T);
  my_slot.resize(p * sizeof(std::uint64_t) + payload);
  auto* counts = reinterpret_cast<std::uint64_t*>(my_slot.data());
  std::byte* cursor = my_slot.data() + p * sizeof(std::uint64_t);
  for (std::size_t r = 0; r < p; ++r) {
    counts[r] = out[r].size();
    const std::size_t bytes = out[r].size() * sizeof(T);
    if (bytes > 0) {
      std::memcpy(cursor, out[r].data(), bytes);
      cursor += bytes;
    }
    // Charge one message per non-empty destination (self excluded: local).
    const int dest = static_cast<int>(r);
    if (out[r].empty()) continue;
    if (dest == rank_) {
      stats().add_local_access();
    } else if (topology().same_node(dest, rank_)) {
      stats().add_onnode_msg(bytes);
      stats_of(dest).add_recv_ops();
    } else {
      stats().add_offnode_msg(bytes);
      stats_of(dest).add_recv_ops();
    }
  }
  barrier();
  // Pull the slice destined for this rank out of every sender's slot.
  std::vector<T> result;
  for (std::size_t r = 0; r < p; ++r) {
    const auto& s = team_->slot(static_cast<int>(r));
    // Stale slot from a rank killed before publishing (fault injection):
    // treat as an empty contribution rather than reading out of bounds.
    if (s.size() < p * sizeof(std::uint64_t)) continue;
    const auto* their_counts = reinterpret_cast<const std::uint64_t*>(s.data());
    std::size_t offset = p * sizeof(std::uint64_t);
    for (std::size_t d = 0; d < static_cast<std::size_t>(rank_); ++d)
      offset += their_counts[d] * sizeof(T);
    const std::size_t n = their_counts[rank_];
    if (n > 0 && offset + n * sizeof(T) <= s.size()) {
      const std::size_t old = result.size();
      result.resize(old + n);
      std::memcpy(result.data() + old, s.data() + offset, n * sizeof(T));
    }
  }
  barrier();
  return result;
}

}  // namespace hipmer::pgas
