#include "pgas/transport.hpp"

#include <sstream>
#include <stdexcept>

#include "pgas/fabric.hpp"

namespace hipmer::pgas {

// wire-schema: transport_envelope writer
std::vector<std::byte> frame_envelope(const Envelope& env) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(kEnvelopeMagic);
  w.put_u32(env.channel);
  w.put_u32(env.src);
  w.put_u32(env.dst);
  w.put_u64(env.seq);
  w.put_bytes(std::string_view(
      reinterpret_cast<const char*>(env.payload.data()), env.payload.size()));
  w.put_u32(util::crc32c(out.data(), out.size()));
  return out;
}

// wire-schema: transport_envelope reader
Envelope decode_envelope(const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  const auto magic = r.get_pod_checked<std::uint32_t>("envelope magic");
  if (magic != kEnvelopeMagic)
    throw io::wire::CorruptError("wire: corrupt: envelope magic mismatch");
  Envelope env;
  env.channel = r.get_pod_checked<std::uint32_t>("envelope channel");
  env.src = r.get_pod_checked<std::uint32_t>("envelope src");
  env.dst = r.get_pod_checked<std::uint32_t>("envelope dst");
  env.seq = r.get_pod_checked<std::uint64_t>("envelope seq");
  const auto len = r.get_pod_checked<std::uint32_t>("envelope payload length");
  // Bounds-check the prefix before the resize: a corrupt length byte must
  // not drive a multi-GB allocation before the CRC gets a chance to fail.
  r.require(len, "envelope payload");
  env.payload.resize(len);
  if (len > 0) r.get_raw(env.payload.data(), len, "envelope payload");
  const std::size_t covered = size - r.remaining();
  const auto stored = r.get_pod_checked<std::uint32_t>("envelope crc");  // wire: crc32
  const std::uint32_t computed = util::crc32c(data, covered);
  if (stored != computed) {
    std::ostringstream os;
    os << "wire: corrupt: envelope crc mismatch (stored 0x" << std::hex
       << stored << ", computed 0x" << computed << ")";
    throw io::wire::CorruptError(os.str());
  }
  if (!r.done())
    throw io::wire::CorruptError("wire: corrupt: trailing bytes after envelope");
  return env;
}

void Transport::attach_fabric(Fabric& fabric) {
  fabric_ = &fabric;
  multiproc_ = fabric.multiprocess();
  my_rank_ = fabric.my_rank();
}

void Transport::set_handler(ChannelId ch, WireHandler fn) {
  std::lock_guard<std::mutex> lock(open_mu_);
  channels_[ch]->handler = std::move(fn);
}

void Transport::on_wire(ChannelId ch, int src, int dst,
                        const std::byte* data, std::size_t size,
                        CommStats& stats) {
  Channel& chan = channel(ch);
  assert(chan.handler);
  // This process owns the receiver half of link (ch, src, dst): recv seq
  // and reorder buffer. The sender half lives in src's process.
  Link& link = link_of(chan, src, dst);
  std::vector<std::byte> env_bytes(data, data + size);
  receive(ch, link, env_bytes, stats,
          [&](int d, const std::byte* p, std::size_t n) {
            chan.handler(src, d, p, n);
          });
}

void Transport::ship_remote(ChannelId ch, int dst,
                            const std::vector<std::byte>& wire) {
  fabric_->ship(ch, my_rank_, dst, wire);
}

void Transport::release_limbo_remote(ChannelId ch, Link& link, int dst) {
  for (auto& held : link.limbo) --held.countdown;
  while (!link.limbo.empty() && link.limbo.front().countdown <= 0) {
    auto env = std::move(link.limbo.front().env);
    link.limbo.pop_front();
    ship_remote(ch, dst, env);
  }
}

void Transport::send_remote(ChannelId ch, Channel& chan, Link& link, int src,
                            int dst, std::vector<std::byte>&& wire,
                            std::uint64_t seq, CommStats& stats) {
  // Mirror of send()'s fate loop. Because fates are pure hashes of
  // (seed, channel, src, dst, seq, attempt), the sender knows each
  // attempt's outcome without an ack: a delivered or duplicated frame is
  // acked, a corrupted frame will fail the receiver's CRC (ship it anyway
  // so the receiver counts the corruption), a dropped frame never leaves
  // this process. Retry counts, histograms and backoff accounting match
  // the threads fabric exactly for the same seed.
  const bool lossy =
      blackholed(src, dst) || (chaos_on_ && chan.probs.any());
  if (!lossy) {
    ship_remote(ch, dst, wire);
    chan.hist[0].fetch_add(1, std::memory_order_relaxed);
    release_limbo_remote(ch, link, dst);
    return;
  }

  int attempt = 0;
  for (;;) {
    bool acked = false;
    bool in_network = false;
    ChaosFate fate = blackholed(src, dst)
                         ? ChaosFate::kDrop
                         : chaos_fate(chan.probs, plan_.seed, ch, src, dst,
                                      seq, attempt);
    switch (fate) {
      case ChaosFate::kDeliver:
        ship_remote(ch, dst, wire);
        acked = true;
        break;
      case ChaosFate::kDrop:
        break;  // lost in the fabric
      case ChaosFate::kDuplicate:
        ship_remote(ch, dst, wire);
        ship_remote(ch, dst, wire);  // receiver dedups the second copy
        acked = true;
        break;
      case ChaosFate::kCorrupt: {
        // Same byte-flip the threads fabric applies; the fabric frame's
        // own CRC is computed over the already-corrupted envelope, so the
        // frame passes and the *envelope* CRC fails at the receiver.
        std::vector<std::byte> bad = wire;
        const std::uint64_t h =
            chaos_mix(plan_.seed, ch, src, dst, seq,
                      0x636f7272ULL ^ static_cast<std::uint64_t>(attempt));
        const std::size_t pos = static_cast<std::size_t>(h % bad.size());
        const auto bit = static_cast<unsigned>((h >> 32) & 7);
        bad[pos] ^= static_cast<std::byte>(1u << bit);
        ship_remote(ch, dst, bad);
        break;
      }
      case ChaosFate::kReorder:
        link.limbo.push_back(Link::Held{std::move(wire), 1});
        in_network = true;
        break;
      case ChaosFate::kDelay:
        link.limbo.push_back(Link::Held{std::move(wire), 2});
        in_network = true;
        break;
    }
    if (in_network) return;  // ships on a later release/drain
    if (acked) {
      const std::size_t bucket =
          static_cast<std::size_t>(attempt) < kHistBuckets - 1
              ? static_cast<std::size_t>(attempt)
              : kHistBuckets - 1;
      chan.hist[bucket].fetch_add(1, std::memory_order_relaxed);
      release_limbo_remote(ch, link, dst);
      return;
    }
    ++attempt;
    stats.add_transport_retry();
    chan.backoff_ticks.fetch_add(backoff_ticks(ch, src, dst, seq, attempt),
                                 std::memory_order_relaxed);
    if (attempt >= max_attempts_)
      declare_suspect(src, dst, chan, link, attempt);
  }
}

Transport::ChannelId Transport::open_channel(std::string name) {
  std::lock_guard<std::mutex> lock(open_mu_);
  const auto id = count_.load(std::memory_order_relaxed);
  if (id >= kMaxChannels)
    throw std::runtime_error("transport: channel registry exhausted");
  auto chan = std::make_unique<Channel>();
  chan->name = std::move(name);
  chan->probs = plan_.resolve(chan->name);
  chan->rows.resize(static_cast<std::size_t>(nranks_));
  channels_.push_back(std::move(chan));
  count_.store(id + 1, std::memory_order_release);
  return id;
}

void Transport::set_channel_name(ChannelId ch, std::string name) {
  std::lock_guard<std::mutex> lock(open_mu_);
  Channel& chan = *channels_[ch];
  chan.name = std::move(name);
  chan.probs = plan_.resolve(chan.name);
}

void Transport::set_plan(ChaosPlan plan) {
  plan_ = std::move(plan);
  chaos_on_ = plan_.enabled();
  stage_seen_.clear();
  blackhole_rank_ = -1;
  suspect_peer_.store(-1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(open_mu_);
  for (auto& chan : channels_) chan->probs = plan_.resolve(chan->name);
}

void Transport::reset_for_job() {
  std::lock_guard<std::mutex> lock(open_mu_);
  channels_.clear();
  count_.store(0, std::memory_order_release);
  stage_seen_.clear();
  blackhole_rank_ = -1;
  suspect_peer_.store(-1, std::memory_order_relaxed);
}

void Transport::begin_stage(const std::string& name) {
  if (!chaos_on_) return;
  const int occurrence = stage_seen_[name]++;
  for (const auto& rule : plan_.blackholes) {
    if (!rule.armed()) continue;
    if (rule.stage == name && rule.occurrence == occurrence)
      blackhole_rank_ = rule.rank;
  }
}

void Transport::declare_suspect(int src, int dst, Channel& chan, Link& link,
                                int attempts) {
  // In-flight envelopes to a dead peer are unrecoverable; drop them so
  // nothing half-shipped survives into the unwind.
  link.limbo.clear();
  link.reorder.clear();
  suspect_peer_.store(dst, std::memory_order_relaxed);
  // Trip the team's shared kill flag: every other rank throws RankKilled
  // at its next fault point, exactly as if dst had been killed by plan.
  faults_->trip();
  throw PeerSuspect(src, dst, chan.name, attempts);
}

std::vector<Transport::ChannelReport> Transport::channel_reports() const {
  std::lock_guard<std::mutex> lock(open_mu_);
  std::vector<ChannelReport> out;
  out.reserve(channels_.size());
  for (const auto& chan : channels_) {
    ChannelReport report;
    report.name = chan->name;
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      report.attempts_hist[b] =
          chan->hist[b].load(std::memory_order_relaxed);
    report.backoff_ticks =
        chan->backoff_ticks.load(std::memory_order_relaxed);
    out.push_back(std::move(report));
  }
  return out;
}

std::string Transport::format_retry_histograms() const {
  std::ostringstream os;
  for (const auto& report : channel_reports()) {
    std::uint64_t total = 0;
    for (auto count : report.attempts_hist) total += count;
    if (total == 0) continue;
    os << "channel " << report.name << ": ";
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (report.attempts_hist[b] == 0) continue;
      os << report.attempts_hist[b] << "x" << b
         << (b == kHistBuckets - 1 ? "+" : "") << " ";
    }
    os << "retries, backoff " << report.backoff_ticks << " ticks\n";
  }
  return os.str();
}

ChaosPlan ChaosPlan::parse(std::uint64_t seed, const std::string& spec) {
  ChaosPlan plan;
  plan.seed = seed;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("chaos spec: " + why + " (in '" + spec + "')");
  };
  std::stringstream clauses(spec);
  std::string clause;
  while (std::getline(clauses, clause, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("blackhole=", 0) == 0) {
      // blackhole=RANK@STAGE[#OCCURRENCE]
      const std::string body = clause.substr(10);
      const auto at = body.find('@');
      if (at == std::string::npos) fail("blackhole needs RANK@STAGE");
      BlackholeRule rule;
      try {
        rule.rank = std::stoi(body.substr(0, at));
      } catch (const std::exception&) {
        fail("bad blackhole rank '" + body.substr(0, at) + "'");
      }
      std::string stage = body.substr(at + 1);
      const auto hash_pos = stage.find('#');
      if (hash_pos != std::string::npos) {
        try {
          rule.occurrence = std::stoi(stage.substr(hash_pos + 1));
        } catch (const std::exception&) {
          fail("bad blackhole occurrence in '" + stage + "'");
        }
        stage.resize(hash_pos);
      }
      if (stage.empty() || rule.rank < 0) fail("blackhole needs RANK@STAGE");
      rule.stage = std::move(stage);
      plan.blackholes.push_back(std::move(rule));
      continue;
    }
    // [pattern ':'] kv (',' kv)*  — the pattern may not contain '=' (that
    // would be a kv with a stray colon).
    std::string pattern;
    std::string kvs = clause;
    const auto colon = clause.find(':');
    if (colon != std::string::npos &&
        clause.substr(0, colon).find('=') == std::string::npos) {
      pattern = clause.substr(0, colon);
      kvs = clause.substr(colon + 1);
    }
    ChaosProbs probs;
    std::stringstream pairs(kvs);
    std::string kv;
    bool saw_any = false;
    while (std::getline(pairs, kv, ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) fail("expected key=value, got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      double value = 0.0;
      try {
        value = std::stod(kv.substr(eq + 1));
      } catch (const std::exception&) {
        fail("bad probability '" + kv.substr(eq + 1) + "'");
      }
      if (value < 0.0 || value > 1.0)
        fail("probability out of [0,1]: '" + kv + "'");
      if (key == "drop") {
        probs.drop = value;
      } else if (key == "dup") {
        probs.dup = value;
      } else if (key == "reorder") {
        probs.reorder = value;
      } else if (key == "delay") {
        probs.delay = value;
      } else if (key == "corrupt") {
        probs.corrupt = value;
      } else {
        fail("unknown fault kind '" + key + "'");
      }
      saw_any = true;
    }
    if (!saw_any) fail("empty clause '" + clause + "'");
    if (pattern.empty()) {
      plan.defaults = probs;
    } else {
      plan.per_channel.emplace_back(std::move(pattern), probs);
    }
  }
  return plan;
}

}  // namespace hipmer::pgas
