#pragma once

/// Runtime phase-discipline checker for the PGAS layer (HIPMER_CHECKED).
///
/// HipMer's distributed tables are correct only under a bulk-synchronous
/// contract (§3/§4.1 of the paper): aggregating stores are flushed and a
/// barrier crossed before one-sided lookups begin; a read cache never
/// survives a write phase; every rank enters the same collectives in the
/// same order. That contract normally lives in comments. Under the
/// HIPMER_CHECKED build it becomes an executable state machine:
///
///   - every rank has an *epoch* = number of barriers it has crossed;
///   - every registered table records, per rank, the epoch and call site of
///     its last fine/batched store and lookup;
///   - each primitive validates the phase rules before recording itself.
///
/// Rules (each names the diagnostic a violation aborts with):
///   lookup-during-WRITE       lookup while this rank still has buffered
///                             stores, or while another rank stored to the
///                             table in the same epoch (no barrier between)
///   store-during-READ         store while another rank performed lookups in
///                             the same epoch (the table was not "reopened"
///                             by a barrier)
///   undrained-rows-at-barrier barrier entered while this rank has pending
///                             aggregation rows (stores or lookup requests)
///   stale-cache-across-write  a read cache consulted after the table
///                             version moved under it (cache outlived a
///                             write phase)
///   mismatched-collective     ranks entered different collectives at the
///                             same physical barrier instance
///   mixed-access              fine-grained and batched ops of the same
///                             direction on one table in one epoch
///
/// Phases where mixed fine-RMW + batched-read traffic is the *protocol*
/// (the traversal's speculative claim/abort loop) opt out explicitly with a
/// `RelaxedPhase` scope — the UPC "relaxed" access mode, made visible and
/// grep-able at the call site.
///
/// Everything in this header exists only under HIPMER_CHECKED; the
/// unchecked build compiles none of it (see checked.hpp).

#if defined(HIPMER_CHECKED)

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pgas/checked.hpp"

namespace hipmer::pgas {

class ThreadTeam;
class CheckedTable;

// ---- rule names (stable strings; tests grep for these) ----
inline constexpr const char* kRuleLookupDuringWrite = "lookup-during-WRITE";
inline constexpr const char* kRuleStoreDuringRead = "store-during-READ";
inline constexpr const char* kRuleUndrained = "undrained-rows-at-barrier";
inline constexpr const char* kRuleStaleCache = "stale-cache-across-write";
inline constexpr const char* kRuleMismatchedCollective = "mismatched-collective";
inline constexpr const char* kRuleMixedAccess = "mixed-access";

/// Plain-data call site (source_location is not assignable; this is).
struct SiteInfo {
  const char* file = "?";
  unsigned line = 0;
  const char* function = "?";
};

[[nodiscard]] inline SiteInfo to_site(const CallSite& s) {
  return SiteInfo{s.file_name(), s.line(), s.function_name()};
}

struct Violation {
  std::string rule;
  std::string table;
  int rank = -1;
  /// The offending call and the call it conflicts with.
  SiteInfo site;
  SiteInfo other_site;
  int other_rank = -1;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Thrown by the test violation handler (the default handler aborts).
class PhaseViolation : public std::runtime_error {
 public:
  explicit PhaseViolation(Violation v);
  [[nodiscard]] const Violation& violation() const noexcept { return v_; }

 private:
  Violation v_;
};

/// Process-global violation sink. The default prints the full diagnostic to
/// stderr and calls std::abort(). Tests install a handler that records and
/// throws PhaseViolation instead (ThreadTeam::run propagates it); returns
/// the previous handler so fixtures can restore it.
using ViolationHandler = std::function<void(const Violation&)>;
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Per-team checker: owns rank epochs, the barrier-matching records and the
/// registry of checked tables. One instance lives inside ThreadTeam.
class PhaseChecker {
 public:
  enum Kind : int {
    kBarrier = 0,
    kAllreduce,
    kAllgather,
    kAllgatherv,
    kBroadcast,
    kExscan,
    kAlltoallv,
  };
  static const char* kind_name(int kind);

  PhaseChecker(ThreadTeam& team, int nranks);

  PhaseChecker(const PhaseChecker&) = delete;
  PhaseChecker& operator=(const PhaseChecker&) = delete;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::uint64_t epoch(int rank) const noexcept {
    return slots_[static_cast<std::size_t>(rank)]->epoch.load(
        std::memory_order_relaxed);
  }

  // ---- table registry ----
  void register_table(CheckedTable* table);
  void unregister_table(CheckedTable* table);

  // ---- barrier protocol (called from Rank::barrier, in this order) ----
  /// Undrained-rows check over every registered table, then publish this
  /// rank's (kind, site) record for the matching step.
  void pre_barrier(int rank, int kind, SiteInfo site);
  /// All-pairs comparison of the published records; runs between the two
  /// arrival phases so every record is fresh.
  void compare_barrier_records(int rank);
  void advance_epoch(int rank) noexcept {
    slots_[static_cast<std::size_t>(rank)]->epoch.fetch_add(
        1, std::memory_order_relaxed);
  }

  // ---- multi-process record exchange (SocketFabric barrier protocol) ----
  /// This rank's record as published by pre_barrier, for shipping to peers
  /// over the fabric.
  [[nodiscard]] int record_kind(int rank) const noexcept {
    return slots_[static_cast<std::size_t>(rank)]->record_kind;
  }
  [[nodiscard]] SiteInfo record_site(int rank) const noexcept {
    return slots_[static_cast<std::size_t>(rank)]->record_site;
  }
  /// Install a remote rank's record into its local mirror slot so the
  /// compare_barrier_records all-pairs check runs unmodified across
  /// processes. Strings are interned (SiteInfo borrows const char*);
  /// idempotent within a barrier round.
  void install_record(int rank, int kind, const std::string& file,
                      unsigned line, const std::string& func);

  // ---- collective scope (outermost collective tags its barriers) ----
  void push_collective(int rank, int kind, SiteInfo site) noexcept;
  void pop_collective(int rank) noexcept;
  [[nodiscard]] int scope_kind(int rank) const noexcept;
  [[nodiscard]] bool in_collective(int rank) const noexcept;
  [[nodiscard]] SiteInfo scope_site(int rank) const noexcept;

  /// True once a violation fired or rank-fault injection killed the team:
  /// every subsequent check is skipped so the unwind (arrive_and_drop,
  /// stale slots, tables abandoned mid-WRITE by survivors) is not reported
  /// as a second, bogus violation.
  [[nodiscard]] bool suppressed() const;

  /// Deliver `v` to the installed handler (sets the suppression flag first).
  void report(const Violation& v);

  /// Serial context, between jobs on a long-lived team: zero every rank's
  /// epoch and scope/record slots and un-trip the suppression flag so the
  /// next job starts from the same state a fresh team would. The table
  /// registry is cleared defensively — all checked structures are per-job
  /// and must already be destroyed.
  void reset_for_job();

 private:
  struct alignas(64) RankSlot {
    std::atomic<std::uint64_t> epoch{0};
    // Collective scope — touched only by the owning rank's thread.
    int scope_kind = kBarrier;
    int scope_depth = 0;
    SiteInfo scope_site{};
    // Published record for the current barrier instance; written by the
    // owner before arrival, read by peers between the two phases.
    int record_kind = kBarrier;
    SiteInfo record_site{};
  };

  ThreadTeam* team_;
  int nranks_;
  // unique_ptr: atomics are not movable and each slot gets its own line.
  std::vector<std::unique_ptr<RankSlot>> slots_;
  std::mutex registry_mu_;
  std::vector<CheckedTable*> tables_;
  std::atomic<bool> tripped_{false};
  /// Interned copies of remote call-site strings (stable addresses for the
  /// borrowed const char* in SiteInfo).
  std::mutex intern_mu_;
  std::set<std::string> interned_;
};

/// RAII tag for a barrier-bracketed collective: the outermost scope names
/// the kind recorded at each inner barrier so mismatches report "allgather
/// vs barrier" instead of two anonymous barriers.
class CollectiveScope {
 public:
  CollectiveScope(PhaseChecker& checker, int rank, int kind, SiteInfo site)
      : checker_(&checker), rank_(rank) {
    checker_->push_collective(rank_, kind, site);
  }
  ~CollectiveScope() { checker_->pop_collective(rank_); }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  PhaseChecker* checker_;
  int rank_;
};

/// Per-table phase state machine. A distributed structure (DistHashMap,
/// ContigStore) owns one and reports every primitive through it.
class CheckedTable {
 public:
  /// How the pending-rows counts are obtained at barrier time.
  using PendingFn = std::function<std::size_t(int rank)>;

  enum class Path { kFine, kBatched, kLocal };

  CheckedTable(PhaseChecker& checker, std::string name,
               PendingFn pending_stores, PendingFn pending_lookups);
  ~CheckedTable();

  CheckedTable(const CheckedTable&) = delete;
  CheckedTable& operator=(const CheckedTable&) = delete;

  void set_name(std::string name);
  [[nodiscard]] std::string name() const;

  /// Validate + record a store (update / modify / buffered enqueue /
  /// local erase). kLocal stores skip the mixed-access rule (owner-side
  /// compaction is not a communication path) but still conflict with
  /// same-epoch lookups from other ranks.
  void on_store(int rank, Path path, SiteInfo site);
  /// Validate + record a lookup (find / buffered request / cache hit).
  void on_lookup(int rank, Path path, SiteInfo site);
  /// Contract check for the software read cache: called with the cache's
  /// last-coherent version and the table's current version *before* the
  /// cache self-invalidates, so surviving a write phase is caught even
  /// though the stale data would have been dropped.
  void on_cache_consult(int rank, std::uint64_t cache_seen_version,
                        std::uint64_t table_version, std::size_t cache_size,
                        SiteInfo site);

  /// Relaxed scope (see RelaxedPhase): per-rank, re-entrant.
  void relaxed_begin(int rank);
  void relaxed_end(int rank);

  /// Barrier-time check: this rank must have no buffered rows.
  void check_undrained_at_barrier(int rank, SiteInfo barrier_site);

 private:
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  struct Event {
    std::uint64_t epoch = kNoEpoch;
    SiteInfo site{};
    bool relaxed = false;
  };

  struct RankState {
    Event fine_store;
    Event batched_store;
    Event fine_lookup;
    Event batched_lookup;
    // Last buffered-enqueue sites, for the undrained diagnostic.
    SiteInfo store_enqueue_site{};
    SiteInfo lookup_enqueue_site{};
    int relaxed_depth = 0;
  };

  void conflict(const char* rule, int rank, SiteInfo site, int other_rank,
                const Event& other, const std::string& detail);

  PhaseChecker* checker_;
  mutable std::mutex mu_;
  std::string name_;
  PendingFn pending_stores_;
  PendingFn pending_lookups_;
  std::vector<RankState> states_;
  // Most recent store anywhere (any epoch): the "other side" of a
  // stale-cache diagnostic, where the write that moved the version is the
  // interesting call site.
  Event last_store_;
  int last_store_rank_ = -1;
};

}  // namespace hipmer::pgas

#endif  // HIPMER_CHECKED
