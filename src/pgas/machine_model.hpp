#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pgas/comm_stats.hpp"
#include "pgas/topology.hpp"

/// Analytic machine model: per-rank counters -> modeled seconds.
///
/// ### Why a model at all
///
/// The paper's evaluation machine is Edison, a Cray XC30 with 133,824 cores
/// and an Aries dragonfly network; this reproduction runs on whatever host
/// it is built on. Wall-clock strong-scaling curves cannot be measured here,
/// but the *inputs* to those curves can: HipMer's optimizations change only
/// (a) how many local / on-node / off-node operations each rank performs,
/// (b) how balanced those totals are across ranks, and (c) how much data is
/// pushed through a saturating filesystem. The simulator executes the real
/// algorithms with real concurrency, counts those quantities exactly, and
/// this model maps them to time with *one fixed set of constants* shared by
/// every experiment. No experiment gets its own tuning; shapes in the
/// benches (who wins, by what factor, where curves flatten) follow from the
/// counters alone.
///
/// ### The model (LogGP-flavored, plus I/O saturation)
///
///   T(rank)  = w    * work_units
///            + w    * serial_work_units              (not divided by P)
///            + a_l  * local_accesses
///            + a_on * onnode_msgs  + b_on  * onnode_bytes
///            + a_off* offnode_msgs + b_off * offnode_bytes
///            + s    * recv_ops                       (owner-side service)
///   T(phase) = max over ranks of T(rank)
///            + c * collectives(max rank)             (barrier latency)
///            + io_read_bytes_total  / min(nodes * bw_node, bw_peak)
///            + io_write_bytes_total / min(nodes * bw_node, bw_peak)
///
/// ### Calibration (fixed once, documented here)
///
/// Constants are set to Edison-era ratios:
///   - local hash access ~ a few cache misses:             25 ns
///   - on-node one-sided op (shared memory):              250 ns
///   - off-node one-sided op (Aries injection + network): 2.5 us  (100x local)
///   - per-byte network cost:                             0.25 ns/B (~4 GB/s/core)
///   - owner-side service per received op:                100 ns
///   - work unit (hash + compare + bookkeeping):           20 ns
///   - barrier/collective:                                 30 us
///   - filesystem: 0.5 GB/s per node, saturating at 36 GB/s aggregate
///     (Lustre /scratch3 is 72 GB/s peak; ~50% achievable, and the paper
///     observes saturation already at 960 cores = 40 nodes).
namespace hipmer::pgas {

struct MachineModel {
  double work_ns = 20.0;
  double local_access_ns = 25.0;
  double onnode_msg_ns = 250.0;
  double offnode_msg_ns = 2500.0;
  double onnode_byte_ns = 0.05;
  double offnode_byte_ns = 0.25;
  double recv_op_ns = 100.0;
  double cache_hit_ns = 5.0;  // software read-cache hit: L1/L2-resident probe
  double collective_ns = 30000.0;
  double io_bw_node_gbs = 0.5;   // per-node achievable filesystem bandwidth
  double io_bw_peak_gbs = 36.0;  // aggregate saturation point

  /// Modeled compute+comm seconds for one rank's counters.
  [[nodiscard]] double rank_seconds(const CommStatsSnapshot& s) const noexcept {
    const double ns =
        work_ns * static_cast<double>(s.work_units) +
        work_ns * static_cast<double>(s.serial_work_units) +
        local_access_ns * static_cast<double>(s.local_accesses) +
        onnode_msg_ns * static_cast<double>(s.onnode_msgs) +
        offnode_msg_ns * static_cast<double>(s.offnode_msgs) +
        onnode_byte_ns * static_cast<double>(s.onnode_bytes) +
        offnode_byte_ns * static_cast<double>(s.offnode_bytes) +
        recv_op_ns * static_cast<double>(s.recv_ops) +
        cache_hit_ns * static_cast<double>(s.read_cache_hits) +
        collective_ns * static_cast<double>(s.collectives);
    return ns * 1e-9;
  }

  /// Communication-only part of a rank's modeled time (message latencies,
  /// bytes, owner-side service, collectives) — used to report the "%
  /// communication" figures of §5.1.
  [[nodiscard]] double rank_comm_seconds(
      const CommStatsSnapshot& s) const noexcept {
    const double ns =
        onnode_msg_ns * static_cast<double>(s.onnode_msgs) +
        offnode_msg_ns * static_cast<double>(s.offnode_msgs) +
        onnode_byte_ns * static_cast<double>(s.onnode_bytes) +
        offnode_byte_ns * static_cast<double>(s.offnode_bytes) +
        recv_op_ns * static_cast<double>(s.recv_ops) +
        collective_ns * static_cast<double>(s.collectives);
    return ns * 1e-9;
  }

  /// Fraction of the critical-path rank's time spent communicating.
  [[nodiscard]] double comm_fraction(
      const std::vector<CommStatsSnapshot>& per_rank) const noexcept {
    double max_total = 0.0;
    double comm_at_max = 0.0;
    for (const auto& s : per_rank) {
      const double total = rank_seconds(s);
      if (total > max_total) {
        max_total = total;
        comm_at_max = rank_comm_seconds(s);
      }
    }
    return max_total == 0.0 ? 0.0 : comm_at_max / max_total;
  }

  /// Modeled seconds to move `bytes` through the filesystem with `nodes`
  /// nodes reading/writing concurrently (bandwidth saturates).
  [[nodiscard]] double io_seconds(std::uint64_t bytes, int nodes) const noexcept {
    const double bw_gbs =
        std::min(io_bw_node_gbs * static_cast<double>(nodes), io_bw_peak_gbs);
    return static_cast<double>(bytes) / (bw_gbs * 1e9);
  }

  /// Modeled seconds to move per-node byte loads through the filesystem:
  /// limited both by the aggregate saturation point and by the most loaded
  /// node's per-node bandwidth — a serial reader (all bytes on one node)
  /// sees no benefit from more nodes.
  [[nodiscard]] double io_seconds_distributed(
      const std::vector<std::uint64_t>& per_node_bytes) const noexcept {
    std::uint64_t total = 0;
    std::uint64_t max_node = 0;
    for (auto b : per_node_bytes) {
      total += b;
      max_node = std::max(max_node, b);
    }
    const double aggregate =
        static_cast<double>(total) / (io_bw_peak_gbs * 1e9);
    const double bottleneck =
        static_cast<double>(max_node) / (io_bw_node_gbs * 1e9);
    return std::max(aggregate, bottleneck);
  }

  /// Modeled seconds for a whole phase: the slowest rank's compute+comm time
  /// (bulk-synchronous critical path) plus saturating-I/O time for the
  /// file traffic, accounting for which node performed it.
  [[nodiscard]] double phase_seconds(
      const std::vector<CommStatsSnapshot>& per_rank,
      const Topology& topo) const noexcept {
    double max_rank = 0.0;
    std::vector<std::uint64_t> node_read(
        static_cast<std::size_t>(topo.num_nodes()), 0);
    std::vector<std::uint64_t> node_write(node_read.size(), 0);
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      const auto& s = per_rank[r];
      max_rank = std::max(max_rank, rank_seconds(s));
      const auto node = static_cast<std::size_t>(
          topo.node_of(static_cast<int>(r)));
      node_read[node] += s.io_read_bytes;
      node_write[node] += s.io_write_bytes;
    }
    return max_rank + io_seconds_distributed(node_read) +
           io_seconds_distributed(node_write);
  }

  /// Same, but excluding I/O (Table 3 of the paper reports I/O separately).
  [[nodiscard]] double phase_seconds_no_io(
      const std::vector<CommStatsSnapshot>& per_rank) const noexcept {
    double max_rank = 0.0;
    for (const auto& s : per_rank)
      max_rank = std::max(max_rank, rank_seconds(s));
    return max_rank;
  }

  [[nodiscard]] double io_phase_seconds(
      const std::vector<CommStatsSnapshot>& per_rank,
      const Topology& topo) const noexcept {
    std::vector<std::uint64_t> node_read(
        static_cast<std::size_t>(topo.num_nodes()), 0);
    std::vector<std::uint64_t> node_write(node_read.size(), 0);
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      const auto node = static_cast<std::size_t>(
          topo.node_of(static_cast<int>(r)));
      node_read[node] += per_rank[r].io_read_bytes;
      node_write[node] += per_rank[r].io_write_bytes;
    }
    return io_seconds_distributed(node_read) +
           io_seconds_distributed(node_write);
  }
};

}  // namespace hipmer::pgas
