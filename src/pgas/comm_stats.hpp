#pragma once

#include <atomic>
#include <cstdint>
#include <string>

/// Per-rank work and communication accounting.
///
/// This is the instrument the whole reproduction hangs on: the paper's
/// contributions (heavy hitters, oracle partitioning, aggregating stores)
/// are *communication* optimizations, and their effect is entirely captured
/// by how many local / on-node / off-node operations each rank performs and
/// how balanced the per-rank totals are. Every distributed structure in
/// `pgas` bumps these counters; `MachineModel` turns a snapshot into modeled
/// seconds.
namespace hipmer::pgas {

/// Plain-value snapshot of the counters (copyable, subtractable).
struct CommStatsSnapshot {
  // Charged by application code: one unit per element of local compute
  // (k-mer parsed/hashed, base extended, alignment cell, ...).
  std::uint64_t work_units = 0;
  // Work that is inherently serial (executed by one rank while others wait),
  // e.g. the ordering/orientation traversal. Charged in full, not divided.
  std::uint64_t serial_work_units = 0;

  // Hash-table / exchange traffic, classified by destination locality.
  std::uint64_t local_accesses = 0;
  std::uint64_t onnode_msgs = 0;
  std::uint64_t offnode_msgs = 0;
  std::uint64_t onnode_bytes = 0;
  std::uint64_t offnode_bytes = 0;

  // Remote operations *received* by this rank (it is the owner). Models
  // target-side service/contention: a hot owner (heavy-hitter k-mer) shows
  // up as a huge recv_ops count on one rank.
  std::uint64_t recv_ops = 0;

  // Software read-cache traffic (batched lookup path): a hit is a lookup
  // answered locally that would otherwise have been part of a remote
  // batch — the saved off-node messages the machine model and Table 2 see.
  std::uint64_t read_cache_hits = 0;
  std::uint64_t read_cache_misses = 0;

  // Lossy-transport protocol events (pgas/transport.hpp), charged to the
  // *sender* whose thread simulates the delivery: retransmissions after a
  // lost/rejected envelope, duplicate envelopes the receiver suppressed,
  // envelopes buffered out of sequence, and corrupt frames the CRC caught.
  // All zero on a healthy fabric (no ChaosPlan armed).
  std::uint64_t transport_retries = 0;
  std::uint64_t transport_dups = 0;
  std::uint64_t transport_reorders = 0;
  std::uint64_t transport_corrupts = 0;

  // Bytes read from / written to the filesystem by this rank.
  std::uint64_t io_read_bytes = 0;
  std::uint64_t io_write_bytes = 0;

  // Collective participation (barriers + reductions), for the latency term.
  std::uint64_t collectives = 0;

  CommStatsSnapshot& operator+=(const CommStatsSnapshot& o) noexcept;
  CommStatsSnapshot& operator-=(const CommStatsSnapshot& o) noexcept;
  friend CommStatsSnapshot operator+(CommStatsSnapshot a,
                                     const CommStatsSnapshot& b) noexcept {
    a += b;
    return a;
  }
  friend CommStatsSnapshot operator-(CommStatsSnapshot a,
                                     const CommStatsSnapshot& b) noexcept {
    a -= b;
    return a;
  }

  [[nodiscard]] std::uint64_t total_msgs() const noexcept {
    return onnode_msgs + offnode_msgs;
  }
  [[nodiscard]] std::uint64_t total_remote_accesses() const noexcept {
    return onnode_msgs + offnode_msgs;
  }
  [[nodiscard]] std::uint64_t total_accesses() const noexcept {
    return local_accesses + onnode_msgs + offnode_msgs;
  }
  /// Fraction of accesses that left the node — the quantity Table 2 of the
  /// paper reports for the traversal phase.
  [[nodiscard]] double offnode_fraction() const noexcept {
    const auto total = total_accesses();
    return total == 0 ? 0.0
                      : static_cast<double>(offnode_msgs) /
                            static_cast<double>(total);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counters. Each rank owns one; the owner updates with relaxed
/// atomics (cheap), and *other* ranks may bump `recv_ops` concurrently when
/// they perform one-sided operations against this rank's shards.
class CommStats {
 public:
  void add_work(std::uint64_t n = 1) noexcept {
    work_units_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_serial_work(std::uint64_t n = 1) noexcept {
    serial_work_units_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_local_access(std::uint64_t n = 1) noexcept {
    local_accesses_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_onnode_msg(std::uint64_t bytes) noexcept {
    onnode_msgs_.fetch_add(1, std::memory_order_relaxed);
    onnode_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_offnode_msg(std::uint64_t bytes) noexcept {
    offnode_msgs_.fetch_add(1, std::memory_order_relaxed);
    offnode_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_recv_ops(std::uint64_t n = 1) noexcept {
    recv_ops_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_read_cache_hit(std::uint64_t n = 1) noexcept {
    read_cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_read_cache_miss(std::uint64_t n = 1) noexcept {
    read_cache_misses_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_transport_retry(std::uint64_t n = 1) noexcept {
    transport_retries_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_transport_dup(std::uint64_t n = 1) noexcept {
    transport_dups_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_transport_reorder(std::uint64_t n = 1) noexcept {
    transport_reorders_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_transport_corrupt(std::uint64_t n = 1) noexcept {
    transport_corrupts_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_io_read(std::uint64_t bytes) noexcept {
    io_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_io_write(std::uint64_t bytes) noexcept {
    io_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_collective() noexcept {
    collectives_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] CommStatsSnapshot snapshot() const noexcept {
    CommStatsSnapshot s;
    s.work_units = work_units_.load(std::memory_order_relaxed);
    s.serial_work_units = serial_work_units_.load(std::memory_order_relaxed);
    s.local_accesses = local_accesses_.load(std::memory_order_relaxed);
    s.onnode_msgs = onnode_msgs_.load(std::memory_order_relaxed);
    s.offnode_msgs = offnode_msgs_.load(std::memory_order_relaxed);
    s.onnode_bytes = onnode_bytes_.load(std::memory_order_relaxed);
    s.offnode_bytes = offnode_bytes_.load(std::memory_order_relaxed);
    s.recv_ops = recv_ops_.load(std::memory_order_relaxed);
    s.read_cache_hits = read_cache_hits_.load(std::memory_order_relaxed);
    s.read_cache_misses = read_cache_misses_.load(std::memory_order_relaxed);
    s.transport_retries = transport_retries_.load(std::memory_order_relaxed);
    s.transport_dups = transport_dups_.load(std::memory_order_relaxed);
    s.transport_reorders = transport_reorders_.load(std::memory_order_relaxed);
    s.transport_corrupts = transport_corrupts_.load(std::memory_order_relaxed);
    s.io_read_bytes = io_read_bytes_.load(std::memory_order_relaxed);
    s.io_write_bytes = io_write_bytes_.load(std::memory_order_relaxed);
    s.collectives = collectives_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    work_units_ = 0;
    serial_work_units_ = 0;
    local_accesses_ = 0;
    onnode_msgs_ = 0;
    offnode_msgs_ = 0;
    onnode_bytes_ = 0;
    offnode_bytes_ = 0;
    recv_ops_ = 0;
    read_cache_hits_ = 0;
    read_cache_misses_ = 0;
    transport_retries_ = 0;
    transport_dups_ = 0;
    transport_reorders_ = 0;
    transport_corrupts_ = 0;
    io_read_bytes_ = 0;
    io_write_bytes_ = 0;
    collectives_ = 0;
  }

 private:
  std::atomic<std::uint64_t> work_units_{0};
  std::atomic<std::uint64_t> serial_work_units_{0};
  std::atomic<std::uint64_t> local_accesses_{0};
  std::atomic<std::uint64_t> onnode_msgs_{0};
  std::atomic<std::uint64_t> offnode_msgs_{0};
  std::atomic<std::uint64_t> onnode_bytes_{0};
  std::atomic<std::uint64_t> offnode_bytes_{0};
  std::atomic<std::uint64_t> recv_ops_{0};
  std::atomic<std::uint64_t> read_cache_hits_{0};
  std::atomic<std::uint64_t> read_cache_misses_{0};
  std::atomic<std::uint64_t> transport_retries_{0};
  std::atomic<std::uint64_t> transport_dups_{0};
  std::atomic<std::uint64_t> transport_reorders_{0};
  std::atomic<std::uint64_t> transport_corrupts_{0};
  std::atomic<std::uint64_t> io_read_bytes_{0};
  std::atomic<std::uint64_t> io_write_bytes_{0};
  std::atomic<std::uint64_t> collectives_{0};
};

}  // namespace hipmer::pgas
