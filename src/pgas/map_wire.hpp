#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

#include "io/wire.hpp"

/// Wire formats of the DistHashMap remote paths — batched stores/lookups,
/// the lookup reply oneway, and the registered-RMW request/response —
/// extracted from the map template so each codec is a plain annotated free
/// function wirecheck can diff and the schema sweeps can corrupt. All of
/// these payloads ride inside CRC-checked transport envelopes or fabric
/// frames, but still decode through the throwing Reader API: a framing bug
/// upstream surfaces as a clean CorruptError instead of a misparse.
namespace hipmer::pgas::map_wire {

/// One entry of a lookup reply batch: the echoed request tag and key, plus
/// the value when the owner's shard held it.
template <typename K, typename V>
struct LookupReply {
  std::uint64_t tag = 0;
  bool found = false;
  K key{};
  V value{};
};

/// One decoded registered-RMW request: the handler id, the key's hash and
/// bytes, and the opaque argument block (interpreted by the handler).
template <typename K>
struct RmwRequest {
  std::uint32_t id = 0;
  std::uint64_t hash = 0;
  K key{};
  std::vector<std::byte> args;
};

/// [u32 count][bytes: count * sizeof(Op) memcpy'd ops]
// wire-schema: dhm_batch writer
template <typename Op>
std::vector<std::byte> encode_batch(const std::vector<Op>& ops) {
  static_assert(std::is_trivially_copyable_v<Op>);
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(static_cast<std::uint32_t>(ops.size()));
  w.put_bytes(std::string_view(reinterpret_cast<const char*>(ops.data()),
                               ops.size() * sizeof(Op)));
  return out;
}

/// Inverse of encode_batch. The payload arrived through a CRC-checked
/// envelope, so a mismatch here means a framing bug, not line noise — but
/// it is still validated (and the bytes are memcpy'd into a fresh vector,
/// never reinterpreted in place: the envelope buffer carries no alignment
/// guarantee for Op).
// wire-schema: dhm_batch reader
template <typename Op>
std::vector<Op> decode_batch(const std::byte* data, std::size_t size) {
  static_assert(std::is_trivially_copyable_v<Op>);
  io::wire::Reader r(data, size);
  const auto count = r.get_u32_checked("batch count");
  const auto len = r.get_u32_checked("batch byte length");
  if (static_cast<std::size_t>(len) != count * sizeof(Op) ||
      static_cast<std::size_t>(len) != r.remaining())
    throw io::wire::CorruptError(
        "wire: corrupt: batch length disagrees with op count");
  std::vector<Op> ops(count);
  if (len > 0) r.get_raw(ops.data(), len, "batch ops");
  return ops;
}

/// [u32 count][count x: u64 tag, u8 found, pod K, value iff found]
// wire-schema: dhm_lookup_reply writer
template <typename K, typename V>
std::vector<std::byte> encode_lookup_replies(
    const std::vector<LookupReply<K, V>>& replies) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(static_cast<std::uint32_t>(replies.size()));
  for (const auto& reply : replies) {
    w.put_u64(reply.tag);
    w.put_pod(static_cast<std::uint8_t>(reply.found ? 1 : 0));
    w.put_pod(reply.key);  // wire: pod K
    if (reply.found) {
      w.put_pod(reply.value);  // wire: pod V
    }
  }
  return out;
}

// wire-schema: dhm_lookup_reply reader
template <typename K, typename V>
std::vector<LookupReply<K, V>> decode_lookup_replies(const std::byte* data,
                                                     std::size_t size) {
  io::wire::Reader r(data, size);
  std::vector<LookupReply<K, V>> replies;
  const auto count = r.get_u32_checked("reply count");
  for (std::uint32_t i = 0; i < count; ++i) {
    LookupReply<K, V> reply;
    reply.tag = r.get_u64_checked("reply tag");
    const auto found = r.get_pod_checked<std::uint8_t>("reply found");
    if (found > 1)
      throw io::wire::CorruptError(
          "wire: corrupt: reply found flag is neither 0 nor 1");
    reply.found = found != 0;
    reply.key = r.get_pod_checked<K>("reply key");
    if (reply.found) {
      reply.value = r.get_pod_checked<V>("reply value");
    }
    replies.push_back(reply);
  }
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after lookup replies");
  return replies;
}

/// [u32 id][u64 hash][pod K][arg bytes to end of payload]
// wire-schema: dhm_rmw_request writer
template <typename K>
std::vector<std::byte> encode_rmw_request(std::uint32_t id, std::uint64_t hash,
                                          const K& key, const std::byte* args,
                                          std::size_t args_size) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_u32(id);
  w.put_u64(hash);
  w.put_pod(key);  // wire: pod K
  const std::size_t base = out.size();
  out.resize(base + args_size);  // wire: rest
  if (args_size > 0) std::memcpy(out.data() + base, args, args_size);
  return out;
}

// wire-schema: dhm_rmw_request reader
template <typename K>
RmwRequest<K> decode_rmw_request(const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  RmwRequest<K> req;
  req.id = r.get_u32_checked("rmw id");
  req.hash = r.get_u64_checked("rmw hash");
  req.key = r.get_pod_checked<K>("rmw key");
  req.args.resize(r.remaining());  // wire: rest
  if (!req.args.empty()) r.get_raw(req.args.data(), req.args.size(), "rmw args");
  return req;
}

/// [u8 present][result bytes to end iff present]
// wire-schema: dhm_rmw_response writer
inline std::vector<std::byte> encode_rmw_response(
    bool present, const std::vector<std::byte>& result) {
  std::vector<std::byte> out;
  io::wire::Writer w(out);
  w.put_pod(static_cast<std::uint8_t>(present ? 1 : 0));
  if (present) {
    // resize + memcpy, not a range insert: see io::wire::Writer::append on
    // GCC 12's bounds false positive.
    const std::size_t base = out.size();
    out.resize(base + result.size());  // wire: rest
    if (!result.empty())
      std::memcpy(out.data() + base, result.data(), result.size());
  }
  return out;
}

// wire-schema: dhm_rmw_response reader
inline std::optional<std::vector<std::byte>> decode_rmw_response(
    const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  const auto present = r.get_pod_checked<std::uint8_t>("rmw present");
  if (present > 1)
    throw io::wire::CorruptError(
        "wire: corrupt: rmw present flag is neither 0 nor 1");
  std::optional<std::vector<std::byte>> out;
  if (present != 0) {
    std::vector<std::byte> result(r.remaining());  // wire: rest
    if (!result.empty()) r.get_raw(result.data(), result.size(), "rmw result");
    out = std::move(result);
  } else if (!r.done()) {
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after absent rmw response");
  }
  return out;
}

}  // namespace hipmer::pgas::map_wire
