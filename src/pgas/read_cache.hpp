#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

/// Per-rank software cache for remote hash-table reads.
///
/// The journal version of the paper (Georganas et al., arXiv:1705.11147)
/// fronts merAligner's seed-index lookups with exactly this: a bounded
/// per-processor cache of (key, value) pairs that short-circuits repeated
/// remote lookups — at 18x read coverage the same seed k-mer is probed ~18
/// times, so most lookups never leave the rank. The cache is strictly a
/// read-phase structure: DistHashMap tags it with the table's write version
/// and the cache drops everything when the version moves (see
/// `check_version`), so a value can never be served across a write-phase
/// boundary.
///
/// Single-threaded by construction — each rank owns one cache and nobody
/// else touches it — so no locking, and the LRU list is a plain std::list.
namespace hipmer::pgas {

template <typename K, typename V, typename Hash>
class ReadCache {
 public:
  explicit ReadCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    map_.reserve(capacity_);
  }

  /// Drop everything if the owning table has been written since the cache
  /// was last coherent. Call before every lookup/insert batch.
  void check_version(std::uint64_t table_version) {
    if (table_version == seen_version_) return;
    map_.clear();
    lru_.clear();
    seen_version_ = table_version;
  }

  /// nullptr on miss; on hit the pointer stays valid until the next
  /// mutating call. Bumps the hit/miss counters.
  [[nodiscard]] const V* lookup(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->second;
  }

  /// Insert (or refresh) a key fetched from the owner; evicts the least
  /// recently used entry at capacity. Only positive results are cached —
  /// a cached "absent" could not be invalidated by the insert that fills
  /// it without a version bump on every store, which read-only phases
  /// never issue.
  void insert(const K& key, const V& value) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = value;
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
    lru_.emplace_front(key, value);
    map_.emplace(key, lru_.begin());
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Table version this cache was last coherent with (0 = never synced).
  /// The phase checker compares it against the live table version *before*
  /// check_version self-invalidates.
  [[nodiscard]] std::uint64_t seen_version() const noexcept {
    return seen_version_;
  }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::size_t capacity_;
  std::uint64_t seen_version_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Front = most recently used.
  std::list<std::pair<K, V>> lru_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      map_;
};

}  // namespace hipmer::pgas
