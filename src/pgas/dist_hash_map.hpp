#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "pgas/spin_mutex.hpp"
#include "pgas/thread_team.hpp"
#include "util/hash.hpp"

/// Distributed hash table with one-sided access and aggregating stores.
///
/// "We emphasize that distributed hash tables lie in the heart of HipMer and
/// the main operations on them are irregular lookups" (§7 of the paper).
/// This is that structure. The global key space is sharded across ranks by
/// an *owner mapping* (by default `hash % P`, replaceable by the oracle
/// partitioner of §3.2); each shard is a bucketized hash table owned by one
/// rank but directly readable/writable by every rank — the analogue of UPC
/// one-sided access. Per-bucket spinlocks make concurrent mixed-phase access
/// safe; every operation charges the initiator's communication counters and
/// the owner's service counter so the machine model sees exactly the traffic
/// the paper's optimizations manipulate.
///
/// Two store paths exist, mirroring §4.1's "aggregating stores":
///   - `update()` — one message per element (the naive fine-grained path);
///   - `update_buffered()` + `flush()` — per-destination buffers that move
///     B elements per message, cutting message count by B on the critical
///     path.
namespace hipmer::pgas {

/// Default conflict policy: last write wins.
template <typename V>
struct OverwriteMerge {
  void operator()(V& existing, const V& incoming) const { existing = incoming; }
};

/// Owner mapping: (key hash) -> rank. Default is modulo; the oracle
/// partitioner installs a custom one.
using RankMapper = std::function<std::uint32_t(std::uint64_t hash)>;

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Merge = OverwriteMerge<V>>
class DistHashMap {
 public:
  struct Config {
    /// Expected number of distinct keys across all ranks; controls bucket
    /// count (shards never rehash — overflow chains absorb misestimates,
    /// exactly as HipMer sizes tables from the cardinality estimate).
    std::size_t global_capacity = 1024;
    /// Elements buffered per destination before a flush ("aggregating
    /// stores" batch size).
    std::size_t flush_threshold = 512;
  };

  DistHashMap(ThreadTeam& team, Config cfg)
      : team_(&team),
        cfg_(cfg),
        nranks_(static_cast<std::uint32_t>(team.nranks())),
        shards_(static_cast<std::size_t>(team.nranks())),
        send_buffers_(static_cast<std::size_t>(team.nranks())) {
    const std::size_t per_shard =
        (cfg.global_capacity + nranks_ - 1) / nranks_;
    // Aim for ~2 entries per bucket at the estimated cardinality.
    std::size_t nbuckets = 1;
    while (nbuckets * Bucket::kInline / 2 < per_shard) nbuckets <<= 1;
    for (auto& shard : shards_) {
      shard.buckets.resize(nbuckets);
      shard.locks = std::make_unique<SpinMutex[]>(nbuckets);
      shard.mask = nbuckets - 1;
    }
    for (auto& bufs : send_buffers_)
      bufs.resize(static_cast<std::size_t>(nranks_));
  }

  /// Install a custom owner mapping (oracle partitioning). Must be called
  /// while the table is empty and outside concurrent access.
  void set_rank_mapper(RankMapper mapper) { mapper_ = std::move(mapper); }

  [[nodiscard]] std::uint64_t hash_of(const K& key) const {
    return Hash{}(key);
  }

  [[nodiscard]] std::uint32_t owner_of(const K& key) const {
    const std::uint64_t h = Hash{}(key);
    return mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
  }

  // ---- fine-grained one-sided path ----

  /// Insert policy for update operations: find-or-insert (default), or
  /// merge-only-if-present (used by k-mer counting pass B, where membership
  /// was decided by the Bloom-filtered pass A and singletons must stay out).
  enum class Policy { kInsert, kIfPresent };

  /// Find-or-insert `key` and merge `delta` into its value. One message.
  void update(Rank& rank, const K& key, const V& delta,
              Policy policy = Policy::kInsert) {
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    charge(rank, owner, sizeof(K) + sizeof(V), 1);
    apply_update(owner, h, key, delta, policy);
  }

  /// One-sided lookup. One message (request+reply counted once).
  [[nodiscard]] std::optional<V> find(Rank& rank, const K& key) const {
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    charge(rank, owner, sizeof(K) + sizeof(V), 1);
    const Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::lock_guard<SpinMutex> lock(shard.locks[b]);
    const Entry* e = find_in_bucket(shard.buckets[b], key);
    if (e == nullptr) return std::nullopt;
    return e->value;
  }

  /// Lock the key's bucket and run `fn(V&)` in place if present. Returns
  /// the functor's value wrapped in optional, or nullopt if the key is
  /// absent. This is the primitive the traversal's claim/abort protocol and
  /// the scaffolder's tie updates are built on.
  template <typename Fn>
  auto modify(Rank& rank, const K& key, Fn&& fn)
      -> std::optional<decltype(fn(std::declval<V&>()))> {
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    charge(rank, owner, sizeof(K) + sizeof(V), 1);
    Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::lock_guard<SpinMutex> lock(shard.locks[b]);
    Entry* e = find_in_bucket_mut(shard.buckets[b], key);
    if (e == nullptr) return std::nullopt;
    return fn(e->value);
  }

  // ---- aggregating-stores path ----

  /// Buffer (key, delta) toward the owner; flushes the destination buffer
  /// automatically at the batch threshold.
  void update_buffered(Rank& rank, const K& key, const V& delta,
                       Policy policy = Policy::kInsert) {
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    auto& buf = send_buffers_[static_cast<std::size_t>(rank.id())][owner];
    buf.push_back(PendingOp{h, key, delta, policy});
    if (buf.size() >= cfg_.flush_threshold) flush_one(rank, owner);
  }

  /// Drain all of this rank's outgoing buffers. Every rank must call this
  /// (followed by a barrier at the call site) before switching the table to
  /// the read phase. Ranks drain destinations round-robin starting at their
  /// successor — a fixed 0..P-1 order would hammer rank 0's shard with P
  /// near-simultaneous batches at every phase boundary (flush storm) while
  /// the high ranks idle.
  void flush(Rank& rank) {
    const auto start = (static_cast<std::uint32_t>(rank.id()) + 1) % nranks_;
    for (std::uint32_t i = 0; i < nranks_; ++i)
      flush_one(rank, (start + i) % nranks_);
  }

  // ---- local-shard access (owner side) ----

  /// Visit every (key, value) in this rank's shard. `fn(const K&, V&)`.
  template <typename Fn>
  void for_each_local(Rank& rank, Fn&& fn) {
    Shard& shard = shards_[static_cast<std::size_t>(rank.id())];
    for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Bucket& bucket = shard.buckets[b];
      for (std::uint8_t i = 0; i < bucket.count; ++i)
        fn(static_cast<const K&>(bucket.slots[i].key), bucket.slots[i].value);
      for (auto& e : bucket.overflow)
        fn(static_cast<const K&>(e.key), e.value);
    }
  }

  /// Erase local entries for which `pred(key, value)` is true; returns the
  /// number removed. Used to discard below-threshold (erroneous) k-mers.
  template <typename Pred>
  std::size_t erase_local_if(Rank& rank, Pred&& pred) {
    Shard& shard = shards_[static_cast<std::size_t>(rank.id())];
    std::size_t erased = 0;
    for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Bucket& bucket = shard.buckets[b];
      // Compact inline slots, refilling from overflow. The swapped-in
      // entry is re-examined (no ++i), since it may match the predicate
      // too.
      for (std::uint8_t i = 0; i < bucket.count;) {
        if (pred(static_cast<const K&>(bucket.slots[i].key),
                 bucket.slots[i].value)) {
          ++erased;
          if (!bucket.overflow.empty()) {
            bucket.slots[i] = bucket.overflow.back();
            bucket.overflow.pop_back();
          } else {
            bucket.slots[i] = bucket.slots[bucket.count - 1];
            --bucket.count;
          }
          continue;
        }
        ++i;
      }
      for (std::size_t i = 0; i < bucket.overflow.size();) {
        if (pred(static_cast<const K&>(bucket.overflow[i].key),
                 bucket.overflow[i].value)) {
          bucket.overflow[i] = bucket.overflow.back();
          bucket.overflow.pop_back();
          ++erased;
        } else {
          ++i;
        }
      }
    }
    shard.size.fetch_sub(erased, std::memory_order_relaxed);
    return erased;
  }

  [[nodiscard]] std::size_t local_size(int rank) const {
    return shards_[static_cast<std::size_t>(rank)].size.load(
        std::memory_order_relaxed);
  }

  /// Collective: total entries across all shards.
  [[nodiscard]] std::size_t global_size(Rank& rank) {
    return rank.allreduce_sum<std::uint64_t>(
        local_size(rank.id()));
  }

  /// Non-collective total (call after a barrier / between phases).
  [[nodiscard]] std::size_t size_unsafe() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.size.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct Entry {
    K key;
    V value;
  };

  struct Bucket {
    static constexpr int kInline = 4;
    Entry slots[kInline];
    std::uint8_t count = 0;
    std::vector<Entry> overflow;
  };

  struct Shard {
    std::vector<Bucket> buckets;
    std::unique_ptr<SpinMutex[]> locks;
    std::size_t mask = 0;
    std::atomic<std::size_t> size{0};
  };

  struct PendingOp {
    std::uint64_t hash;
    K key;
    V delta;
    Policy policy;
  };

  static std::size_t bucket_index(const Shard& shard, std::uint64_t h) {
    // Decorrelate from the owner mapping (which typically uses h % P).
    return util::fmix64(h) & shard.mask;
  }

  static const Entry* find_in_bucket(const Bucket& bucket, const K& key) {
    for (std::uint8_t i = 0; i < bucket.count; ++i)
      if (bucket.slots[i].key == key) return &bucket.slots[i];
    for (const auto& e : bucket.overflow)
      if (e.key == key) return &e;
    return nullptr;
  }

  static Entry* find_in_bucket_mut(Bucket& bucket, const K& key) {
    for (std::uint8_t i = 0; i < bucket.count; ++i)
      if (bucket.slots[i].key == key) return &bucket.slots[i];
    for (auto& e : bucket.overflow)
      if (e.key == key) return &e;
    return nullptr;
  }

  void apply_update(std::uint32_t owner, std::uint64_t h, const K& key,
                    const V& delta, Policy policy) {
    Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::lock_guard<SpinMutex> lock(shard.locks[b]);
    Bucket& bucket = shard.buckets[b];
    if (Entry* e = find_in_bucket_mut(bucket, key)) {
      Merge{}(e->value, delta);
      return;
    }
    if (policy == Policy::kIfPresent) return;
    if (bucket.count < Bucket::kInline) {
      bucket.slots[bucket.count] = Entry{key, delta};
      ++bucket.count;
    } else {
      bucket.overflow.push_back(Entry{key, delta});
    }
    shard.size.fetch_add(1, std::memory_order_relaxed);
  }

  /// Charge communication for `ops` logical operations moved to `owner` in
  /// a single message of `bytes` payload.
  void charge(Rank& rank, std::uint32_t owner, std::size_t bytes,
              std::size_t ops) const {
    const int self = rank.id();
    if (static_cast<int>(owner) == self) {
      rank.stats().add_local_access(ops);
      return;
    }
    if (rank.topology().same_node(static_cast<int>(owner), self)) {
      rank.stats().add_onnode_msg(bytes);
    } else {
      rank.stats().add_offnode_msg(bytes);
    }
    rank.stats_of(static_cast<int>(owner)).add_recv_ops(ops);
  }

  void flush_one(Rank& rank, std::uint32_t dest) {
    auto& buf = send_buffers_[static_cast<std::size_t>(rank.id())][dest];
    if (buf.empty()) return;
    charge(rank, dest, buf.size() * (sizeof(K) + sizeof(V)), buf.size());
    for (const auto& op : buf)
      apply_update(dest, op.hash, op.key, op.delta, op.policy);
    buf.clear();
  }

  ThreadTeam* team_;
  Config cfg_;
  std::uint32_t nranks_;
  RankMapper mapper_;
  std::vector<Shard> shards_;
  // send_buffers_[initiator][destination] — each initiating rank touches
  // only its own row, so no locking is needed.
  std::vector<std::vector<std::vector<PendingOp>>> send_buffers_;
};

}  // namespace hipmer::pgas
