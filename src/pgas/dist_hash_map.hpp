#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <type_traits>
#include <vector>

#include "io/wire.hpp"
#include "pgas/aggregating_engine.hpp"
#include "pgas/checked.hpp"
#include "pgas/map_wire.hpp"
#include "pgas/read_cache.hpp"
#include "pgas/spin_mutex.hpp"
#include "pgas/thread_team.hpp"
#include "pgas/transport.hpp"
#include "util/hash.hpp"

/// Distributed hash table with one-sided access, aggregating stores and
/// aggregated, software-cached lookups.
///
/// "We emphasize that distributed hash tables lie in the heart of HipMer and
/// the main operations on them are irregular lookups" (§7 of the paper).
/// This is that structure. The global key space is sharded across ranks by
/// an *owner mapping* (by default `hash % P`, replaceable by the oracle
/// partitioner of §3.2); each shard is a bucketized hash table owned by one
/// rank but directly readable/writable by every rank — the analogue of UPC
/// one-sided access. Per-bucket spinlocks make concurrent mixed-phase access
/// safe; every operation charges the initiator's communication counters and
/// the owner's service counter so the machine model sees exactly the traffic
/// the paper's optimizations manipulate.
///
/// Two store paths exist, mirroring §4.1's "aggregating stores":
///   - `update()` — one message per element (the naive fine-grained path);
///   - `update_buffered()` + `flush()` — per-destination buffers (the
///     shared AggregatingEngine) that move B elements per message, cutting
///     message count by B on the critical path.
///
/// Two read paths mirror them, per the journal version's aligner
/// optimizations (arXiv:1705.11147):
///   - `find()` — one message per lookup;
///   - `find_buffered()` + `process_lookups()` — lookup requests aggregate
///     per owner and replies arrive through a caller handler, optionally
///     fronted by a per-rank bounded LRU ReadCache (`enable_read_cache`)
///     for read-only phases. The cache self-invalidates across write-phase
///     boundaries via the table's write-version counter.
namespace hipmer::pgas {

/// Default conflict policy: last write wins.
template <typename V>
struct OverwriteMerge {
  void operator()(V& existing, const V& incoming) const { existing = incoming; }
};

/// Owner mapping: (key hash) -> rank. Default is modulo; the oracle
/// partitioner installs a custom one.
using RankMapper = std::function<std::uint32_t(std::uint64_t hash)>;

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Merge = OverwriteMerge<V>>
class DistHashMap {
 public:
  struct Config {
    /// Expected number of distinct keys across all ranks; controls bucket
    /// count (shards never rehash — overflow chains absorb misestimates,
    /// exactly as HipMer sizes tables from the cardinality estimate).
    std::size_t global_capacity = 1024;
    /// Elements buffered per destination before a flush ("aggregating
    /// stores" batch size; also the batch size of the aggregated lookup
    /// path).
    std::size_t flush_threshold = 512;
  };

  DistHashMap(ThreadTeam& team, Config cfg)
      : team_(&team),
        cfg_(cfg),
        nranks_(static_cast<std::uint32_t>(team.nranks())),
        shards_(static_cast<std::size_t>(team.nranks())),
        store_engine_(nranks_, cfg.flush_threshold),
        lookup_engine_(nranks_, cfg.flush_threshold),
        caches_(static_cast<std::size_t>(team.nranks()))
#if defined(HIPMER_CHECKED)
        ,
        checked_(team.checker(), "DistHashMap",
                 [this](int r) { return pending_store_ops(r); },
                 [this](int r) { return pending_lookups(r); })
#endif
  {
    // Register the table's two wire channels so batched traffic travels
    // through the lossy-transport layer (per-channel chaos overrides key
    // off these names; set_name refines them).
    store_channel_ = team.transport().open_channel("DistHashMap/store");
    lookup_channel_ = team.transport().open_channel("DistHashMap/lookup");
    if (team.multiprocess()) {
      if constexpr (kWireStores && kWireLookups) {
        // Inbound store batches: apply to the local shard, charging this
        // process's mirror of the initiator's counters (global sums then
        // match the threads fabric, where the initiator applied directly).
        team.transport().set_handler(
            store_channel_,
            [this](int src, int dst, const std::byte* data, std::size_t size) {
              Rank initiator(*team_, src);
              auto ops = map_wire::decode_batch<PendingOp>(data, size);
              apply_store_batch(initiator, static_cast<std::uint32_t>(dst),
                                ops);
            });
        // Inbound lookup batches: answer from the local shard via a
        // fire-and-forget reply to the requesting process.
        team.transport().set_handler(
            lookup_channel_,
            [this](int src, int, const std::byte* data, std::size_t size) {
              auto reqs = map_wire::decode_batch<LookupReq>(data, size);
              answer_remote_lookups(src, reqs);
            });
        reply_oneway_ = team.fabric().register_oneway(
            [this](int, const std::byte* data, std::size_t size) {
              deliver_remote_replies(data, size);
            });
        rmw_rpc_ = team.fabric().register_rpc(
            [this](int, const std::byte* data, std::size_t size) {
              return serve_rmw(data, size);
            });
      } else {
        throw std::logic_error(
            "DistHashMap: instantiation is not wire-serializable and cannot "
            "run on a multi-process fabric");
      }
    }
    const std::size_t per_shard =
        (cfg.global_capacity + nranks_ - 1) / nranks_;
    // Aim for ~2 entries per bucket at the estimated cardinality.
    std::size_t nbuckets = 1;
    while (nbuckets * Bucket::kInline / 2 < per_shard) nbuckets <<= 1;
    for (auto& shard : shards_) {
      shard.buckets.resize(nbuckets);
      shard.locks = std::make_unique<SpinMutex[]>(nbuckets);
      shard.mask = nbuckets - 1;
    }
  }

  /// Install a custom owner mapping (oracle partitioning). Must be called
  /// while the table is empty and outside concurrent access.
  void set_rank_mapper(RankMapper mapper) { mapper_ = std::move(mapper); }

  /// Name this table ("kcount.counts", "align.seed_index", ...): labels
  /// HIPMER_CHECKED diagnostics and renames the transport channels so
  /// chaos-spec patterns and retry histograms key off the table name.
  void set_name(const std::string& name) {
#if defined(HIPMER_CHECKED)
    checked_.set_name(name);
#endif
    team_->transport().set_channel_name(store_channel_, name + "/store");
    team_->transport().set_channel_name(lookup_channel_, name + "/lookup");
  }
#if defined(HIPMER_CHECKED)
  // RelaxedPhase plumbing (see pgas/checked.hpp).
  void checked_relaxed_begin(int rank) { checked_.relaxed_begin(rank); }
  void checked_relaxed_end(int rank) { checked_.relaxed_end(rank); }
#endif

  [[nodiscard]] std::uint64_t hash_of(const K& key) const {
    return Hash{}(key);
  }

  [[nodiscard]] std::uint32_t owner_of(const K& key) const {
    const std::uint64_t h = Hash{}(key);
    return mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
  }

  // ---- fine-grained one-sided path ----

  /// Insert policy for update operations: find-or-insert (default), or
  /// merge-only-if-present (used by k-mer counting pass B, where membership
  /// was decided by the Bloom-filtered pass A and singletons must stay out).
  enum class Policy { kInsert, kIfPresent };

  /// Find-or-insert `key` and merge `delta` into its value. One message.
  void update(Rank& rank, const K& key, const V& delta,
              Policy policy = Policy::kInsert HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    checked_.on_store(rank.id(), CheckedTable::Path::kFine,
                      to_site(hipmer_site));
#endif
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    rank.charge_message(static_cast<int>(owner), sizeof(K) + sizeof(V), 1);
    apply_update(owner, h, key, delta, policy);
    bump_version();
  }

  /// One-sided lookup. One message (request+reply counted once); a miss
  /// moves only the key-sized request — the reply carries no value — so
  /// modeled lookup traffic is not inflated by absent keys.
  [[nodiscard]] std::optional<V> find(Rank& rank,
                                      const K& key HIPMER_SITE_DEFAULT) const {
#if defined(HIPMER_CHECKED)
    checked_.on_lookup(rank.id(), CheckedTable::Path::kFine,
                       to_site(hipmer_site));
#endif
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    // The pipeline's fine-grained reads are owner-local (the batched path
    // handles remote reads); a remote fine-grained find on a multi-process
    // fabric would read an empty local mirror of the owner's shard.
    assert(team_->is_local(static_cast<int>(owner)));
    const Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::optional<V> result;
    {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      const Entry* e = find_in_bucket(shard.buckets[b], key);
      if (e != nullptr) result = e->value;
    }
    rank.charge_message(static_cast<int>(owner),
                        sizeof(K) + (result.has_value() ? sizeof(V) : 0), 1);
    return result;
  }

  /// Lock the key's bucket and run `fn(V&)` in place if present. Returns
  /// the functor's value wrapped in optional, or nullopt if the key is
  /// absent. This is the primitive the traversal's claim/abort protocol and
  /// the scaffolder's tie updates are built on.
  template <typename Fn>
  auto modify(Rank& rank, const K& key, Fn&& fn HIPMER_SITE_DEFAULT)
      -> std::optional<decltype(fn(std::declval<V&>()))> {
#if defined(HIPMER_CHECKED)
    // An in-place RMW is a store for phase purposes.
    checked_.on_store(rank.id(), CheckedTable::Path::kFine,
                      to_site(hipmer_site));
#endif
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    // A closure cannot cross an address-space boundary; on a multi-process
    // fabric use the registered-RMW path (register_rmw/rmw) instead.
    assert(team_->is_local(static_cast<int>(owner)));
    rank.charge_message(static_cast<int>(owner), sizeof(K) + sizeof(V), 1);
    Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::optional<decltype(fn(std::declval<V&>()))> result;
    {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Entry* e = find_in_bucket_mut(shard.buckets[b], key);
      if (e == nullptr) return std::nullopt;
      result = fn(e->value);
    }
    bump_version();
    return result;
  }

  // ---- registered read-modify-write (the shippable form of modify) ----
  //
  // modify() takes an arbitrary closure, which cannot cross an address
  // space. A *registered* RMW names the operation up front — its captures
  // become a POD argument block — so the owner process can execute it on a
  // multi-process fabric from a [rmw-id, key, args] request. Registration
  // runs in serial context during SPMD structure construction; every
  // process constructs the same structures in the same order, so ids agree
  // across the team without negotiation.

  using RmwId = std::uint32_t;

  /// Register `fn(V& value, const Args& args) -> Result`, executed under
  /// the owner's bucket lock when the key is present (an absent key yields
  /// nullopt at the call site, exactly like modify()).
  template <typename Args, typename Result, typename Fn>
  RmwId register_rmw(Fn fn) {
    static_assert(std::is_trivially_copyable_v<Args> &&
                      std::is_trivially_copyable_v<Result>,
                  "rmw argument/result blocks must be trivially copyable");
    rmws_.push_back([this, fn](std::uint32_t owner, std::uint64_t h,
                               const K& key, const std::byte* args,
                               std::size_t args_size,
                               std::vector<std::byte>& out) -> bool {
      Args a{};
      if (args_size >= sizeof(Args)) std::memcpy(&a, args, sizeof(Args));
      Shard& shard = shards_[owner];
      const std::size_t b = bucket_index(shard, h);
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Entry* e = find_in_bucket_mut(shard.buckets[b], key);
      if (e == nullptr) return false;
      Result res = fn(e->value, a);
      out.resize(sizeof(Result));
      std::memcpy(out.data(), &res, sizeof(Result));
      return true;
    });
    return static_cast<RmwId>(rmws_.size() - 1);
  }

  /// Execute a registered RMW against `key`'s owner: in place when the
  /// owner shard lives in this address space (modify()'s exact semantics,
  /// locking and accounting), over the fabric's request/response path
  /// otherwise. Charging is identical on both paths and both fabrics.
  template <typename Result, typename Args>
  std::optional<Result> rmw(Rank& rank, const K& key, RmwId id,
                            const Args& args HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    checked_.on_store(rank.id(), CheckedTable::Path::kFine,
                      to_site(hipmer_site));
#endif
    static_assert(std::is_trivially_copyable_v<Args> &&
                      std::is_trivially_copyable_v<Result>,
                  "rmw argument/result blocks must be trivially copyable");
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    rank.charge_message(static_cast<int>(owner), sizeof(K) + sizeof(V), 1);
    if (team_->is_local(static_cast<int>(owner))) {
      std::vector<std::byte> out;
      const bool present =
          rmws_[id](owner, h, key,
                    reinterpret_cast<const std::byte*>(&args), sizeof(Args),
                    out);
      if (!present) return std::nullopt;
      bump_version();
      Result res{};
      std::memcpy(&res, out.data(), sizeof(Result));
      return res;
    }
    auto payload = map_wire::encode_rmw_request(
        id, h, key, reinterpret_cast<const std::byte*>(&args), sizeof(Args));
    const auto resp =
        team_->fabric().rpc(rmw_rpc_, static_cast<int>(owner),
                            std::move(payload));
    const auto result = map_wire::decode_rmw_response(resp.data(), resp.size());
    if (!result) return std::nullopt;
    if (result->size() != sizeof(Result))
      throw io::wire::CorruptError(
          "wire: corrupt: rmw result size disagrees with Result type");
    Result res{};
    std::memcpy(&res, result->data(), sizeof(Result));
    return res;
  }

  // ---- aggregating-stores path ----

  /// Buffer (key, delta) toward the owner; flushes the destination buffer
  /// automatically at the batch threshold.
  void update_buffered(Rank& rank, const K& key, const V& delta,
                       Policy policy = Policy::kInsert HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    checked_.on_store(rank.id(), CheckedTable::Path::kBatched,
                      to_site(hipmer_site));
#endif
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    store_engine_.enqueue(rank.id(), owner, PendingOp{h, key, delta, policy},
                          [&](std::uint32_t dest, std::vector<PendingOp>& ops) {
                            ship_store_batch(rank, dest, ops);
                          });
  }

  /// Drain all of this rank's outgoing store buffers. Every rank must call
  /// this (followed by a barrier at the call site) before switching the
  /// table to the read phase. The engine drains destinations round-robin
  /// starting at this rank's successor (flush-storm avoidance).
  void flush(Rank& rank) {
    store_engine_.flush(rank.id(),
                        [&](std::uint32_t dest, std::vector<PendingOp>& ops) {
                          ship_store_batch(rank, dest, ops);
                        });
    // Chaos may have held shipped envelopes "in the network" (reorder /
    // delay fates); the post-flush contract is "all stores applied", so
    // drain them here.
    if constexpr (kWireStores) {
      team_->transport().drain(rank.id(), store_channel_, rank.stats(),
                               store_deliver(rank));
    }
  }

  /// Store ops this rank has buffered but not yet applied (0 after flush).
  /// A store batch held in transport limbo is un-applied state exactly
  /// like an unflushed row, so it counts.
  [[nodiscard]] std::size_t pending_store_ops(int rank) const {
    std::size_t n = store_engine_.pending(rank);
    if constexpr (kWireStores)
      n += team_->transport().pending(rank, store_channel_);
    return n;
  }

  // ---- aggregated lookup path (batched reads + software cache) ----
  //
  // Handler signature: void(const K& key, const V* value, std::uint64_t
  // tag). `value` is nullptr on miss and otherwise valid only for the
  // duration of the call; `tag` is the caller's routing cookie (slot index,
  // contig id, ...). The handler for a key may run inside `find_buffered`
  // itself — on a cache hit, a local key, or an auto-flushed full batch —
  // or inside `process_lookups`; callers must pass the same handler to
  // both and must not assume reply order.

  /// Queue a lookup of `key`, delivering the reply through `handler`.
  /// Local keys are served immediately (local access, no batching); remote
  /// keys consult this rank's ReadCache when enabled and otherwise join
  /// the per-owner request batch.
  template <typename Handler>
  void find_buffered(Rank& rank, const K& key, std::uint64_t tag,
                     Handler&& handler HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    checked_.on_lookup(rank.id(), CheckedTable::Path::kBatched,
                       to_site(hipmer_site));
#endif
    const std::uint64_t h = Hash{}(key);
    const std::uint32_t owner =
        mapper_ ? mapper_(h) : static_cast<std::uint32_t>(h % nranks_);
    if (static_cast<int>(owner) == rank.id()) {
      // Owner-local: answer from the shard directly, as find() would.
      const Shard& shard = shards_[owner];
      const std::size_t b = bucket_index(shard, h);
      bool found = false;
      V copy;
      {
        std::lock_guard<SpinMutex> lock(shard.locks[b]);
        if (const Entry* e = find_in_bucket(shard.buckets[b], key)) {
          copy = e->value;
          found = true;
        }
      }
      rank.stats().add_local_access(1);
      handler(key, found ? &copy : nullptr, tag);
      return;
    }
    if (auto* cache = caches_[static_cast<std::size_t>(rank.id())].get()) {
#if defined(HIPMER_CHECKED)
      // Consult the contract *before* check_version drops stale entries:
      // a cache that outlived a write phase is a bug even though the data
      // would have been discarded here.
      checked_.on_cache_consult(rank.id(), cache->seen_version(),
                                version_.load(std::memory_order_acquire),
                                cache->size(), to_site(hipmer_site));
#endif
      cache->check_version(version_.load(std::memory_order_acquire));
      if (const V* hit = cache->lookup(key)) {
        rank.stats().add_read_cache_hit();
        handler(key, hit, tag);
        return;
      }
      rank.stats().add_read_cache_miss();
    }
    lookup_engine_.enqueue(
        rank.id(), owner, LookupReq{h, key, tag},
        [&](std::uint32_t dest, std::vector<LookupReq>& reqs) {
          ship_lookup_batch(rank, dest, reqs, handler);
        });
  }

  /// Drain this rank's pending lookup batches, delivering every
  /// outstanding reply through `handler`. Round-robin over owners, like
  /// flush(). Call at the end of a read phase (no barrier needed: lookups
  /// touch only owner shards, which are valid throughout).
  template <typename Handler>
  void process_lookups(Rank& rank, Handler&& handler) {
    lookup_engine_.flush(rank.id(),
                         [&](std::uint32_t dest, std::vector<LookupReq>& reqs) {
                           ship_lookup_batch(rank, dest, reqs, handler);
                         });
    if constexpr (kWireLookups) {
      team_->transport().drain(rank.id(), lookup_channel_, rank.stats(),
                               lookup_deliver(rank, handler));
      if (team_->multiprocess() && outstanding_ > 0) {
        // Remote owners still owe reply messages; serve inbound traffic
        // (including their lookup requests against our shard) until every
        // outstanding reply has been delivered through `handler`.
        arm_reply_trampoline(handler);
        team_->fabric().poll_until([this] { return outstanding_ == 0; });
      }
    }
  }

  /// Lookups this rank has queued but not yet answered (0 after
  /// process_lookups). Requests held in transport limbo count.
  [[nodiscard]] std::size_t pending_lookups(int rank) const {
    std::size_t n = lookup_engine_.pending(rank);
    if constexpr (kWireLookups)
      n += team_->transport().pending(rank, lookup_channel_);
    // A shipped batch whose reply has not arrived is still an unanswered
    // lookup (multi-process fabrics only; the threads fabric replies
    // synchronously).
    if (team_->multiprocess()) n += outstanding_;
    return n;
  }

  /// Opt this rank into the software read cache (read-only phases). Each
  /// rank manages only its own cache slot, so this is callable from inside
  /// team.run() without synchronization.
  void enable_read_cache(Rank& rank, std::size_t capacity) {
    // On a multi-process fabric, version bumps from writes in other
    // processes are not observable here, so the self-invalidation contract
    // cannot hold; run uncached (correct, just unaccelerated).
    if (team_->multiprocess()) return;
    auto& slot = caches_[static_cast<std::size_t>(rank.id())];
    slot = std::make_unique<Cache>(capacity);
    active_caches_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drop this rank's cache (end of the read phase) and release its memory.
  void disable_read_cache(Rank& rank) {
    auto& slot = caches_[static_cast<std::size_t>(rank.id())];
    if (slot == nullptr) return;
    slot.reset();
    active_caches_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// This rank's cache hit/miss counters (zeros when no cache is enabled).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] CacheStats read_cache_stats(int rank) const {
    const auto* cache = caches_[static_cast<std::size_t>(rank)].get();
    if (cache == nullptr) return {};
    return CacheStats{cache->hits(), cache->misses()};
  }

  // ---- local-shard access (owner side) ----

  /// Visit every (key, value) in this rank's shard. `fn(const K&, V&)`.
  template <typename Fn>
  void for_each_local(Rank& rank, Fn&& fn) {
    Shard& shard = shards_[static_cast<std::size_t>(rank.id())];
    for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Bucket& bucket = shard.buckets[b];
      for (std::uint8_t i = 0; i < bucket.count; ++i)
        fn(static_cast<const K&>(bucket.slots[i].key), bucket.slots[i].value);
      for (auto& e : bucket.overflow)
        fn(static_cast<const K&>(e.key), e.value);
    }
  }

  /// Erase local entries for which `pred(key, value)` is true; returns the
  /// number removed. Used to discard below-threshold (erroneous) k-mers.
  template <typename Pred>
  std::size_t erase_local_if(Rank& rank, Pred&& pred HIPMER_SITE_DEFAULT) {
#if defined(HIPMER_CHECKED)
    // Owner-local compaction still mutates entries remote lookups may be
    // reading: a store event, but exempt from the mixed-access rule.
    checked_.on_store(rank.id(), CheckedTable::Path::kLocal,
                      to_site(hipmer_site));
#endif
    Shard& shard = shards_[static_cast<std::size_t>(rank.id())];
    std::size_t erased = 0;
    for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
      std::lock_guard<SpinMutex> lock(shard.locks[b]);
      Bucket& bucket = shard.buckets[b];
      // Compact inline slots, refilling from overflow. The swapped-in
      // entry is re-examined (no ++i), since it may match the predicate
      // too.
      for (std::uint8_t i = 0; i < bucket.count;) {
        if (pred(static_cast<const K&>(bucket.slots[i].key),
                 bucket.slots[i].value)) {
          ++erased;
          if (!bucket.overflow.empty()) {
            bucket.slots[i] = bucket.overflow.back();
            bucket.overflow.pop_back();
          } else {
            bucket.slots[i] = bucket.slots[bucket.count - 1];
            --bucket.count;
          }
          continue;
        }
        ++i;
      }
      for (std::size_t i = 0; i < bucket.overflow.size();) {
        if (pred(static_cast<const K&>(bucket.overflow[i].key),
                 bucket.overflow[i].value)) {
          bucket.overflow[i] = bucket.overflow.back();
          bucket.overflow.pop_back();
          ++erased;
        } else {
          ++i;
        }
      }
    }
    shard.size.fetch_sub(erased, std::memory_order_relaxed);
    bump_version();
    return erased;
  }

  [[nodiscard]] std::size_t local_size(int rank) const {
    return shards_[static_cast<std::size_t>(rank)].size.load(
        std::memory_order_relaxed);
  }

  /// Collective: total entries across all shards.
  [[nodiscard]] std::size_t global_size(Rank& rank) {
    return rank.allreduce_sum<std::uint64_t>(
        local_size(rank.id()));
  }

  /// Non-collective total (call after a barrier / between phases).
  [[nodiscard]] std::size_t size_unsafe() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.size.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct Entry {
    K key;
    V value;
  };

  struct Bucket {
    static constexpr int kInline = 4;
    Entry slots[kInline];
    std::uint8_t count = 0;
    std::vector<Entry> overflow;
  };

  struct Shard {
    std::vector<Bucket> buckets;
    std::unique_ptr<SpinMutex[]> locks;
    std::size_t mask = 0;
    std::atomic<std::size_t> size{0};
  };

  struct PendingOp {
    std::uint64_t hash;
    K key;
    V delta;
    Policy policy;
  };

  struct LookupReq {
    std::uint64_t hash;
    K key;
    std::uint64_t tag;
  };

  using Cache = ReadCache<K, V, Hash>;

  /// Whether a batch can travel the wire as a byte envelope: POD ops are
  /// memcpy-serializable, which covers every instantiation the pipeline
  /// uses. Non-POD instantiations keep the direct shared-memory apply (a
  /// real network backend would need a proper serializer there).
  static constexpr bool kWireStores = std::is_trivially_copyable_v<PendingOp>;
  static constexpr bool kWireLookups = std::is_trivially_copyable_v<LookupReq>;

  /// Receiver-side apply for one store envelope (run on the initiator's
  /// thread — synchronous simulated delivery). Runs exactly once per
  /// distinct envelope: the transport dedups retransmits, so CommStats
  /// charging stays inside, identical to the pre-transport accounting.
  auto store_deliver(Rank& rank) {
    return [this, &rank](int dst, const std::byte* data, std::size_t size) {
      auto ops = map_wire::decode_batch<PendingOp>(data, size);
      apply_store_batch(rank, static_cast<std::uint32_t>(dst), ops);
    };
  }

  template <typename Handler>
  auto lookup_deliver(Rank& rank, Handler& handler) {
    return [this, &rank, &handler](int dst, const std::byte* data,
                                   std::size_t size) {
      auto reqs = map_wire::decode_batch<LookupReq>(data, size);
      answer_lookup_batch(rank, static_cast<std::uint32_t>(dst), reqs,
                          handler);
    };
  }

  void ship_store_batch(Rank& rank, std::uint32_t dest,
                        std::vector<PendingOp>& ops) {
    if constexpr (kWireStores) {
      try {
        team_->transport().send(rank.id(), static_cast<int>(dest),
                                store_channel_, map_wire::encode_batch(ops),
                                rank.stats(), store_deliver(rank));
      } catch (const PeerSuspect&) {
        degrade(rank);
        throw;
      }
    } else {
      apply_store_batch(rank, dest, ops);
    }
  }

  template <typename Handler>
  void ship_lookup_batch(Rank& rank, std::uint32_t dest,
                         std::vector<LookupReq>& reqs, Handler& handler) {
    if constexpr (kWireLookups) {
      if (!team_->is_local(static_cast<int>(dest))) {
        // The owner answers with one oneway reply message per request
        // batch (the transport dedups retransmits, so exactly one per
        // send). Replies are dispatched only inside fabric awaits; the
        // armed handler must stay alive until process_lookups drains the
        // count, which the phase discipline (pending_lookups == 0 at
        // barriers) guarantees.
        arm_reply_trampoline(handler);
        ++outstanding_;
      }
      try {
        team_->transport().send(rank.id(), static_cast<int>(dest),
                                lookup_channel_, map_wire::encode_batch(reqs),
                                rank.stats(), lookup_deliver(rank, handler));
      } catch (const PeerSuspect&) {
        degrade(rank);
        throw;
      }
    } else {
      answer_lookup_batch(rank, dest, reqs, handler);
    }
  }

  /// Suspect-peer degradation: the team is about to unwind through the
  /// RankKilled path and resume from a checkpoint, so everything this rank
  /// holds in flight is stale. Drop the read cache (its seen-version dies
  /// with the team) and clear the engine rows so no later flush ships
  /// half-finished batches at the dead fabric.
  void degrade(Rank& rank) {
    disable_read_cache(rank);
    store_engine_.clear(rank.id());
    lookup_engine_.clear(rank.id());
    outstanding_ = 0;
  }

  // ---- multi-process fabric plumbing ----

  /// Point the reply dispatcher at the caller's current handler object.
  /// The capture-free lambda decays to a plain function pointer, so one
  /// (ctx, fn) pair serves every Handler type without virtual dispatch.
  template <typename Handler>
  void arm_reply_trampoline(Handler& handler) {
    using H = std::remove_reference_t<Handler>;
    reply_ctx_ = const_cast<void*>(static_cast<const void*>(&handler));
    reply_fn_ = [](void* ctx, const K& key, const V* val, std::uint64_t tag) {
      (*static_cast<H*>(ctx))(key, val, tag);
    };
  }

  /// Owner side of a remote lookup batch: probe the local shard and ship
  /// one reply message. Charging mirrors answer_lookup_batch — the request
  /// ships the keys, the reply ships values for the hits only — but lands
  /// in this process's mirror of the initiator's counters.
  void answer_remote_lookups(int src, std::vector<LookupReq>& reqs) {
    const auto me = static_cast<std::uint32_t>(team_->my_rank());
    const Shard& shard = shards_[me];
    std::vector<map_wire::LookupReply<K, V>> replies;
    replies.reserve(reqs.size());
    std::size_t hits = 0;
    for (const auto& req : reqs) {
      const std::size_t b = bucket_index(shard, req.hash);
      map_wire::LookupReply<K, V> reply;
      reply.tag = req.tag;
      reply.key = req.key;
      {
        std::lock_guard<SpinMutex> lock(shard.locks[b]);
        if (const Entry* e = find_in_bucket(shard.buckets[b], req.key)) {
          reply.value = e->value;
          reply.found = true;
        }
      }
      if (reply.found) ++hits;
      replies.push_back(reply);
    }
    Rank initiator(*team_, src);
    initiator.charge_message(static_cast<int>(me),
                             reqs.size() * sizeof(K) + hits * sizeof(V),
                             reqs.size());
    team_->fabric().send_oneway(reply_oneway_, src,
                                map_wire::encode_lookup_replies(replies));
  }

  /// Initiator side: decode one reply message, deliver each entry through
  /// the armed handler, and retire the batch it answers.
  void deliver_remote_replies(const std::byte* data, std::size_t size) {
    const auto replies = map_wire::decode_lookup_replies<K, V>(data, size);
    for (const auto& reply : replies) {
      reply_fn_(reply_ctx_, reply.key, reply.found ? &reply.value : nullptr,
                reply.tag);
    }
    assert(outstanding_ > 0);
    if (outstanding_ > 0) --outstanding_;
  }

  /// Owner side of a remote registered-RMW request.
  std::vector<std::byte> serve_rmw(const std::byte* data, std::size_t size) {
    auto req = map_wire::decode_rmw_request<K>(data, size);
    if (req.id >= rmws_.size())
      throw io::wire::CorruptError("wire: corrupt: unknown rmw id");
    std::vector<std::byte> out;
    const bool present =
        rmws_[req.id](static_cast<std::uint32_t>(team_->my_rank()), req.hash,
                      req.key, req.args.data(), req.args.size(), out);
    if (present) bump_version();
    return map_wire::encode_rmw_response(present, out);
  }

  static std::size_t bucket_index(const Shard& shard, std::uint64_t h) {
    // Decorrelate from the owner mapping (which typically uses h % P).
    return util::fmix64(h) & shard.mask;
  }

  static const Entry* find_in_bucket(const Bucket& bucket, const K& key) {
    for (std::uint8_t i = 0; i < bucket.count; ++i)
      if (bucket.slots[i].key == key) return &bucket.slots[i];
    for (const auto& e : bucket.overflow)
      if (e.key == key) return &e;
    return nullptr;
  }

  static Entry* find_in_bucket_mut(Bucket& bucket, const K& key) {
    for (std::uint8_t i = 0; i < bucket.count; ++i)
      if (bucket.slots[i].key == key) return &bucket.slots[i];
    for (auto& e : bucket.overflow)
      if (e.key == key) return &e;
    return nullptr;
  }

  void apply_update(std::uint32_t owner, std::uint64_t h, const K& key,
                    const V& delta, Policy policy) {
    Shard& shard = shards_[owner];
    const std::size_t b = bucket_index(shard, h);
    std::lock_guard<SpinMutex> lock(shard.locks[b]);
    Bucket& bucket = shard.buckets[b];
    if (Entry* e = find_in_bucket_mut(bucket, key)) {
      Merge{}(e->value, delta);
      return;
    }
    if (policy == Policy::kIfPresent) return;
    if (bucket.count < Bucket::kInline) {
      bucket.slots[bucket.count] = Entry{key, delta};
      ++bucket.count;
    } else {
      bucket.overflow.push_back(Entry{key, delta});
    }
    shard.size.fetch_add(1, std::memory_order_relaxed);
  }

  /// One aggregated store message: charge once, apply every op.
  void apply_store_batch(Rank& rank, std::uint32_t dest,
                         std::vector<PendingOp>& ops) {
    rank.charge_message(static_cast<int>(dest),
                        ops.size() * (sizeof(K) + sizeof(V)), ops.size());
    for (const auto& op : ops)
      apply_update(dest, op.hash, op.key, op.delta, op.policy);
    bump_version();
  }

  /// One aggregated lookup message: the request ships the keys, the reply
  /// ships values for the hits only (the miss accounting rule of find()).
  template <typename Handler>
  void answer_lookup_batch(Rank& rank, std::uint32_t dest,
                           std::vector<LookupReq>& reqs, Handler&& handler) {
    auto* cache = caches_[static_cast<std::size_t>(rank.id())].get();
    const Shard& shard = shards_[dest];
    std::size_t hits = 0;
    for (const auto& req : reqs) {
      const std::size_t b = bucket_index(shard, req.hash);
      bool found = false;
      V copy;
      {
        std::lock_guard<SpinMutex> lock(shard.locks[b]);
        if (const Entry* e = find_in_bucket(shard.buckets[b], req.key)) {
          copy = e->value;
          found = true;
        }
      }
      if (found) {
        ++hits;
        if (cache != nullptr) cache->insert(req.key, copy);
      }
      handler(static_cast<const K&>(req.key), found ? &copy : nullptr,
              req.tag);
    }
    rank.charge_message(static_cast<int>(dest),
                        reqs.size() * sizeof(K) + hits * sizeof(V),
                        reqs.size());
  }

  /// Writes advance the table version so read caches self-invalidate.
  /// Skipped while no cache exists anywhere — the common write phases —
  /// to keep the hot update paths free of shared-counter traffic.
  void bump_version() {
    if (active_caches_.load(std::memory_order_relaxed) == 0) return;
    version_.fetch_add(1, std::memory_order_release);
  }

  ThreadTeam* team_;
  Config cfg_;
  std::uint32_t nranks_;
  RankMapper mapper_;
  std::vector<Shard> shards_;
  AggregatingEngine<PendingOp> store_engine_;
  AggregatingEngine<LookupReq> lookup_engine_;
  Transport::ChannelId store_channel_ = 0;
  Transport::ChannelId lookup_channel_ = 0;
  // caches_[r] — rank r's software read cache (null = not opted in). Each
  // rank touches only its own slot.
  std::vector<std::unique_ptr<Cache>> caches_;
  // Multi-process fabric state (this process's single rank owns it all):
  // fabric service ids, reply batches still in flight, the armed reply
  // dispatch target, and the registered-RMW table in registration order.
  std::uint32_t reply_oneway_ = 0;
  std::uint32_t rmw_rpc_ = 0;
  std::size_t outstanding_ = 0;
  void* reply_ctx_ = nullptr;
  void (*reply_fn_)(void*, const K&, const V*, std::uint64_t) = nullptr;
  std::vector<std::function<bool(std::uint32_t owner, std::uint64_t h,
                                 const K& key, const std::byte* args,
                                 std::size_t args_size,
                                 std::vector<std::byte>& out)>>
      rmws_;
#if defined(HIPMER_CHECKED)
  // mutable: lookups are logically const but must record read events.
  mutable CheckedTable checked_;
#endif
  std::atomic<std::uint64_t> active_caches_{0};
  // Monotonic write version; starts at 1 so a fresh cache (seen_version 0)
  // always syncs on first use.
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace hipmer::pgas
