#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

/// Metagenome simulation (Twitchell-wetlands stand-in, §5.4).
///
/// The property that matters for the paper's Table 3 is the *flat k-mer
/// count histogram*: a community of many species with log-normally
/// distributed abundances means most true k-mers occur at low-but->1
/// counts, so (a) only a small fraction of distinct k-mers are singletons
/// (36% vs 95% for human) and (b) the Bloom filter eliminates far less,
/// inflating the working set of the main hash tables. Both effects emerge
/// here from the abundance distribution.
namespace hipmer::sim {

struct MetagenomeConfig {
  int num_species = 50;
  std::uint64_t mean_genome_length = 100'000;
  /// Log-normal sigma of species abundances (larger = more uneven
  /// community; wetland soil is highly uneven).
  double abundance_sigma = 1.5;
  /// Mean coverage over the whole community; per-species coverage is
  /// abundance-weighted, so rare species fall below assembly depth, as in
  /// real soil metagenomes ("90% of the reads cannot be assembled").
  double total_coverage = 20.0;
  int read_length = 100;
  double mean_insert = 400.0;
  double stddev_insert = 40.0;
  double error_rate = 0.003;
  std::uint64_t seed = 99;
};

struct Metagenome {
  std::vector<Genome> species;
  /// Per-species relative abundance, sums to 1.
  std::vector<double> abundance;
  std::vector<seq::Read> reads;
};

[[nodiscard]] Metagenome simulate_metagenome(const MetagenomeConfig& config);

}  // namespace hipmer::sim
