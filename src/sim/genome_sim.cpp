#include "sim/genome_sim.hpp"

#include <algorithm>
#include <cassert>

#include "seq/dna.hpp"

namespace hipmer::sim {

std::string random_dna(std::uint64_t n, std::mt19937_64& rng) {
  static constexpr char bases[4] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  std::uniform_int_distribution<int> dist(0, 3);
  for (auto& c : s) c = bases[dist(rng)];
  return s;
}

namespace {

/// Substitute bases at rate `rate`; every substitution picks one of the
/// three *other* bases so the divergence is exact.
std::string substitute(const std::string& input, double rate,
                       std::mt19937_64& rng) {
  std::string out = input;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> offset(1, 3);
  for (auto& c : out) {
    if (coin(rng) >= rate) continue;
    const std::uint8_t code = seq::base_to_code(c);
    c = seq::code_to_base(static_cast<std::uint8_t>((code + offset(rng)) & 3));
  }
  return out;
}

}  // namespace

Genome simulate_genome(const GenomeConfig& config) {
  assert(config.length > 0);
  std::mt19937_64 rng(config.seed);
  Genome genome;
  genome.primary.reserve(config.length);

  if (config.repeat_fraction <= 0.0 && config.hyper_repeat_fraction <= 0.0) {
    genome.primary = random_dna(config.length, rng);
  } else {
    // Pre-generate the repeat family units.
    std::vector<std::string> families;
    families.reserve(static_cast<std::size_t>(config.repeat_families));
    for (int f = 0; f < config.repeat_families; ++f)
      families.push_back(
          random_dna(static_cast<std::uint64_t>(config.repeat_unit_length), rng));

    // Build the genome segment by segment: a repeat-family copy with
    // probability repeat_fraction, otherwise a unique stretch of the same
    // expected length (keeps segment granularity uniform).
    const std::string hyper_unit =
        config.hyper_repeat_fraction > 0.0
            ? random_dna(static_cast<std::uint64_t>(config.hyper_repeat_unit_length), rng)
            : std::string{};

    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(
        0, families.empty() ? 0 : families.size() - 1);
    while (genome.primary.size() < config.length) {
      const double roll = coin(rng);
      if (roll < config.hyper_repeat_fraction) {
        // A long tandem array per placement so interior (purely periodic)
        // k-mers dominate: few distinct k-mers, enormous counts.
        const int copies =
            std::max(2, 512 / std::max(1, config.hyper_repeat_unit_length));
        for (int c = 0; c < copies; ++c) genome.primary += hyper_unit;
      } else if (!families.empty() &&
                 roll < config.hyper_repeat_fraction + config.repeat_fraction) {
        const std::string& unit = families[pick(rng)];
        if (config.repeat_divergence > 0.0) {
          genome.primary += substitute(unit, config.repeat_divergence, rng);
        } else {
          genome.primary += unit;
        }
      } else {
        genome.primary +=
            random_dna(static_cast<std::uint64_t>(config.repeat_unit_length), rng);
      }
    }
    genome.primary.resize(config.length);
  }

  if (config.heterozygosity > 0.0)
    genome.secondary = substitute(genome.primary, config.heterozygosity, rng);
  return genome;
}

std::string mutate_individual(const std::string& genome, double divergence,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return substitute(genome, divergence, rng);
}

}  // namespace hipmer::sim
