#include "sim/metagenome_sim.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <random>

namespace hipmer::sim {

Metagenome simulate_metagenome(const MetagenomeConfig& config) {
  assert(config.num_species > 0);
  std::mt19937_64 rng(config.seed);
  Metagenome mg;
  mg.species.reserve(static_cast<std::size_t>(config.num_species));
  mg.abundance.resize(static_cast<std::size_t>(config.num_species));

  // Species genomes: unrelated random sequence; lengths jitter around the
  // mean so the community is not artificially uniform.
  std::uniform_real_distribution<double> len_jitter(0.6, 1.4);
  for (int s = 0; s < config.num_species; ++s) {
    GenomeConfig gc;
    gc.length = static_cast<std::uint64_t>(
        static_cast<double>(config.mean_genome_length) * len_jitter(rng));
    gc.length = std::max<std::uint64_t>(gc.length, 4 * static_cast<std::uint64_t>(config.read_length));
    gc.seed = rng();
    mg.species.push_back(simulate_genome(gc));
  }

  // Log-normal relative abundances, normalized.
  std::lognormal_distribution<double> abundance_dist(0.0, config.abundance_sigma);
  double total = 0.0;
  for (auto& a : mg.abundance) {
    a = abundance_dist(rng);
    total += a;
  }
  for (auto& a : mg.abundance) a /= total;

  // Total sequencing budget in bases, split by abundance *weighted by
  // genome length* (a reads sampler draws fragments uniformly from the DNA
  // pool, where each species' DNA mass is abundance * genome length).
  std::uint64_t community_bases = 0;
  for (const auto& g : mg.species) community_bases += g.primary.size();
  const double budget =
      config.total_coverage * static_cast<double>(community_bases) /
      static_cast<double>(config.num_species);

  for (int s = 0; s < config.num_species; ++s) {
    const auto& genome = mg.species[static_cast<std::size_t>(s)];
    const double species_bases =
        budget * mg.abundance[static_cast<std::size_t>(s)] *
        static_cast<double>(config.num_species);
    LibraryConfig lc;
    lc.name = "sp" + std::to_string(s);
    lc.read_length = config.read_length;
    lc.mean_insert = config.mean_insert;
    lc.stddev_insert = config.stddev_insert;
    lc.coverage = species_bases / static_cast<double>(genome.primary.size());
    if (lc.coverage <= 0.05) continue;  // species effectively unsampled
    lc.error_rate = config.error_rate;
    lc.seed = rng();
    auto reads = simulate_library(genome, lc);
    mg.reads.insert(mg.reads.end(), std::make_move_iterator(reads.begin()),
                    std::make_move_iterator(reads.end()));
  }

  // Shuffle pairs (keeping mates adjacent) so file order does not encode
  // species identity.
  const std::size_t npairs = mg.reads.size() / 2;
  std::vector<std::size_t> order(npairs);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<seq::Read> shuffled;
  shuffled.reserve(mg.reads.size());
  for (std::size_t p : order) {
    shuffled.push_back(std::move(mg.reads[2 * p]));
    shuffled.push_back(std::move(mg.reads[2 * p + 1]));
  }
  mg.reads = std::move(shuffled);
  return mg;
}

}  // namespace hipmer::sim
