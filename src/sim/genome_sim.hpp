#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

/// Synthetic genome generation.
///
/// The paper evaluates on three real datasets whose *structural properties*
/// drive the results; the simulator reproduces those properties at reduced
/// scale (see DESIGN.md §2):
///   - "human-like": mostly unique sequence, a diploid second haplotype with
///     ~0.1% heterozygous SNPs (source of the bubbles §4.2 merges);
///   - "wheat-like": heavily repetitive — repeat families copied thousands
///     of times produce the skewed k-mer frequency distribution ("about 70
///     k-mers that occur over 10 million times") behind the heavy-hitter
///     optimization (§3.1) and the fragmented contig graphs of §5.3;
///   - individuals of the same species differ by ~0.1–0.4% of bases, which
///     is what makes oracle partitioning (§3.2) transferable.
namespace hipmer::sim {

struct GenomeConfig {
  /// Haploid genome length in bases.
  std::uint64_t length = 1'000'000;
  /// Fraction of the genome covered by repeat-family copies (wheat-like:
  /// 0.5+; human-like: ~0.05).
  double repeat_fraction = 0.0;
  /// Number of distinct repeat families.
  int repeat_families = 8;
  /// Length of each repeat unit, in bases.
  int repeat_unit_length = 500;
  /// Per-base divergence between copies of the same repeat family (0 =
  /// exact copies = maximal k-mer frequency skew).
  double repeat_divergence = 0.0;
  /// Fraction of the genome covered by a *single* short tandem-like unit —
  /// the stand-in for wheat's ultra-frequent k-mers ("about 70 k-mers that
  /// occur over 10 million times"): few distinct k-mers, enormous counts,
  /// hence a hot owner under owner-computes counting.
  double hyper_repeat_fraction = 0.0;
  int hyper_repeat_unit_length = 60;
  /// Heterozygous SNP rate for the second haplotype; 0 = haploid.
  double heterozygosity = 0.0;
  std::uint64_t seed = 1;
};

struct Genome {
  /// Haplotype 0 — also the reference the tests compare assemblies against.
  std::string primary;
  /// Haplotype 1 (empty if haploid).
  std::string secondary;

  [[nodiscard]] bool diploid() const noexcept { return !secondary.empty(); }
};

/// Uniform random DNA of length `n`.
[[nodiscard]] std::string random_dna(std::uint64_t n, std::mt19937_64& rng);

/// Generate a genome per the config. Deterministic in `config.seed`.
[[nodiscard]] Genome simulate_genome(const GenomeConfig& config);

/// Derive another individual of the same species: substitute bases at
/// `divergence` rate (0.001–0.004 for human, per the paper).
[[nodiscard]] std::string mutate_individual(const std::string& genome,
                                            double divergence,
                                            std::uint64_t seed);

}  // namespace hipmer::sim
