#include "sim/datasets.hpp"

#include "io/fastq.hpp"
#include "sim/read_sim.hpp"

namespace hipmer::sim {

namespace {

void add_library(Dataset& ds, const LibraryConfig& lc) {
  seq::ReadLibrary lib;
  lib.name = lc.name;
  lib.mean_insert = lc.mean_insert;
  lib.stddev_insert = lc.stddev_insert;
  lib.read_length = lc.read_length;
  ds.libraries.push_back(lib);
  ds.reads.push_back(simulate_library(ds.genome, lc));
}

}  // namespace

Dataset make_human_like(std::uint64_t genome_length, std::uint64_t seed,
                        double coverage) {
  Dataset ds;
  ds.name = "human_like";
  GenomeConfig gc;
  gc.length = genome_length;
  gc.repeat_fraction = 0.03;
  gc.repeat_families = 4;
  gc.repeat_unit_length = 300;
  gc.repeat_divergence = 0.02;  // human repeats are diverged copies
  gc.heterozygosity = 0.001;    // 0.1% — low end of the paper's range
  gc.seed = seed;
  ds.genome = simulate_genome(gc);

  LibraryConfig lc;
  lc.name = "pe395";
  lc.read_length = 101;
  lc.mean_insert = 395.0;
  lc.stddev_insert = 30.0;
  lc.coverage = coverage;
  // Illumina-realistic ~0.8%: error k-mers then dominate the distinct
  // k-mer spectrum ("95% of k-mers have a single count" for human, §5.4),
  // which is what makes the Bloom filter worth 85% of the table memory.
  lc.error_rate = 0.008;
  lc.seed = seed + 1;
  add_library(ds, lc);
  return ds;
}

Dataset make_wheat_like(std::uint64_t genome_length, std::uint64_t seed,
                        double coverage) {
  Dataset ds;
  ds.name = "wheat_like";
  GenomeConfig gc;
  gc.length = genome_length;
  gc.repeat_fraction = 0.35;
  gc.repeat_families = 12;
  gc.repeat_unit_length = 400;
  gc.repeat_divergence = 0.0;  // exact copies -> maximal heavy-hitter skew
  // A single ultra-frequent short unit: the few k-mers with enormous counts
  // that create the hot-owner imbalance Figure 6 measures.
  gc.hyper_repeat_fraction = 0.08;
  gc.hyper_repeat_unit_length = 8;
  gc.heterozygosity = 0.0;  // 'Synthetic W7984' is homozygous
  gc.seed = seed;
  ds.genome = simulate_genome(gc);

  // Three short-insert libraries (paper: five, 240–740bp; we keep the span
  // with three) sharing the coverage budget.
  const double short_cov = coverage * 0.8 / 3.0;
  int lib_seed = 1;
  for (double insert : {240.0, 400.0, 740.0}) {
    LibraryConfig lc;
    lc.name = "pe" + std::to_string(static_cast<int>(insert));
    lc.read_length = 150;
    lc.mean_insert = insert;
    lc.stddev_insert = insert * 0.08;
    lc.coverage = short_cov;
    lc.error_rate = 0.002;
    lc.seed = seed + static_cast<std::uint64_t>(lib_seed++);
    add_library(ds, lc);
  }
  // Two long-insert libraries for scaffolding (1kbp and 4.2kbp).
  for (double insert : {1000.0, 4200.0}) {
    LibraryConfig lc;
    lc.name = "mp" + std::to_string(static_cast<int>(insert));
    lc.read_length = 150;
    lc.mean_insert = insert;
    lc.stddev_insert = insert * 0.1;
    lc.coverage = coverage * 0.1;
    lc.error_rate = 0.002;
    lc.seed = seed + static_cast<std::uint64_t>(lib_seed++);
    add_library(ds, lc);
  }
  return ds;
}

bool write_dataset_fastq(Dataset& dataset, const std::string& dir) {
  for (std::size_t i = 0; i < dataset.libraries.size(); ++i) {
    auto& lib = dataset.libraries[i];
    lib.fastq_path = dir + "/" + dataset.name + "_" + lib.name + ".fastq";
    if (!io::write_fastq(lib.fastq_path, dataset.reads[i])) return false;
  }
  return true;
}

}  // namespace hipmer::sim
