#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "seq/read_name.hpp"
#include "sim/genome_sim.hpp"

/// Paired-end short-read simulation with an Illumina-like error/quality
/// model.
///
/// Reads come in pairs drawn from fragments whose length follows
/// N(mean_insert, stddev_insert) — exactly the quantity the pipeline's
/// insert-size estimator (§4.4) must recover. Mate 0 is the fragment's
/// 5' prefix on the forward strand; mate 1 is the reverse complement of its
/// 3' suffix, matching the FR orientation the scaffolder assumes.
///
/// Error model: each base is miscalled independently with `error_rate`.
/// Correct bases get high Phred qualities (30–41), miscalled ones get low
/// qualities (2–19) with a small chance of a deceptively high quality —
/// enough that quality filtering alone is imperfect and the count threshold
/// of k-mer analysis is still doing real work, as with real data.
namespace hipmer::sim {

struct LibraryConfig {
  std::string name = "lib";
  int read_length = 100;
  double mean_insert = 400.0;
  double stddev_insert = 40.0;
  /// Mean genome coverage contributed by this library.
  double coverage = 20.0;
  /// Per-base miscall probability.
  double error_rate = 0.0;
  std::uint64_t seed = 7;
};

/// Simulate one library from `genome`. Diploid genomes contribute both
/// haplotypes with equal probability. Returns interleaved pairs; read names
/// are "<lib>:<pair_index>/<0|1>" so pairing survives any file split.
[[nodiscard]] std::vector<seq::Read> simulate_library(
    const Genome& genome, const LibraryConfig& config);

/// Parse "<lib>:<pair>/<mate>" names back into (pair_index, mate).
/// Returns false if the name does not follow the convention.
/// (Delegates to seq::parse_read_name; kept here for source compatibility.)
inline bool parse_read_name(const std::string& name, std::uint64_t& pair_index,
                            int& mate) {
  return seq::parse_read_name(name, pair_index, mate);
}

}  // namespace hipmer::sim
