#include "sim/read_sim.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <random>

#include "seq/dna.hpp"

namespace hipmer::sim {

namespace {

struct ErrorModel {
  std::uniform_real_distribution<double> coin{0.0, 1.0};
  std::uniform_int_distribution<int> other_base{1, 3};
  std::uniform_int_distribution<int> good_qual{30, 41};
  std::uniform_int_distribution<int> bad_qual{2, 19};

  /// Apply to `s` in place, writing qualities to `quals`.
  void apply(std::string& s, std::string& quals, double error_rate,
             std::mt19937_64& rng) {
    quals.resize(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (error_rate > 0.0 && coin(rng) < error_rate) {
        const std::uint8_t code = seq::base_to_code(s[i]);
        s[i] = seq::code_to_base(
            static_cast<std::uint8_t>((code + other_base(rng)) & 3));
        // ~5% of miscalls carry deceptively high quality (real instruments
        // do this), so quality filtering alone cannot remove all errors.
        const bool deceptive = coin(rng) < 0.05;
        quals[i] = seq::phred_to_char(deceptive ? good_qual(rng) : bad_qual(rng));
      } else {
        quals[i] = seq::phred_to_char(good_qual(rng));
      }
    }
  }
};

}  // namespace

std::vector<seq::Read> simulate_library(const Genome& genome,
                                        const LibraryConfig& config) {
  assert(config.read_length > 0);
  const std::uint64_t genome_len = genome.primary.size();
  assert(genome_len > static_cast<std::uint64_t>(config.read_length));

  const double bases_needed =
      config.coverage * static_cast<double>(genome_len);
  const std::uint64_t num_pairs = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             bases_needed / (2.0 * config.read_length)));

  std::mt19937_64 rng(config.seed);
  std::normal_distribution<double> insert_dist(config.mean_insert,
                                               config.stddev_insert);
  std::uniform_real_distribution<double> hap_coin(0.0, 1.0);
  ErrorModel errors;

  std::vector<seq::Read> reads;
  reads.reserve(2 * num_pairs);
  const int rl = config.read_length;

  for (std::uint64_t p = 0; p < num_pairs; ++p) {
    // Fragment length: normal, clamped so both mates fit inside it.
    const auto insert = static_cast<std::uint64_t>(std::max<double>(
        rl, std::min<double>(
                static_cast<double>(genome_len),
                static_cast<double>(std::llround(insert_dist(rng))))));
    const std::string& hap =
        (genome.diploid() && hap_coin(rng) < 0.5) ? genome.secondary
                                                  : genome.primary;
    const std::uint64_t hap_len = hap.size();
    const std::uint64_t span = std::min(insert, hap_len);
    std::uniform_int_distribution<std::uint64_t> start_dist(0, hap_len - span);
    const std::uint64_t start = start_dist(rng);

    seq::Read r0;
    r0.name = config.name + ":" + std::to_string(p) + "/0";
    r0.seq = hap.substr(start, static_cast<std::size_t>(std::min<std::uint64_t>(rl, span)));
    errors.apply(r0.seq, r0.quals, config.error_rate, rng);

    seq::Read r1;
    r1.name = config.name + ":" + std::to_string(p) + "/1";
    const std::uint64_t tail_len = std::min<std::uint64_t>(rl, span);
    r1.seq = seq::revcomp(
        std::string_view(hap).substr(start + span - tail_len,
                                     static_cast<std::size_t>(tail_len)));
    errors.apply(r1.seq, r1.quals, config.error_rate, rng);

    reads.push_back(std::move(r0));
    reads.push_back(std::move(r1));
  }
  return reads;
}

}  // namespace hipmer::sim
