#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "sim/genome_sim.hpp"

/// Preset datasets mirroring the paper's three evaluation workloads at
/// reduced scale (DESIGN.md §2). Benches and examples share these so every
/// experiment runs against the same simulated "human" and "wheat".
namespace hipmer::sim {

struct Dataset {
  std::string name;
  Genome genome;
  std::vector<seq::ReadLibrary> libraries;
  /// Reads per library, interleaved pairs, parallel to `libraries`.
  std::vector<std::vector<seq::Read>> reads;

  [[nodiscard]] std::uint64_t total_reads() const {
    std::uint64_t n = 0;
    for (const auto& lib : reads) n += lib.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_bases() const {
    std::uint64_t n = 0;
    for (const auto& lib : reads)
      for (const auto& r : lib) n += r.seq.size();
    return n;
  }
};

/// Human-like (NA12878 stand-in): mostly unique, diploid with ~0.1%
/// heterozygosity, one paired-end library with 395bp inserts and 101bp
/// reads, ~20x coverage.
[[nodiscard]] Dataset make_human_like(std::uint64_t genome_length,
                                      std::uint64_t seed = 42,
                                      double coverage = 20.0);

/// Wheat-like (W7984 stand-in): homozygous, heavily repetitive (repeat
/// families copied thousands of times -> heavy-hitter k-mers), three
/// short-insert libraries (240/400/740bp, 150bp reads) plus two long-insert
/// libraries (1kbp and 4.2kbp) used only by scaffolding, as in §5.
[[nodiscard]] Dataset make_wheat_like(std::uint64_t genome_length,
                                      std::uint64_t seed = 43,
                                      double coverage = 24.0);

/// Write each library to `<dir>/<dataset>_<lib>.fastq` and record the path
/// in the library metadata. Returns false on I/O failure.
bool write_dataset_fastq(Dataset& dataset, const std::string& dir);

}  // namespace hipmer::sim
