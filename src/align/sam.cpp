#include "align/sam.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "seq/dna.hpp"
#include "seq/read_name.hpp"

namespace hipmer::align {

std::string sam_header(pgas::Rank& rank, const ContigStore& store) {
  std::ostringstream os;
  os << "@HD\tVN:1.6\tSO:unknown\n";
  for (std::uint64_t id = 0; id < store.num_contigs(); ++id) {
    const auto meta = store.meta(rank, id);
    if (meta.length == 0) continue;
    os << "@SQ\tSN:contig_" << id << "\tLN:" << meta.length << '\n';
  }
  os << "@PG\tID:hipmer\tPN:hipmer-meraligner\n";
  return os.str();
}

std::string sam_line(const ReadAlignment& a, const seq::Read& read) {
  std::ostringstream os;
  // FLAG: paired (0x1) + mate number (0x40/0x80) + reverse strand (0x10).
  int flag = 0x1 | (a.mate == 0 ? 0x40 : 0x80);
  if (!a.read_fwd) flag |= 0x10;

  // CIGAR in the read's alignment orientation: leading soft clip, match
  // block, trailing soft clip.
  const std::int32_t lead = a.read_fwd ? a.read_start : a.read_len - a.read_end;
  const std::int32_t match = a.aligned_len();
  const std::int32_t tail = a.read_len - lead - match;
  std::ostringstream cigar;
  if (lead > 0) cigar << lead << 'S';
  cigar << match << 'M';
  if (tail > 0) cigar << tail << 'S';

  const std::string seq_out =
      a.read_fwd ? read.seq : seq::revcomp(read.seq);
  std::string qual_out = read.quals;
  if (!a.read_fwd) std::reverse(qual_out.begin(), qual_out.end());

  os << read.name << '\t' << flag << '\t' << "contig_" << a.contig_id << '\t'
     << (a.contig_start + 1) << '\t'  // SAM POS is 1-based
     << 60 << '\t' << cigar.str() << "\t*\t0\t0\t" << seq_out << '\t'
     << qual_out << "\tAS:i:" << a.score;
  return os.str();
}

bool write_sam(pgas::Rank& rank, const ContigStore& store,
               const std::vector<ReadAlignment>& alignments,
               const std::vector<seq::Read>& reads, const std::string& path,
               bool with_header) {
  // Index this rank's reads by (pair, mate).
  std::unordered_map<std::uint64_t, const seq::Read*> by_key;
  by_key.reserve(reads.size());
  for (const auto& read : reads) {
    std::uint64_t pair = 0;
    int mate = 0;
    if (seq::parse_read_name(read.name, pair, mate))
      by_key[pair * 2 + static_cast<std::uint64_t>(mate)] = &read;
  }
  std::ofstream out(path);
  if (!out) return false;
  if (with_header) out << sam_header(rank, store);
  for (const auto& a : alignments) {
    auto it = by_key.find(a.pair_id * 2 + static_cast<std::uint64_t>(a.mate));
    if (it == by_key.end()) continue;
    out << sam_line(a, *it->second) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace hipmer::align
