#pragma once

#include <cstdint>
#include <string_view>

/// Local alignment kernels for merAligner's extend step.
///
/// The fast path is a gap-free diagonal extension (Kadane's maximal-scoring
/// segment along the implied diagonal) — sufficient for substitution-only
/// divergence and O(n). When the diagonal score is poor, the caller falls
/// back to a banded Smith–Waterman that tolerates small indels.
namespace hipmer::align {

struct LocalAlignment {
  /// Half-open aligned intervals on each sequence.
  std::int32_t a_start = 0;
  std::int32_t a_end = 0;
  std::int32_t b_start = 0;
  std::int32_t b_end = 0;
  std::int32_t score = 0;

  [[nodiscard]] bool empty() const noexcept { return score <= 0; }
};

struct Scoring {
  std::int32_t match = 1;
  std::int32_t mismatch = -1;
  std::int32_t gap = -2;
};

/// Gap-free local alignment along the single diagonal where a[i] pairs with
/// b[i + shift]. Returns the maximal-scoring contiguous segment.
[[nodiscard]] LocalAlignment diagonal_extend(std::string_view a,
                                             std::string_view b,
                                             std::int32_t shift,
                                             const Scoring& scoring = {});

/// Banded Smith–Waterman local alignment: cells with |i - (j - shift)| >
/// band are excluded. O(len(a) * (2*band+1)) time, two-row memory; start
/// coordinates are recovered by tracking the origin of each cell's best
/// path (no full traceback matrix).
[[nodiscard]] LocalAlignment banded_smith_waterman(std::string_view a,
                                                   std::string_view b,
                                                   std::int32_t shift,
                                                   std::int32_t band,
                                                   const Scoring& scoring = {});

}  // namespace hipmer::align
