#include "align/contig_store.hpp"

#include <algorithm>
#include <cstring>

#include "dbg/contig_wire.hpp"

namespace hipmer::align {

ContigStore::ContigStore(pgas::ThreadTeam& team)
    : team_(&team),
      nranks_(team.nranks()),
      shards_(static_cast<std::size_t>(team.nranks())),
      caches_(static_cast<std::size_t>(team.nranks()))
#if defined(HIPMER_CHECKED)
      ,
      checked_(team.checker(), "align.contig_store", nullptr, nullptr)
#endif
{
  if (team.multiprocess()) {
    rpc_ = team.fabric().register_rpc(
        [this](int, const std::byte* data, std::size_t size) {
          return serve_fetch(data, size);
        });
  }
}

bool ContigStore::remote(int owner) const {
  return team_->multiprocess() && !team_->is_local(owner);
}

namespace {
// Fetch sub-ops carried in the request's first byte.
constexpr std::uint8_t kOpMeta = 1;
constexpr std::uint8_t kOpSeq = 2;
constexpr std::uint8_t kOpRecord = 3;
}  // namespace

// wire-schema: contig_meta writer
void put_contig_meta(io::wire::Writer& w, const ContigStore::Meta& m) {
  w.put_u32(m.length);
  w.put_pod(m.avg_depth);  // wire: pod f32
  w.put_pod(m.left_term);  // wire: pod char
  w.put_pod(m.right_term);  // wire: pod char
}

// wire-schema: contig_meta reader
ContigStore::Meta get_contig_meta_checked(io::wire::Reader& r) {
  ContigStore::Meta m;
  m.length = r.get_u32_checked("meta length");
  m.avg_depth = r.get_pod_checked<float>("meta avg_depth");
  m.left_term = r.get_pod_checked<char>("meta left_term");
  m.right_term = r.get_pod_checked<char>("meta right_term");
  return m;
}

// wire-schema: contig_req writer
std::vector<std::byte> ContigStore::remote_call(std::uint8_t op,
                                                std::uint64_t id,
                                                int owner) const {
  std::vector<std::byte> req;
  io::wire::Writer w(req);
  w.put_pod(op);  // wire: pod u8
  w.put_u64(id);
  return team_->fabric().rpc(rpc_, owner, std::move(req));
}

// wire-schema: contig_req reader
std::vector<std::byte> ContigStore::serve_fetch(const std::byte* data,
                                                std::size_t size) const {
  io::wire::Reader r(data, size);
  const auto op = r.get_pod_checked<std::uint8_t>("contig op");
  const auto id = r.get_pod_checked<std::uint64_t>("contig id");
  const dbg::Contig* contig = local_lookup(id);
  std::vector<std::byte> resp;
  io::wire::Writer w(resp);
  switch (op) {
    case kOpMeta: {
      Meta m;
      if (contig != nullptr) {
        m.length = static_cast<std::uint32_t>(contig->seq.size());
        m.avg_depth = static_cast<float>(contig->avg_depth);
        m.left_term = contig->left.code;
        m.right_term = contig->right.code;
      }
      put_contig_meta(w, m);
      break;
    }
    case kOpSeq:
      w.put_bytes(contig != nullptr ? std::string_view(contig->seq)
                                    : std::string_view{});
      break;
    case kOpRecord:
      // An absent contig serializes to nothing; the caller's decode then
      // yields the same default record the threads path returns.
      if (contig != nullptr) dbg::serialize_contig(resp, *contig);
      break;
    default:
      throw io::wire::CorruptError("wire: corrupt: unknown contig fetch op");
  }
  return resp;
}

void ContigStore::build(pgas::Rank& rank,
                        const std::vector<dbg::Contig>& my_contigs
                            HIPMER_SITE_PARAM) {
#if defined(HIPMER_CHECKED)
  checked_.on_store(rank.id(), pgas::CheckedTable::Path::kBatched,
                    pgas::to_site(hipmer_site));
#endif
  // Serialize each contig toward its owner through the shared wire layer
  // (junction k-mers ride along because bubble identification keys on
  // them).
  std::vector<std::vector<std::byte>> outgoing(
      static_cast<std::size_t>(nranks_));
  for (const auto& contig : my_contigs) {
    auto& buf = outgoing[static_cast<std::size_t>(owner_of(contig.id))];
    dbg::serialize_contig(buf, contig);
    rank.stats().add_work();
  }
  const auto incoming = rank.alltoallv(outgoing);

  auto& shard = shards_[static_cast<std::size_t>(rank.id())];
  shard = dbg::deserialize_contigs(incoming);
  std::sort(shard.begin(), shard.end(),
            [](const dbg::Contig& a, const dbg::Contig& b) { return a.id < b.id; });

  caches_[static_cast<std::size_t>(rank.id())].assign(cache_capacity_,
                                                      CacheEntry{});
  const std::uint64_t local = shard.size();
  // Every rank stores the same allreduce result; relaxed atomic keeps the
  // concurrent same-value stores well-defined.
  total_.store(rank.allreduce_sum(local), std::memory_order_relaxed);
  rank.barrier();
}

void ContigStore::set_cache_capacity(std::size_t contigs_per_rank) {
  cache_capacity_ = contigs_per_rank;
  for (auto& cache : caches_) cache.assign(cache_capacity_, CacheEntry{});
}

const dbg::Contig* ContigStore::local_lookup(std::uint64_t id) const {
  const auto& shard = shards_[id % static_cast<std::uint64_t>(nranks_)];
  // Ids within a shard are dense-ish; binary search by id.
  auto it = std::lower_bound(
      shard.begin(), shard.end(), id,
      [](const dbg::Contig& c, std::uint64_t key) { return c.id < key; });
  if (it == shard.end() || it->id != id) return nullptr;
  return &*it;
}

ContigStore::Meta ContigStore::meta(pgas::Rank& rank,
                                    std::uint64_t id HIPMER_SITE_PARAM) const {
#if defined(HIPMER_CHECKED)
  checked_.on_lookup(rank.id(), pgas::CheckedTable::Path::kFine,
                     pgas::to_site(hipmer_site));
#endif
  const int owner = owner_of(id);
  Meta m;
  if (remote(owner)) {
    const auto resp = remote_call(kOpMeta, id, owner);
    io::wire::Reader r(resp.data(), resp.size());
    m = get_contig_meta_checked(r);
  } else {
    const dbg::Contig* contig = local_lookup(id);
    if (contig != nullptr) {
      m.length = static_cast<std::uint32_t>(contig->seq.size());
      m.avg_depth = static_cast<float>(contig->avg_depth);
      m.left_term = contig->left.code;
      m.right_term = contig->right.code;
    }
  }
  if (owner == rank.id()) {
    rank.stats().add_local_access();
  } else if (rank.topology().same_node(owner, rank.id())) {
    rank.stats().add_onnode_msg(sizeof(Meta));
    rank.stats_of(owner).add_recv_ops();
  } else {
    rank.stats().add_offnode_msg(sizeof(Meta));
    rank.stats_of(owner).add_recv_ops();
  }
  return m;
}

std::string ContigStore::fetch(pgas::Rank& rank, std::uint64_t id,
                               std::uint32_t start,
                               std::uint32_t len HIPMER_SITE_PARAM) const {
#if defined(HIPMER_CHECKED)
  checked_.on_lookup(rank.id(), pgas::CheckedTable::Path::kFine,
                     pgas::to_site(hipmer_site));
#endif
  const int owner = owner_of(id);
  if (owner == rank.id()) {
    rank.stats().add_local_access();
    const dbg::Contig* contig = local_lookup(id);
    if (contig == nullptr || start >= contig->seq.size()) return {};
    return contig->seq.substr(start,
                              std::min<std::size_t>(len, contig->seq.size() - start));
  }

  // Remote: consult this rank's cache first (whole-contig granularity).
  auto& cache = caches_[static_cast<std::size_t>(rank.id())];
  const std::string* seq = nullptr;
  std::size_t slot = 0;
  if (!cache.empty()) {
    slot = static_cast<std::size_t>(id) % cache.size();
    if (cache[slot].id == id) seq = &cache[slot].seq;
  }
  if (seq == nullptr) {
    std::string fetched;
    if (remote(owner)) {
      const auto resp = remote_call(kOpSeq, id, owner);
      io::wire::Reader r(resp.data(), resp.size());
      fetched = r.get_bytes_checked("contig seq");
    } else {
      const dbg::Contig* contig = local_lookup(id);
      if (contig != nullptr) fetched = contig->seq;
    }
    if (rank.topology().same_node(owner, rank.id())) {
      rank.stats().add_onnode_msg(fetched.size());
    } else {
      rank.stats().add_offnode_msg(fetched.size());
    }
    rank.stats_of(owner).add_recv_ops();
    if (!cache.empty()) {
      cache[slot] = CacheEntry{id, fetched};
      seq = &cache[slot].seq;
    } else {
      if (start >= fetched.size()) return {};
      return fetched.substr(start, std::min<std::size_t>(len, fetched.size() - start));
    }
  }
  if (start >= seq->size()) return {};
  return seq->substr(start, std::min<std::size_t>(len, seq->size() - start));
}

std::string ContigStore::fetch_all(pgas::Rank& rank,
                                   std::uint64_t id HIPMER_SITE_PARAM) const {
  return fetch(rank, id, 0, 0xffffffffu HIPMER_SITE_FWD);
}

void ContigStore::set_local_depth(pgas::Rank& rank, std::uint64_t id,
                                  double depth HIPMER_SITE_PARAM) {
#if defined(HIPMER_CHECKED)
  // Owner-local in-place write: a store for phase purposes (readers on
  // other ranks in the same epoch would observe it racing), but exempt
  // from the mixed-access rule like erase_local_if.
  checked_.on_store(rank.id(), pgas::CheckedTable::Path::kLocal,
                    pgas::to_site(hipmer_site));
#endif
  auto& shard = shards_[static_cast<std::size_t>(rank.id())];
  auto it = std::lower_bound(
      shard.begin(), shard.end(), id,
      [](const dbg::Contig& c, std::uint64_t key) { return c.id < key; });
  if (it != shard.end() && it->id == id) it->avg_depth = depth;
  rank.stats().add_local_access();
}

std::uint64_t ContigStore::local_bases(int rank) const {
  std::uint64_t total = 0;
  for (const auto& contig : shards_[static_cast<std::size_t>(rank)])
    total += contig.seq.size();
  return total;
}

dbg::Contig ContigStore::fetch_record(pgas::Rank& rank,
                                      std::uint64_t id
                                          HIPMER_SITE_PARAM) const {
#if defined(HIPMER_CHECKED)
  checked_.on_lookup(rank.id(), pgas::CheckedTable::Path::kFine,
                     pgas::to_site(hipmer_site));
#endif
  const int owner = owner_of(id);
  dbg::Contig copy;
  if (remote(owner)) {
    auto records = dbg::deserialize_contigs(remote_call(kOpRecord, id, owner));
    if (!records.empty()) copy = std::move(records.front());
  } else {
    const dbg::Contig* contig = local_lookup(id);
    if (contig != nullptr) copy = *contig;
  }
  if (owner == rank.id()) {
    rank.stats().add_local_access();
  } else {
    if (rank.topology().same_node(owner, rank.id())) {
      rank.stats().add_onnode_msg(copy.seq.size() + 64);
    } else {
      rank.stats().add_offnode_msg(copy.seq.size() + 64);
    }
    rank.stats_of(owner).add_recv_ops();
  }
  return copy;
}

}  // namespace hipmer::align
