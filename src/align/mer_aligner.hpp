#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "align/alignment.hpp"
#include "align/contig_store.hpp"
#include "align/smith_waterman.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"
#include "seq/types.hpp"

/// merAligner: parallel seed-and-extend read-to-contig alignment (§4.3).
///
/// "MerAligner implements a seed-and-extend algorithm and fully parallelizes
/// all of its components", including the lookup-table (seed index)
/// construction that other aligners build serially. Structure:
///
///   - **Seed index**: a distributed hash table mapping every canonical
///     k-mer of every contig to its (contig, position, strand) hits, built
///     collectively with aggregating stores. K-mers occurring in more than
///     `max_seed_hits` places are marked repetitive and ignored as seeds —
///     the standard defense against repeat k-mers exploding candidate
///     lists.
///   - **Seed lookup**: each rank streams its reads in chunks, sampling
///     k-mers every `seed_stride` bases, and resolves candidate (contig,
///     diagonal, strand) placements through the index's batched read path:
///     lookups are aggregated per owner and fronted by a per-rank software
///     cache (the journal version's cached + aggregated lookups).
///   - **Extend**: candidates are scored against contig sequence fetched
///     from the distributed ContigStore (cached). The fast path is a
///     gap-free diagonal extension; if its score is weak the banded
///     Smith–Waterman runs.
namespace hipmer::align {

struct AlignerConfig {
  /// Seed length; the pipeline reuses the assembly k.
  int seed_k = 31;
  /// Sample a seed every this many read bases (1 = every k-mer).
  int seed_stride = 16;
  /// Ignore seeds with more hits than this (repetitive).
  int max_seed_hits = 4;
  /// Keep alignments scoring at least this fraction of read length.
  double min_score_fraction = 0.25;
  /// Max alignments reported per read (best-scoring kept).
  int max_alignments_per_read = 4;
  /// Smith-Waterman band half-width for the fallback path.
  int sw_band = 4;
  /// Aggregating-stores batch size for index construction.
  std::size_t flush_threshold = 512;
  /// Reads seeded per batched-lookup round in align_reads.
  std::size_t lookup_chunk = 256;
  /// Per-rank software read-cache capacity for seed lookups (entries).
  /// Reads cover the genome many times over, so the same seed k-mers
  /// recur; caching them turns repeat off-node lookups into local hits.
  std::size_t read_cache_capacity = 1 << 15;
  Scoring scoring;
};

class MerAligner {
 public:
  /// A seed hit: where a canonical k-mer occurs in the contig set.
  struct SeedHits {
    static constexpr int kMaxInline = 4;
    struct Hit {
      std::uint32_t contig_id;
      std::uint32_t pos;        // forward-contig coordinate of the k-mer
      std::uint8_t fwd;         // 1 if the canonical form matches contig-forward
    };
    Hit hits[kMaxInline];
    std::uint8_t count = 0;
    std::uint8_t overflowed = 0;  // more hits existed than fit -> repetitive
  };

  using SeedIndex =
      pgas::DistHashMap<seq::KmerT, SeedHits, seq::KmerHashT, struct SeedMerge>;

  MerAligner(pgas::ThreadTeam& team, AlignerConfig config,
             std::size_t expected_seed_kmers);
  ~MerAligner();

  /// Collective: index the contigs owned by this rank in `store`.
  void build_index(pgas::Rank& rank, const ContigStore& store);

  /// Align this rank's reads; `library` tags the records. Returns the
  /// alignments found (all candidates above threshold, best first, capped).
  /// Accepts a ReadSetView (string or packed store; a bare
  /// `std::vector<seq::Read>` converts implicitly). Packed reads feed the
  /// seed scanner from their 2-bit words and decode to chars only for the
  /// extend phase.
  [[nodiscard]] std::vector<ReadAlignment> align_reads(pgas::Rank& rank,
                                                       const ContigStore& store,
                                                       seq::ReadSetView reads,
                                                       int library);

  [[nodiscard]] const AlignerConfig& config() const noexcept { return config_; }

 private:
  struct Candidate {
    std::uint32_t contig_id;
    std::int32_t shift;  // contig_pos - read_pos on the shared diagonal
    bool read_fwd;

    friend bool operator<(const Candidate& a, const Candidate& b) noexcept {
      if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
      if (a.read_fwd != b.read_fwd) return a.read_fwd < b.read_fwd;
      return a.shift < b.shift;
    }
    friend bool operator==(const Candidate& a, const Candidate& b) noexcept {
      return a.contig_id == b.contig_id && a.shift == b.shift &&
             a.read_fwd == b.read_fwd;
    }
  };

  /// One sampled seed k-mer awaiting (or holding) its index lookup result.
  /// Filled in by the batched-lookup handler; tag = slot index.
  struct SeedSlot {
    std::uint32_t read_idx;  // ordinal within the current chunk
    std::int32_t pos;        // sample position in the read
    std::uint8_t flipped;    // canonical form was the read's revcomp
    std::uint8_t found;      // index had an entry for this k-mer
    SeedHits hits;
  };

  /// Extend phase for one read whose seed lookups (slots [begin,end)) have
  /// already been resolved by the batched read path.
  void extend_one(pgas::Rank& rank, const ContigStore& store,
                  std::string_view read_seq, const std::vector<SeedSlot>& slots,
                  std::size_t begin, std::size_t end, std::uint64_t pair_id,
                  int mate, int library, std::vector<ReadAlignment>& out);

  pgas::ThreadTeam& team_;
  AlignerConfig config_;
  std::unique_ptr<SeedIndex> index_;
};

/// Merge functor: append hits until the inline capacity is exceeded, then
/// mark the k-mer repetitive.
struct SeedMerge {
  void operator()(MerAligner::SeedHits& existing,
                  const MerAligner::SeedHits& incoming) const {
    for (int i = 0; i < incoming.count; ++i) {
      if (existing.count < MerAligner::SeedHits::kMaxInline) {
        existing.hits[existing.count++] = incoming.hits[i];
      } else {
        existing.overflowed = 1;
      }
    }
    existing.overflowed |= incoming.overflowed;
  }
};

}  // namespace hipmer::align
