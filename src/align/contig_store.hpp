#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dbg/contig.hpp"
#include "io/wire.hpp"
#include "pgas/checked.hpp"
#include "pgas/thread_team.hpp"

#if defined(HIPMER_CHECKED)
#include "pgas/phase_checker.hpp"
#endif

/// Distributed contig storage.
///
/// Contigs come out of the traversal on whichever rank happened to complete
/// them; the store redistributes them so contig c lives on rank c % P,
/// giving every later stage (seed-index construction, alignment extension,
/// gap closing) O(1) location of any contig by id. Remote sequence reads
/// are one-sided and charged by the byte, like UPC global-pointer derefs;
/// per-rank software caching (merAligner §4.3 does the same) collapses
/// repeated fetches of hot contigs.
namespace hipmer::align {

class ContigStore {
 public:
  struct Meta {
    std::uint32_t length = 0;
    float avg_depth = 0.0f;
    char left_term = 'X';
    char right_term = 'X';
  };

  explicit ContigStore(pgas::ThreadTeam& team);

  /// Collective: move each contig to rank (id % P). `my_contigs` is
  /// whatever this rank produced during traversal.
  void build(pgas::Rank& rank,
             const std::vector<dbg::Contig>& my_contigs HIPMER_SITE_DEFAULT);

  [[nodiscard]] std::uint64_t num_contigs() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int owner_of(std::uint64_t contig_id) const noexcept {
    return static_cast<int>(contig_id % static_cast<std::uint64_t>(nranks_));
  }

  /// One-sided read of contig `id`'s metadata.
  [[nodiscard]] Meta meta(pgas::Rank& rank,
                          std::uint64_t id HIPMER_SITE_DEFAULT) const;

  /// One-sided read of `len` bases starting at `start` (clamped to the
  /// contig). Goes through the per-rank cache when enabled.
  [[nodiscard]] std::string fetch(pgas::Rank& rank, std::uint64_t id,
                                  std::uint32_t start,
                                  std::uint32_t len HIPMER_SITE_DEFAULT) const;

  /// Fetch the whole contig sequence.
  [[nodiscard]] std::string fetch_all(pgas::Rank& rank,
                                      std::uint64_t id HIPMER_SITE_DEFAULT) const;

  /// One-sided read of the complete contig record (sequence, depth,
  /// termination states with junction k-mers). Used by bubble merging,
  /// which needs the ends' junction data.
  [[nodiscard]] dbg::Contig fetch_record(pgas::Rank& rank,
                                         std::uint64_t id
                                             HIPMER_SITE_DEFAULT) const;

  /// Iterate contigs owned by this rank: fn(id, const Contig&).
  template <typename Fn>
  void for_each_local(pgas::Rank& rank, Fn&& fn) const {
    const auto& shard = shards_[static_cast<std::size_t>(rank.id())];
    for (const auto& contig : shard) fn(contig.id, contig);
  }

  /// Per-rank cache capacity in contigs (0 disables). Must be set before
  /// the first fetch.
  void set_cache_capacity(std::size_t contigs_per_rank);

  /// Owner-side depth update (the §4.1 depth recomputation writes back
  /// through this; call only for contigs owned by `rank`, after build and
  /// behind a barrier).
  void set_local_depth(pgas::Rank& rank, std::uint64_t id,
                       double depth HIPMER_SITE_DEFAULT);

  /// Total bases across this rank's contigs.
  [[nodiscard]] std::uint64_t local_bases(int rank) const;

 private:
  struct CacheEntry {
    std::uint64_t id = ~0ull;
    std::string seq;
  };

  [[nodiscard]] const dbg::Contig* local_lookup(std::uint64_t id) const;

  // Multi-process fabric: the owner's shard is in another address space,
  // so one-sided reads become a request/response round trip. Charging is
  // unchanged and stays initiator-side (mirror counters sum to the same
  // global totals as the threads fabric).
  [[nodiscard]] std::vector<std::byte> serve_fetch(const std::byte* data,
                                                   std::size_t size) const;
  [[nodiscard]] std::vector<std::byte> remote_call(std::uint8_t op,
                                                   std::uint64_t id,
                                                   int owner) const;
  [[nodiscard]] bool remote(int owner) const;

  pgas::ThreadTeam* team_;
  int nranks_;
  std::atomic<std::uint64_t> total_{0};
  /// shards_[r] holds contigs with id % P == r, sorted by id.
  std::vector<std::vector<dbg::Contig>> shards_;
  /// Direct-mapped per-rank caches (mutable: fetch is logically const).
  mutable std::vector<std::vector<CacheEntry>> caches_;
  std::size_t cache_capacity_ = 64;
  /// Fabric RPC service id for remote fetches (multi-process teams only).
  std::uint32_t rpc_ = 0;
#if defined(HIPMER_CHECKED)
  // ContigStore is not a DistHashMap but obeys the same phase contract:
  // build/set_local_depth are its write phase, one-sided meta/fetch reads
  // its read phase. mutable: reads are logically const but record events.
  mutable pgas::CheckedTable checked_;
#endif
};

/// Field-wise Meta codec (schema `contig_meta`). Meta used to cross the
/// fabric as a whole-struct put_pod, which shipped its two padding bytes
/// (u32 + float + 2 char = 10 live bytes, sizeof == 12): dead wire bytes
/// that decoded identically under any corruption. Writing the four fields
/// explicitly keeps every wire byte live and the format layout-independent.
void put_contig_meta(io::wire::Writer& w, const ContigStore::Meta& m);
[[nodiscard]] ContigStore::Meta get_contig_meta_checked(io::wire::Reader& r);

}  // namespace hipmer::align
