#include "align/mer_aligner.hpp"

#include <algorithm>
#include <cassert>

#include "seq/dna.hpp"
#include "seq/kmer_scanner.hpp"
#include "seq/read_name.hpp"

namespace hipmer::align {

using seq::KmerT;

MerAligner::MerAligner(pgas::ThreadTeam& team, AlignerConfig config,
                       std::size_t expected_seed_kmers)
    : team_(team), config_(config) {
  SeedIndex::Config ic;
  ic.global_capacity = std::max<std::size_t>(1024, expected_seed_kmers);
  ic.flush_threshold = config_.flush_threshold;
  index_ = std::make_unique<SeedIndex>(team, ic);
  index_->set_name("align.seed_index");
}

MerAligner::~MerAligner() = default;

void MerAligner::build_index(pgas::Rank& rank, const ContigStore& store) {
  store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& contig) {
    for (seq::KmerScanner<KmerT::kMaxK> it(contig.seq, config_.seed_k);
         !it.done(); it.next()) {
      SeedHits entry{};
      entry.count = 1;
      entry.hits[0] = SeedHits::Hit{
          static_cast<std::uint32_t>(id),
          static_cast<std::uint32_t>(it.position()),
          static_cast<std::uint8_t>(it.is_flipped() ? 0 : 1)};
      index_->update_buffered(rank, it.canonical(), entry);
      rank.stats().add_work();
    }
  });
  index_->flush(rank);
  rank.barrier();
}

void MerAligner::extend_one(pgas::Rank& rank, const ContigStore& store,
                            std::string_view read_seq,
                            const std::vector<SeedSlot>& slots,
                            std::size_t begin, std::size_t end,
                            std::uint64_t pair_id, int mate, int library,
                            std::vector<ReadAlignment>& out) {
  const auto read_len = static_cast<std::int32_t>(read_seq.size());

  // --- Seed results -> candidate (contig, diagonal, strand) placements. ---
  std::vector<Candidate> candidates;
  for (std::size_t s = begin; s < end; ++s) {
    const SeedSlot& slot = slots[s];
    if (slot.found == 0 || slot.hits.overflowed != 0) continue;
    if (slot.hits.count > config_.max_seed_hits) continue;
    for (int h = 0; h < slot.hits.count; ++h) {
      const auto& hit = slot.hits.hits[h];
      // Orientation: read k-mer is flipped (vs canonical) iff slot.flipped;
      // contig k-mer is flipped iff !hit.fwd. The read aligns forward to
      // the contig when both flips agree.
      const bool read_fwd = ((slot.flipped != 0) == (hit.fwd == 0));
      std::int32_t shift;
      if (read_fwd) {
        shift = static_cast<std::int32_t>(hit.pos) - slot.pos;
      } else {
        // Reverse-complemented read coordinates: read position p maps to
        // contig position hit.pos + (k - 1) - ... handled by aligning the
        // revcomp'd read; the diagonal is computed against rc coordinates.
        const std::int32_t rc_pos = read_len - config_.seed_k - slot.pos;
        shift = static_cast<std::int32_t>(hit.pos) - rc_pos;
      }
      candidates.push_back(Candidate{hit.contig_id, shift, read_fwd});
    }
  }
  if (candidates.empty()) return;

  // Dedup: nearby shifts on the same contig/strand are one candidate
  // (indels jitter the diagonal by a few bases).
  std::sort(candidates.begin(), candidates.end());
  std::vector<Candidate> merged;
  for (const auto& c : candidates) {
    if (!merged.empty() && merged.back().contig_id == c.contig_id &&
        merged.back().read_fwd == c.read_fwd &&
        c.shift - merged.back().shift <= config_.sw_band) {
      continue;
    }
    merged.push_back(c);
  }

  // --- Extend each candidate against fetched contig sequence. ---
  std::vector<ReadAlignment> found;
  const std::string rc_read = seq::revcomp(read_seq);
  for (const auto& cand : merged) {
    const std::string_view query =
        cand.read_fwd ? read_seq : std::string_view(rc_read);

    // Window on the contig covering the read projection plus slack.
    const std::int32_t pad = config_.sw_band + 4;
    const std::int32_t win_start = std::max<std::int32_t>(0, cand.shift - pad);
    const std::int32_t win_len = read_len + 2 * pad;
    const std::string window =
        store.fetch(rank, cand.contig_id, static_cast<std::uint32_t>(win_start),
                    static_cast<std::uint32_t>(win_len));
    if (window.empty()) continue;
    const auto meta = store.meta(rank, cand.contig_id);
    rank.stats().add_work(static_cast<std::uint64_t>(read_len));

    const std::int32_t local_shift = cand.shift - win_start;
    LocalAlignment aln =
        diagonal_extend(query, window, local_shift, config_.scoring);
    const auto min_score = static_cast<std::int32_t>(
        config_.min_score_fraction * static_cast<double>(read_len));
    if (aln.score < min_score) {
      aln = banded_smith_waterman(query, window, local_shift, config_.sw_band,
                                  config_.scoring);
    }
    if (aln.score < min_score) continue;

    ReadAlignment record;
    record.pair_id = pair_id;
    record.mate = mate;
    record.library = library;
    record.contig_id = cand.contig_id;
    record.contig_len = meta.length;
    record.read_len = read_len;
    record.contig_start = win_start + aln.b_start;
    record.contig_end = win_start + aln.b_end;
    record.read_fwd = cand.read_fwd;
    record.score = aln.score;
    if (cand.read_fwd) {
      record.read_start = aln.a_start;
      record.read_end = aln.a_end;
    } else {
      // Alignment used revcomp coordinates; map back to the original read.
      record.read_start = read_len - aln.a_end;
      record.read_end = read_len - aln.a_start;
    }
    found.push_back(record);
  }

  // Keep the best few; full tie-break so the report order is a pure
  // function of the alignment set.
  std::sort(found.begin(), found.end(),
            [](const ReadAlignment& a, const ReadAlignment& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
              if (a.contig_start != b.contig_start)
                return a.contig_start < b.contig_start;
              return a.read_fwd > b.read_fwd;
            });
  if (static_cast<int>(found.size()) > config_.max_alignments_per_read)
    found.resize(static_cast<std::size_t>(config_.max_alignments_per_read));
  out.insert(out.end(), found.begin(), found.end());
}

std::vector<ReadAlignment> MerAligner::align_reads(pgas::Rank& rank,
                                                   const ContigStore& store,
                                                   seq::ReadSetView reads,
                                                   int library) {
  std::vector<ReadAlignment> out;
  out.reserve(reads.size());

  // Alignment only reads the seed index, so the whole phase runs under the
  // software read cache; it is torn down before the closing barrier.
  index_->enable_read_cache(rank, config_.read_cache_capacity);

  std::vector<SeedSlot> slots;
  std::vector<std::size_t> slot_begin;  // per chunk read: first slot index
  struct ChunkRead {
    std::size_t read_idx;
    std::uint64_t pair_id;
    int mate;
  };
  std::vector<ChunkRead> chunk;
  std::string seq_scratch;

  auto resolve = [&slots](const KmerT& /*key*/, const SeedHits* value,
                          std::uint64_t tag) {
    if (value != nullptr) {
      slots[static_cast<std::size_t>(tag)].found = 1;
      slots[static_cast<std::size_t>(tag)].hits = *value;
    }
  };

  auto drain_chunk = [&]() {
    if (chunk.empty()) return;
    index_->process_lookups(rank, resolve);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::size_t begin = slot_begin[i];
      const std::size_t end =
          i + 1 < chunk.size() ? slot_begin[i + 1] : slots.size();
      extend_one(rank, store, reads.seq(chunk[i].read_idx, seq_scratch), slots,
                 begin, end, chunk[i].pair_id, chunk[i].mate, library, out);
    }
    chunk.clear();
    slot_begin.clear();
    slots.clear();
  };

  for (std::size_t r = 0; r < reads.size(); ++r) {
    std::uint64_t pair_id = 0;
    int mate = 0;
    if (!seq::parse_read_name(reads.name(r), pair_id, mate)) continue;
    if (static_cast<std::int32_t>(reads.length(r)) < config_.seed_k) continue;

    // Seed pass: sample k-mers and issue batched lookups; the handler may
    // run immediately (local key / cache hit) or at process_lookups.
    slot_begin.push_back(slots.size());
    chunk.push_back(ChunkRead{r, pair_id, mate});
    std::int32_t next_sample = 0;
    for (auto it = reads.scanner<KmerT::kMaxK>(r, config_.seed_k); !it.done();
         it.next()) {
      const auto pos = static_cast<std::int32_t>(it.position());
      if (pos < next_sample) continue;
      next_sample = pos + config_.seed_stride;
      rank.stats().add_work();

      const std::uint64_t tag = slots.size();
      slots.push_back(SeedSlot{static_cast<std::uint32_t>(chunk.size() - 1),
                               pos,
                               static_cast<std::uint8_t>(it.is_flipped()),
                               0,
                               SeedHits{}});
      index_->find_buffered(rank, it.canonical(), tag, resolve);
    }
    if (chunk.size() >= config_.lookup_chunk) drain_chunk();
  }
  drain_chunk();

  index_->disable_read_cache(rank);
  rank.barrier();
  return out;
}

}  // namespace hipmer::align
