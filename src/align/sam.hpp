#pragma once

#include <string>
#include <vector>

#include "align/alignment.hpp"
#include "align/contig_store.hpp"
#include "pgas/thread_team.hpp"
#include "seq/read.hpp"

/// SAM-format emission for merAligner results.
///
/// merAligner is a standalone tool in the HipMer ecosystem (its output is
/// consumed by scaffolding but also inspected directly); SAM is the lingua
/// franca for that. Emits @SQ headers from the contig store and one
/// alignment line per record, with soft-clips for partially aligned reads.
namespace hipmer::align {

/// @HD + @SQ header lines for every contig in `store` (collective-free:
/// callable by any rank; iterates ids 0..num_contigs-1 via one-sided
/// metadata reads).
[[nodiscard]] std::string sam_header(pgas::Rank& rank,
                                     const ContigStore& store);

/// One SAM line. `read` must be the record the alignment refers to;
/// reverse-strand alignments emit the reverse-complemented sequence with
/// FLAG 0x10, per the spec. Gapless CIGAR (soft-clip / match blocks) —
/// the extension kernels report interval matches, not per-base edits.
[[nodiscard]] std::string sam_line(const ReadAlignment& alignment,
                                   const seq::Read& read);

/// Convenience: write header + this rank's alignments to `path` (one file
/// per rank; SAM files concatenate trivially after the header).
bool write_sam(pgas::Rank& rank, const ContigStore& store,
               const std::vector<ReadAlignment>& alignments,
               const std::vector<seq::Read>& reads, const std::string& path,
               bool with_header = true);

}  // namespace hipmer::align
