#include "align/smith_waterman.hpp"

#include <algorithm>
#include <vector>

namespace hipmer::align {

LocalAlignment diagonal_extend(std::string_view a, std::string_view b,
                               std::int32_t shift, const Scoring& scoring) {
  // Valid i range where both a[i] and b[i+shift] exist.
  const auto alen = static_cast<std::int32_t>(a.size());
  const auto blen = static_cast<std::int32_t>(b.size());
  const std::int32_t lo = std::max<std::int32_t>(0, -shift);
  const std::int32_t hi = std::min<std::int32_t>(alen, blen - shift);

  LocalAlignment best;
  std::int32_t run_score = 0;
  std::int32_t run_start = lo;
  for (std::int32_t i = lo; i < hi; ++i) {
    const bool match = a[static_cast<std::size_t>(i)] ==
                       b[static_cast<std::size_t>(i + shift)];
    run_score += match ? scoring.match : scoring.mismatch;
    if (run_score <= 0) {
      run_score = 0;
      run_start = i + 1;
      continue;
    }
    if (run_score > best.score) {
      best.score = run_score;
      best.a_start = run_start;
      best.a_end = i + 1;
      best.b_start = run_start + shift;
      best.b_end = i + 1 + shift;
    }
  }
  return best;
}

LocalAlignment banded_smith_waterman(std::string_view a, std::string_view b,
                                     std::int32_t shift, std::int32_t band,
                                     const Scoring& scoring) {
  const auto alen = static_cast<std::int32_t>(a.size());
  const auto blen = static_cast<std::int32_t>(b.size());
  const std::int32_t width = 2 * band + 1;

  struct Cell {
    std::int32_t score = 0;
    std::int32_t a_origin = 0;
    std::int32_t b_origin = 0;
  };
  // prev[d] / curr[d] hold row i-1 / i, where d = j - (i + shift) + band.
  std::vector<Cell> prev(static_cast<std::size_t>(width));
  std::vector<Cell> curr(static_cast<std::size_t>(width));

  LocalAlignment best;
  for (std::int32_t i = 0; i < alen; ++i) {
    for (std::int32_t d = 0; d < width; ++d) {
      curr[static_cast<std::size_t>(d)] = Cell{};
      const std::int32_t j = i + shift + d - band;
      if (j < 0 || j >= blen) continue;

      const bool match = a[static_cast<std::size_t>(i)] ==
                         b[static_cast<std::size_t>(j)];
      const std::int32_t sub = match ? scoring.match : scoring.mismatch;

      // Diagonal predecessor (i-1, j-1) sits at the same d in row i-1.
      Cell cand{sub, i, j};  // fresh start at (i, j)
      if (i > 0) {
        const Cell& diag = prev[static_cast<std::size_t>(d)];
        if (diag.score + sub > cand.score)
          cand = Cell{diag.score + sub, diag.a_origin, diag.b_origin};
      }
      // Up predecessor (i-1, j): d' = d + 1 in row i-1 (gap in b).
      if (i > 0 && d + 1 < width) {
        const Cell& up = prev[static_cast<std::size_t>(d + 1)];
        if (up.score + scoring.gap > cand.score)
          cand = Cell{up.score + scoring.gap, up.a_origin, up.b_origin};
      }
      // Left predecessor (i, j-1): d' = d - 1 in the same row (gap in a).
      if (d - 1 >= 0) {
        const Cell& left = curr[static_cast<std::size_t>(d - 1)];
        if (left.score + scoring.gap > cand.score)
          cand = Cell{left.score + scoring.gap, left.a_origin, left.b_origin};
      }
      if (cand.score <= 0) continue;  // local alignment floor

      curr[static_cast<std::size_t>(d)] = cand;
      if (cand.score > best.score) {
        best.score = cand.score;
        best.a_start = cand.a_origin;
        best.b_start = cand.b_origin;
        best.a_end = i + 1;
        best.b_end = j + 1;
      }
    }
    std::swap(prev, curr);
  }
  return best;
}

}  // namespace hipmer::align
