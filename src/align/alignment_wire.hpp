#pragma once

#include "align/alignment.hpp"
#include "io/wire.hpp"

/// Field-wise wire codec for ReadAlignment, shared by the checkpoint
/// alignments shard and the read-shuffle exchange.
///
/// ReadAlignment used to ship as a whole-struct put_pod, which serialized
/// its padding (3 bytes after the bool, 4 at the tail): seven dead wire
/// bytes per record that decoded identically under any corruption —
/// invisible to CRC-less byte-flip sweeps and dependent on one compiler's
/// layout. Writing the eleven live fields explicitly makes every wire byte
/// meaningful and pins the format independent of struct layout.
namespace hipmer::align {

// wire-schema: alignment_record writer
inline void put_alignment(io::wire::Writer& w, const ReadAlignment& a) {
  w.put_u64(a.pair_id);
  w.put_pod<std::int32_t>(a.mate);
  w.put_pod<std::int32_t>(a.library);
  w.put_u32(a.contig_id);
  w.put_u32(a.contig_len);
  w.put_pod<std::int32_t>(a.read_start);
  w.put_pod<std::int32_t>(a.read_end);
  w.put_pod<std::int32_t>(a.read_len);
  w.put_pod<std::int32_t>(a.contig_start);
  w.put_pod<std::int32_t>(a.contig_end);
  w.put_pod(static_cast<std::uint8_t>(a.read_fwd ? 1 : 0));
  w.put_pod<std::int32_t>(a.score);
}

// wire-schema: alignment_record reader
inline ReadAlignment get_alignment_checked(io::wire::Reader& r) {
  ReadAlignment a;
  a.pair_id = r.get_u64_checked("alignment pair_id");
  a.mate = r.get_pod_checked<std::int32_t>("alignment mate");
  a.library = r.get_pod_checked<std::int32_t>("alignment library");
  a.contig_id = r.get_u32_checked("alignment contig_id");
  a.contig_len = r.get_u32_checked("alignment contig_len");
  a.read_start = r.get_pod_checked<std::int32_t>("alignment read_start");
  a.read_end = r.get_pod_checked<std::int32_t>("alignment read_end");
  a.read_len = r.get_pod_checked<std::int32_t>("alignment read_len");
  a.contig_start = r.get_pod_checked<std::int32_t>("alignment contig_start");
  a.contig_end = r.get_pod_checked<std::int32_t>("alignment contig_end");
  const auto fwd = r.get_pod_checked<std::uint8_t>("alignment read_fwd");
  if (fwd > 1)
    throw io::wire::CorruptError(
        "wire: corrupt: alignment read_fwd flag is neither 0 nor 1");
  a.read_fwd = fwd != 0;
  a.score = r.get_pod_checked<std::int32_t>("alignment score");
  return a;
}

}  // namespace hipmer::align
