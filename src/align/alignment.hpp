#pragma once

#include <cstdint>

/// Read-to-contig alignment record — the interchange format between
/// merAligner (§4.3) and every scaffolding module that consumes alignments
/// (insert-size estimation §4.4, splint/span location §4.5, gap closing
/// §4.8). Trivially copyable so records can move through alltoallv
/// exchanges.
namespace hipmer::align {

struct ReadAlignment {
  /// Pair index within the library (mates share it) and mate number (0/1).
  std::uint64_t pair_id = 0;
  std::int32_t mate = 0;
  /// Which library the read came from (index into the pipeline's library
  /// list); scaffolding estimates a separate insert size per library.
  std::int32_t library = 0;

  std::uint32_t contig_id = 0;
  std::uint32_t contig_len = 0;

  /// Aligned interval on the read, [read_start, read_end).
  std::int32_t read_start = 0;
  std::int32_t read_end = 0;
  std::int32_t read_len = 0;

  /// Corresponding interval in forward contig coordinates,
  /// [contig_start, contig_end).
  std::int32_t contig_start = 0;
  std::int32_t contig_end = 0;

  /// True if the read's forward orientation matches the contig's.
  bool read_fwd = true;

  /// Alignment score (match +1, mismatch -1, gap -2).
  std::int32_t score = 0;

  [[nodiscard]] std::int32_t aligned_len() const noexcept {
    return read_end - read_start;
  }
  /// Does the alignment reach (within `slack`) the contig's start/end?
  /// Splint detection (§4.5) keys on these.
  [[nodiscard]] bool touches_contig_start(int slack = 5) const noexcept {
    return contig_start <= slack;
  }
  [[nodiscard]] bool touches_contig_end(int slack = 5) const noexcept {
    return contig_end + slack >= static_cast<std::int32_t>(contig_len);
  }
};

}  // namespace hipmer::align
