#pragma once

#include <vector>

#include "dbg/contig.hpp"
#include "io/wire.hpp"

/// Flat serialization of contigs for alltoallv exchanges (used by the
/// traversal's deterministic renumbering and by ContigStore's
/// redistribution). Framing goes through the shared wire layer: a POD
/// header followed by the length-prefixed sequence.
namespace hipmer::dbg {

struct ContigWireHeader {
  std::uint64_t id;
  float avg_depth;
  char left_term;
  char right_term;
  char left_has_junction;
  char right_has_junction;
  seq::KmerT left_junction;
  seq::KmerT right_junction;
};
static_assert(sizeof(ContigWireHeader) ==
                  16 + 2 * sizeof(seq::KmerT),
              "ContigWireHeader must have no padding: it ships verbatim");

// wire-schema: contig_record writer
inline void serialize_contig(std::vector<std::byte>& buf,
                             const Contig& contig) {
  io::wire::Writer w(buf);
  ContigWireHeader header{};
  header.id = contig.id;
  header.avg_depth = static_cast<float>(contig.avg_depth);
  header.left_term = contig.left.code;
  header.right_term = contig.right.code;
  header.left_has_junction = contig.left.has_junction ? 1 : 0;
  header.right_has_junction = contig.right.has_junction ? 1 : 0;
  header.left_junction = contig.left.junction;
  header.right_junction = contig.right.junction;
  w.put_pod(header);  // wire: pod ContigWireHeader
  w.put_bytes(contig.seq);
}

inline Contig contig_from_header(const ContigWireHeader& header,
                                 std::string seq) {
  Contig contig;
  contig.id = header.id;
  contig.avg_depth = header.avg_depth;
  contig.left.code = header.left_term;
  contig.right.code = header.right_term;
  contig.left.has_junction = header.left_has_junction != 0;
  contig.right.has_junction = header.right_has_junction != 0;
  contig.left.junction = header.left_junction;
  contig.right.junction = header.right_junction;
  contig.seq = std::move(seq);
  return contig;
}

/// Non-throwing single-record decoder for in-process streams (post-CRC
/// transport payloads); check r.truncated() after each call.
// wire-schema: contig_record reader trusted
inline Contig get_contig(io::wire::Reader& r) {
  const auto header = r.get_pod<ContigWireHeader>();
  return contig_from_header(header, r.get_bytes());
}

/// Throwing single-record decoder for disk/socket bytes. Wire booleans are
/// strict 0/1: a has_junction byte of, say, 2 decodes to the same contig a
/// 1 would, so accepting it would make that wire byte partially dead (the
/// corruption sweeps flag exactly this).
// wire-schema: contig_record reader
inline Contig get_contig_checked(io::wire::Reader& r) {
  const auto header = r.get_pod_checked<ContigWireHeader>("contig header");
  if (static_cast<unsigned char>(header.left_has_junction) > 1 ||
      static_cast<unsigned char>(header.right_has_junction) > 1)
    throw io::wire::CorruptError(
        "wire: corrupt: contig has_junction flag is neither 0 nor 1");
  return contig_from_header(header, r.get_bytes_checked("contig seq"));
}

inline std::vector<Contig> deserialize_contigs(
    const std::vector<std::byte>& buf) {
  std::vector<Contig> contigs;
  io::wire::Reader r(buf);
  while (!r.done()) {
    auto contig = get_contig(r);
    if (r.truncated()) break;  // partial trailing record: drop, don't misparse
    contigs.push_back(std::move(contig));
  }
  return contigs;
}

}  // namespace hipmer::dbg
