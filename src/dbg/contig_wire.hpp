#pragma once

#include <vector>

#include "dbg/contig.hpp"
#include "io/wire.hpp"

/// Flat serialization of contigs for alltoallv exchanges (used by the
/// traversal's deterministic renumbering and by ContigStore's
/// redistribution). Framing goes through the shared wire layer: a POD
/// header followed by the length-prefixed sequence.
namespace hipmer::dbg {

struct ContigWireHeader {
  std::uint64_t id;
  float avg_depth;
  char left_term;
  char right_term;
  char left_has_junction;
  char right_has_junction;
  seq::KmerT left_junction;
  seq::KmerT right_junction;
};

inline void serialize_contig(std::vector<std::byte>& buf,
                             const Contig& contig) {
  io::wire::Writer w(buf);
  ContigWireHeader header{};
  header.id = contig.id;
  header.avg_depth = static_cast<float>(contig.avg_depth);
  header.left_term = contig.left.code;
  header.right_term = contig.right.code;
  header.left_has_junction = contig.left.has_junction ? 1 : 0;
  header.right_has_junction = contig.right.has_junction ? 1 : 0;
  header.left_junction = contig.left.junction;
  header.right_junction = contig.right.junction;
  w.put_pod(header);
  w.put_bytes(contig.seq);
}

inline std::vector<Contig> deserialize_contigs(
    const std::vector<std::byte>& buf) {
  std::vector<Contig> contigs;
  io::wire::Reader r(buf);
  while (!r.done()) {
    const auto header = r.get_pod<ContigWireHeader>();
    Contig contig;
    contig.id = header.id;
    contig.avg_depth = header.avg_depth;
    contig.left.code = header.left_term;
    contig.right.code = header.right_term;
    contig.left.has_junction = header.left_has_junction != 0;
    contig.right.has_junction = header.right_has_junction != 0;
    contig.left.junction = header.left_junction;
    contig.right.junction = header.right_junction;
    contig.seq = r.get_bytes();
    if (r.truncated()) break;  // partial trailing record: drop, don't misparse
    contigs.push_back(std::move(contig));
  }
  return contigs;
}

}  // namespace hipmer::dbg
