#pragma once

#include <cstring>
#include <vector>

#include "dbg/contig.hpp"

/// Flat serialization of contigs for alltoallv exchanges (used by the
/// traversal's deterministic renumbering and by ContigStore's
/// redistribution).
namespace hipmer::dbg {

struct ContigWireHeader {
  std::uint64_t id;
  std::uint32_t seq_len;
  float avg_depth;
  char left_term;
  char right_term;
  char left_has_junction;
  char right_has_junction;
  seq::KmerT left_junction;
  seq::KmerT right_junction;
};

inline void serialize_contig(std::vector<std::byte>& buf,
                             const Contig& contig) {
  ContigWireHeader header{};
  header.id = contig.id;
  header.seq_len = static_cast<std::uint32_t>(contig.seq.size());
  header.avg_depth = static_cast<float>(contig.avg_depth);
  header.left_term = contig.left.code;
  header.right_term = contig.right.code;
  header.left_has_junction = contig.left.has_junction ? 1 : 0;
  header.right_has_junction = contig.right.has_junction ? 1 : 0;
  header.left_junction = contig.left.junction;
  header.right_junction = contig.right.junction;
  const std::size_t old = buf.size();
  buf.resize(old + sizeof header + contig.seq.size());
  std::memcpy(buf.data() + old, &header, sizeof header);
  std::memcpy(buf.data() + old + sizeof header, contig.seq.data(),
              contig.seq.size());
}

inline std::vector<Contig> deserialize_contigs(
    const std::vector<std::byte>& buf) {
  std::vector<Contig> contigs;
  std::size_t pos = 0;
  while (pos + sizeof(ContigWireHeader) <= buf.size()) {
    ContigWireHeader header;
    std::memcpy(&header, buf.data() + pos, sizeof header);
    pos += sizeof header;
    Contig contig;
    contig.id = header.id;
    contig.avg_depth = header.avg_depth;
    contig.left.code = header.left_term;
    contig.right.code = header.right_term;
    contig.left.has_junction = header.left_has_junction != 0;
    contig.right.has_junction = header.right_has_junction != 0;
    contig.left.junction = header.left_junction;
    contig.right.junction = header.right_junction;
    contig.seq.resize(header.seq_len);
    std::memcpy(contig.seq.data(), buf.data() + pos, header.seq_len);
    pos += header.seq_len;
    contigs.push_back(std::move(contig));
  }
  return contigs;
}

}  // namespace hipmer::dbg
