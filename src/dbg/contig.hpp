#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/types.hpp"

/// Contig record produced by de Bruijn graph traversal.
namespace hipmer::dbg {

/// Why a contig stopped growing at one end, and (for fork-adjacent ends)
/// the junction k-mer. The scaffolder's bubble identification (§4.2) keys
/// on these: the two haplotype paths of a diploid bubble record the same
/// junction k-mers at their ends.
struct TermInfo {
  /// 'F' — this end's own k-mer has multiple high-quality extensions;
  /// 'N' — the neighbor k-mer exists but does not extend back uniquely
  ///       (we stopped in front of a fork);
  /// 'X' — no high-quality extension / neighbor absent from the table;
  /// 'O' — traversal closed a cycle (circular chain);
  /// 'C' — ran into an already-completed contig (defensive; should not
  ///       occur for well-formed UU graphs).
  char code = 'X';
  /// Canonical junction k-mer for 'F' (the end k-mer itself) and 'N' (the
  /// fork neighbor). Meaningless otherwise.
  seq::KmerT junction;
  bool has_junction = false;
};

struct Contig {
  /// Globally unique id, assigned collectively after traversal.
  std::uint64_t id = 0;
  /// Sequence in canonical orientation (min of seq, revcomp(seq));
  /// termination infos are swapped accordingly so `left` always describes
  /// the stored orientation's left end.
  std::string seq;
  /// Mean k-mer depth along the contig (Σ k-mer counts / #k-mers) — the
  /// quantity §4.1 computes for scaffolding.
  double avg_depth = 0.0;
  TermInfo left;
  TermInfo right;

  [[nodiscard]] std::size_t size() const noexcept { return seq.size(); }
};

}  // namespace hipmer::dbg
