#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dbg/contig.hpp"
#include "dbg/oracle.hpp"
#include "kcount/kmer_tally.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/types.hpp"

/// Stage 2 of the pipeline: contig generation by parallel de Bruijn graph
/// traversal (§2 step 2, §3.2).
///
/// The graph is implicit: every reliable k-mer sits in a distributed hash
/// table with its two-letter extension code; neighbors are computed from
/// the key plus the code. Each rank seeds traversals from k-mers in its
/// *local* buckets ("if the processors select traversal seeds from local
/// buckets, they will be mostly performing local accesses ... when the
/// oracle partitioning is in effect") and grows a subcontig base by base in
/// both directions; every step is one lookup in the distributed table —
/// the O(G) communication the oracle partitioning attacks.
///
/// Race handling (the "lightweight synchronization scheme" of the SC'14
/// predecessor): a k-mer is claimed under its bucket lock with a globally
/// unique ticket. When two traversals collide, the one holding the
/// *higher* ticket aborts — it releases every k-mer it claimed and requeues
/// its seed — while the lower ticket spins until the contested k-mer frees
/// up. Ticket order makes the scheme livelock-free, and aborted regions are
/// always re-traversed by the winning ticket, so the resulting contig set
/// is exactly the set of maximal unbranched chains regardless of schedule
/// or rank count (tests assert this determinism).
namespace hipmer::dbg {

struct ContigGenConfig {
  int k = 31;
  /// Aggregating-stores batch for graph construction.
  std::size_t flush_threshold = 512;
  /// Drop contigs shorter than this many bases (0 keeps everything).
  std::size_t min_contig_len = 0;
};

class ContigGenerator {
 public:
  /// Traversal/claim state per k-mer, stored with the UFX data.
  struct Node {
    kcount::KmerSummary summary;
    std::uint8_t state = 0;  // 0 = unused, 1 = active, 2 = complete
    std::uint64_t ticket = 0;
  };
  using Map =
      pgas::DistHashMap<seq::KmerT, Node, seq::KmerHashT,
                        pgas::OverwriteMerge<Node>>;

  /// `expected_kmers` sizes the table (from k-mer analysis's cardinality /
  /// UFX counts).
  ContigGenerator(pgas::ThreadTeam& team, ContigGenConfig config,
                  std::size_t expected_kmers);
  ~ContigGenerator();

  /// Optional: route k-mers by an oracle partition instead of uniformly.
  /// Must be set before build_graph. The oracle must have been built for
  /// this team's topology.
  void set_oracle(const OraclePartition* oracle);

  /// Collective phase 1: insert this rank's UFX records into the graph.
  void build_graph(pgas::Rank& rank,
                   const std::vector<std::pair<seq::KmerT, kcount::KmerSummary>>&
                       local_ufx);

  /// Collective phase 2: traverse to produce contigs. May be called only
  /// once per build_graph.
  void traverse(pgas::Rank& rank);

  /// Contigs owned by `rank` after traverse (ids globally unique and
  /// contiguous across ranks).
  [[nodiscard]] const std::vector<Contig>& contigs(int rank) const {
    return contigs_[static_cast<std::size_t>(rank)];
  }

  /// Convenience: gather all contigs (driver-side, after the phase).
  [[nodiscard]] std::vector<Contig> all_contigs() const;

  /// Traversal lookup counts, classified by owner locality — the quantity
  /// Table 2 of the paper reports ("92.8% of the lookups result in
  /// off-node communication"). Counts only the hash-table lookups
  /// performed while exploring the graph (frontier reads and neighbor
  /// claims), not seed scans or completion marking.
  struct LookupStats {
    std::uint64_t local = 0;
    std::uint64_t onnode = 0;
    std::uint64_t offnode = 0;

    LookupStats& operator+=(const LookupStats& o) noexcept {
      local += o.local;
      onnode += o.onnode;
      offnode += o.offnode;
      return *this;
    }
    [[nodiscard]] std::uint64_t total() const noexcept {
      return local + onnode + offnode;
    }
    [[nodiscard]] double offnode_fraction() const noexcept {
      return total() == 0 ? 0.0
                          : static_cast<double>(offnode) /
                                static_cast<double>(total());
    }
  };

  [[nodiscard]] LookupStats lookup_stats(int rank) const {
    return lookups_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] LookupStats total_lookup_stats() const {
    LookupStats sum;
    for (const auto& s : lookups_) sum += s;
    return sum;
  }

  [[nodiscard]] const Map& graph() const { return *map_; }
  [[nodiscard]] Map& graph() { return *map_; }

 private:
  enum class ClaimOutcome {
    kClaimed,
    kBusyLower,   // held by a lower ticket -> abort self
    kBusyHigher,  // held by a higher ticket -> spin
    kSelf,        // own ticket -> cycle closed
    kComplete,
    kMismatch,  // extension not mutual (fork ahead)
    kAbsent,
  };

  struct ClaimResult {
    ClaimOutcome outcome;
    kcount::KmerSummary summary;  // valid when kClaimed
  };

  /// POD argument blocks for the registered RMWs (the claim protocol must
  /// execute on the k-mer's owner, which on a multi-process fabric is in
  /// another address space — closures cannot ship, PODs can).
  struct ClaimArgs {
    std::uint64_t ticket = 0;
    char expect_back = '\0';
    std::uint8_t flipped = 0;
    std::uint8_t back_is_left = 0;
  };
  struct SetStateArgs {
    std::uint8_t state = 0;
    std::uint64_t ticket = 0;
    std::uint64_t owner_ticket = 0;
  };

  /// Atomically (under the bucket lock) verify the mutual-extension
  /// condition and claim the k-mer for `ticket`. `expect_back` is the base
  /// the neighbor must extend back with ('\0' skips the check, used for
  /// seeds).
  ClaimResult try_claim(pgas::Rank& rank, const seq::KmerT& fwd,
                        std::uint64_t ticket, char expect_back,
                        bool back_is_left);

  /// Walk a completed/aborted subcontig and transition every k-mer still
  /// held by `owner_ticket` to (`state`, `ticket`).
  void set_states(pgas::Rank& rank, const std::string& subcontig,
                  std::uint8_t state, std::uint64_t ticket,
                  std::uint64_t owner_ticket);

  enum class GrowResult { kOk, kAbort };
  /// Extend `subcontig` rightward (toward higher indices) until
  /// termination or conflict-abort. On success fills `term`. Lookups are
  /// tallied into `scratch`; the caller commits them only for completed
  /// traversals so the Table-2 locality metric reflects the algorithm, not
  /// scheduler-dependent abort/retry re-execution (whose cost still shows
  /// in the comm counters / machine model).
  GrowResult grow_right(pgas::Rank& rank, std::string& subcontig,
                        std::uint64_t ticket, TermInfo& term,
                        double& depth_sum, std::size_t& kmer_count,
                        LookupStats& scratch);

  /// Record one traversal lookup against `key`'s owner into `scratch`.
  void count_lookup(pgas::Rank& rank, const seq::KmerT& canon,
                    LookupStats& scratch);

  pgas::ThreadTeam& team_;
  ContigGenConfig config_;
  std::unique_ptr<Map> map_;
  Map::RmwId claim_rmw_ = 0;
  Map::RmwId set_state_rmw_ = 0;
  Map::RmwId read_summary_rmw_ = 0;
  const OraclePartition* oracle_ = nullptr;
  std::vector<std::vector<Contig>> contigs_;
  std::vector<LookupStats> lookups_;
};

}  // namespace hipmer::dbg
