#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgas/topology.hpp"

/// Oracle partitioning for communication-avoiding traversal (§3.2).
///
/// The traversal's communication problem: extending a contig by one base
/// requires a hash-table lookup that lands on a random rank, so a genome of
/// size G costs O(G) messages. The oracle exploits *genetic similarity*:
/// once contigs are known for one individual (or one k), k-mers of the same
/// contig can be co-located, making subsequent traversals (of another
/// individual of the same species, or another k) almost communication-free.
///
/// Construction is the paper's offline algorithm, verbatim:
///   1. iterate over contigs, assigning each a rank id cyclically (load
///      balance);
///   2. for every k-mer of every contig, store that rank id at position
///      `uniform_hash(kmer) % slots` of a flat vector. A collision (slot
///      already written by a different contig's k-mer) leaves the earlier
///      entry in place — that k-mer will live on a "wrong" rank and cost a
///      communication event during traversal. More slots (memory) buy fewer
///      collisions: the memory/communication trade-off of Table 1's
///      "oracle-1" vs "oracle-4".
///
/// Lookup composes with DistHashMap's `RankMapper` hook: the bucket index
/// inside the shard still comes from the uniform hash, so bucket occupancy
/// stays uniform — only the *owner* changes, exactly as described in the
/// paper ("the return value of oracle_hash(A) is adjusted such that it is
/// mapped at location b of processor pi").
///
/// Node mode ("a refinement for practical considerations, e.g. SMP
/// clusters"): slots store node ids, and a k-mer may land on any rank of
/// the right node — converting off-node traffic to on-node without
/// requiring per-rank precision.
namespace hipmer::dbg {

class OraclePartition {
 public:
  enum class Granularity { kRank, kNode };

  /// Build from a contig set for a machine of `topo`. `slots` trades memory
  /// for collision rate; a good default is `factor * total_kmers`.
  static OraclePartition build(const std::vector<std::string>& contigs, int k,
                               const pgas::Topology& topo, std::size_t slots,
                               Granularity granularity = Granularity::kRank);

  /// Owner rank for a k-mer hash. Unset slots (k-mers never seen during
  /// construction, e.g. variants private to the new individual) fall back
  /// to the uniform mapping.
  [[nodiscard]] std::uint32_t rank_of(std::uint64_t hash) const noexcept {
    const std::uint32_t v = slots_[hash % slots_.size()];
    if (v == kEmpty)
      return static_cast<std::uint32_t>(hash % static_cast<std::uint64_t>(topo_.nranks));
    if (granularity_ == Granularity::kNode) {
      const auto rpn = static_cast<std::uint64_t>(topo_.ranks_per_node);
      const std::uint64_t base = static_cast<std::uint64_t>(v) * rpn;
      std::uint64_t rank = base + hash % rpn;
      if (rank >= static_cast<std::uint64_t>(topo_.nranks))
        rank = static_cast<std::uint64_t>(topo_.nranks) - 1;
      return static_cast<std::uint32_t>(rank);
    }
    return v;
  }

  /// Fraction of k-mer insertions that hit an occupied slot — "the number
  /// of collisions ... is approximately the number of communication events
  /// that will be incurred during the traversal".
  [[nodiscard]] double collision_rate() const noexcept { return collision_rate_; }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t num_slots() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  OraclePartition(pgas::Topology topo, Granularity granularity)
      : topo_(topo), granularity_(granularity) {}

  pgas::Topology topo_;
  Granularity granularity_;
  std::vector<std::uint32_t> slots_;
  double collision_rate_ = 0.0;
};

}  // namespace hipmer::dbg
