#include "dbg/contig_generator.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <thread>

#include "dbg/contig_wire.hpp"
#include "seq/dna.hpp"
#include "seq/kmer_scanner.hpp"
#include "util/hash.hpp"

namespace hipmer::dbg {

using seq::KmerT;

ContigGenerator::ContigGenerator(pgas::ThreadTeam& team, ContigGenConfig config,
                                 std::size_t expected_kmers)
    : team_(team),
      config_(config),
      contigs_(static_cast<std::size_t>(team.nranks())),
      lookups_(static_cast<std::size_t>(team.nranks())) {
  assert(config_.k % 2 == 1 &&
         "k must be odd so no k-mer equals its reverse complement");
  Map::Config mc;
  mc.global_capacity = std::max<std::size_t>(1024, expected_kmers);
  mc.flush_threshold = config_.flush_threshold;
  map_ = std::make_unique<Map>(team, mc);
  map_->set_name("dbg.graph");
  claim_rmw_ = map_->register_rmw<ClaimArgs, ClaimResult>(
      [](Node& node, const ClaimArgs& a) -> ClaimResult {
        // Mutual-extension check *before* claiming: stepping into a k-mer
        // is only legal if it extends back to us with a unique high-quality
        // base; otherwise we are standing in front of a fork and the contig
        // ends here (without disturbing the neighbor's state).
        if (a.expect_back != '\0') {
          auto pair = node.summary.ext();
          if (a.flipped != 0) pair = seq::flip(pair);
          const char back = a.back_is_left != 0 ? pair.left : pair.right;
          if (back != a.expect_back)
            return ClaimResult{ClaimOutcome::kMismatch, {}};
        }
        if (node.state == 2) return ClaimResult{ClaimOutcome::kComplete, {}};
        if (node.state == 1) {
          if (node.ticket == a.ticket)
            return ClaimResult{ClaimOutcome::kSelf, {}};
          return ClaimResult{node.ticket < a.ticket ? ClaimOutcome::kBusyLower
                                                    : ClaimOutcome::kBusyHigher,
                             {}};
        }
        node.state = 1;
        node.ticket = a.ticket;
        return ClaimResult{ClaimOutcome::kClaimed, node.summary};
      });
  set_state_rmw_ = map_->register_rmw<SetStateArgs, std::uint8_t>(
      [](Node& node, const SetStateArgs& a) -> std::uint8_t {
        // Only touch k-mers still held by the expected ticket: during an
        // abort, a spinning winner may already have re-claimed released
        // k-mers, and clobbering its claim would corrupt both traversals.
        if (node.state == 1 && node.ticket == a.owner_ticket) {
          node.state = a.state;
          node.ticket = a.ticket;
        }
        return 0;
      });
  read_summary_rmw_ = map_->register_rmw<std::uint8_t, kcount::KmerSummary>(
      [](Node& node, const std::uint8_t&) { return node.summary; });
}

ContigGenerator::~ContigGenerator() = default;

void ContigGenerator::set_oracle(const OraclePartition* oracle) {
  oracle_ = oracle;
  if (oracle_ != nullptr) {
    map_->set_rank_mapper(
        [oracle](std::uint64_t h) { return oracle->rank_of(h); });
  }
}

void ContigGenerator::build_graph(
    pgas::Rank& rank,
    const std::vector<std::pair<KmerT, kcount::KmerSummary>>& local_ufx) {
  for (const auto& [kmer, summary] : local_ufx) {
    Node node;
    node.summary = summary;
    map_->update_buffered(rank, kmer, node);
    rank.stats().add_work();
  }
  map_->flush(rank);
  rank.barrier();
}

void ContigGenerator::count_lookup(pgas::Rank& rank, const KmerT& canon,
                                   LookupStats& scratch) {
  const auto owner = static_cast<int>(map_->owner_of(canon));
  if (owner == rank.id()) {
    ++scratch.local;
  } else if (rank.topology().same_node(owner, rank.id())) {
    ++scratch.onnode;
  } else {
    ++scratch.offnode;
  }
}

ContigGenerator::ClaimResult ContigGenerator::try_claim(pgas::Rank& rank,
                                                        const KmerT& fwd,
                                                        std::uint64_t ticket,
                                                        char expect_back,
                                                        bool back_is_left) {
  const bool flipped = !fwd.is_canonical();
  const KmerT canon = flipped ? fwd.revcomp() : fwd;
  ClaimArgs args;
  args.ticket = ticket;
  args.expect_back = expect_back;
  args.flipped = flipped ? 1 : 0;
  args.back_is_left = back_is_left ? 1 : 0;
  auto result = map_->rmw<ClaimResult>(rank, canon, claim_rmw_, args);
  if (!result.has_value()) return ClaimResult{ClaimOutcome::kAbsent, {}};
  return *result;
}

void ContigGenerator::set_states(pgas::Rank& rank, const std::string& subcontig,
                                 std::uint8_t state, std::uint64_t ticket,
                                 std::uint64_t owner_ticket) {
  SetStateArgs args;
  args.state = state;
  args.ticket = ticket;
  args.owner_ticket = owner_ticket;
  for (seq::KmerScanner<KmerT::kMaxK> it(subcontig, config_.k); !it.done();
       it.next()) {
    map_->rmw<std::uint8_t>(rank, it.canonical(), set_state_rmw_, args);
  }
}

ContigGenerator::GrowResult ContigGenerator::grow_right(
    pgas::Rank& rank, std::string& subcontig, std::uint64_t ticket,
    TermInfo& term, double& depth_sum, std::size_t& kmer_count,
    LookupStats& scratch) {
  // Current frontier k-mer (forward frame of the subcontig) + its summary.
  KmerT cur = KmerT::from_string(
      std::string_view(subcontig).substr(subcontig.size() - static_cast<std::size_t>(config_.k)));
  const bool cur_flipped = !cur.is_canonical();
  const KmerT cur_canon = cur_flipped ? cur.revcomp() : cur;
  count_lookup(rank, cur_canon, scratch);
  auto cur_summary_opt = map_->rmw<kcount::KmerSummary>(
      rank, cur_canon, read_summary_rmw_, std::uint8_t{0});
  assert(cur_summary_opt.has_value() && "frontier k-mer must be claimed");
  kcount::KmerSummary cur_summary = *cur_summary_opt;

  while (true) {
    auto pair = cur_summary.ext();
    if (!cur.is_canonical()) pair = seq::flip(pair);
    const char e = pair.right;
    if (e == seq::kExtFork) {
      term.code = 'F';
      term.junction = cur.canonical();
      term.has_junction = true;
      return GrowResult::kOk;
    }
    if (e == seq::kExtNone) {
      term.code = 'X';
      term.has_junction = false;
      return GrowResult::kOk;
    }

    const KmerT next = cur.shifted_left(seq::base_to_code(e));
    const char expect_back = seq::code_to_base(cur.first_base());
    const KmerT next_canon = next.canonical();
    // One logical lookup per neighbor exploration: spin retries while a
    // conflicting traversal resolves are not additional Table-2 lookups.
    count_lookup(rank, next_canon, scratch);
    while (true) {
      const ClaimResult res =
          try_claim(rank, next, ticket, expect_back, /*back_is_left=*/true);
      rank.stats().add_work();
      switch (res.outcome) {
        case ClaimOutcome::kClaimed:
          subcontig.push_back(e);
          cur = next;
          cur_summary = res.summary;
          depth_sum += res.summary.depth;
          ++kmer_count;
          break;  // out of claim-retry loop, continue growing
        case ClaimOutcome::kMismatch:
          term.code = 'N';
          term.junction = next.canonical();
          term.has_junction = true;
          return GrowResult::kOk;
        case ClaimOutcome::kAbsent:
          term.code = 'X';
          term.has_junction = false;
          return GrowResult::kOk;
        case ClaimOutcome::kSelf:
          term.code = 'O';
          term.has_junction = false;
          return GrowResult::kOk;
        case ClaimOutcome::kComplete:
          // Defensive: a completed contig we extend into cleanly should be
          // unreachable (see header); terminate rather than corrupt it.
          term.code = 'C';
          term.junction = next.canonical();
          term.has_junction = true;
          return GrowResult::kOk;
        case ClaimOutcome::kBusyLower:
          return GrowResult::kAbort;
        case ClaimOutcome::kBusyHigher:
          // The higher ticket will abort when it meets us (ticket order);
          // yield until the k-mer frees up.
          rank.progress();
          std::this_thread::yield();
          continue;
      }
      break;
    }
  }
}

void ContigGenerator::traverse(pgas::Rank& rank) {
  // Seeds: every k-mer in this rank's local buckets. Collect first —
  // claiming inside for_each_local would self-deadlock on bucket locks.
  //
  // Locality-aware schedule: seeds whose graph neighbors also live on this
  // rank grow first; seeds that would immediately extend onto another rank
  // are deferred. Under oracle partitioning a contig's k-mers share one
  // rank, so "remote-extending" seeds are precisely the misplaced ones
  // (hash collisions in the oracle vector, private variants): growing them
  // eagerly would walk whole contigs through remote memory, while after
  // deferral the home rank has usually completed the contig and the seed
  // resolves with a single lookup.
  std::vector<KmerT> seeds;
  std::vector<KmerT> deferred;
  lookups_[static_cast<std::size_t>(rank.id())] = LookupStats{};
  seeds.reserve(map_->local_size(rank.id()));
  const auto me = static_cast<std::uint32_t>(rank.id());
  map_->for_each_local(rank, [&](const KmerT& km, Node& node) {
    // Local-extending iff *every* base-extension neighbor also lives here
    // (a misplaced k-mer adjacent to another misplaced k-mer would
    // otherwise start a remote walk in the eager phase).
    const auto ext = node.summary.ext();
    bool all_local = true;
    if (seq::is_base_ext(ext.right)) {
      const KmerT next = km.shifted_left(seq::base_to_code(ext.right));
      all_local &= map_->owner_of(next.canonical()) == me;
    }
    if (all_local && seq::is_base_ext(ext.left)) {
      const KmerT prev = km.shifted_right(seq::base_to_code(ext.left));
      all_local &= map_->owner_of(prev.canonical()) == me;
    }
    if (all_local) {
      seeds.push_back(km);
    } else {
      deferred.push_back(km);
    }
  });

  auto& my_contigs = contigs_[static_cast<std::size_t>(rank.id())];
  my_contigs.clear();

  std::uint64_t counter = 0;
  // Deferred (remote-extending) seeds draw tickets from a high band: if one
  // does start a traversal through another rank's territory, it loses every
  // conflict against a home traversal instead of sometimes walking a whole
  // contig through remote memory. Ticket order stays globally unique.
  constexpr std::uint64_t kDeferredBand = std::uint64_t{1} << 48;
  auto next_ticket = [&](bool is_deferred) {
    // Globally unique, nonzero, interleaved across ranks so no rank's
    // traversals systematically dominate conflict resolution.
    return (is_deferred ? kDeferredBand : 0) +
           ++counter * static_cast<std::uint64_t>(rank.nranks()) +
           static_cast<std::uint64_t>(rank.id()) + 1;
  };

  struct Seed {
    KmerT kmer;
    bool is_deferred;
  };
  std::deque<Seed> pending;
  for (const auto& km : seeds) pending.push_back(Seed{km, false});
  // Two-phase schedule: every rank drains its local-extending seeds, then a
  // barrier, then the deferred seeds. By phase 2 nearly every contig is
  // COMPLETE, so a deferred seed usually resolves with a single lookup
  // instead of racing a home traversal for a whole remote walk (which would
  // also make the Table-2 lookup counts schedule-dependent).
  bool deferred_enqueued = false;
  // The claim/abort walk is mixed-phase *by protocol*: fine-grained RMW
  // claims (try_claim/set_states) interleave with the batched deferred-seed
  // pre-screen inside a single epoch, on every rank at once. It is correct
  // because each node's claim state arbitrates access — a traversal only
  // reads k-mers it has claimed, aborts revert only ACTIVE claims, and
  // COMPLETE is final — so the bulk-synchronous WRITE/READ alternation the
  // checker enforces elsewhere does not apply inside this scope (UPC's
  // "relaxed" mode). The scope runs to the end of traverse(); the claim
  // protocol ends at the barrier below and the renumbering that follows
  // never touches the table.
  pgas::RelaxedPhase relaxed_claims(rank, *map_);
  while (!pending.empty() || !deferred_enqueued) {
    if (pending.empty()) {
      rank.barrier();
      // Batched pre-screen (aggregated lookup path): most deferred seeds
      // sit inside contigs their home rank completed during phase 1, so
      // one aggregated read per owner replaces a fine-grained claim per
      // seed. A seed observed COMPLETE stays complete (completion is
      // final; aborts only revert ACTIVE claims), so skipping it is
      // exactly what the claim path would have done — any seed observed
      // otherwise falls through to the normal claim protocol.
      std::vector<char> complete(deferred.size(), 0);
      auto screen = [&](const KmerT&, const Node* node, std::uint64_t tag) {
        if (node != nullptr && node->state == 2)
          complete[static_cast<std::size_t>(tag)] = 1;
      };
      for (std::size_t i = 0; i < deferred.size(); ++i)
        map_->find_buffered(rank, deferred[i], i, screen);
      map_->process_lookups(rank, screen);
      for (std::size_t i = 0; i < deferred.size(); ++i)
        if (complete[i] == 0) pending.push_back(Seed{deferred[i], true});
      deferred_enqueued = true;
      if (pending.empty()) break;
      continue;
    }
    const Seed seed_entry = pending.front();
    const KmerT seed = seed_entry.kmer;
    pending.pop_front();
    const std::uint64_t ticket = next_ticket(seed_entry.is_deferred);

    const ClaimResult sres = try_claim(rank, seed, ticket, '\0', true);
    rank.stats().add_work();
    if (sres.outcome == ClaimOutcome::kComplete ||
        sres.outcome == ClaimOutcome::kAbsent) {
      continue;  // already part of a finished contig
    }
    if (sres.outcome != ClaimOutcome::kClaimed) {
      pending.push_back(seed_entry);  // someone is actively working here
      rank.progress();
      std::this_thread::yield();
      continue;
    }

    std::string sub = seed.to_string();
    double depth_sum = sres.summary.depth;
    std::size_t kmer_count = 1;
    LookupStats scratch;
    TermInfo term_a;  // right end of the initial orientation
    if (grow_right(rank, sub, ticket, term_a, depth_sum, kmer_count,
                   scratch) == GrowResult::kAbort) {
      set_states(rank, sub, 0, 0, ticket);
      pending.push_back(seed_entry);
      rank.progress();
      std::this_thread::yield();
      continue;
    }
    // Grow the other direction by flipping the frame: extending revcomp(s)
    // rightward is extending s leftward.
    sub = seq::revcomp(sub);
    TermInfo term_b;  // right end of the flipped frame = left end of s
    if (grow_right(rank, sub, ticket, term_b, depth_sum, kmer_count,
                   scratch) == GrowResult::kAbort) {
      set_states(rank, sub, 0, 0, ticket);
      pending.push_back(seed_entry);
      rank.progress();
      std::this_thread::yield();
      continue;
    }
    lookups_[static_cast<std::size_t>(rank.id())] += scratch;

    set_states(rank, sub, 2, ticket, ticket);
    if (sub.size() < config_.min_contig_len) continue;

    Contig contig;
    contig.avg_depth = depth_sum / static_cast<double>(kmer_count);
    // `sub` currently: right end grown by phase B (term_b), left end is
    // phase A's end (term_a). Canonicalize the stored orientation.
    std::string rc = seq::revcomp(sub);
    if (rc < sub) {
      contig.seq = std::move(rc);
      contig.left = term_b;
      contig.right = term_a;
    } else {
      contig.seq = std::move(sub);
      contig.left = term_a;
      contig.right = term_b;
    }
    my_contigs.push_back(std::move(contig));
  }
  rank.barrier();

  // Deterministic renumbering: which rank completed which contig depends on
  // scheduling, but downstream modules tie-break on contig ids, so ids must
  // be a pure function of the contig *set*. Redistribute each contig to
  // rank hash(seq) % P, sort within the rank by (hash, seq), and assign
  // dense ids by exclusive scan — identical for every schedule and every
  // rank count.
  {
    std::vector<std::vector<std::byte>> outgoing(
        static_cast<std::size_t>(rank.nranks()));
    for (const auto& contig : my_contigs) {
      const auto h = util::hash_string(contig.seq);
      // Range partition on the hash (not modulo): the concatenation of the
      // per-rank sorted shards is then globally sorted by (hash, seq), so
      // the assigned ids do not depend on the rank count.
      const auto owner = static_cast<std::size_t>(
          (static_cast<unsigned __int128>(h) *
           static_cast<unsigned __int128>(rank.nranks())) >>
          64);
      serialize_contig(outgoing[owner], contig);
      rank.stats().add_work();
    }
    my_contigs = deserialize_contigs(rank.alltoallv(outgoing));
    std::sort(my_contigs.begin(), my_contigs.end(),
              [](const Contig& a, const Contig& b) {
                const auto ha = util::hash_string(a.seq);
                const auto hb = util::hash_string(b.seq);
                if (ha != hb) return ha < hb;
                return a.seq < b.seq;
              });
  }
  const auto base = rank.exscan_sum<std::uint64_t>(my_contigs.size());
  for (std::size_t i = 0; i < my_contigs.size(); ++i)
    my_contigs[i].id = base + i;
  rank.barrier();
}

std::vector<Contig> ContigGenerator::all_contigs() const {
  std::vector<Contig> all;
  for (const auto& per_rank : contigs_)
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  std::sort(all.begin(), all.end(),
            [](const Contig& a, const Contig& b) { return a.id < b.id; });
  return all;
}

}  // namespace hipmer::dbg
