#include "dbg/oracle.hpp"

#include <cassert>

#include "seq/kmer_scanner.hpp"
#include "seq/types.hpp"

namespace hipmer::dbg {

OraclePartition OraclePartition::build(const std::vector<std::string>& contigs,
                                       int k, const pgas::Topology& topo,
                                       std::size_t slots,
                                       Granularity granularity) {
  assert(slots > 0 && topo.valid());
  OraclePartition oracle(topo, granularity);
  oracle.slots_.assign(slots, kEmpty);

  const int targets = granularity == Granularity::kRank
                          ? topo.nranks
                          : topo.num_nodes();
  std::uint64_t total = 0;
  std::uint64_t collisions = 0;

  // Step 1: cyclic contig -> target assignment. Step 2: first-writer-wins
  // slot fill; an occupied slot is a collision (that k-mer will be looked
  // up on the "wrong" rank during traversal).
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    const auto target =
        static_cast<std::uint32_t>(c % static_cast<std::size_t>(targets));
    for (seq::KmerScanner<seq::KmerT::kMaxK> it(contigs[c], k); !it.done();
         it.next()) {
      const std::uint64_t h = it.canonical().hash();
      auto& slot = oracle.slots_[h % slots];
      ++total;
      if (slot == kEmpty) {
        slot = target;
      } else if (slot != target) {
        // Occupied by another contig's k-mer mapping elsewhere: this k-mer
        // will be resolved to the wrong rank, i.e. one traversal-time
        // communication event.
        ++collisions;
      }
    }
  }
  oracle.collision_rate_ =
      total == 0 ? 0.0
                 : static_cast<double>(collisions) / static_cast<double>(total);
  return oracle;
}

}  // namespace hipmer::dbg
