#pragma once

#include "seq/kmer.hpp"

/// Project-wide k-mer instantiation.
///
/// MAX_K = 64 covers the paper's k=51 wheat runs (two 64-bit words) and
/// leaves headroom for the gap closer's iteratively increasing k (§4.8).
namespace hipmer::seq {

using KmerT = Kmer<64>;
using KmerHashT = KmerHash<64>;

}  // namespace hipmer::seq
