#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"
#include "seq/read.hpp"

/// Packed resident read storage (MetaHipMer-style, §2 of the follow-on
/// papers): bases live 2-bit-packed in a shared u64 arena, qualities take
/// the smallest of four lossless encodings (run-length, 4-bit band, band
/// plus sparse outliers, verbatim; see `encode_quals`), and names sit in one char arena behind offset
/// arrays. Compared to `std::vector<seq::Read>` — three heap strings per
/// record — this removes per-record allocations entirely and cuts resident
/// bytes severalfold (measured in bench/reads_memory).
///
/// Bit layout matches `Kmer<MAX_K>` exactly: base i of a sequence lives in
/// word i/32 at bit offset 62 - 2*(i%32) (MSB-first), so `KmerScanner` and
/// the word kernels can consume the packed words directly without decoding
/// to chars. Each read's words start word-aligned in the arena.
///
/// Characters outside uppercase ACGT (Ns, lowercase, anything else) are
/// carried in a per-read sorted exception list of (position, original
/// char); the packed word holds a placeholder 2-bit code there. Decode is
/// therefore byte-exact for arbitrary input, which the assembly-output
/// byte-identity guarantee between the string and packed paths relies on.
namespace hipmer::seq {

/// Non-owning view of one packed sequence: the word slice plus the
/// exception list. POD pointers only — cheap to copy into scanners.
struct PackedSeqView {
  const std::uint64_t* words = nullptr;
  std::uint32_t length = 0;
  /// Sorted positions whose true character is not an uppercase ACGT base.
  const std::uint32_t* except_pos = nullptr;
  const char* except_chr = nullptr;
  std::uint32_t except_count = 0;

  /// 2-bit code stored in the packed words at position i (a placeholder at
  /// exception positions). Same bit layout as Kmer<MAX_K>::base().
  [[nodiscard]] std::uint8_t word_code(std::uint32_t i) const noexcept {
    return static_cast<std::uint8_t>(
        (words[i >> 5] >> (62 - 2 * (i & 31))) & 3);
  }

  /// Index into the exception list for position i, or except_count.
  [[nodiscard]] std::uint32_t find_exception(std::uint32_t i) const noexcept {
    const auto* end = except_pos + except_count;
    const auto* it = std::lower_bound(except_pos, end, i);
    if (it != end && *it == i)
      return static_cast<std::uint32_t>(it - except_pos);
    return except_count;
  }

  /// Base-code of position i as `base_to_code` would report it on the
  /// original string (kBaseInvalid for Ns and other non-DNA characters).
  [[nodiscard]] std::uint8_t code(std::uint32_t i) const noexcept {
    const auto e = find_exception(i);
    return e == except_count ? word_code(i) : base_to_code(except_chr[e]);
  }

  /// Exact original character at position i.
  [[nodiscard]] char base(std::uint32_t i) const noexcept {
    const auto e = find_exception(i);
    return e == except_count ? code_to_base(word_code(i)) : except_chr[e];
  }
};

/// Decode a packed sequence into `out` (assigned), byte-exact.
inline void decode_packed_seq(const PackedSeqView& v, std::string& out) {
  out.resize(v.length);
  for (std::uint32_t i = 0; i < v.length; ++i)
    out[i] = code_to_base(v.word_code(i));
  for (std::uint32_t e = 0; e < v.except_count; ++e)
    out[v.except_pos[e]] = v.except_chr[e];
}

/// Quality codec modes: the first byte of each read's encoding picks how
/// the rest decodes. An empty quality string encodes to zero bytes.
enum : std::uint8_t {
  /// (char, run) byte pairs, runs capped at 255. Wins on bursty /
  /// quantized qualities (platforms that bin scores into a few values).
  kQualModeRle = 1,
  /// [min char][4-bit offsets packed two per byte, high nibble first].
  /// Valid whenever max-min <= 15; wins on high-entropy qualities whose
  /// values sit in a narrow band, where RLE would *expand* the string.
  kQualModeBand = 2,
  /// Raw characters; the fallback that bounds worst-case size at n+1.
  kQualModeVerbatim = 3,
  /// [min char][u16 outlier count, LE][outliers: (u16 pos LE, char)...]
  /// [4-bit offsets packed two per byte, high nibble first]. The band is
  /// the 16-value window covering the most positions; characters outside
  /// it ride in the sparse outlier table and their nibble is a
  /// placeholder. Wins on Illumina-like profiles where a handful of '#'
  /// floor scores (N positions) would otherwise push max-min past 15 and
  /// force verbatim. Only eligible for reads shorter than 64Ki.
  kQualModeBandOutlier = 4,
};

/// Append the smallest of the four lossless encodings of `quals` to
/// `arena`, prefixed with its mode byte.
inline void encode_quals(std::string_view quals,
                         std::vector<std::uint8_t>& arena) {
  if (quals.empty()) return;
  // Cost the candidates in one scan (plus a 256-bin histogram for the
  // band-plus-outlier window search).
  std::size_t runs = 0;
  unsigned char lo = static_cast<unsigned char>(quals[0]);
  unsigned char hi = lo;
  std::uint32_t hist[256] = {};
  for (std::size_t i = 0; i < quals.size();) {
    const char c = quals[i];
    const auto u = static_cast<unsigned char>(c);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    std::size_t run = 1;
    while (i + run < quals.size() && run < 255 && quals[i + run] == c) ++run;
    hist[u] += static_cast<std::uint32_t>(run);
    ++runs;
    i += run;
  }
  const std::size_t rle_cost = 2 * runs;
  const std::size_t band_cost = static_cast<std::size_t>(hi - lo) <= 15
                                    ? 1 + (quals.size() + 1) / 2
                                    : std::numeric_limits<std::size_t>::max();
  const std::size_t verbatim_cost = quals.size();

  // Best 16-value window: slide over the occupied range, maximizing
  // covered positions; everything outside becomes an outlier entry.
  std::size_t outlier_cost = std::numeric_limits<std::size_t>::max();
  unsigned char outlier_base = lo;
  if (quals.size() <= 0xFFFF && static_cast<std::size_t>(hi - lo) > 15) {
    std::uint32_t window = 0;
    std::uint32_t best = 0;
    unsigned char best_base = lo;
    for (unsigned b = lo; b <= hi; ++b) {
      window += hist[b];
      if (b >= static_cast<unsigned>(lo) + 16) window -= hist[b - 16];
      const unsigned base = b >= 15 ? b - 15 : 0;
      if (window > best) {
        best = window;
        best_base = static_cast<unsigned char>(std::max<unsigned>(base, lo));
      }
    }
    const std::size_t k = quals.size() - best;
    outlier_cost = 3 + 3 * k + (quals.size() + 1) / 2;
    outlier_base = best_base;
  }

  // Band-plus-outlier only on a strict win, so inputs the three original
  // modes already handled keep their exact historical encodings.
  if (outlier_cost < rle_cost && outlier_cost < band_cost &&
      outlier_cost < verbatim_cost) {
    arena.push_back(kQualModeBandOutlier);
    arena.push_back(outlier_base);
    // Count first, entries after: decode needs the table length before the
    // nibble stream starts.
    std::size_t k = 0;
    for (std::size_t i = 0; i < quals.size(); ++i) {
      const auto u = static_cast<unsigned char>(quals[i]);
      if (u < outlier_base || u > outlier_base + 15) ++k;
    }
    arena.push_back(static_cast<std::uint8_t>(k & 0xFF));
    arena.push_back(static_cast<std::uint8_t>(k >> 8));
    for (std::size_t i = 0; i < quals.size(); ++i) {
      const auto u = static_cast<unsigned char>(quals[i]);
      if (u < outlier_base || u > outlier_base + 15) {
        arena.push_back(static_cast<std::uint8_t>(i & 0xFF));
        arena.push_back(static_cast<std::uint8_t>(i >> 8));
        arena.push_back(u);
      }
    }
    std::uint8_t pending = 0;
    for (std::size_t i = 0; i < quals.size(); ++i) {
      const auto u = static_cast<unsigned char>(quals[i]);
      const bool in_band = u >= outlier_base && u <= outlier_base + 15;
      const auto nib =
          in_band ? static_cast<std::uint8_t>(u - outlier_base) : std::uint8_t{0};
      if (i % 2 == 0) {
        pending = static_cast<std::uint8_t>(nib << 4);
      } else {
        arena.push_back(static_cast<std::uint8_t>(pending | nib));
      }
    }
    if (quals.size() % 2 != 0) arena.push_back(pending);
  } else if (rle_cost <= band_cost && rle_cost <= verbatim_cost) {
    arena.push_back(kQualModeRle);
    for (std::size_t i = 0; i < quals.size();) {
      const char c = quals[i];
      std::size_t run = 1;
      while (i + run < quals.size() && run < 255 && quals[i + run] == c) ++run;
      arena.push_back(static_cast<std::uint8_t>(c));
      arena.push_back(static_cast<std::uint8_t>(run));
      i += run;
    }
  } else if (band_cost <= verbatim_cost) {
    arena.push_back(kQualModeBand);
    arena.push_back(lo);
    std::uint8_t pending = 0;
    for (std::size_t i = 0; i < quals.size(); ++i) {
      const auto nib =
          static_cast<std::uint8_t>(static_cast<unsigned char>(quals[i]) - lo);
      if (i % 2 == 0) {
        pending = static_cast<std::uint8_t>(nib << 4);
      } else {
        arena.push_back(static_cast<std::uint8_t>(pending | nib));
      }
    }
    if (quals.size() % 2 != 0) arena.push_back(pending);
  } else {
    arena.push_back(kQualModeVerbatim);
    arena.insert(arena.end(), quals.begin(), quals.end());
  }
}

/// Decode `enc_len` bytes produced by `encode_quals` into `out`
/// (assigned). `n` is the read length (the band mode's nibble stream does
/// not self-describe whether the final nibble is padding).
inline void decode_quals(const std::uint8_t* enc, std::size_t enc_len,
                         std::size_t n, std::string& out) {
  out.clear();
  if (enc_len == 0) return;
  const std::uint8_t* p = enc + 1;
  const std::size_t len = enc_len - 1;
  switch (enc[0]) {
    case kQualModeRle:
      for (std::size_t i = 0; i + 1 < len; i += 2)
        out.append(p[i + 1], static_cast<char>(p[i]));
      break;
    case kQualModeBand: {
      if (len == 0) return;
      const auto base = p[0];
      // Clamp to what the payload can actually hold so a corrupt header
      // cannot walk off the arena.
      const std::size_t m = std::min(n, 2 * (len - 1));
      out.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t byte = p[1 + i / 2];
        const std::uint8_t nib = i % 2 == 0 ? byte >> 4 : byte & 0xF;
        out[i] = static_cast<char>(base + nib);
      }
      break;
    }
    case kQualModeVerbatim:
      out.assign(reinterpret_cast<const char*>(p), len);
      break;
    case kQualModeBandOutlier: {
      if (len < 3) return;
      const auto base = p[0];
      const std::size_t k =
          static_cast<std::size_t>(p[1]) | (static_cast<std::size_t>(p[2]) << 8);
      const std::size_t table = 3 * k;
      if (len < 3 + table) return;  // corrupt header: table past the arena
      const std::uint8_t* nibbles = p + 3 + table;
      const std::size_t m = std::min(n, 2 * (len - 3 - table));
      out.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t byte = nibbles[i / 2];
        const std::uint8_t nib = i % 2 == 0 ? byte >> 4 : byte & 0xF;
        out[i] = static_cast<char>(base + nib);
      }
      const std::uint8_t* entry = p + 3;
      for (std::size_t e = 0; e < k; ++e, entry += 3) {
        const std::size_t pos = static_cast<std::size_t>(entry[0]) |
                                (static_cast<std::size_t>(entry[1]) << 8);
        if (pos < m) out[pos] = static_cast<char>(entry[2]);
      }
      break;
    }
    default:
      break;
  }
}

class PackedReads;

/// Lazily-decoding handle to one read inside a PackedReads arena. Name and
/// packed words are zero-copy; `seq()`/`quals()` decode into a
/// caller-provided scratch string only when the characters are needed.
class ReadView {
 public:
  ReadView(const PackedReads& store, std::size_t index) noexcept
      : store_(&store), index_(index) {}

  [[nodiscard]] std::string_view name() const noexcept;
  [[nodiscard]] std::uint32_t length() const noexcept;
  [[nodiscard]] PackedSeqView packed() const noexcept;
  [[nodiscard]] std::string_view seq(std::string& scratch) const;
  [[nodiscard]] std::string_view quals(std::string& scratch) const;
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  const PackedReads* store_;
  std::size_t index_;
};

class PackedReads {
 public:
  void reserve(std::size_t reads, std::size_t bases) {
    length_.reserve(reads);
    word_off_.reserve(reads);
    exc_off_.reserve(reads);
    qual_off_.reserve(reads);
    name_off_.reserve(reads);
    words_.reserve(bases / 32 + reads);
    qual_enc_.reserve(reads * 4);
    names_.reserve(reads * 12);
  }

  void append(std::string_view name, std::string_view seq,
              std::string_view quals) {
    const auto len = static_cast<std::uint32_t>(seq.size());
    length_.push_back(len);
    word_off_.push_back(static_cast<std::uint32_t>(words_.size()));
    exc_off_.push_back(static_cast<std::uint32_t>(exc_pos_.size()));
    qual_off_.push_back(static_cast<std::uint32_t>(qual_enc_.size()));
    name_off_.push_back(static_cast<std::uint32_t>(names_.size()));
    words_.resize(words_.size() + (seq.size() + 31) / 32, 0);
    auto* words = words_.data() + word_off_.back();
    for (std::uint32_t i = 0; i < len; ++i) {
      const char c = seq[i];
      std::uint8_t code;
      if (c == 'A') {
        code = kBaseA;
      } else if (c == 'C') {
        code = kBaseC;
      } else if (c == 'G') {
        code = kBaseG;
      } else if (c == 'T') {
        code = kBaseT;
      } else {
        // Lowercase acgt still packs its real code (scanners keep seeing a
        // valid base); N and friends pack a placeholder A.
        const auto lc = base_to_code(c);
        code = lc == kBaseInvalid ? kBaseA : lc;
        exc_pos_.push_back(i);
        exc_chr_.push_back(c);
      }
      words[i >> 5] |= static_cast<std::uint64_t>(code) << (62 - 2 * (i & 31));
    }
    encode_quals(quals, qual_enc_);
    names_.insert(names_.end(), name.begin(), name.end());
  }

  void append(const Read& r) { append(r.name, r.seq, r.quals); }

  /// Append from already-packed parts (checkpoint decode / wire transfer).
  /// `words` must hold ceil(length/32) MSB-first words; exceptions sorted.
  void append_packed(std::string_view name, std::uint32_t length,
                     const std::uint64_t* words,
                     const std::uint32_t* except_pos, const char* except_chr,
                     std::uint32_t except_count, const std::uint8_t* qual_enc,
                     std::uint32_t qual_enc_len) {
    length_.push_back(length);
    word_off_.push_back(static_cast<std::uint32_t>(words_.size()));
    exc_off_.push_back(static_cast<std::uint32_t>(exc_pos_.size()));
    qual_off_.push_back(static_cast<std::uint32_t>(qual_enc_.size()));
    name_off_.push_back(static_cast<std::uint32_t>(names_.size()));
    words_.insert(words_.end(), words, words + (length + 31) / 32);
    exc_pos_.insert(exc_pos_.end(), except_pos, except_pos + except_count);
    exc_chr_.insert(exc_chr_.end(), except_chr, except_chr + except_count);
    qual_enc_.insert(qual_enc_.end(), qual_enc, qual_enc + qual_enc_len);
    names_.insert(names_.end(), name.begin(), name.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return length_.size(); }
  [[nodiscard]] bool empty() const noexcept { return length_.empty(); }

  [[nodiscard]] std::uint32_t length(std::size_t i) const noexcept {
    return length_[i];
  }

  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    const auto b = name_off_[i];
    const auto e =
        i + 1 < name_off_.size() ? name_off_[i + 1] : names_.size();
    return {names_.data() + b, e - b};
  }

  [[nodiscard]] PackedSeqView view(std::size_t i) const noexcept {
    const auto eb = exc_off_[i];
    const auto ee =
        i + 1 < exc_off_.size() ? exc_off_[i + 1] : exc_pos_.size();
    return PackedSeqView{words_.data() + word_off_[i], length_[i],
                         exc_pos_.data() + eb, exc_chr_.data() + eb,
                         static_cast<std::uint32_t>(ee - eb)};
  }

  /// The encoded quality bytes of read i (mode byte + payload).
  [[nodiscard]] std::pair<const std::uint8_t*, std::uint32_t> qual_enc(
      std::size_t i) const noexcept {
    const auto b = qual_off_[i];
    const auto e =
        i + 1 < qual_off_.size() ? qual_off_[i + 1] : qual_enc_.size();
    return {qual_enc_.data() + b, static_cast<std::uint32_t>(e - b)};
  }

  void decode_seq(std::size_t i, std::string& out) const {
    decode_packed_seq(view(i), out);
  }

  void decode_quals(std::size_t i, std::string& out) const {
    const auto [enc, n] = qual_enc(i);
    seq::decode_quals(enc, n, length_[i], out);
  }

  [[nodiscard]] ReadView operator[](std::size_t i) const noexcept {
    return ReadView(*this, i);
  }

  void clear() {
    words_.clear();
    length_.clear();
    word_off_.clear();
    exc_pos_.clear();
    exc_chr_.clear();
    exc_off_.clear();
    qual_enc_.clear();
    qual_off_.clear();
    names_.clear();
    name_off_.clear();
  }

  /// Drop growth slack in every arena. Cheap — ten flat buffers to
  /// reallocate regardless of read count — and worth calling once ingest
  /// is done, since exponential growth can leave the arenas holding up to
  /// 2x the bytes they use.
  void shrink_to_fit() {
    words_.shrink_to_fit();
    length_.shrink_to_fit();
    word_off_.shrink_to_fit();
    exc_pos_.shrink_to_fit();
    exc_chr_.shrink_to_fit();
    exc_off_.shrink_to_fit();
    qual_enc_.shrink_to_fit();
    qual_off_.shrink_to_fit();
    names_.shrink_to_fit();
    name_off_.shrink_to_fit();
  }

  /// Resident bytes across all arenas (capacity-based, matching what the
  /// allocator actually holds).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(*this) + words_.capacity() * sizeof(std::uint64_t) +
           (length_.capacity() + word_off_.capacity() + exc_off_.capacity() +
            qual_off_.capacity() + name_off_.capacity() +
            exc_pos_.capacity()) *
               sizeof(std::uint32_t) +
           exc_chr_.capacity() + qual_enc_.capacity() + names_.capacity();
  }

  /// Index-based forward iteration over ReadViews.
  class const_iterator {
   public:
    const_iterator(const PackedReads& store, std::size_t i) noexcept
        : store_(&store), i_(i) {}
    ReadView operator*() const noexcept { return (*store_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    friend bool operator!=(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.i_ != b.i_;
    }

   private:
    const PackedReads* store_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const noexcept {
    return {*this, 0};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return {*this, size()};
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> length_;
  std::vector<std::uint32_t> word_off_;
  std::vector<std::uint32_t> exc_pos_;
  std::vector<char> exc_chr_;
  std::vector<std::uint32_t> exc_off_;
  std::vector<std::uint8_t> qual_enc_;
  std::vector<std::uint32_t> qual_off_;
  std::vector<char> names_;
  std::vector<std::uint32_t> name_off_;
};

inline std::string_view ReadView::name() const noexcept {
  return store_->name(index_);
}
inline std::uint32_t ReadView::length() const noexcept {
  return store_->length(index_);
}
inline PackedSeqView ReadView::packed() const noexcept {
  return store_->view(index_);
}
inline std::string_view ReadView::seq(std::string& scratch) const {
  store_->decode_seq(index_, scratch);
  return scratch;
}
inline std::string_view ReadView::quals(std::string& scratch) const {
  store_->decode_quals(index_, scratch);
  return scratch;
}

}  // namespace hipmer::seq
