#pragma once

#include <cstdint>

#include "seq/dna.hpp"

/// K-mer extension codes — Meraculous's "two-letter code".
///
/// For every k-mer the pipeline records which base immediately precedes and
/// follows it in the reads, *when that base is unique and high-quality*.
/// The de Bruijn graph is then implicit: a k-mer plus its two extension
/// letters identifies both neighbor vertices (§2 of the paper). The two
/// non-base codes are:
///   'F' — fork: more than one distinct high-quality extension was seen
///         (branch in the graph; contigs terminate here);
///   'X' — no high-quality extension was seen (dead end).
namespace hipmer::seq {

inline constexpr char kExtFork = 'F';
inline constexpr char kExtNone = 'X';

[[nodiscard]] constexpr bool is_base_ext(char e) noexcept {
  return e == 'A' || e == 'C' || e == 'G' || e == 'T';
}

/// Left and right extension of a canonical k-mer. Orientation convention:
/// extensions are stored relative to the *canonical* orientation of the
/// k-mer; callers flip (complement + swap) when they reach the k-mer in its
/// reverse-complement orientation.
struct ExtPair {
  char left = kExtNone;
  char right = kExtNone;

  friend bool operator==(const ExtPair& a, const ExtPair& b) noexcept {
    return a.left == b.left && a.right == b.right;
  }
};

/// Flip an extension pair into the reverse-complement frame: left and right
/// swap, and base extensions complement.
[[nodiscard]] constexpr ExtPair flip(const ExtPair& e) noexcept {
  auto comp = [](char c) constexpr {
    return is_base_ext(c) ? complement_base(c) : c;
  };
  return ExtPair{comp(e.right), comp(e.left)};
}

}  // namespace hipmer::seq
