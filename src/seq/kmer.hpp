#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

#include "seq/dna.hpp"
#include "util/hash.hpp"

/// Packed k-mer type.
///
/// K-mers are the keys of every major distributed hash table in the
/// pipeline, so representation is compact: 2 bits per base in a fixed array
/// of 64-bit words, plus the runtime length k (HipMer runs one k per pass
/// but the gap-closing mini-assembly iterates over *several* k values, so k
/// is per-object, not global). `MAX_K` bounds k at compile time; the default
/// of 64 covers the paper's k=51 wheat runs with two words.
///
/// Layout: base i lives in word i/32 at bits [62-2*(i%32), 63-2*(i%32)] —
/// MSB-first, so the word array read as a big-endian digit string *is* the
/// base string. Two invariants follow and are maintained by every kernel:
///   1. lexicographic order on bases == numeric order on the word array
///      (A=0 < C=1 < G=2 < T=3 and the leftmost base is most significant);
///   2. all bit positions past base k-1 are zero, so equality and hashing
///      can run over whole words without masking.
/// Every hot kernel (revcomp, canonical, shifts, compare, hash) therefore
/// operates on whole 64-bit words; the per-base loops survive only as
/// `*_reference` implementations for the property tests.
///
/// Canonical form: a k-mer and its reverse complement denote the same
/// molecule; `canonical()` picks the lexicographically smaller of the two so
/// both strands hash to the same table entry.
namespace hipmer::seq {

template <int MAX_K = 64>
class Kmer {
  static_assert(MAX_K >= 1 && MAX_K <= 1024, "unreasonable MAX_K");

 public:
  static constexpr int kMaxK = MAX_K;
  static constexpr int kWords = (MAX_K + 31) / 32;

  Kmer() = default;

  /// All-A k-mer of length k: the seed the rolling scanner shifts into.
  [[nodiscard]] static Kmer of_length(int k) noexcept {
    assert(k >= 1 && k <= MAX_K);
    Kmer km;
    km.k_ = static_cast<std::uint16_t>(k);
    return km;
  }

  /// Parse from a DNA string (all bases must be ACGT). Packs 32 bases per
  /// word with accumulate-and-shift instead of per-base masking.
  [[nodiscard]] static Kmer from_string(std::string_view s) {
    assert(s.size() >= 1 && s.size() <= MAX_K);
    Kmer km;
    km.k_ = static_cast<std::uint16_t>(s.size());
    std::size_t i = 0;
    for (int w = 0; i < s.size(); ++w) {
      std::uint64_t word = 0;
      int packed = 0;
      for (; packed < 32 && i < s.size(); ++packed, ++i) {
        const std::uint8_t code = base_to_code(s[i]);
        assert(code != kBaseInvalid);
        word = (word << 2) | code;
      }
      km.words_[static_cast<std::size_t>(w)] = word << (2 * (32 - packed));
    }
    return km;
  }

  [[nodiscard]] int k() const noexcept { return k_; }

  /// 2-bit code of base at position i (0 = leftmost/5' end).
  [[nodiscard]] std::uint8_t base(int i) const noexcept {
    assert(i >= 0 && i < k_);
    return static_cast<std::uint8_t>(
        (words_[static_cast<std::size_t>(i >> 5)] >> (62 - (i & 31) * 2)) & 3);
  }

  void set_base(int i, std::uint8_t code) noexcept {
    assert(i >= 0 && i < MAX_K && code <= 3);
    auto& w = words_[static_cast<std::size_t>(i >> 5)];
    const int shift = 62 - (i & 31) * 2;
    w = (w & ~(std::uint64_t{3} << shift)) | (std::uint64_t{code} << shift);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s(static_cast<std::size_t>(k_), 'A');
    for (int i = 0; i < k_; ++i) s[static_cast<std::size_t>(i)] = code_to_base(base(i));
    return s;
  }

  /// Reverse complement (same k): per-word SWAR 2-bit reversal + complement,
  /// word swap, then one cross-word funnel shift to re-align to base 0.
  [[nodiscard]] Kmer revcomp() const noexcept {
    Kmer rc;
    rc.k_ = k_;
    const int used = words_used();
    for (int w = 0; w < used; ++w)
      rc.words_[static_cast<std::size_t>(used - 1 - w)] =
          revcomp_word(words_[static_cast<std::size_t>(w)]);
    // The k result bases now sit in slots used*32-k .. used*32-1 (the
    // complemented former padding leads); shift them home to slots 0..k-1.
    // The shift simultaneously discards the leading junk and zero-fills the
    // tail, restoring invariant 2.
    const int shift = (used * 32 - k_) * 2;
    if (shift != 0) {
      for (int w = 0; w + 1 < used; ++w)
        rc.words_[static_cast<std::size_t>(w)] =
            (rc.words_[static_cast<std::size_t>(w)] << shift) |
            (rc.words_[static_cast<std::size_t>(w + 1)] >> (64 - shift));
      rc.words_[static_cast<std::size_t>(used - 1)] <<= shift;
    }
    return rc;
  }

  /// Lexicographic comparison against the reverse complement; canonical is
  /// the smaller. One revcomp + one word-wise compare.
  [[nodiscard]] Kmer canonical() const noexcept {
    const Kmer rc = revcomp();
    return *this <= rc ? *this : rc;
  }

  [[nodiscard]] bool is_canonical() const noexcept {
    return *this <= revcomp();
  }

  /// In-place: drop the leftmost base and append `code` on the right — one
  /// step *forward* along a sequence. Funnel shift across the word array.
  void push_back_code(std::uint8_t code) noexcept {
    assert(code <= 3);
    const int used = words_used();
    for (int w = 0; w + 1 < used; ++w)
      words_[static_cast<std::size_t>(w)] =
          (words_[static_cast<std::size_t>(w)] << 2) |
          (words_[static_cast<std::size_t>(w + 1)] >> 62);
    words_[static_cast<std::size_t>(used - 1)] <<= 2;
    // Slot k-1 is zero after the shift (it received former slot k, which
    // invariant 2 keeps clear), so OR-ing the new base in suffices.
    words_[static_cast<std::size_t>((k_ - 1) >> 5)] |=
        std::uint64_t{code} << (62 - ((k_ - 1) & 31) * 2);
  }

  /// In-place: prepend `code` on the left and drop the rightmost base — one
  /// step *backward* along a sequence.
  void push_front_code(std::uint8_t code) noexcept {
    assert(code <= 3);
    const int used = words_used();
    for (int w = used - 1; w > 0; --w)
      words_[static_cast<std::size_t>(w)] =
          (words_[static_cast<std::size_t>(w)] >> 2) |
          (words_[static_cast<std::size_t>(w - 1)] << 62);
    words_[0] >>= 2;
    words_[0] |= std::uint64_t{code} << 62;
    // The dropped base slid from slot k-1 into slot k; clear it unless it
    // fell off the end of the last used word.
    const int r = k_ & 31;
    if (r != 0)
      words_[static_cast<std::size_t>((k_ - 1) >> 5)] &=
          ~std::uint64_t{0} << (64 - 2 * r);
  }

  /// Drop the leftmost base and append `code` on the right: the k-mer one
  /// step *forward* along a sequence.
  [[nodiscard]] Kmer shifted_left(std::uint8_t code) const noexcept {
    Kmer out = *this;
    out.push_back_code(code);
    return out;
  }

  /// Prepend `code` on the left and drop the rightmost base: one step
  /// *backward* along a sequence.
  [[nodiscard]] Kmer shifted_right(std::uint8_t code) const noexcept {
    Kmer out = *this;
    out.push_front_code(code);
    return out;
  }

  [[nodiscard]] std::uint8_t first_base() const noexcept { return base(0); }
  [[nodiscard]] std::uint8_t last_base() const noexcept { return base(k_ - 1); }

  /// 64-bit fingerprint — the hash every distributed structure keys on.
  /// Mixes only the occupied words (invariant 2 keeps the rest zero).
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = util::mix64(static_cast<std::uint64_t>(k_));
    const int used = words_used();
    for (int w = 0; w < used; ++w)
      h = util::hash_combine(h, words_[static_cast<std::size_t>(w)]);
    return h;
  }

  friend bool operator==(const Kmer& a, const Kmer& b) noexcept {
    if (a.k_ != b.k_) return false;
    const int used = a.words_used();
    for (int w = 0; w < used; ++w)
      if (a.words_[static_cast<std::size_t>(w)] != b.words_[static_cast<std::size_t>(w)]) return false;
    return true;
  }
  friend bool operator!=(const Kmer& a, const Kmer& b) noexcept {
    return !(a == b);
  }

  /// Lexicographic order on the base sequence (A < C < G < T). With the
  /// MSB-first layout this is numeric order on the word array; zero padding
  /// sorts like trailing 'A's, so equal prefixes tie-break on k — exactly
  /// string order.
  friend bool operator<(const Kmer& a, const Kmer& b) noexcept {
    for (int w = 0; w < kWords; ++w) {
      const std::uint64_t aw = a.words_[static_cast<std::size_t>(w)];
      const std::uint64_t bw = b.words_[static_cast<std::size_t>(w)];
      if (aw != bw) return aw < bw;
    }
    return a.k_ < b.k_;
  }
  friend bool operator<=(const Kmer& a, const Kmer& b) noexcept {
    return !(b < a);
  }

  // ---- reference kernels ----
  //
  // Base-by-base implementations retained solely so the property tests can
  // cross-check the word-parallel kernels above. Not used on any hot path.

  [[nodiscard]] Kmer revcomp_reference() const noexcept {
    Kmer rc;
    rc.k_ = k_;
    for (int i = 0; i < k_; ++i)
      rc.set_base(k_ - 1 - i, complement_code(base(i)));
    return rc;
  }

  [[nodiscard]] Kmer canonical_reference() const noexcept {
    const Kmer rc = revcomp_reference();
    return !less_reference(rc, *this) ? *this : rc;
  }

  [[nodiscard]] Kmer shifted_left_reference(std::uint8_t code) const noexcept {
    Kmer out;
    out.k_ = k_;
    for (int i = 0; i + 1 < k_; ++i) out.set_base(i, base(i + 1));
    out.set_base(k_ - 1, code);
    return out;
  }

  [[nodiscard]] Kmer shifted_right_reference(std::uint8_t code) const noexcept {
    Kmer out;
    out.k_ = k_;
    for (int i = 0; i + 1 < k_; ++i) out.set_base(i + 1, base(i));
    out.set_base(0, code);
    return out;
  }

  [[nodiscard]] static bool less_reference(const Kmer& a, const Kmer& b) noexcept {
    const int n = a.k_ < b.k_ ? a.k_ : b.k_;
    for (int i = 0; i < n; ++i) {
      if (a.base(i) != b.base(i)) return a.base(i) < b.base(i);
    }
    return a.k_ < b.k_;
  }

  /// Repacks every base through set_base and rehashes: identical to hash()
  /// on a well-formed k-mer, different whenever a word kernel leaves stale
  /// bits past base k-1.
  [[nodiscard]] std::uint64_t hash_reference() const noexcept {
    Kmer repacked;
    repacked.k_ = k_;
    for (int i = 0; i < k_; ++i) repacked.set_base(i, base(i));
    return repacked.hash();
  }

 private:
  [[nodiscard]] int words_used() const noexcept { return (k_ + 31) >> 5; }

  /// Reverse the 32 2-bit fields of a word and complement each (A<->T,
  /// C<->G is ~code per field): pair swap, nibble swap, byte swap.
  [[nodiscard]] static std::uint64_t revcomp_word(std::uint64_t w) noexcept {
    w = ~w;
    w = ((w & 0x3333333333333333ULL) << 2) | ((w >> 2) & 0x3333333333333333ULL);
    w = ((w & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((w >> 4) & 0x0F0F0F0F0F0F0F0FULL);
    return __builtin_bswap64(w);
  }

  std::array<std::uint64_t, kWords> words_{};
  std::uint16_t k_ = 0;
  /// Kmer ships verbatim through put_pod (UFX shard, contig wire header),
  /// so the tail bytes must be zeroed members with guaranteed copy
  /// semantics, not unspecified struct padding.
  [[maybe_unused]] std::uint16_t reserved_[3]{};
};

static_assert(sizeof(Kmer<64>) == 2 * sizeof(std::uint64_t) + 8,
              "Kmer must have no padding: it ships verbatim on the wire");

/// Hash functor for DistHashMap / std containers.
template <int MAX_K>
struct KmerHash {
  std::uint64_t operator()(const Kmer<MAX_K>& km) const noexcept {
    return km.hash();
  }
};

}  // namespace hipmer::seq
