#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"
#include "util/hash.hpp"

/// Packed k-mer type.
///
/// K-mers are the keys of every major distributed hash table in the
/// pipeline, so representation is compact: 2 bits per base in a fixed array
/// of 64-bit words, plus the runtime length k (HipMer runs one k per pass
/// but the gap-closing mini-assembly iterates over *several* k values, so k
/// is per-object, not global). `MAX_K` bounds k at compile time; the default
/// of 64 covers the paper's k=51 wheat runs with two words.
///
/// Canonical form: a k-mer and its reverse complement denote the same
/// molecule; `canonical()` picks the lexicographically smaller of the two so
/// both strands hash to the same table entry.
namespace hipmer::seq {

template <int MAX_K = 64>
class Kmer {
  static_assert(MAX_K >= 1 && MAX_K <= 1024, "unreasonable MAX_K");

 public:
  static constexpr int kMaxK = MAX_K;
  static constexpr int kWords = (MAX_K + 31) / 32;

  Kmer() = default;

  /// Parse from a DNA string (all bases must be ACGT).
  [[nodiscard]] static Kmer from_string(std::string_view s) {
    assert(s.size() >= 1 && s.size() <= MAX_K);
    Kmer km;
    km.k_ = static_cast<std::uint16_t>(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      const std::uint8_t code = base_to_code(s[i]);
      assert(code != kBaseInvalid);
      km.set_base(static_cast<int>(i), code);
    }
    return km;
  }

  [[nodiscard]] int k() const noexcept { return k_; }

  /// 2-bit code of base at position i (0 = leftmost/5' end).
  [[nodiscard]] std::uint8_t base(int i) const noexcept {
    assert(i >= 0 && i < k_);
    return static_cast<std::uint8_t>(
        (words_[static_cast<std::size_t>(i >> 5)] >> ((i & 31) * 2)) & 3);
  }

  void set_base(int i, std::uint8_t code) noexcept {
    assert(i >= 0 && i < MAX_K && code <= 3);
    auto& w = words_[static_cast<std::size_t>(i >> 5)];
    const int shift = (i & 31) * 2;
    w = (w & ~(std::uint64_t{3} << shift)) |
        (std::uint64_t{code} << shift);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s(static_cast<std::size_t>(k_), 'A');
    for (int i = 0; i < k_; ++i) s[static_cast<std::size_t>(i)] = code_to_base(base(i));
    return s;
  }

  /// Reverse complement (same k).
  [[nodiscard]] Kmer revcomp() const noexcept {
    Kmer rc;
    rc.k_ = k_;
    for (int i = 0; i < k_; ++i)
      rc.set_base(k_ - 1 - i, complement_code(base(i)));
    return rc;
  }

  /// Lexicographic comparison against the reverse complement; canonical is
  /// the smaller.
  [[nodiscard]] Kmer canonical() const noexcept {
    const Kmer rc = revcomp();
    return *this <= rc ? *this : rc;
  }

  [[nodiscard]] bool is_canonical() const noexcept {
    return *this <= revcomp();
  }

  /// Drop the leftmost base and append `code` on the right: the k-mer one
  /// step *forward* along a sequence.
  [[nodiscard]] Kmer shifted_left(std::uint8_t code) const noexcept {
    Kmer out;
    out.k_ = k_;
    for (int i = 0; i + 1 < k_; ++i) out.set_base(i, base(i + 1));
    out.set_base(k_ - 1, code);
    return out;
  }

  /// Prepend `code` on the left and drop the rightmost base: one step
  /// *backward* along a sequence.
  [[nodiscard]] Kmer shifted_right(std::uint8_t code) const noexcept {
    Kmer out;
    out.k_ = k_;
    for (int i = 0; i + 1 < k_; ++i) out.set_base(i + 1, base(i));
    out.set_base(0, code);
    return out;
  }

  [[nodiscard]] std::uint8_t first_base() const noexcept { return base(0); }
  [[nodiscard]] std::uint8_t last_base() const noexcept { return base(k_ - 1); }

  /// 64-bit fingerprint over the packed words — the hash every distributed
  /// structure keys on.
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = util::mix64(static_cast<std::uint64_t>(k_));
    for (int w = 0; w < kWords; ++w)
      h = util::hash_combine(h, words_[static_cast<std::size_t>(w)]);
    return h;
  }

  friend bool operator==(const Kmer& a, const Kmer& b) noexcept {
    if (a.k_ != b.k_) return false;
    for (int w = 0; w < kWords; ++w)
      if (a.words_[static_cast<std::size_t>(w)] != b.words_[static_cast<std::size_t>(w)]) return false;
    return true;
  }
  friend bool operator!=(const Kmer& a, const Kmer& b) noexcept {
    return !(a == b);
  }

  /// Lexicographic order on the base sequence (A < C < G < T).
  friend bool operator<(const Kmer& a, const Kmer& b) noexcept {
    const int n = a.k_ < b.k_ ? a.k_ : b.k_;
    for (int i = 0; i < n; ++i) {
      if (a.base(i) != b.base(i)) return a.base(i) < b.base(i);
    }
    return a.k_ < b.k_;
  }
  friend bool operator<=(const Kmer& a, const Kmer& b) noexcept {
    return !(b < a);
  }

 private:
  std::array<std::uint64_t, kWords> words_{};
  std::uint16_t k_ = 0;
};

/// Hash functor for DistHashMap / std containers.
template <int MAX_K>
struct KmerHash {
  std::uint64_t operator()(const Kmer<MAX_K>& km) const noexcept {
    return km.hash();
  }
};

/// Extract all k-mers of `sequence` into `out` (cleared first). Returns
/// false (and leaves `out` empty) if the sequence is shorter than k or
/// contains non-ACGT characters.
template <int MAX_K>
bool extract_kmers(std::string_view sequence, int k,
                   std::vector<Kmer<MAX_K>>& out) {
  out.clear();
  if (static_cast<int>(sequence.size()) < k) return false;
  if (!is_valid_dna(sequence)) return false;
  Kmer<MAX_K> km = Kmer<MAX_K>::from_string(sequence.substr(0, static_cast<std::size_t>(k)));
  out.push_back(km);
  for (std::size_t i = static_cast<std::size_t>(k); i < sequence.size(); ++i) {
    km = km.shifted_left(base_to_code(sequence[i]));
    out.push_back(km);
  }
  return true;
}

}  // namespace hipmer::seq
