#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// DNA alphabet primitives: 2-bit base codes, complements, reverse
/// complements. Everything downstream (k-mers, reads, contigs) builds on
/// these encodings.
namespace hipmer::seq {

/// 2-bit base encoding. The complement is `3 - code`, which the revcomp
/// routines exploit.
inline constexpr std::uint8_t kBaseA = 0;
inline constexpr std::uint8_t kBaseC = 1;
inline constexpr std::uint8_t kBaseG = 2;
inline constexpr std::uint8_t kBaseT = 3;
inline constexpr std::uint8_t kBaseInvalid = 0xff;

[[nodiscard]] constexpr std::uint8_t base_to_code(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return kBaseA;
    case 'C': case 'c': return kBaseC;
    case 'G': case 'g': return kBaseG;
    case 'T': case 't': return kBaseT;
    default: return kBaseInvalid;
  }
}

[[nodiscard]] constexpr char code_to_base(std::uint8_t code) noexcept {
  constexpr char bases[4] = {'A', 'C', 'G', 'T'};
  return bases[code & 3];
}

[[nodiscard]] constexpr std::uint8_t complement_code(std::uint8_t code) noexcept {
  return static_cast<std::uint8_t>(3 - code);
}

[[nodiscard]] constexpr char complement_base(char c) noexcept {
  switch (c) {
    case 'A': return 'T';
    case 'C': return 'G';
    case 'G': return 'C';
    case 'T': return 'A';
    case 'a': return 't';
    case 'c': return 'g';
    case 'g': return 'c';
    case 't': return 'a';
    default: return 'N';
  }
}

/// True iff every character is an unambiguous upper/lowercase ACGT base.
[[nodiscard]] inline bool is_valid_dna(std::string_view s) noexcept {
  for (char c : s)
    if (base_to_code(c) == kBaseInvalid) return false;
  return true;
}

/// Reverse complement of a DNA string. Characters outside ACGT map to 'N'.
[[nodiscard]] inline std::string revcomp(std::string_view s) {
  std::string out(s.size(), 'N');
  for (std::size_t i = 0; i < s.size(); ++i)
    out[s.size() - 1 - i] = complement_base(s[i]);
  return out;
}

}  // namespace hipmer::seq
