#pragma once

#include <string_view>

#include "seq/kmer.hpp"

/// Streaming canonical k-mer extraction.
///
/// Iterates every length-k window of a sequence, maintaining the forward
/// k-mer *and* its reverse complement incrementally (O(words) per step
/// instead of O(k)), skipping windows containing non-ACGT characters.
/// Every consumer that walks reads or contigs k-mer-by-k-mer (k-mer
/// analysis, seed index construction, depth computation, gap-closing
/// mini-assembly) uses this iterator, so orientation conventions stay in
/// one place.
namespace hipmer::seq {

template <int MAX_K>
class KmerIterator {
 public:
  KmerIterator(std::string_view sequence, int k)
      : seq_(sequence), k_(k), pos_(0) {
    if (static_cast<int>(seq_.size()) >= k_) prime(0);
    else done_ = true;
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Window start position within the sequence.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Forward-strand k-mer at the current window.
  [[nodiscard]] const Kmer<MAX_K>& forward() const noexcept { return fwd_; }
  /// Its reverse complement.
  [[nodiscard]] const Kmer<MAX_K>& reverse() const noexcept { return rc_; }

  [[nodiscard]] bool is_flipped() const noexcept { return rc_ < fwd_; }

  /// Canonical form (the smaller of forward / reverse complement).
  [[nodiscard]] const Kmer<MAX_K>& canonical() const noexcept {
    return is_flipped() ? rc_ : fwd_;
  }

  /// Advance to the next valid window.
  void next() {
    while (true) {
      const std::size_t new_end = pos_ + static_cast<std::size_t>(k_);
      if (new_end >= seq_.size()) {
        done_ = true;
        return;
      }
      const std::uint8_t code = base_to_code(seq_[new_end]);
      if (code == kBaseInvalid) {
        // Restart past the invalid character.
        if (new_end + static_cast<std::size_t>(k_) >= seq_.size() + 1) {
          done_ = true;
          return;
        }
        prime(new_end + 1);
        if (done_) return;
        return;
      }
      fwd_ = fwd_.shifted_left(code);
      rc_ = rc_.shifted_right(complement_code(code));
      ++pos_;
      return;
    }
  }

 private:
  /// Initialize the window at `start`, scanning forward past invalid
  /// characters.
  void prime(std::size_t start) {
    while (start + static_cast<std::size_t>(k_) <= seq_.size()) {
      bool ok = true;
      for (int i = 0; i < k_; ++i) {
        if (base_to_code(seq_[start + static_cast<std::size_t>(i)]) ==
            kBaseInvalid) {
          start += static_cast<std::size_t>(i) + 1;  // skip past the bad base
          ok = false;
          break;
        }
      }
      if (ok) {
        fwd_ = Kmer<MAX_K>::from_string(
            seq_.substr(start, static_cast<std::size_t>(k_)));
        rc_ = fwd_.revcomp();
        pos_ = start;
        done_ = false;
        return;
      }
    }
    done_ = true;
  }

  std::string_view seq_;
  int k_;
  std::size_t pos_;
  Kmer<MAX_K> fwd_;
  Kmer<MAX_K> rc_;
  bool done_ = false;
};

}  // namespace hipmer::seq
