#pragma once

#include <cstdint>
#include <string>

/// Sequencing read with per-base qualities.
///
/// Paired-end convention: mates are stored as consecutive records
/// (interleaved FASTQ); a read's pair id is `read_id ^ 1` and mate 0/1 is
/// `read_id & 1`. Library metadata (insert size etc.) travels separately in
/// `ReadLibrary`.
namespace hipmer::seq {

struct Read {
  std::string name;
  std::string seq;
  /// Phred+33 quality string, same length as `seq`.
  std::string quals;

  [[nodiscard]] std::size_t size() const noexcept { return seq.size(); }

  friend bool operator==(const Read&, const Read&) = default;
};

/// Phred score of a quality character.
[[nodiscard]] constexpr int phred(char qual_char) noexcept {
  return static_cast<int>(qual_char) - 33;
}

[[nodiscard]] constexpr char phred_to_char(int q) noexcept {
  if (q < 0) q = 0;
  if (q > 60) q = 60;
  return static_cast<char>(q + 33);
}

/// Description of one paired-end library: the pipeline's scaffolder uses
/// the insert size (estimated, §4.4) to convert read placements into gap
/// estimates between contigs.
struct ReadLibrary {
  std::string name;
  /// True mean insert size used by the simulator; the pipeline re-estimates
  /// it from alignments and never reads this field during assembly.
  double mean_insert = 0.0;
  double stddev_insert = 0.0;
  int read_length = 0;
  /// Interleaved FASTQ path for this library.
  std::string fastq_path;
  /// Whether this library's reads feed k-mer analysis / contig generation.
  /// Long-insert mate-pair libraries are scaffolding-only (§5: wheat's 1kbp
  /// and 4.2kbp libraries are "leveraged (in addition to the previous
  /// libraries)" for the scaffolding phase).
  bool for_contigging = true;
};

}  // namespace hipmer::seq
