#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "seq/kmer_scanner.hpp"
#include "seq/packed_reads.hpp"
#include "seq/read.hpp"

/// The pipeline's resident read container: either the classic
/// `std::vector<seq::Read>` (three heap strings per record) or a
/// `PackedReads` arena, selected at construction by the `--packed-reads`
/// flag. Both representations expose identical element accessors so every
/// stage (k-mer analysis, alignment, gap closing, the shuffle) is written
/// once against `ReadSetView` and produces byte-identical output on either
/// path.
namespace hipmer::seq {

class ReadStore {
 public:
  ReadStore() = default;
  explicit ReadStore(bool packed) : packed_(packed) {}

  /// Switch representation; only meaningful while empty.
  void set_packed(bool packed) { packed_ = packed; }
  [[nodiscard]] bool packed() const noexcept { return packed_; }

  void reserve(std::size_t reads, std::size_t bases) {
    if (packed_)
      arena_.reserve(reads, bases);
    else
      plain_.reserve(reads);
  }

  void append(std::string_view name, std::string_view seq,
              std::string_view quals) {
    if (packed_)
      arena_.append(name, seq, quals);
    else
      plain_.push_back(
          Read{std::string(name), std::string(seq), std::string(quals)});
  }

  void append(const Read& r) {
    if (packed_)
      arena_.append(r);
    else
      plain_.push_back(r);
  }

  void append(Read&& r) {
    if (packed_)
      arena_.append(r);
    else
      plain_.push_back(std::move(r));
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return packed_ ? arena_.size() : plain_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::uint32_t length(std::size_t i) const noexcept {
    return packed_ ? arena_.length(i)
                   : static_cast<std::uint32_t>(plain_[i].seq.size());
  }

  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    return packed_ ? arena_.name(i) : std::string_view(plain_[i].name);
  }

  /// Sequence characters; decodes into `scratch` on the packed path, a
  /// zero-copy view on the plain path.
  [[nodiscard]] std::string_view seq(std::size_t i,
                                     std::string& scratch) const {
    if (!packed_) return plain_[i].seq;
    arena_.decode_seq(i, scratch);
    return scratch;
  }

  [[nodiscard]] std::string_view quals(std::size_t i,
                                       std::string& scratch) const {
    if (!packed_) return plain_[i].quals;
    arena_.decode_quals(i, scratch);
    return scratch;
  }

  /// Base-code at (read, position), as base_to_code would report it.
  [[nodiscard]] std::uint8_t code(std::size_t i,
                                  std::uint32_t pos) const noexcept {
    return packed_ ? arena_.view(i).code(pos)
                   : base_to_code(plain_[i].seq[pos]);
  }

  [[nodiscard]] const PackedReads& arena() const noexcept { return arena_; }
  [[nodiscard]] const std::vector<Read>& plain() const noexcept {
    return plain_;
  }

  /// Materialize to owned Read records (checkpoint/gather paths).
  [[nodiscard]] std::vector<Read> to_reads() const {
    if (!packed_) return plain_;
    std::vector<Read> out(arena_.size());
    for (std::size_t i = 0; i < arena_.size(); ++i) {
      out[i].name = std::string(arena_.name(i));
      arena_.decode_seq(i, out[i].seq);
      arena_.decode_quals(i, out[i].quals);
    }
    return out;
  }

  /// Compact the packed arena once ingest is done (see
  /// PackedReads::shrink_to_fit). Deliberately a no-op on the plain path:
  /// there the footprint lives in the per-record heap strings, whose
  /// capacities travel unchanged through a vector reallocation, so a
  /// shrink pass would move every record to reclaim only the outer
  /// vector's slack — the seed representation is kept as-built and is what
  /// bench/reads_memory baselines against.
  void shrink_to_fit() {
    if (packed_) arena_.shrink_to_fit();
  }

  void clear() {
    plain_.clear();
    arena_.clear();
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    if (packed_) return arena_.memory_bytes();
    std::size_t bytes = sizeof(*this) + plain_.capacity() * sizeof(Read);
    const std::size_t sso = std::string().capacity();
    for (const auto& r : plain_)
      for (const std::string* s : {&r.name, &r.seq, &r.quals})
        if (s->capacity() > sso) bytes += s->capacity() + 1;
    return bytes;
  }

 private:
  bool packed_ = false;
  std::vector<Read> plain_;
  PackedReads arena_;
};

/// Non-owning read-set handle passed into the compute stages. Wraps either
/// a ReadStore or (for legacy call sites and tools) a bare
/// `std::vector<seq::Read>`.
class ReadSetView {
 public:
  ReadSetView() = default;
  ReadSetView(const ReadStore& store) noexcept : store_(&store) {}  // NOLINT
  ReadSetView(const std::vector<Read>& reads) noexcept  // NOLINT
      : reads_(&reads) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return store_ != nullptr ? store_->size()
                             : (reads_ != nullptr ? reads_->size() : 0);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] bool packed() const noexcept {
    return store_ != nullptr && store_->packed();
  }

  [[nodiscard]] std::uint32_t length(std::size_t i) const noexcept {
    return store_ != nullptr
               ? store_->length(i)
               : static_cast<std::uint32_t>((*reads_)[i].seq.size());
  }

  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    return store_ != nullptr ? store_->name(i)
                             : std::string_view((*reads_)[i].name);
  }

  [[nodiscard]] std::string_view seq(std::size_t i,
                                     std::string& scratch) const {
    return store_ != nullptr ? store_->seq(i, scratch) : (*reads_)[i].seq;
  }

  [[nodiscard]] std::string_view quals(std::size_t i,
                                       std::string& scratch) const {
    return store_ != nullptr ? store_->quals(i, scratch) : (*reads_)[i].quals;
  }

  [[nodiscard]] std::uint8_t code(std::size_t i,
                                  std::uint32_t pos) const noexcept {
    return store_ != nullptr ? store_->code(i, pos)
                             : base_to_code((*reads_)[i].seq[pos]);
  }

  /// Rolling canonical k-mer scanner over read i: straight off the packed
  /// words when packed, over the string otherwise. The view (and its
  /// backing container) must outlive the scanner.
  template <int MAX_K>
  [[nodiscard]] KmerScanner<MAX_K> scanner(std::size_t i, int k) const {
    if (packed()) return KmerScanner<MAX_K>(store_->arena().view(i), k);
    if (store_ != nullptr)
      return KmerScanner<MAX_K>(std::string_view(store_->plain()[i].seq), k);
    return KmerScanner<MAX_K>(std::string_view((*reads_)[i].seq), k);
  }

 private:
  const ReadStore* store_ = nullptr;
  const std::vector<Read>* reads_ = nullptr;
};

}  // namespace hipmer::seq
