#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

/// Read-name convention: "<library>:<pair_index>/<mate>".
///
/// Pairing must survive arbitrary file splitting by the parallel FASTQ
/// reader, so mate identity is carried in the name rather than in record
/// order. Every producer (simulators) and consumer (aligner, scaffolder)
/// shares this parser.
namespace hipmer::seq {

/// Parse "<lib>:<pair>/<mate>" names. Returns false if the name does not
/// follow the convention.
inline bool parse_read_name(std::string_view name, std::uint64_t& pair_index,
                            int& mate) {
  const std::size_t colon = name.rfind(':');
  const std::size_t slash = name.rfind('/');
  if (colon == std::string_view::npos || slash == std::string_view::npos ||
      slash <= colon + 1 || slash + 1 >= name.size())
    return false;
  const char* first = name.data() + colon + 1;
  const char* last = name.data() + slash;
  auto [ptr, ec] = std::from_chars(first, last, pair_index);
  if (ec != std::errc{} || ptr != last) return false;
  const char m = name[slash + 1];
  if (m != '0' && m != '1') return false;
  mate = m - '0';
  return true;
}

}  // namespace hipmer::seq
