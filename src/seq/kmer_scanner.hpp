#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/packed_reads.hpp"

/// Zero-allocation rolling canonical k-mer scanner.
///
/// Streams a sequence once, maintaining the forward k-mer *and* its reverse
/// complement incrementally — two O(words) funnel shifts per base — so
/// `canonical()` at each position is a single word-wise compare instead of a
/// fresh O(k) revcomp. A non-ACGT character resets the run counter and the
/// scan restarts at the next base, so a single 'N' costs exactly the k-1
/// windows that overlap it (the seed implementation rejected whole reads).
///
/// Accepts either a character sequence or a `PackedSeqView`: the packed
/// source pulls 2-bit codes straight out of the arena words (same MSB-first
/// layout as `Kmer`) and consults the exception list through a cursor that
/// advances in lockstep with the scan, so packed reads feed k-mer
/// extraction without ever decoding to chars.
///
/// The inner loop touches only the scanner's own value members: no heap
/// allocation anywhere (enforced by a counting-allocator test in
/// tests/test_seq.cpp). Every consumer that walks reads or contigs
/// k-mer-by-k-mer (k-mer analysis, seed index construction, depth
/// computation, gap-closing mini-assembly) uses this scanner, so orientation
/// conventions stay in one place.
namespace hipmer::seq {

template <int MAX_K>
class KmerScanner {
 public:
  KmerScanner(std::string_view sequence, int k) noexcept
      : seq_(sequence),
        k_(k),
        fwd_(Kmer<MAX_K>::of_length(k)),
        rc_(Kmer<MAX_K>::of_length(k)) {
    advance();
  }

  KmerScanner(const PackedSeqView& view, int k) noexcept
      : k_(k),
        packed_(view),
        is_packed_(true),
        fwd_(Kmer<MAX_K>::of_length(k)),
        rc_(Kmer<MAX_K>::of_length(k)) {
    advance();
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Window start position within the sequence.
  [[nodiscard]] std::size_t position() const noexcept {
    return next_ - static_cast<std::size_t>(k_);
  }

  /// Forward-strand k-mer at the current window.
  [[nodiscard]] const Kmer<MAX_K>& forward() const noexcept { return fwd_; }
  /// Its reverse complement.
  [[nodiscard]] const Kmer<MAX_K>& reverse() const noexcept { return rc_; }

  [[nodiscard]] bool is_flipped() const noexcept { return rc_ < fwd_; }

  /// Canonical form (the smaller of forward / reverse complement).
  [[nodiscard]] const Kmer<MAX_K>& canonical() const noexcept {
    return is_flipped() ? rc_ : fwd_;
  }

  /// Advance to the next valid window.
  void next() noexcept { advance(); }

 private:
  void advance() noexcept {
    // Push bases until k consecutive valid ones have been seen; the rolling
    // pair then holds exactly the window ending at next_. During warm-up the
    // shifts run over stale content, which the k-th push fully displaces.
    const std::size_t n = is_packed_ ? packed_.length : seq_.size();
    while (next_ < n) {
      std::uint8_t code;
      if (is_packed_) {
        const auto i = static_cast<std::uint32_t>(next_);
        if (exc_next_ < packed_.except_count &&
            packed_.except_pos[exc_next_] == i)
          code = base_to_code(packed_.except_chr[exc_next_++]);
        else
          code = packed_.word_code(i);
      } else {
        code = base_to_code(seq_[next_]);
      }
      ++next_;
      if (code == kBaseInvalid) {
        run_ = 0;
        continue;
      }
      fwd_.push_back_code(code);
      rc_.push_front_code(complement_code(code));
      if (++run_ >= static_cast<std::size_t>(k_)) return;
    }
    done_ = true;
  }

  std::string_view seq_;
  int k_;
  PackedSeqView packed_{};
  bool is_packed_ = false;
  std::uint32_t exc_next_ = 0;
  std::size_t run_ = 0;
  std::size_t next_ = 0;
  Kmer<MAX_K> fwd_;
  Kmer<MAX_K> rc_;
  bool done_ = false;
};

/// Extract the forward k-mer of every valid window of `sequence` into `out`
/// (cleared first). Windows containing non-ACGT characters are skipped and
/// the scan restarts after the offending base. Returns true iff at least one
/// k-mer was extracted.
template <int MAX_K>
bool extract_kmers(std::string_view sequence, int k,
                   std::vector<Kmer<MAX_K>>& out) {
  out.clear();
  for (KmerScanner<MAX_K> scan(sequence, k); !scan.done(); scan.next())
    out.push_back(scan.forward());
  return !out.empty();
}

}  // namespace hipmer::seq
