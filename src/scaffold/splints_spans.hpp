#pragma once

#include <cstdint>
#include <vector>

#include "align/alignment.hpp"
#include "pgas/thread_team.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/types.hpp"

/// §4.5 — locating splints and spans.
///
/// **Splint** (Figure 3a): one read aligns across the ends of two contigs —
/// the contigs overlap. "Each of the p processors independently processes
/// 1/p of the total read alignments" — splints need no communication since
/// the aligner emits a read's alignments together on one rank.
///
/// **Span** (Figure 3b): the two mates of a pair align to different
/// contigs; with the library insert size (§4.4) the gap between the contigs
/// is estimated as  gap = insert − out_a − out_b  (outward distances per
/// scaffold/types.hpp). Mates can land on different ranks, so alignments
/// are first exchanged by pair id.
namespace hipmer::scaffold {

struct LinkObservation {
  ContigEnd a;
  ContigEnd b;
  /// Estimated gap (negative = overlap).
  float gap = 0.0f;
  /// True for splint evidence, false for span evidence.
  bool is_splint = false;
};

/// Local (no communication): find splints among this rank's alignments.
/// `end_slack` is how close to a contig end an alignment must reach.
[[nodiscard]] std::vector<LinkObservation> locate_splints(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    int end_slack = 5);

/// Collective: exchange alignments by pair id, then find spans. `inserts`
/// holds the per-library estimates from §4.4. `max_outward_factor` bounds
/// how far inside a contig a mate may sit (mean + 3*stddev) before it can
/// no longer witness a gap.
[[nodiscard]] std::vector<LinkObservation> locate_spans(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    const std::vector<InsertSizeEstimate>& inserts,
    double full_fraction = 0.9);

}  // namespace hipmer::scaffold
