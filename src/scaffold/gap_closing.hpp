#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/alignment.hpp"
#include "align/contig_store.hpp"
#include "pgas/thread_team.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/types.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"

/// §4.8 — gap closing.
///
/// Gaps (positive-gap junctions of the scaffolds) are distributed round
/// robin across ranks — "this suffices to prevent most imbalance because it
/// breaks up the gaps from a single scaffold, which tend to require similar
/// costs to close". Reads are projected into gaps from the alignments (end
/// overhangs and mate projections) and shipped to the gap's owner, which
/// tries the paper's closure methods in order of increasing cost:
///
///   1. **spanning** — a single read that begins with the end of the left
///      contig and finishes with the start of the right one;
///   2. **k-mer walk** — a mini-assembly over the gap's reads "with
///      iteratively increasing k-mer sizes", first left-to-right, then
///      right-to-left;
///   3. **patching** — an acceptable overlap between the two incomplete
///      walks.
namespace hipmer::scaffold {

struct GapClosingConfig {
  /// Starting walk k (the assembly k) and the iterative-increase schedule.
  int k = 31;
  int walk_k_step = 10;
  int max_walk_k = 63;
  /// Anchor length for spanning/patching matches.
  int anchor = 21;
  /// Mates within mean + this*sigma of a gap-facing contig end project
  /// their partner into the gap.
  double reach_sigma = 3.0;
  /// Slack for "alignment touches the contig end".
  int end_slack = 5;
  /// Cap on reads collected per gap (memory guard). Applied after
  /// sort+dedup so the retained set is a pure function of the projected
  /// read set, independent of arrival order / read distribution.
  std::size_t max_reads_per_gap = 512;
  /// Own gaps by the left contig's owner (contig_id % P) instead of
  /// round-robin by gap id. With `--shuffle-reads` the reads aligned to a
  /// contig live on its owner, so projections become self-sends and the
  /// left-flank fetch is local. Perf-only: closures are replicated before
  /// scaffold sequence construction, so ownership cannot change output.
  bool locality_aware_owners = false;
};

/// Replicated description of one gap.
struct GapSpec {
  std::uint64_t gap_id = 0;
  std::uint64_t scaffold_id = 0;
  /// Index of the junction within the scaffold (between placement i and
  /// i+1).
  std::uint32_t junction = 0;
  std::uint32_t left_contig = 0;
  bool left_reversed = false;
  std::uint32_t right_contig = 0;
  bool right_reversed = false;
  float gap_estimate = 0.0f;
};

struct Closure {
  std::uint64_t gap_id = 0;
  bool closed = false;
  /// Method that succeeded: 'S'panning, 'W'alk, 'P'atch, '-' none.
  char method = '-';
  /// Bases between the two contig ends (may be empty when they abut).
  std::string fill;
};

/// Enumerate the positive-gap junctions of `scaffolds` (deterministic;
/// every rank computes the same list from the replicated scaffolds).
[[nodiscard]] std::vector<GapSpec> enumerate_gaps(
    const std::vector<ScaffoldRecord>& scaffolds, double min_gap = 0.5);

class GapCloser {
 public:
  GapCloser(pgas::ThreadTeam& team, GapClosingConfig config);

  /// Collective: project reads into gaps, exchange them, close. Returns the
  /// closures for gaps owned by this rank (gap_id % P, or the left
  /// contig's owner under locality_aware_owners).
  /// `my_reads_by_library[l]` holds this rank's reads of library l — pair
  /// ids are only unique *within* a library.
  [[nodiscard]] std::vector<Closure> run(
      pgas::Rank& rank, const std::vector<GapSpec>& gaps,
      const align::ContigStore& store,
      const std::vector<seq::ReadSetView>& my_reads_by_library,
      const std::vector<align::ReadAlignment>& my_alignments,
      const std::vector<InsertSizeEstimate>& inserts);

  /// Legacy adapter for bare read vectors.
  [[nodiscard]] std::vector<Closure> run(
      pgas::Rank& rank, const std::vector<GapSpec>& gaps,
      const align::ContigStore& store,
      const std::vector<const std::vector<seq::Read>*>& my_reads_by_library,
      const std::vector<align::ReadAlignment>& my_alignments,
      const std::vector<InsertSizeEstimate>& inserts);

 private:
  struct GapWork {
    const GapSpec* spec;
    std::vector<std::string> reads;
  };

  [[nodiscard]] Closure close_gap(pgas::Rank& rank, const GapSpec& gap,
                                  const std::vector<std::string>& reads,
                                  const align::ContigStore& store) const;

  /// Spanning: returns true and sets `fill` on success.
  bool try_spanning(const std::string& flank_left,
                    const std::string& flank_right,
                    const std::vector<std::string>& reads,
                    std::string& fill) const;

  /// Greedy unique-extension walk from the end of `flank_left` toward the
  /// start of `flank_right` using k-mers of the given size. On success
  /// returns the complete bridge (including both flank k-mers) in
  /// `bridge`; on failure leaves the longest partial walk there.
  bool walk(const std::vector<std::string>& reads,
            const std::string& flank_left, const std::string& flank_right,
            int walk_k, std::size_t max_len, std::string& bridge) const;

  pgas::ThreadTeam& team_;
  GapClosingConfig config_;
};

}  // namespace hipmer::scaffold
