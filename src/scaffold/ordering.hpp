#pragma once

#include <cstdint>
#include <vector>

#include "pgas/thread_team.hpp"
#include "scaffold/types.hpp"

/// §4.7 — ordering and orientation of contigs.
///
/// Ties are consolidated per contig end (best-supported link wins) and the
/// implicit tie graph is traversed "by selecting seeds in order of
/// decreasing length (this heuristic tries to lock together first 'long'
/// contigs) and therefore it is inherently serial. We have optimized this
/// component and found that its execution time is insignificant" — the
/// contig graph is orders of magnitude smaller than the k-mer graph. Rank 0
/// runs the traversal; its cost is charged as serial work so the machine
/// model surfaces exactly the overhead the paper discusses for wheat
/// (§5.3: less graph contraction + four scaffolding rounds make this serial
/// component relatively more expensive).
namespace hipmer::scaffold {

struct OrderingConfig {
  /// Only ties that are the mutual best of both their ends are followed.
  bool require_mutual_best = true;
  /// Contigs deeper than this multiple of the median depth are treated as
  /// repeats and never anchor ties (Meraculous behaviour: repeat contigs
  /// attract links from every flanking region and would otherwise absorb
  /// each segment's best link, leaving the unique regions unchained; this
  /// is the §4.1 depth information doing its scaffolding job). 0 disables.
  double max_depth_factor = 3.0;
};

/// (id, length, depth) of a contig — trivially copyable for the gather.
struct ContigLen {
  std::uint64_t id = 0;
  std::uint32_t length = 0;
  float depth = 0.0f;
};

/// Collective. `my_ties` are the ties this rank assessed; `contig_lengths`
/// lists contigs owned by this rank. Returns the scaffold records,
/// replicated on every rank.
[[nodiscard]] std::vector<ScaffoldRecord> order_and_orient(
    pgas::Rank& rank, const std::vector<Tie>& my_ties,
    const std::vector<ContigLen>& contig_lengths,
    const OrderingConfig& config = {});

}  // namespace hipmer::scaffold
