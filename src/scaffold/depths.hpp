#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "align/contig_store.hpp"
#include "kcount/kmer_tally.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/types.hpp"

/// §4.1 — contig depths from exact k-mer counts.
///
/// "First, the k-mers are stored in a distributed hash table where the keys
/// are k-mers and the values are the corresponding counts. For the
/// construction ... we employ ... aggregating stores. Next, each processor
/// is assigned 1/p of the contigs and for every contig, looks up all the
/// contained k-mers and sums up their counts." The read phase needs no
/// synchronization — the table is only read after a barrier — so the probes
/// ride the batched lookup path (aggregated per owner, one message per
/// batch).
///
/// (The traversal already accumulates an average depth opportunistically;
/// the pipeline trusts this module instead, since after bubble merging the
/// compressed paths need fresh depths anyway.)
namespace hipmer::scaffold {

class DepthCalculator {
 public:
  struct SumMerge {
    void operator()(std::uint32_t& a, const std::uint32_t& b) const { a += b; }
  };
  using CountMap = pgas::DistHashMap<seq::KmerT, std::uint32_t,
                                     seq::KmerHashT, SumMerge>;

  DepthCalculator(pgas::ThreadTeam& team, int k, std::size_t expected_kmers,
                  std::size_t flush_threshold = 512);

  /// Collective. `local_ufx` is this rank's k-mer analysis output. Returns
  /// (contig id, mean k-mer depth) for every contig owned by this rank in
  /// `store`, and also writes the depth back into the store's metadata via
  /// the contigs' owner (store is local-mutable only, so each rank updates
  /// its own shard through the returned list at the call site).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> run(
      pgas::Rank& rank,
      const std::vector<std::pair<seq::KmerT, kcount::KmerSummary>>& local_ufx,
      const align::ContigStore& store);

 private:
  int k_;
  std::unique_ptr<CountMap> counts_;
};

}  // namespace hipmer::scaffold
