#include "scaffold/links.hpp"

#include <algorithm>

namespace hipmer::scaffold {

LinkGenerator::LinkGenerator(pgas::ThreadTeam& team, LinkConfig config)
    : config_(config) {
  Map::Config mc;
  mc.global_capacity = std::max<std::size_t>(1024, config.expected_links);
  mc.flush_threshold = config.flush_threshold;
  map_ = std::make_unique<Map>(team, mc);
  map_->set_name("scaffold.links");
}

void LinkGenerator::add_observations(
    pgas::Rank& rank, const std::vector<LinkObservation>& observations) {
  for (const auto& obs : observations) {
    LinkData data;
    if (obs.is_splint) {
      data.splint_n = 1;
    } else {
      data.span_n = 1;
    }
    data.set_gap(obs.gap);
    map_->update_buffered(rank, LinkKey::make(obs.a, obs.b), data);
    rank.stats().add_work();
  }
  map_->flush(rank);
  rank.barrier();
}

std::vector<Tie> LinkGenerator::assess(pgas::Rank& rank) {
  // Candidate keys are local by construction (each rank assesses the shard
  // it owns), but the tie reads still flow through the table's batched
  // lookup path so they share its accounting and semantics with the other
  // read-only phases. Keys are collected first: find_buffered takes the
  // bucket lock, so it must not run inside for_each_local's iteration.
  std::vector<LinkKey> candidates;
  map_->for_each_local(rank, [&](const LinkKey& key, LinkData& /*data*/) {
    candidates.push_back(key);
  });

  std::vector<Tie> ties;
  auto emit = [&](const LinkKey& key, const LinkData* data,
                  std::uint64_t /*tag*/) {
    rank.stats().add_work();
    if (data == nullptr || data->support() < config_.min_support) return;
    Tie tie;
    tie.a = key.lo;
    tie.b = key.hi;
    tie.support = data->support();
    tie.gap = data->mean_gap();
    ties.push_back(tie);
  };
  for (std::size_t i = 0; i < candidates.size(); ++i)
    map_->find_buffered(rank, candidates[i], i, emit);
  map_->process_lookups(rank, emit);
  rank.barrier();
  return ties;
}

}  // namespace hipmer::scaffold
