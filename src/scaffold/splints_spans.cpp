#include "scaffold/splints_spans.hpp"

#include <algorithm>
#include <unordered_map>

namespace hipmer::scaffold {

namespace {

/// End through which the fragment exits the contig past this mate's 3'
/// side, and the outward distance from the mate's 5'-most coordinate.
struct Outward {
  std::uint8_t end;
  std::int32_t distance;
};

Outward outward_of(const align::ReadAlignment& a) {
  if (a.read_fwd) {
    return Outward{1, static_cast<std::int32_t>(a.contig_len) - a.contig_start};
  }
  return Outward{0, a.contig_end};
}

}  // namespace

std::vector<LinkObservation> locate_splints(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    int end_slack) {
  // Group alignments per read (pair, mate); the aligner emits them
  // contiguously but sorting keeps this robust to reordering.
  std::vector<const align::ReadAlignment*> sorted;
  sorted.reserve(my_alignments.size());
  for (const auto& a : my_alignments) sorted.push_back(&a);
  std::sort(sorted.begin(), sorted.end(),
            [](const align::ReadAlignment* x, const align::ReadAlignment* y) {
              if (x->pair_id != y->pair_id) return x->pair_id < y->pair_id;
              if (x->mate != y->mate) return x->mate < y->mate;
              if (x->read_start != y->read_start)
                return x->read_start < y->read_start;
              if (x->contig_id != y->contig_id) return x->contig_id < y->contig_id;
              return x->contig_start < y->contig_start;
            });

  std::vector<LinkObservation> out;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j]->pair_id == sorted[i]->pair_id &&
           sorted[j]->mate == sorted[i]->mate)
      ++j;
    // Adjacent alignment pairs in read order: A leaves contig a through its
    // outgoing end, B enters contig b through its incoming end, and the
    // read intervals abut or overlap.
    for (std::size_t x = i; x + 1 < j; ++x) {
      const auto& A = *sorted[x];
      const auto& B = *sorted[x + 1];
      rank.stats().add_work();
      if (A.contig_id == B.contig_id) continue;
      // A's outgoing end in read direction.
      const bool a_exits = A.read_fwd
                               ? A.touches_contig_end(end_slack)
                               : A.touches_contig_start(end_slack);
      const bool b_enters = B.read_fwd
                                ? B.touches_contig_start(end_slack)
                                : B.touches_contig_end(end_slack);
      if (!a_exits || !b_enters) continue;
      // The read must cover both contigs contiguously (allow a couple of
      // unaligned bases from low-quality boundaries).
      if (B.read_start > A.read_end + 2) continue;

      LinkObservation obs;
      obs.a = ContigEnd{A.contig_id, static_cast<std::uint8_t>(A.read_fwd ? 1 : 0)};
      obs.b = ContigEnd{B.contig_id, static_cast<std::uint8_t>(B.read_fwd ? 0 : 1)};
      // Contigs overlap by the doubly-aligned read interval.
      obs.gap = static_cast<float>(B.read_start - A.read_end);
      obs.is_splint = true;
      out.push_back(obs);
    }
    i = j;
  }
  return out;
}

std::vector<LinkObservation> locate_spans(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    const std::vector<InsertSizeEstimate>& inserts, double full_fraction) {
  // Exchange alignments so both mates of a pair meet on one rank.
  const auto p = static_cast<std::uint64_t>(rank.nranks());
  std::vector<std::vector<align::ReadAlignment>> outgoing(
      static_cast<std::size_t>(rank.nranks()));
  for (const auto& a : my_alignments) {
    if (a.aligned_len() <
        static_cast<std::int32_t>(full_fraction * a.read_len))
      continue;  // only confidently placed mates witness spans
    outgoing[static_cast<std::size_t>(a.pair_id % p)].push_back(a);
    rank.stats().add_work();
  }
  const auto incoming = rank.alltoallv(outgoing);

  struct PairBest {
    align::ReadAlignment mate[2];
    bool have[2] = {false, false};
    bool ambiguous[2] = {false, false};
  };
  // Pair identity must include the library: libraries number their pairs
  // independently, and mixing a pe pair with the same-id mp pair would both
  // fabricate spans and falsely mark mates ambiguous.
  auto pair_key = [](const align::ReadAlignment& a) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.library))
            << 48) |
           (a.pair_id & ((std::uint64_t{1} << 48) - 1));
  };
  std::unordered_map<std::uint64_t, PairBest> pairs;
  pairs.reserve(incoming.size() / 2 + 1);
  // Representative selection uses a total order on alignments so the
  // outcome is independent of arrival order; equal-score placements on
  // different contigs mark the mate ambiguous regardless of which is kept.
  auto prefer = [](const align::ReadAlignment& a,
                   const align::ReadAlignment& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
    return a.contig_start < b.contig_start;
  };
  for (const auto& a : incoming) {
    auto& pb = pairs[pair_key(a)];
    const auto m = static_cast<std::size_t>(a.mate);
    if (!pb.have[m]) {
      pb.mate[m] = a;
      pb.have[m] = true;
    } else if (a.score > pb.mate[m].score) {
      pb.mate[m] = a;
      pb.ambiguous[m] = false;
    } else if (a.score == pb.mate[m].score) {
      if (a.contig_id != pb.mate[m].contig_id) pb.ambiguous[m] = true;
      if (prefer(a, pb.mate[m])) pb.mate[m] = a;
    }
    rank.stats().add_work();
  }

  std::vector<LinkObservation> out;
  for (const auto& [pair_id, pb] : pairs) {
    if (!pb.have[0] || !pb.have[1]) continue;
    if (pb.ambiguous[0] || pb.ambiguous[1]) continue;
    const auto& a = pb.mate[0];
    const auto& b = pb.mate[1];
    if (a.contig_id == b.contig_id) continue;
    const auto lib = static_cast<std::size_t>(a.library);
    if (lib >= inserts.size() || inserts[lib].samples == 0) continue;
    const auto& ins = inserts[lib];

    const Outward oa = outward_of(a);
    const Outward ob = outward_of(b);
    // A mate buried deeper than insert + 3 sigma cannot witness this gap.
    const double reach = ins.mean + 3.0 * ins.stddev;
    if (oa.distance > reach || ob.distance > reach) continue;
    const double gap =
        ins.mean - static_cast<double>(oa.distance) - static_cast<double>(ob.distance);

    LinkObservation obs;
    obs.a = ContigEnd{a.contig_id, oa.end};
    obs.b = ContigEnd{b.contig_id, ob.end};
    obs.gap = static_cast<float>(gap);
    obs.is_splint = false;
    out.push_back(obs);
    rank.stats().add_work();
  }
  return out;
}

}  // namespace hipmer::scaffold
