#include "scaffold/sequence_builder.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

#include "seq/dna.hpp"

namespace hipmer::scaffold {

namespace {

/// Flat wire form for replicating closures and finished scaffold records.
void put_u64(std::vector<std::byte>& buf, std::uint64_t v) {
  const std::size_t old = buf.size();
  buf.resize(old + sizeof v);
  std::memcpy(buf.data() + old, &v, sizeof v);
}

void put_string(std::vector<std::byte>& buf, const std::string& s) {
  put_u64(buf, s.size());
  const std::size_t old = buf.size();
  buf.resize(old + s.size());
  std::memcpy(buf.data() + old, s.data(), s.size());
}

std::uint64_t get_u64(const std::vector<std::byte>& buf, std::size_t& pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data() + pos, sizeof v);
  pos += sizeof v;
  return v;
}

std::string get_string(const std::vector<std::byte>& buf, std::size_t& pos) {
  const std::uint64_t len = get_u64(buf, pos);
  std::string s(reinterpret_cast<const char*>(buf.data() + pos), len);
  pos += len;
  return s;
}

}  // namespace

std::vector<io::FastaRecord> build_scaffold_sequences(
    pgas::Rank& rank, const std::vector<ScaffoldRecord>& scaffolds,
    const align::ContigStore& store, const std::vector<GapSpec>& gaps,
    const std::vector<Closure>& my_closures, ScaffoldStats* stats) {
  const auto p = static_cast<std::uint64_t>(rank.nranks());

  // Replicate closures (small: one fill string per closed gap).
  std::vector<std::byte> closure_blob;
  for (const auto& c : my_closures) {
    put_u64(closure_blob, c.gap_id);
    put_u64(closure_blob, (c.closed ? 1u : 0u) |
                              (static_cast<std::uint64_t>(c.method) << 8));
    put_string(closure_blob, c.fill);
  }
  const auto all_closures_blob = rank.allgatherv(closure_blob);
  std::unordered_map<std::uint64_t, Closure> closures;
  {
    std::size_t pos = 0;
    while (pos < all_closures_blob.size()) {
      Closure c;
      c.gap_id = get_u64(all_closures_blob, pos);
      const std::uint64_t flags = get_u64(all_closures_blob, pos);
      c.closed = (flags & 1) != 0;
      c.method = static_cast<char>((flags >> 8) & 0xff);
      c.fill = get_string(all_closures_blob, pos);
      closures[c.gap_id] = std::move(c);
    }
  }

  // (scaffold, junction) -> gap id.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> gap_index;
  for (const auto& gap : gaps)
    gap_index[{gap.scaffold_id, gap.junction}] = gap.gap_id;

  ScaffoldStats local_stats;
  local_stats.gaps_total = gaps.size();

  // Assemble owned scaffolds.
  std::vector<std::byte> record_blob;
  for (const auto& scaffold : scaffolds) {
    if (scaffold.id % p != static_cast<std::uint64_t>(rank.id())) continue;
    std::string sequence;
    for (std::size_t i = 0; i < scaffold.placements.size(); ++i) {
      const auto& placement = scaffold.placements[i];
      std::string part = store.fetch_all(rank, placement.contig);
      if (placement.reversed) part = seq::revcomp(part);
      rank.stats().add_work();

      if (i == 0) {
        sequence = std::move(part);
        continue;
      }
      const double gap = scaffold.placements[i - 1].gap_after;
      if (gap >= 0.5) {
        auto git = gap_index.find({scaffold.id, static_cast<std::uint32_t>(i - 1)});
        const Closure* closure = nullptr;
        if (git != gap_index.end()) {
          auto cit = closures.find(git->second);
          if (cit != closures.end() && cit->second.closed)
            closure = &cit->second;
        }
        if (closure != nullptr) {
          sequence += closure->fill;
          ++local_stats.gaps_closed;
          switch (closure->method) {
            case 'S': ++local_stats.closed_by_span; break;
            case 'W': ++local_stats.closed_by_walk; break;
            case 'P': ++local_stats.closed_by_patch; break;
            default: break;
          }
        } else {
          sequence.append(
              static_cast<std::size_t>(std::max(1.0, std::round(gap))), 'N');
        }
        sequence += part;
      } else {
        // Overlap (splint evidence): verify and merge.
        const auto overlap = static_cast<std::size_t>(
            std::max(0.0, std::round(-gap)));
        if (overlap > 0 && overlap < part.size() &&
            overlap <= sequence.size() &&
            sequence.compare(sequence.size() - overlap, overlap, part, 0,
                             overlap) == 0) {
          sequence.append(part, overlap, part.size() - overlap);
          ++local_stats.overlap_merges;
        } else {
          sequence += 'N';
          sequence += part;
          ++local_stats.overlap_mismatches;
        }
      }
    }
    put_u64(record_blob, scaffold.id);
    put_string(record_blob, sequence);
  }

  // Replicate the finished records.
  const auto all_records = rank.allgatherv(record_blob);
  std::vector<io::FastaRecord> records;
  {
    std::size_t pos = 0;
    while (pos < all_records.size()) {
      const std::uint64_t id = get_u64(all_records, pos);
      io::FastaRecord rec;
      rec.name = "scaffold_" + std::to_string(id);
      rec.seq = get_string(all_records, pos);
      records.push_back(std::move(rec));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const io::FastaRecord& a, const io::FastaRecord& b) {
              return a.name.size() != b.name.size() ? a.name.size() < b.name.size()
                                                    : a.name < b.name;
            });

  // Always run the reductions so collective participation is identical on
  // every rank regardless of who passes a stats pointer.
  ScaffoldStats global;
  global.gaps_total = local_stats.gaps_total;
  global.gaps_closed = rank.allreduce_sum(local_stats.gaps_closed);
  global.closed_by_span = rank.allreduce_sum(local_stats.closed_by_span);
  global.closed_by_walk = rank.allreduce_sum(local_stats.closed_by_walk);
  global.closed_by_patch = rank.allreduce_sum(local_stats.closed_by_patch);
  global.overlap_merges = rank.allreduce_sum(local_stats.overlap_merges);
  global.overlap_mismatches =
      rank.allreduce_sum(local_stats.overlap_mismatches);
  if (stats != nullptr) *stats = global;
  return records;
}

}  // namespace hipmer::scaffold
