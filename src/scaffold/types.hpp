#pragma once

#include <cstdint>
#include <vector>

/// Shared scaffolding types and the orientation conventions every module
/// below (§4.4–§4.8) relies on.
///
/// **Ends**: contigs are stored in canonical orientation; end 0 is the left
/// (prefix) end, end 1 the right (suffix) end.
///
/// **Outward distance**: for an alignment of a mate on contig c, the
/// fragment continues past the mate's 3' side. If the read aligned forward
/// (`read_fwd`), the fragment exits c through end 1 and the outward
/// distance is `contig_len - contig_start` (5'-most base to the exit end);
/// reversed, it exits end 0 with outward distance `contig_end`. For an FR
/// pair spanning contigs i and j:  insert = out_i + gap + out_j, giving the
/// gap estimate of §4.5.
namespace hipmer::scaffold {

/// (contig, end) — the unit the link/tie machinery connects.
struct ContigEnd {
  std::uint32_t contig = 0;
  std::uint8_t end = 0;  // 0 = left, 1 = right

  friend bool operator==(const ContigEnd& a, const ContigEnd& b) noexcept {
    return a.contig == b.contig && a.end == b.end;
  }
  friend bool operator<(const ContigEnd& a, const ContigEnd& b) noexcept {
    if (a.contig != b.contig) return a.contig < b.contig;
    return a.end < b.end;
  }
  [[nodiscard]] std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(contig) << 1) | end;
  }
};

/// Key for a link between two contig ends, normalized so (lo, hi) ordering
/// is orientation-independent.
struct LinkKey {
  ContigEnd lo;
  ContigEnd hi;

  static LinkKey make(ContigEnd a, ContigEnd b) noexcept {
    return b < a ? LinkKey{b, a} : LinkKey{a, b};
  }
  friend bool operator==(const LinkKey& a, const LinkKey& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

struct LinkKeyHash {
  std::uint64_t operator()(const LinkKey& k) const noexcept;
};

/// Accumulated evidence for one contig-end pair (§4.6): splint support
/// (reads overlapping both contig ends, implying the contigs overlap) and
/// span support (mate pairs, implying a gap of roughly gap_sum/span_n).
///
/// Gap sums are held in 1/16-base fixed point: concurrent merges apply in
/// whatever order the ranks race, and integer addition keeps the result
/// exactly order-independent where floating-point accumulation would
/// jitter in the last bits (and flip downstream rounding/tie-breaks).
struct LinkData {
  static constexpr double kGapScale = 16.0;

  std::uint32_t splint_n = 0;
  std::uint32_t span_n = 0;
  /// Sum of per-observation gap estimates, scaled by kGapScale
  /// (negative = overlap).
  std::int64_t gap_sum_q = 0;

  void set_gap(double gap) noexcept {
    gap_sum_q = static_cast<std::int64_t>(gap * kGapScale);
  }
  void merge(const LinkData& o) noexcept {
    splint_n += o.splint_n;
    span_n += o.span_n;
    gap_sum_q += o.gap_sum_q;
  }
  [[nodiscard]] std::uint32_t support() const noexcept {
    return splint_n + span_n;
  }
  [[nodiscard]] double mean_gap() const noexcept {
    const auto n = support();
    return n == 0 ? 0.0
                  : static_cast<double>(gap_sum_q) / (kGapScale * n);
  }
};

struct LinkDataMerge {
  void operator()(LinkData& existing, const LinkData& incoming) const {
    existing.merge(incoming);
  }
};

/// A consolidated, qualified link ("tie", §4.7).
struct Tie {
  ContigEnd a;
  ContigEnd b;
  std::uint32_t support = 0;
  /// Estimated gap between the ends (negative = overlap).
  double gap = 0.0;
};

/// One contig's placement inside a scaffold.
struct Placement {
  std::uint32_t contig = 0;
  bool reversed = false;
  /// Estimated gap to the next placement (unused for the last one).
  double gap_after = 0.0;
};

struct ScaffoldRecord {
  std::uint64_t id = 0;
  std::vector<Placement> placements;
};

}  // namespace hipmer::scaffold
