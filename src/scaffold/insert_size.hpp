#pragma once

#include <cstdint>
#include <vector>

#include "align/alignment.hpp"
#include "pgas/thread_team.hpp"

/// §4.4 — insert size estimation of read libraries.
///
/// "We use full length alignments in which both ends of a pair are placed
/// within a common contig, and calculate the insert size. ... parallelized
/// by having p processors build local histograms of distinct sampled
/// alignments and eventually merging these p local histograms to a global
/// one."
namespace hipmer::scaffold {

struct InsertSizeEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t samples = 0;
};

/// Collective. `my_alignments` are the alignments this rank produced for
/// library `library`; pairs whose mates landed on different ranks are
/// simply not sampled (sampling is the paper's approach too). Requires
/// full-length alignments (>= `full_fraction` of the read) on a common
/// contig in FR orientation.
[[nodiscard]] InsertSizeEstimate estimate_insert_size(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    int library, double full_fraction = 0.95);

}  // namespace hipmer::scaffold
