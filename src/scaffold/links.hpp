#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "scaffold/splints_spans.hpp"
#include "scaffold/types.hpp"

/// §4.6 — contig link generation.
///
/// "Parallelizing this operation requires a distributed hash table, where
/// the keys are pairs of contigs and values are the splint/overlap [and
/// span/gap] information. Each processor is assigned 1/p of the splints
/// and stores them in the distributed hash table [with] the aggregating
/// stores optimization. ... each processor iterates over its local buckets
/// to further assess/count the links."
namespace hipmer::scaffold {

struct LinkConfig {
  /// Minimum supporting observations for a link to become a tie.
  std::uint32_t min_support = 2;
  std::size_t flush_threshold = 512;
  /// Expected number of distinct contig-end pairs (sizes the table).
  std::size_t expected_links = 4096;
};

class LinkGenerator {
 public:
  using Map = pgas::DistHashMap<LinkKey, LinkData, LinkKeyHash, LinkDataMerge>;

  LinkGenerator(pgas::ThreadTeam& team, LinkConfig config);

  /// Collective: pour this rank's splint/span observations into the table.
  void add_observations(pgas::Rank& rank,
                        const std::vector<LinkObservation>& observations);

  /// Collective (call once after all add_observations): each rank assesses
  /// its local buckets and returns the qualified ties it owns.
  [[nodiscard]] std::vector<Tie> assess(pgas::Rank& rank);

 private:
  LinkConfig config_;
  std::unique_ptr<Map> map_;
};

}  // namespace hipmer::scaffold
