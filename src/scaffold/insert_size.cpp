#include "scaffold/insert_size.hpp"

#include <cmath>
#include <unordered_map>

namespace hipmer::scaffold {

InsertSizeEstimate estimate_insert_size(
    pgas::Rank& rank, const std::vector<align::ReadAlignment>& my_alignments,
    int library, double full_fraction) {
  // Best full-length alignment per (pair, mate) on this rank.
  struct PairBest {
    align::ReadAlignment mate[2];
    bool have[2] = {false, false};
  };
  std::unordered_map<std::uint64_t, PairBest> pairs;
  for (const auto& a : my_alignments) {
    if (a.library != library) continue;
    if (a.aligned_len() <
        static_cast<std::int32_t>(full_fraction * a.read_len))
      continue;
    auto& pb = pairs[a.pair_id];
    const auto m = static_cast<std::size_t>(a.mate);
    auto prefer = [](const align::ReadAlignment& x,
                     const align::ReadAlignment& y) {
      if (x.score != y.score) return x.score > y.score;
      if (x.contig_id != y.contig_id) return x.contig_id < y.contig_id;
      return x.contig_start < y.contig_start;
    };
    if (!pb.have[m] || prefer(a, pb.mate[m])) {
      pb.mate[m] = a;
      pb.have[m] = true;
    }
    rank.stats().add_work();
  }

  // Insert = 5'-to-5' distance for FR pairs on a common contig.
  double sum = 0.0;
  double sq_sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [pair_id, pb] : pairs) {
    if (!pb.have[0] || !pb.have[1]) continue;
    const auto& a = pb.mate[0];
    const auto& b = pb.mate[1];
    if (a.contig_id != b.contig_id) continue;
    if (a.read_fwd == b.read_fwd) continue;  // FR libraries only
    const auto& fwd = a.read_fwd ? a : b;
    const auto& rev = a.read_fwd ? b : a;
    const std::int64_t insert = rev.contig_end - fwd.contig_start;
    if (insert <= 0) continue;
    sum += static_cast<double>(insert);
    sq_sum += static_cast<double>(insert) * static_cast<double>(insert);
    ++n;
    rank.stats().add_work();
  }

  // Merge the per-rank "histograms" (sufficient statistics).
  const double global_sum = rank.allreduce_sum(sum);
  const double global_sq = rank.allreduce_sum(sq_sum);
  const std::uint64_t global_n = rank.allreduce_sum(n);

  InsertSizeEstimate est;
  est.samples = global_n;
  if (global_n > 0) {
    est.mean = global_sum / static_cast<double>(global_n);
    const double var =
        global_sq / static_cast<double>(global_n) - est.mean * est.mean;
    est.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  return est;
}

}  // namespace hipmer::scaffold
