#pragma once

#include <string>
#include <vector>

#include "align/contig_store.hpp"
#include "io/fasta.hpp"
#include "pgas/thread_team.hpp"
#include "scaffold/gap_closing.hpp"
#include "scaffold/types.hpp"

/// Materialize scaffold records into DNA sequences.
///
/// Positive gaps take the gap closer's fill when closed, or a run of 'N's
/// sized by the gap estimate otherwise (the standard representation of an
/// unclosed scaffold gap). Negative gaps (splint overlaps) merge the
/// overlapping ends after verifying the sequences agree; on disagreement a
/// single 'N' marks the uncertain junction instead of fabricating bases.
namespace hipmer::scaffold {

struct ScaffoldStats {
  std::uint64_t gaps_total = 0;
  std::uint64_t gaps_closed = 0;
  std::uint64_t closed_by_span = 0;
  std::uint64_t closed_by_walk = 0;
  std::uint64_t closed_by_patch = 0;
  std::uint64_t overlap_merges = 0;
  std::uint64_t overlap_mismatches = 0;
};

/// Collective: builds the final sequences. Scaffolds with id % P == rank
/// are assembled by this rank; the full record set is replicated on return
/// (assemblies at this scale fit comfortably). `my_closures` are this
/// rank's gap-closing results; they are exchanged internally.
[[nodiscard]] std::vector<io::FastaRecord> build_scaffold_sequences(
    pgas::Rank& rank, const std::vector<ScaffoldRecord>& scaffolds,
    const align::ContigStore& store, const std::vector<GapSpec>& gaps,
    const std::vector<Closure>& my_closures, ScaffoldStats* stats = nullptr);

}  // namespace hipmer::scaffold
