#include "scaffold/bubbles.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "dbg/contig_wire.hpp"
#include "seq/dna.hpp"
#include "util/hash.hpp"

namespace hipmer::scaffold {

namespace {

/// A directed merge edge between two contig ends (replicated; bubble counts
/// are tiny relative to the k-mer graph).
struct MergeEdge {
  std::uint32_t from_contig;
  std::uint8_t from_end;
  std::uint32_t to_contig;
  std::uint8_t to_end;
};

std::uint64_t end_key(std::uint32_t contig, std::uint8_t end) {
  return (static_cast<std::uint64_t>(contig) << 1) | end;
}

/// Contig oriented for chain stitching.
std::string oriented_seq(const dbg::Contig& contig, bool reversed) {
  return reversed ? seq::revcomp(contig.seq) : contig.seq;
}

dbg::TermInfo oriented_term(const dbg::Contig& contig, bool reversed,
                            bool left_side) {
  if (!reversed) return left_side ? contig.left : contig.right;
  return left_side ? contig.right : contig.left;
}

}  // namespace

BubbleMerger::BubbleMerger(pgas::ThreadTeam& team, BubbleConfig config,
                           std::size_t expected_contigs)
    : team_(team), config_(config) {
  JunctionMap::Config jc;
  jc.global_capacity = std::max<std::size_t>(1024, expected_contigs * 2);
  jc.flush_threshold = config.flush_threshold;
  junctions_ = std::make_unique<JunctionMap>(team, jc);
  junctions_->set_name("scaffold.junctions");
  ClaimMap::Config cc;
  cc.global_capacity = std::max<std::size_t>(1024, expected_contigs);
  cc.flush_threshold = config.flush_threshold;
  claims_ = std::make_unique<ClaimMap>(team, cc);
  claims_->set_name("scaffold.bubble_claims");
  claim_rmw_ = claims_->register_rmw<ClaimTicket, ClaimCode>(
      [](VState& v, const ClaimTicket& a) -> ClaimCode {
        if (v.state == 2) return ClaimCode::kComplete;
        if (v.state == 1) {
          if (v.ticket == a.ticket) return ClaimCode::kSelf;
          return v.ticket < a.ticket ? ClaimCode::kBusyLower
                                     : ClaimCode::kBusyHigher;
        }
        v.state = 1;
        v.ticket = a.ticket;
        return ClaimCode::kOk;
      });
  release_rmw_ = claims_->register_rmw<ReleaseArgs, std::uint8_t>(
      [](VState& v, const ReleaseArgs& a) -> std::uint8_t {
        // Only touch vertices still held by the expected ticket (a spinning
        // winner may already have re-claimed released ones).
        if (v.state == 1 && v.ticket == a.ticket) {
          v.state = a.state;
          v.ticket = a.new_ticket;
        }
        return 0;
      });
}

BubbleMerger::~BubbleMerger() = default;

std::vector<dbg::Contig> BubbleMerger::run(pgas::Rank& rank,
                                           const align::ContigStore& store) {
  // --- 1. Junction map: every junction-bearing contig end registers. ---
  store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& contig) {
    for (int end = 0; end < 2; ++end) {
      const dbg::TermInfo& term = end == 0 ? contig.left : contig.right;
      if (!term.has_junction) continue;
      JunctionGroup group{};
      group.count = 1;
      group.entries[0] = JunctionEntry{static_cast<std::uint32_t>(id),
                                       static_cast<std::uint8_t>(end),
                                       term.code};
      junctions_->update_buffered(rank, term.junction, group);
      rank.stats().add_work();
    }
    // Seed the claim map while we are here.
    claims_->update_buffered(rank, id, VState{});
  });
  junctions_->flush(rank);
  claims_->flush(rank);
  rank.barrier();

  // --- 2. Bubble resolution on local junction buckets. ---
  std::vector<MergeEdge> my_edges;
  std::vector<std::uint32_t> my_dead;
  junctions_->for_each_local(rank, [&](const seq::KmerT&, JunctionGroup& group) {
    rank.stats().add_work();
    if (group.overflow != 0 || group.count != 3) return;
    // Clean bubble: one fork flank + two neighbor-terminated paths.
    const JunctionEntry* flank = nullptr;
    const JunctionEntry* paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 0; i < group.count; ++i) {
      const auto& e = group.entries[i];
      if (e.code == 'F' && flank == nullptr) {
        flank = &e;
      } else if (e.code == 'N' && npaths < 2) {
        paths[npaths++] = &e;
      } else {
        return;  // anything else: not a clean bubble
      }
    }
    if (flank == nullptr || npaths != 2) return;
    if (paths[0]->contig == paths[1]->contig ||
        paths[0]->contig == flank->contig ||
        paths[1]->contig == flank->contig)
      return;

    const auto mu = store.meta(rank, paths[0]->contig);
    const auto mv = store.meta(rank, paths[1]->contig);
    const double len_skew =
        std::abs(static_cast<double>(mu.length) - static_cast<double>(mv.length)) /
        std::max<double>(1.0, std::max(mu.length, mv.length));
    if (len_skew > config_.max_length_skew) return;

    // Winner: deeper path; deterministic tie-break by id — both junctions
    // of the bubble reach the same verdict independently.
    const JunctionEntry* winner = paths[0];
    const JunctionEntry* loser = paths[1];
    if (mv.avg_depth > mu.avg_depth ||
        (mv.avg_depth == mu.avg_depth && paths[1]->contig < paths[0]->contig)) {
      std::swap(winner, loser);
    }
    my_edges.push_back(MergeEdge{flank->contig, flank->end, winner->contig,
                                 winner->end});
    my_dead.push_back(loser->contig);
  });

  // Replicate the (tiny) edge list and dead set.
  const auto all_edges = rank.allgatherv(my_edges);
  const auto all_dead = rank.allgatherv(my_dead);
  std::unordered_set<std::uint32_t> dead(all_dead.begin(), all_dead.end());
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint8_t>> edges;
  edges.reserve(all_edges.size() * 2);
  std::uint64_t merged_pairs = 0;
  for (const auto& e : all_edges) {
    edges[end_key(e.from_contig, e.from_end)] = {e.to_contig, e.to_end};
    edges[end_key(e.to_contig, e.to_end)] = {e.from_contig, e.from_end};
    ++merged_pairs;
  }
  if (rank.is_root()) bubbles_merged_ = merged_pairs;

  // --- 3. Speculative chain traversal. ---
  std::vector<std::uint64_t> seeds;
  store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig&) {
    if (!dead.contains(static_cast<std::uint32_t>(id))) seeds.push_back(id);
  });

  struct ChainLink {
    std::uint32_t contig;
    bool reversed;
  };
  enum class Claim { kOk, kBusyLower, kBusyHigher, kSelf, kComplete, kDead };
  std::uint64_t counter = 0;
  auto next_ticket = [&]() {
    return ++counter * static_cast<std::uint64_t>(rank.nranks()) +
           static_cast<std::uint64_t>(rank.id()) + 1;
  };
  auto try_claim = [&](std::uint64_t contig, std::uint64_t ticket) -> Claim {
    auto result =
        claims_->rmw<ClaimCode>(rank, contig, claim_rmw_, ClaimTicket{ticket});
    if (!result.has_value()) return Claim::kDead;
    switch (*result) {
      case ClaimCode::kBusyLower:
        return Claim::kBusyLower;
      case ClaimCode::kBusyHigher:
        return Claim::kBusyHigher;
      case ClaimCode::kSelf:
        return Claim::kSelf;
      case ClaimCode::kComplete:
        return Claim::kComplete;
      case ClaimCode::kOk:
        break;
    }
    return Claim::kOk;
  };
  auto release = [&](const std::vector<ChainLink>& chain, std::uint8_t state,
                     std::uint64_t ticket, std::uint64_t new_ticket) {
    for (const auto& link : chain) {
      claims_->rmw<std::uint8_t>(rank, static_cast<std::uint64_t>(link.contig),
                                 release_rmw_,
                                 ReleaseArgs{state, ticket, new_ticket});
    }
  };
  // Extend the chain rightward through merge edges. Returns false on
  // conflict-abort.
  auto grow_right = [&](std::vector<ChainLink>& chain,
                        std::uint64_t ticket) -> bool {
    while (true) {
      rank.stats().add_work();
      const ChainLink& tail = chain.back();
      const auto leading =
          end_key(tail.contig, static_cast<std::uint8_t>(tail.reversed ? 0 : 1));
      auto it = edges.find(leading);
      if (it == edges.end()) return true;
      const auto [peer_contig, peer_end] = it->second;
      while (true) {
        const Claim claim = try_claim(peer_contig, ticket);
        if (claim == Claim::kOk) break;
        if (claim == Claim::kBusyHigher) {
          rank.progress();
          std::this_thread::yield();
          continue;
        }
        if (claim == Claim::kBusyLower) return false;
        // kSelf (cycle) / kComplete / kDead: stop cleanly.
        return true;
      }
      chain.push_back(ChainLink{peer_contig, peer_end == 1});
    }
  };

  std::vector<std::vector<ChainLink>> my_chains;
  std::deque<std::uint64_t> pending(seeds.begin(), seeds.end());
  while (!pending.empty()) {
    const std::uint64_t seed = pending.front();
    pending.pop_front();
    const std::uint64_t ticket = next_ticket();
    const Claim sc = try_claim(seed, ticket);
    if (sc == Claim::kComplete || sc == Claim::kDead) continue;
    if (sc != Claim::kOk) {
      pending.push_back(seed);
      rank.progress();
      std::this_thread::yield();
      continue;
    }
    std::vector<ChainLink> chain{
        ChainLink{static_cast<std::uint32_t>(seed), false}};
    if (!grow_right(chain, ticket)) {
      release(chain, 0, ticket, 0);
      pending.push_back(seed);
      rank.progress();
      std::this_thread::yield();
      continue;
    }
    // Flip and grow the other way.
    std::reverse(chain.begin(), chain.end());
    for (auto& link : chain) link.reversed = !link.reversed;
    if (!grow_right(chain, ticket)) {
      release(chain, 0, ticket, 0);
      pending.push_back(seed);
      rank.progress();
      std::this_thread::yield();
      continue;
    }
    release(chain, 2, ticket, ticket);
    my_chains.push_back(std::move(chain));
  }
  rank.barrier();

  // --- 4. Compress chains to sequences. ---
  std::vector<dbg::Contig> merged;
  merged.reserve(my_chains.size());
  for (const auto& chain : my_chains) {
    std::vector<dbg::Contig> records;
    records.reserve(chain.size());
    for (const auto& link : chain)
      records.push_back(store.fetch_record(rank, link.contig));

    dbg::Contig out;
    out.seq = oriented_seq(records[0], chain[0].reversed);
    double depth_weight =
        records[0].avg_depth * static_cast<double>(records[0].seq.size());
    bool stitched = true;
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const std::string next = oriented_seq(records[i], chain[i].reversed);
      const auto overlap = static_cast<std::size_t>(config_.k - 1);
      // Contigs at a junction share k-1 bases: verify before trimming.
      if (next.size() <= overlap ||
          out.seq.size() < overlap ||
          out.seq.compare(out.seq.size() - overlap, overlap, next, 0,
                          overlap) != 0) {
        stitched = false;
        break;
      }
      out.seq.append(next, overlap, next.size() - overlap);
      depth_weight +=
          records[i].avg_depth * static_cast<double>(records[i].seq.size());
      rank.stats().add_work();
    }
    if (!stitched) {
      // Defensive: emit members unmerged rather than fabricate sequence.
      for (std::size_t i = 0; i < chain.size(); ++i)
        merged.push_back(std::move(records[i]));
      continue;
    }
    out.avg_depth = depth_weight / static_cast<double>(out.seq.size());
    out.left = oriented_term(records.front(), chain.front().reversed, true);
    out.right = oriented_term(records.back(), chain.back().reversed, false);
    // Canonical orientation, matching the traversal's convention.
    std::string rc = seq::revcomp(out.seq);
    if (rc < out.seq) {
      out.seq = std::move(rc);
      std::swap(out.left, out.right);
    }
    merged.push_back(std::move(out));
  }

  // Deterministic dense ids (same scheme as the traversal's renumbering):
  // redistribute by sequence hash, sort, exclusive-scan. Which rank
  // completed which chain is schedule-dependent, and downstream tie-breaks
  // key on ids.
  {
    std::vector<std::vector<std::byte>> outgoing(
        static_cast<std::size_t>(rank.nranks()));
    for (const auto& contig : merged) {
      const auto h = util::hash_string(contig.seq);
      // Range partition on the hash (not modulo): the concatenation of the
      // per-rank sorted shards is then globally sorted by (hash, seq), so
      // the assigned ids do not depend on the rank count.
      const auto owner = static_cast<std::size_t>(
          (static_cast<unsigned __int128>(h) *
           static_cast<unsigned __int128>(rank.nranks())) >>
          64);
      dbg::serialize_contig(outgoing[owner], contig);
    }
    merged = dbg::deserialize_contigs(rank.alltoallv(outgoing));
    std::sort(merged.begin(), merged.end(),
              [](const dbg::Contig& a, const dbg::Contig& b) {
                const auto ha = util::hash_string(a.seq);
                const auto hb = util::hash_string(b.seq);
                if (ha != hb) return ha < hb;
                return a.seq < b.seq;
              });
  }
  const auto base = rank.exscan_sum<std::uint64_t>(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) merged[i].id = base + i;
  rank.barrier();
  return merged;
}

}  // namespace hipmer::scaffold
