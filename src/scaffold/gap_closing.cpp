#include "scaffold/gap_closing.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "seq/dna.hpp"
#include "seq/kmer_scanner.hpp"
#include "seq/read_name.hpp"
#include "seq/types.hpp"

namespace hipmer::scaffold {

namespace {

std::uint64_t end_key(std::uint32_t contig, std::uint8_t end) {
  return (static_cast<std::uint64_t>(contig) << 1) | end;
}

/// Wire record for shipping a read to a gap owner.
struct WireRead {
  std::uint64_t gap_id;
  std::uint16_t len;
};

void serialize_read(std::vector<std::byte>& buf, std::uint64_t gap_id,
                    std::string_view seq) {
  WireRead header{gap_id, static_cast<std::uint16_t>(seq.size())};
  const std::size_t old = buf.size();
  buf.resize(old + sizeof header + seq.size());
  std::memcpy(buf.data() + old, &header, sizeof header);
  std::memcpy(buf.data() + old + sizeof header, seq.data(), seq.size());
}

}  // namespace

std::vector<GapSpec> enumerate_gaps(const std::vector<ScaffoldRecord>& scaffolds,
                                    double min_gap) {
  std::vector<GapSpec> gaps;
  for (const auto& scaffold : scaffolds) {
    for (std::size_t i = 0; i + 1 < scaffold.placements.size(); ++i) {
      const auto& left = scaffold.placements[i];
      const auto& right = scaffold.placements[i + 1];
      if (left.gap_after < min_gap) continue;  // overlaps close by merging
      GapSpec gap;
      gap.gap_id = gaps.size();
      gap.scaffold_id = scaffold.id;
      gap.junction = static_cast<std::uint32_t>(i);
      gap.left_contig = left.contig;
      gap.left_reversed = left.reversed;
      gap.right_contig = right.contig;
      gap.right_reversed = right.reversed;
      gap.gap_estimate = static_cast<float>(left.gap_after);
      gaps.push_back(gap);
    }
  }
  return gaps;
}

GapCloser::GapCloser(pgas::ThreadTeam& team, GapClosingConfig config)
    : team_(team), config_(config) {}

std::vector<Closure> GapCloser::run(
    pgas::Rank& rank, const std::vector<GapSpec>& gaps,
    const align::ContigStore& store,
    const std::vector<const std::vector<seq::Read>*>& my_reads_by_library,
    const std::vector<align::ReadAlignment>& my_alignments,
    const std::vector<InsertSizeEstimate>& inserts) {
  std::vector<seq::ReadSetView> views;
  views.reserve(my_reads_by_library.size());
  for (const auto* reads : my_reads_by_library) views.emplace_back(*reads);
  return run(rank, gaps, store, views, my_alignments, inserts);
}

std::vector<Closure> GapCloser::run(
    pgas::Rank& rank, const std::vector<GapSpec>& gaps,
    const align::ContigStore& store,
    const std::vector<seq::ReadSetView>& my_reads_by_library,
    const std::vector<align::ReadAlignment>& my_alignments,
    const std::vector<InsertSizeEstimate>& inserts) {
  const auto p = static_cast<std::uint64_t>(rank.nranks());
  // Gap ownership: round-robin by id, or the left contig's owner when the
  // shuffle has co-located aligned reads with their contigs.
  auto gap_owner = [&](const GapSpec& gap) {
    return config_.locality_aware_owners
               ? static_cast<std::uint64_t>(gap.left_contig) % p
               : gap.gap_id % p;
  };
  std::unordered_map<std::uint64_t, std::uint64_t> owner_of_gap;
  owner_of_gap.reserve(gaps.size());
  for (const auto& gap : gaps) owner_of_gap[gap.gap_id] = gap_owner(gap);

  // Gap-facing contig ends -> gap id (replicated, built from replicated
  // scaffolds).
  std::unordered_map<std::uint64_t, std::uint64_t> gap_of_end;
  gap_of_end.reserve(gaps.size() * 2);
  for (const auto& gap : gaps) {
    gap_of_end[end_key(gap.left_contig, gap.left_reversed ? 0 : 1)] =
        gap.gap_id;
    gap_of_end[end_key(gap.right_contig, gap.right_reversed ? 1 : 0)] =
        gap.gap_id;
  }

  // Index this rank's reads by (library, pair, mate) for mate projection —
  // pair ids repeat across libraries.
  auto read_key = [](int library, std::uint64_t pair_id, int mate) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(library))
            << 48) |
           ((pair_id & ((std::uint64_t{1} << 47) - 1)) << 1) |
           static_cast<std::uint64_t>(mate);
  };
  struct ReadRef {
    std::uint32_t lib;
    std::uint32_t idx;
  };
  std::unordered_map<std::uint64_t, ReadRef> read_by_key;
  for (std::size_t lib = 0; lib < my_reads_by_library.size(); ++lib) {
    const auto& set = my_reads_by_library[lib];
    for (std::size_t i = 0; i < set.size(); ++i) {
      std::uint64_t pair_id = 0;
      int mate = 0;
      if (seq::parse_read_name(set.name(i), pair_id, mate))
        read_by_key[read_key(static_cast<int>(lib), pair_id, mate)] =
            ReadRef{static_cast<std::uint32_t>(lib),
                    static_cast<std::uint32_t>(i)};
    }
  }
  std::string seq_scratch;
  auto seq_of = [&](const ReadRef& ref) {
    return my_reads_by_library[ref.lib].seq(ref.idx, seq_scratch);
  };

  // --- Project reads into gaps ("the alignments are processed in parallel
  // and projected into the gaps"). ---
  std::vector<std::vector<std::byte>> outgoing(static_cast<std::size_t>(p));
  auto send_read = [&](std::uint64_t gap_id, std::string_view read_seq) {
    serialize_read(
        outgoing[static_cast<std::size_t>(owner_of_gap.at(gap_id))], gap_id,
        read_seq);
  };
  for (const auto& a : my_alignments) {
    rank.stats().add_work();
    const auto kit = read_by_key.find(read_key(a.library, a.pair_id, a.mate));

    // (1) Overhang: the read extends past a gap-facing contig end.
    if (kit != read_by_key.end()) {
      const bool hangs_right = a.read_fwd
                                   ? (a.read_end < a.read_len &&
                                      a.touches_contig_end(config_.end_slack))
                                   : (a.read_start > 0 &&
                                      a.touches_contig_end(config_.end_slack));
      const bool hangs_left = a.read_fwd
                                  ? (a.read_start > 0 &&
                                     a.touches_contig_start(config_.end_slack))
                                  : (a.read_end < a.read_len &&
                                     a.touches_contig_start(config_.end_slack));
      if (hangs_right) {
        auto it = gap_of_end.find(end_key(a.contig_id, 1));
        if (it != gap_of_end.end()) send_read(it->second, seq_of(kit->second));
      }
      if (hangs_left) {
        auto it = gap_of_end.find(end_key(a.contig_id, 0));
        if (it != gap_of_end.end()) send_read(it->second, seq_of(kit->second));
      }
    }

    // (2) Mate projection: this mate anchors pointing at a gap within
    // insert reach; its partner likely lies inside the gap.
    const auto lib = static_cast<std::size_t>(a.library);
    if (lib < inserts.size() && inserts[lib].samples > 0) {
      const auto& ins = inserts[lib];
      const std::uint8_t exit_end = a.read_fwd ? 1 : 0;
      const std::int32_t outward =
          a.read_fwd ? static_cast<std::int32_t>(a.contig_len) - a.contig_start
                     : a.contig_end;
      if (outward <=
          static_cast<std::int32_t>(ins.mean + config_.reach_sigma * ins.stddev)) {
        auto it = gap_of_end.find(end_key(a.contig_id, exit_end));
        if (it != gap_of_end.end()) {
          auto rit =
              read_by_key.find(read_key(a.library, a.pair_id, 1 - a.mate));
          if (rit != read_by_key.end())
            send_read(it->second, seq_of(rit->second));
        }
      }
    }
  }
  const auto incoming = rank.alltoallv(outgoing);

  // Collect reads per owned gap.
  std::unordered_map<std::uint64_t, std::vector<std::string>> gap_reads;
  std::size_t pos = 0;
  while (pos + sizeof(WireRead) <= incoming.size()) {
    WireRead header;
    std::memcpy(&header, incoming.data() + pos, sizeof header);
    pos += sizeof header;
    gap_reads[header.gap_id].emplace_back(
        reinterpret_cast<const char*>(incoming.data() + pos), header.len);
    pos += header.len;
  }

  // Canonical read order per gap: closure methods scan reads linearly
  // (spanning takes the first hit), so sorting + deduping makes the result
  // a function of the read *set*, independent of arrival order. The memory
  // cap truncates only after that, so what survives it is equally
  // order-independent (read redistribution must not change closures).
  for (auto& [gap_id, bucket] : gap_reads) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    if (bucket.size() > config_.max_reads_per_gap)
      bucket.resize(config_.max_reads_per_gap);
  }

  // --- Close owned gaps (embarrassingly parallel). ---
  std::vector<Closure> closures;
  for (const auto& gap : gaps) {
    if (owner_of_gap.at(gap.gap_id) != static_cast<std::uint64_t>(rank.id()))
      continue;
    static const std::vector<std::string> kNone;
    auto it = gap_reads.find(gap.gap_id);
    closures.push_back(
        close_gap(rank, gap, it == gap_reads.end() ? kNone : it->second, store));
  }
  rank.barrier();
  return closures;
}

bool GapCloser::try_spanning(const std::string& flank_left,
                             const std::string& flank_right,
                             const std::vector<std::string>& reads,
                             std::string& fill) const {
  const auto anchor = static_cast<std::size_t>(config_.anchor);
  if (flank_left.size() < anchor || flank_right.size() < anchor) return false;
  const std::string left_anchor = flank_left.substr(flank_left.size() - anchor);
  const std::string right_anchor = flank_right.substr(0, anchor);
  for (const auto& read : reads) {
    for (const std::string& r : {read, seq::revcomp(read)}) {
      const std::size_t i = r.find(left_anchor);
      if (i == std::string::npos) continue;
      const std::size_t after = i + anchor;
      const std::size_t j = r.find(right_anchor, after);
      if (j == std::string::npos) continue;
      fill = r.substr(after, j - after);
      return true;
    }
  }
  return false;
}

bool GapCloser::walk(const std::vector<std::string>& reads,
                     const std::string& flank_left,
                     const std::string& flank_right, int walk_k,
                     std::size_t max_len, std::string& bridge) const {
  using seq::KmerT;
  const auto kw = static_cast<std::size_t>(walk_k);
  if (flank_left.size() < kw || flank_right.size() < kw) return false;

  // Local mini k-mer table over the gap reads plus the flanks themselves.
  struct Ext {
    std::uint16_t left[4] = {0, 0, 0, 0};
    std::uint16_t right[4] = {0, 0, 0, 0};
  };
  std::unordered_map<KmerT, Ext, seq::KmerHashT> table;
  auto add_seq = [&](std::string_view s) {
    for (seq::KmerScanner<KmerT::kMaxK> it(s, walk_k); !it.done(); it.next()) {
      auto& ext = table[it.canonical()];
      const std::size_t i = it.position();
      const bool flipped = it.is_flipped();
      if (i > 0) {
        const auto code = seq::base_to_code(s[i - 1]);
        if (code != seq::kBaseInvalid) {
          if (!flipped) ++ext.left[code];
          else ++ext.right[seq::complement_code(code)];
        }
      }
      const std::size_t ri = i + kw;
      if (ri < s.size()) {
        const auto code = seq::base_to_code(s[ri]);
        if (code != seq::kBaseInvalid) {
          if (!flipped) ++ext.right[code];
          else ++ext.left[seq::complement_code(code)];
        }
      }
    }
  };
  for (const auto& read : reads) add_seq(read);
  add_seq(flank_left);
  add_seq(flank_right);

  const std::string target = flank_right.substr(0, kw);
  bridge = flank_left.substr(flank_left.size() - kw);
  KmerT cur = KmerT::from_string(bridge);
  while (bridge.size() < max_len) {
    if (bridge.compare(bridge.size() - kw, kw, target) == 0) return true;
    const bool flipped = !cur.is_canonical();
    auto it = table.find(flipped ? cur.revcomp() : cur);
    if (it == table.end()) return false;
    // Unique extension in the walking direction.
    const std::uint16_t* counts = flipped ? it->second.left : it->second.right;
    int chosen = -1;
    for (int b = 0; b < 4; ++b) {
      if (counts[b] == 0) continue;
      if (chosen >= 0) return false;  // fork: ambiguous, stop
      chosen = b;
    }
    if (chosen < 0) return false;  // dead end
    const auto code = static_cast<std::uint8_t>(
        flipped ? seq::complement_code(static_cast<std::uint8_t>(chosen))
                : static_cast<std::uint8_t>(chosen));
    bridge.push_back(seq::code_to_base(code));
    cur = cur.shifted_left(code);
  }
  return false;
}

Closure GapCloser::close_gap(pgas::Rank& rank, const GapSpec& gap,
                             const std::vector<std::string>& reads,
                             const align::ContigStore& store) const {
  Closure closure;
  closure.gap_id = gap.gap_id;

  // Oriented flank sequences (scaffold left-to-right frame).
  const std::size_t flank_len =
      std::max<std::size_t>(static_cast<std::size_t>(2 * config_.max_walk_k), 128);
  std::string left_seq = store.fetch_all(rank, gap.left_contig);
  if (gap.left_reversed) left_seq = seq::revcomp(left_seq);
  std::string right_seq = store.fetch_all(rank, gap.right_contig);
  if (gap.right_reversed) right_seq = seq::revcomp(right_seq);
  const std::string flank_left =
      left_seq.size() > flank_len ? left_seq.substr(left_seq.size() - flank_len)
                                  : left_seq;
  const std::string flank_right =
      right_seq.size() > flank_len ? right_seq.substr(0, flank_len) : right_seq;
  std::uint64_t read_bases = 0;
  for (const auto& r : reads) read_bases += r.size();

  // Method 1: spanning — one linear scan over the gap's reads.
  rank.stats().add_work(read_bases + 1);
  if (try_spanning(flank_left, flank_right, reads, closure.fill)) {
    closure.closed = true;
    closure.method = 'S';
    return closure;
  }

  // Method 2: k-mer walks with iteratively increasing k, both directions.
  const std::size_t max_len =
      static_cast<std::size_t>(std::max(0.0f, gap.gap_estimate)) +
      4 * static_cast<std::size_t>(config_.max_walk_k) + 100;
  std::string best_forward;
  std::string best_backward;
  std::size_t best_forward_k = 0;   // flank k-mer length embedded in the walk
  std::size_t best_backward_k = 0;
  for (int kw = config_.k; kw <= config_.max_walk_k; kw += config_.walk_k_step) {
    if (kw % 2 == 0) ++kw;  // keep k odd
    std::string bridge;
    // Each k iteration rebuilds the mini k-mer table over the gap's reads
    // and walks — the dominant cost of the closure methods ("spanning and
    // patching being orders of magnitude quicker than k-mer walks").
    rank.stats().add_work(2 * read_bases + 64);
    if (walk(reads, flank_left, flank_right, kw, max_len, bridge)) {
      const auto kws = static_cast<std::size_t>(kw);
      closure.closed = true;
      closure.method = 'W';
      closure.fill = bridge.size() >= 2 * kws
                         ? bridge.substr(kws, bridge.size() - 2 * kws)
                         : std::string{};
      return closure;
    }
    if (bridge.size() > best_forward.size()) {
      best_forward = bridge;
      best_forward_k = static_cast<std::size_t>(kw);
    }

    // Right-to-left: walk the reverse complement frame.
    std::string rc_bridge;
    if (walk(reads, seq::revcomp(flank_right), seq::revcomp(flank_left), kw,
             max_len, rc_bridge)) {
      const auto kws = static_cast<std::size_t>(kw);
      closure.closed = true;
      closure.method = 'W';
      const std::string bridge_fwd = seq::revcomp(rc_bridge);
      closure.fill = bridge_fwd.size() >= 2 * kws
                         ? bridge_fwd.substr(kws, bridge_fwd.size() - 2 * kws)
                         : std::string{};
      return closure;
    }
    const std::string backward_fwd = seq::revcomp(rc_bridge);
    if (backward_fwd.size() > best_backward.size()) {
      best_backward = backward_fwd;
      best_backward_k = static_cast<std::size_t>(kw);
    }
  }

  // Method 3: patch the two incomplete walks across their overlap.
  const auto anchor = static_cast<std::size_t>(config_.anchor);
  if (best_forward.size() >= anchor && best_backward.size() >= anchor) {
    const std::size_t max_olap =
        std::min(best_forward.size(), best_backward.size());
    for (std::size_t olap = max_olap; olap >= anchor; --olap) {
      if (best_forward.compare(best_forward.size() - olap, olap, best_backward,
                               0, olap) == 0) {
        const std::string bridge = best_forward + best_backward.substr(olap);
        // bridge starts with flank_left's tail (best_forward_k bases) and
        // ends with flank_right's head (best_backward_k bases) — walk
        // invariants; strip each side by its own k.
        if (bridge.size() >= best_forward_k + best_backward_k) {
          closure.closed = true;
          closure.method = 'P';
          closure.fill = bridge.substr(
              best_forward_k, bridge.size() - best_forward_k - best_backward_k);
          return closure;
        }
      }
    }
  }

  closure.closed = false;
  closure.method = '-';
  return closure;
}

}  // namespace hipmer::scaffold
