#include "scaffold/types.hpp"

#include "util/hash.hpp"

namespace hipmer::scaffold {

std::uint64_t LinkKeyHash::operator()(const LinkKey& k) const noexcept {
  return util::hash_combine(util::mix64(k.lo.key()), k.hi.key());
}

}  // namespace hipmer::scaffold
