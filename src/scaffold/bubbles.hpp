#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "align/contig_store.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/types.hpp"

/// §4.2 — identifying and merging contig-set bubbles.
///
/// In diploid genomes, each heterozygous site breaks the de Bruijn graph
/// into a *bubble*: the two haplotype paths u, v hang between two flank
/// contigs, and all four contig ends record the same junction k-mers in
/// their termination state (§4.1 / dbg::TermInfo). The bubble-contig graph
/// — contigs contracted to supervertices, joined by shared junction k-mers
/// — is "orders of magnitude smaller than the original k-mer de Bruijn
/// graph".
///
/// This module:
///   1. builds the junction map (a distributed hash table keyed by junction
///      k-mer, aggregating stores);
///   2. resolves clean bubbles — a junction shared by exactly one
///      fork-terminated flank end and two neighbor-terminated path ends —
///      by keeping the deeper path (deterministic tie-break by id) and
///      recording a merge edge flank↔winner;
///   3. traverses the resulting chains *speculatively*: ranks seed
///      traversals from local contigs and claim chain vertices with
///      tickets, aborting on conflict exactly like the de Bruijn traversal
///      ("the processors pick random seeds ... if multiple processors work
///      on the same path, they abort their traversals and allow a single
///      processor to complete them");
///   4. compresses each chain to a single DNA sequence (contigs overlap by
///      k-1 at junctions), which downstream modules treat as contigs.
namespace hipmer::scaffold {

struct BubbleConfig {
  int k = 31;
  /// Max relative length difference between the two paths of a bubble.
  double max_length_skew = 0.2;
  std::size_t flush_threshold = 512;
};

class BubbleMerger {
 public:
  struct JunctionEntry {
    std::uint32_t contig = 0;
    std::uint8_t end = 0;
    char code = 'X';
  };
  struct JunctionGroup {
    static constexpr int kMax = 4;
    JunctionEntry entries[kMax];
    std::uint8_t count = 0;
    std::uint8_t overflow = 0;
  };
  struct JunctionMerge {
    void operator()(JunctionGroup& existing, const JunctionGroup& incoming) const {
      for (int i = 0; i < incoming.count; ++i) {
        if (existing.count < JunctionGroup::kMax) {
          existing.entries[existing.count++] = incoming.entries[i];
        } else {
          existing.overflow = 1;
        }
      }
      existing.overflow |= incoming.overflow;
    }
  };
  using JunctionMap = pgas::DistHashMap<seq::KmerT, JunctionGroup,
                                        seq::KmerHashT, JunctionMerge>;

  BubbleMerger(pgas::ThreadTeam& team, BubbleConfig config,
               std::size_t expected_contigs);
  ~BubbleMerger();

  /// Collective: detect and merge bubbles in `store`. Returns this rank's
  /// share of the *new* contig set (merged paths + untouched contigs),
  /// with globally dense ids; feed it to a fresh ContigStore.
  [[nodiscard]] std::vector<dbg::Contig> run(pgas::Rank& rank,
                                             const align::ContigStore& store);

  [[nodiscard]] std::uint64_t bubbles_merged() const noexcept {
    return bubbles_merged_;
  }

 private:
  struct VState {
    std::uint8_t state = 0;  // 0 unused, 1 active, 2 complete
    std::uint64_t ticket = 0;
  };
  using ClaimMap =
      pgas::DistHashMap<std::uint64_t, VState, std::hash<std::uint64_t>,
                        pgas::OverwriteMerge<VState>>;

  /// Verdict of the registered claim RMW (registered operations ship to
  /// the owner on multi-process fabrics, so the outcome travels as a POD).
  enum class ClaimCode : std::uint8_t {
    kOk,
    kBusyLower,
    kBusyHigher,
    kSelf,
    kComplete,
  };
  struct ClaimTicket {
    std::uint64_t ticket = 0;
  };
  struct ReleaseArgs {
    std::uint8_t state = 0;
    std::uint64_t ticket = 0;
    std::uint64_t new_ticket = 0;
  };

  pgas::ThreadTeam& team_;
  BubbleConfig config_;
  std::unique_ptr<JunctionMap> junctions_;
  std::unique_ptr<ClaimMap> claims_;
  ClaimMap::RmwId claim_rmw_ = 0;
  ClaimMap::RmwId release_rmw_ = 0;
  std::uint64_t bubbles_merged_ = 0;
};

}  // namespace hipmer::scaffold
