#include "scaffold/ordering.hpp"

#include <algorithm>
#include <unordered_map>

namespace hipmer::scaffold {

namespace {

/// Deterministic tie preference: more support, then tighter gap, then
/// stable id order.
bool better_tie(const Tie& x, const Tie& y) {
  if (x.support != y.support) return x.support > y.support;
  if (x.gap != y.gap) return x.gap < y.gap;
  if (!(x.a == y.a)) return x.a < y.a;
  return x.b < y.b;
}

bool same_tie(const Tie& x, const Tie& y) {
  return x.a == y.a && x.b == y.b;
}

/// Reverse a scaffold in place (orientation flip).
void flip(std::vector<Placement>& placements) {
  std::vector<Placement> flipped;
  flipped.reserve(placements.size());
  const std::size_t n = placements.size();
  for (std::size_t i = 0; i < n; ++i) {
    Placement p = placements[n - 1 - i];
    p.reversed = !p.reversed;
    p.gap_after = (i + 1 < n) ? placements[n - 2 - i].gap_after : 0.0;
    flipped.push_back(p);
  }
  placements = std::move(flipped);
}

}  // namespace

std::vector<ScaffoldRecord> order_and_orient(
    pgas::Rank& rank, const std::vector<Tie>& my_ties,
    const std::vector<ContigLen>& contig_lengths,
    const OrderingConfig& config) {
  // Gather the (small) tie graph everywhere; every rank then computes the
  // identical traversal. The cost is charged as serial work on rank 0 so
  // the machine model sees one serial traversal, as in the paper.
  const auto all_ties = rank.allgatherv(my_ties);
  const auto all_lengths = rank.allgatherv(contig_lengths);
  const bool charge = rank.is_root();

  // Repeat exclusion: contigs far deeper than the median are repeat
  // collapses; their ends attract links from every flanking unique region
  // and must not anchor ties.
  std::unordered_map<std::uint64_t, bool> is_repeat;
  if (config.max_depth_factor > 0.0 && !all_lengths.empty()) {
    std::vector<float> depths;
    depths.reserve(all_lengths.size());
    for (const auto& c : all_lengths) depths.push_back(c.depth);
    auto mid = depths.begin() + static_cast<std::ptrdiff_t>(depths.size() / 2);
    std::nth_element(depths.begin(), mid, depths.end());
    const double median = *mid;
    if (median > 0.0) {
      for (const auto& c : all_lengths)
        if (c.depth > config.max_depth_factor * median) is_repeat[c.id] = true;
    }
  }

  // Best tie per contig end (repeat-anchored ties excluded).
  std::unordered_map<std::uint64_t, Tie> best;
  best.reserve(all_ties.size() * 2);
  for (const auto& tie : all_ties) {
    if (charge) rank.stats().add_serial_work();
    if (is_repeat.count(tie.a.contig) || is_repeat.count(tie.b.contig))
      continue;
    for (const ContigEnd end : {tie.a, tie.b}) {
      auto it = best.find(end.key());
      if (it == best.end() || better_tie(tie, it->second))
        best[end.key()] = tie;
    }
  }

  // Seeds in decreasing contig length ("lock together first 'long'
  // contigs"), stable by id.
  std::vector<ContigLen> order(all_lengths.begin(), all_lengths.end());
  std::sort(order.begin(), order.end(), [](const ContigLen& x, const ContigLen& y) {
    if (x.length != y.length) return x.length > y.length;
    return x.id < y.id;
  });

  std::unordered_map<std::uint64_t, bool> visited;
  visited.reserve(order.size());

  auto extend_right = [&](std::vector<Placement>& placements) {
    while (true) {
      if (charge) rank.stats().add_serial_work();
      const Placement& tail = placements.back();
      const ContigEnd leading{tail.contig,
                              static_cast<std::uint8_t>(tail.reversed ? 0 : 1)};
      auto it = best.find(leading.key());
      if (it == best.end()) return;
      const Tie& tie = it->second;
      const ContigEnd peer = (tie.a == leading) ? tie.b : tie.a;
      if (!(tie.a == leading) && !(tie.b == leading)) return;
      if (config.require_mutual_best) {
        auto pit = best.find(peer.key());
        if (pit == best.end() || !same_tie(pit->second, tie)) return;
      }
      if (visited[peer.contig]) return;
      visited[peer.contig] = true;
      placements.back().gap_after = tie.gap;
      // Entering the peer through end 0 keeps it forward; through end 1
      // reverses it.
      placements.push_back(Placement{peer.contig, peer.end == 1, 0.0});
    }
  };

  std::vector<ScaffoldRecord> scaffolds;
  for (const auto& entry : order) {
    const std::uint64_t contig_id = entry.id;
    if (visited[contig_id]) continue;
    visited[contig_id] = true;
    ScaffoldRecord scaffold;
    scaffold.id = scaffolds.size();
    scaffold.placements.push_back(
        Placement{static_cast<std::uint32_t>(contig_id), false, 0.0});
    extend_right(scaffold.placements);
    flip(scaffold.placements);
    extend_right(scaffold.placements);
    // Canonical orientation: first contig id <= last contig id.
    if (scaffold.placements.front().contig > scaffold.placements.back().contig)
      flip(scaffold.placements);
    scaffolds.push_back(std::move(scaffold));
  }
  rank.barrier();
  return scaffolds;
}

}  // namespace hipmer::scaffold
