#include "scaffold/depths.hpp"

#include <algorithm>

#include "seq/kmer_scanner.hpp"

namespace hipmer::scaffold {

DepthCalculator::DepthCalculator(pgas::ThreadTeam& team, int k,
                                 std::size_t expected_kmers,
                                 std::size_t flush_threshold)
    : k_(k) {
  CountMap::Config mc;
  mc.global_capacity = std::max<std::size_t>(1024, expected_kmers);
  mc.flush_threshold = flush_threshold;
  counts_ = std::make_unique<CountMap>(team, mc);
  counts_->set_name("scaffold.depth_counts");
}

std::vector<std::pair<std::uint64_t, double>> DepthCalculator::run(
    pgas::Rank& rank,
    const std::vector<std::pair<seq::KmerT, kcount::KmerSummary>>& local_ufx,
    const align::ContigStore& store) {
  // Phase 1: populate the k-mer -> count table (aggregating stores).
  for (const auto& [kmer, summary] : local_ufx) {
    counts_->update_buffered(rank, kmer, summary.depth);
    rank.stats().add_work();
  }
  counts_->flush(rank);
  rank.barrier();

  // Phase 2: pure reads — each rank sums the counts of its contigs' k-mers
  // through the batched lookup path (one aggregated message per owner
  // instead of one per k-mer). No read cache: contig k-mers are distinct,
  // so there is no reuse to exploit.
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> sums;
  std::vector<std::uint64_t> ns;
  auto accumulate = [&sums](const seq::KmerT& /*key*/,
                            const std::uint32_t* count, std::uint64_t tag) {
    if (count != nullptr) sums[static_cast<std::size_t>(tag)] += *count;
  };
  store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& contig) {
    const std::uint64_t ordinal = ids.size();
    ids.push_back(id);
    sums.push_back(0);
    ns.push_back(0);
    for (seq::KmerScanner<seq::KmerT::kMaxK> it(contig.seq, k_); !it.done();
         it.next()) {
      counts_->find_buffered(rank, it.canonical(), ordinal, accumulate);
      ++ns[ordinal];
      rank.stats().add_work();
    }
  });
  counts_->process_lookups(rank, accumulate);

  std::vector<std::pair<std::uint64_t, double>> depths;
  depths.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    depths.emplace_back(ids[i], ns[i] == 0 ? 0.0
                                           : static_cast<double>(sums[i]) /
                                                 static_cast<double>(ns[i]));
  }
  rank.barrier();
  return depths;
}

}  // namespace hipmer::scaffold
