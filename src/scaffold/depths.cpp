#include "scaffold/depths.hpp"

#include <algorithm>

#include "seq/kmer_scanner.hpp"

namespace hipmer::scaffold {

DepthCalculator::DepthCalculator(pgas::ThreadTeam& team, int k,
                                 std::size_t expected_kmers,
                                 std::size_t flush_threshold)
    : k_(k) {
  CountMap::Config mc;
  mc.global_capacity = std::max<std::size_t>(1024, expected_kmers);
  mc.flush_threshold = flush_threshold;
  counts_ = std::make_unique<CountMap>(team, mc);
}

std::vector<std::pair<std::uint64_t, double>> DepthCalculator::run(
    pgas::Rank& rank,
    const std::vector<std::pair<seq::KmerT, kcount::KmerSummary>>& local_ufx,
    const align::ContigStore& store) {
  // Phase 1: populate the k-mer -> count table (aggregating stores).
  for (const auto& [kmer, summary] : local_ufx) {
    counts_->update_buffered(rank, kmer, summary.depth);
    rank.stats().add_work();
  }
  counts_->flush(rank);
  rank.barrier();

  // Phase 2: pure reads — each rank sums the counts of its contigs' k-mers.
  std::vector<std::pair<std::uint64_t, double>> depths;
  store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& contig) {
    std::uint64_t sum = 0;
    std::uint64_t n = 0;
    for (seq::KmerScanner<seq::KmerT::kMaxK> it(contig.seq, k_); !it.done();
         it.next()) {
      sum += counts_->find(rank, it.canonical()).value_or(0);
      ++n;
      rank.stats().add_work();
    }
    depths.emplace_back(id, n == 0 ? 0.0
                                   : static_cast<double>(sum) /
                                         static_cast<double>(n));
  });
  rank.barrier();
  return depths;
}

}  // namespace hipmer::scaffold
