#include "baseline/baselines.hpp"

#include "pipeline/pipeline.hpp"

namespace hipmer::baseline {

namespace {

BaselineResult from_pipeline(const std::string& name,
                             const pipeline::PipelineResult& result) {
  BaselineResult out;
  out.assembler = name;
  for (const auto& stage : result.stages)
    out.stages.push_back(BaselineStage{stage.name, stage.wall_seconds,
                                       stage.modeled_seconds});
  out.num_contigs = result.num_contigs;
  out.contig_bases = result.contig_stats.total_length;
  out.num_scaffolds = result.scaffolds.size();
  return out;
}

/// HipMer's §3 optimizations switched off: no Bloom filter, no heavy
/// hitters, one message per hash-table element.
void deoptimize(pipeline::PipelineConfig& config) {
  config.kmer.use_bloom = false;
  config.kmer.use_heavy_hitters = false;
  config.kmer.flush_threshold = 1;
  config.kmer.chunk_kmers = 64;  // tiny exchange batches ~ fine-grained comm
  config.contig.flush_threshold = 1;
  config.links.flush_threshold = 1;
  config.aligner.flush_threshold = 1;
  config.merge_bubbles = false;
}

}  // namespace

BaselineResult run_raylike(const pgas::Topology& topo,
                           const BaselineConfig& config,
                           const std::vector<seq::ReadLibrary>& libraries) {
  pipeline::PipelineConfig pc;
  pc.k = config.k;
  pc.machine = config.machine;
  deoptimize(pc);
  pc.serial_io = true;  // "One drawback of Ray is the lack of parallel I/O"
  pc.sync_k();
  pipeline::Pipeline pipe(topo, pc);
  return from_pipeline("raylike", pipe.run_from_fastq(libraries));
}

BaselineResult run_abysslike(const pgas::Topology& topo,
                             const BaselineConfig& config,
                             const std::vector<seq::ReadLibrary>& libraries) {
  pipeline::PipelineConfig pc;
  pc.k = config.k;
  pc.machine = config.machine;
  deoptimize(pc);
  // ABySS 1.3.6 read FASTQ serially as well, and its scaffolding is not
  // distributed-memory parallel.
  pc.serial_io = true;
  pc.serial_scaffolding = true;
  pc.sync_k();
  pipeline::Pipeline pipe(topo, pc);
  return from_pipeline("abysslike", pipe.run_from_fastq(libraries));
}

BaselineResult run_serial_meraculous(
    const BaselineConfig& config,
    const std::vector<std::vector<seq::Read>>& library_reads,
    const std::vector<seq::ReadLibrary>& libraries) {
  pipeline::PipelineConfig pc;
  pc.k = config.k;
  pc.machine = config.machine;
  // The original Meraculous has the algorithms but no distributed
  // parallelism: everything on one rank.
  pc.sync_k();
  pipeline::Pipeline pipe(pgas::Topology{1, 1}, pc);
  return from_pipeline("meraculous_serial", pipe.run(library_reads, libraries));
}

}  // namespace hipmer::baseline
