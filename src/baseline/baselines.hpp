#pragma once

#include <string>
#include <vector>

#include "pgas/machine_model.hpp"
#include "pgas/topology.hpp"
#include "seq/read.hpp"

/// Comparator assemblers for the §5.6 evaluation.
///
/// The paper compares HipMer against Ray 2.3.0, ABySS 1.3.6 and the
/// original serial Meraculous. The performance gaps it reports are
/// *structural*, and these reduced comparators reproduce exactly those
/// structural properties while sharing HipMer's correctness-critical code
/// (so the comparison is about architecture, not implementation quality):
///
///   - **Ray-like**: end-to-end distributed assembler, but "lack of
///     parallel I/O support" (one rank reads the FASTQ and scatters it),
///     no Bloom filter, no heavy-hitter handling, and fine-grained
///     unaggregated remote updates (message per element).
///   - **ABySS-like**: "only the first assembly step of contig generation
///     is fully parallelized with MPI and the subsequent scaffolding steps
///     must be performed on a single shared memory node" — contigs are
///     built in parallel (again without HipMer's §3 optimizations), then
///     one rank executes all of scaffolding.
///   - **Serial Meraculous**: the full pipeline on a single rank — the
///     23.8-hour baseline of the paper's headline 170x.
namespace hipmer::baseline {

struct BaselineStage {
  std::string name;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
};

struct BaselineResult {
  std::string assembler;
  std::vector<BaselineStage> stages;
  std::size_t num_contigs = 0;
  std::uint64_t contig_bases = 0;
  std::size_t num_scaffolds = 0;

  [[nodiscard]] double wall_total() const {
    double t = 0;
    for (const auto& s : stages) t += s.wall_seconds;
    return t;
  }
  [[nodiscard]] double modeled_total() const {
    double t = 0;
    for (const auto& s : stages) t += s.modeled_seconds;
    return t;
  }
};

struct BaselineConfig {
  int k = 31;
  pgas::MachineModel machine;
};

/// Ray-like end-to-end run. `fastq_paths` must name on-disk libraries
/// (serial reading is the point).
[[nodiscard]] BaselineResult run_raylike(
    const pgas::Topology& topo, const BaselineConfig& config,
    const std::vector<seq::ReadLibrary>& libraries);

/// ABySS-like run: parallel contig generation + single-rank scaffolding.
[[nodiscard]] BaselineResult run_abysslike(
    const pgas::Topology& topo, const BaselineConfig& config,
    const std::vector<seq::ReadLibrary>& libraries);

/// Original-Meraculous stand-in: the HipMer pipeline on a single rank.
[[nodiscard]] BaselineResult run_serial_meraculous(
    const BaselineConfig& config,
    const std::vector<std::vector<seq::Read>>& library_reads,
    const std::vector<seq::ReadLibrary>& libraries);

}  // namespace hipmer::baseline
