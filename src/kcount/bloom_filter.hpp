#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/hash.hpp"

/// Bloom filter for singleton k-mer elimination (§3.1).
///
/// K-mer analysis inserts a k-mer into the main hash table only on its
/// *second* sighting: the first sighting merely sets bits here. Because the
/// overwhelming majority of distinct k-mers in error-containing reads occur
/// exactly once (95% for human per §5.4) and are erroneous, this keeps them
/// out of the main table entirely — the memory reduction the paper puts at
/// up to 85%.
///
/// Bit setting uses atomic fetch_or, so concurrent inserts of *different*
/// k-mers are safe; concurrent test-and-set of the *same* k-mer must be
/// serialized by the caller (the counter does this by processing each k-mer
/// on its owner rank), otherwise a duplicate can be missed.
namespace hipmer::kcount {

class BloomFilter {
 public:
  /// Size for `expected_keys` with roughly `bits_per_key` bits each
  /// (8 bits/key + 4 probes gives ~2.5% false positives).
  explicit BloomFilter(std::size_t expected_keys, int bits_per_key = 8,
                       int num_probes = 4)
      : num_probes_(num_probes) {
    std::size_t bits = expected_keys * static_cast<std::size_t>(bits_per_key);
    if (bits < 1024) bits = 1024;
    num_words_ = (bits + 63) / 64;
    words_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_words_);
    for (std::size_t i = 0; i < num_words_; ++i) words_[i] = 0;
  }

  /// Insert and report whether the key was (apparently) already present.
  bool test_and_set(std::uint64_t hash) noexcept {
    bool all_set = true;
    std::uint64_t h1 = hash;
    std::uint64_t h2 = util::fmix64(hash) | 1;  // odd => full period
    for (int p = 0; p < num_probes_; ++p) {
      const std::uint64_t bit = h1 % (num_words_ * 64);
      const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
      const std::uint64_t prev =
          words_[bit >> 6].fetch_or(mask, std::memory_order_relaxed);
      all_set &= (prev & mask) != 0;
      h1 += h2;
    }
    return all_set;
  }

  [[nodiscard]] bool test(std::uint64_t hash) const noexcept {
    std::uint64_t h1 = hash;
    std::uint64_t h2 = util::fmix64(hash) | 1;
    for (int p = 0; p < num_probes_; ++p) {
      const std::uint64_t bit = h1 % (num_words_ * 64);
      const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
      if ((words_[bit >> 6].load(std::memory_order_relaxed) & mask) == 0)
        return false;
      h1 += h2;
    }
    return true;
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return num_words_ * sizeof(std::uint64_t);
  }

 private:
  int num_probes_;
  std::size_t num_words_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

}  // namespace hipmer::kcount
