#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

/// HyperLogLog cardinality estimator.
///
/// The paper's k-mer analysis makes "an initial pass over the data ... to
/// estimate the cardinality (the number of distinct k-mers) and efficiently
/// initialize our Bloom filters" (§3.1). This sketch is that pass's data
/// structure. Registers merge by element-wise max, so per-rank sketches
/// combine into a global estimate with one allreduce/allgather.
namespace hipmer::kcount {

class HyperLogLog {
 public:
  /// `precision` p gives 2^p one-byte registers; standard error is about
  /// 1.04 / sqrt(2^p). p=12 (4096 registers, ~1.6% error) is plenty for
  /// sizing hash tables.
  explicit HyperLogLog(int precision = 12)
      : precision_(precision),
        registers_(std::size_t{1} << precision, 0) {}

  void add_hash(std::uint64_t hash) noexcept {
    const std::size_t idx = hash >> (64 - precision_);
    const std::uint64_t rest = hash << precision_;
    // Rank = leading zeros of the remaining bits + 1, capped.
    const int rho =
        rest == 0 ? (64 - precision_ + 1) : std::countl_zero(rest) + 1;
    auto& reg = registers_[idx];
    reg = std::max<std::uint8_t>(reg, static_cast<std::uint8_t>(rho));
  }

  /// Merge another sketch of the same precision (element-wise max).
  void merge(const HyperLogLog& other) {
    for (std::size_t i = 0; i < registers_.size(); ++i)
      registers_[i] = std::max(registers_[i], other.registers_[i]);
  }

  /// Merge raw registers (e.g., gathered from other ranks).
  void merge_registers(const std::vector<std::uint8_t>& regs) {
    for (std::size_t i = 0; i < registers_.size() && i < regs.size(); ++i)
      registers_[i] = std::max(registers_[i], regs[i]);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& registers() const noexcept {
    return registers_;
  }

  [[nodiscard]] double estimate() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0.0;
    int zeros = 0;
    for (std::uint8_t r : registers_) {
      sum += std::ldexp(1.0, -r);
      if (r == 0) ++zeros;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double est = alpha * m * m / sum;
    // Small-range correction (linear counting) when many registers are 0.
    if (est <= 2.5 * m && zeros > 0)
      est = m * std::log(m / static_cast<double>(zeros));
    return est;
  }

 private:
  int precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace hipmer::kcount
