#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

/// Misra–Gries frequent-items ("heavy hitter") sketch (§3.1).
///
/// With θ counter slots, every item x with true frequency f(x) >= n/θ is
/// guaranteed to be present in the summary, and each reported count f'(x)
/// satisfies f(x) - n/θ <= f'(x) <= f(x) — the lower-bound property the
/// paper relies on ("the reported count is a lower bound on the actual
/// count"). Summaries are *mergeable* (Agarwal et al.): combining two
/// summaries and decrementing by the (θ+1)-largest count preserves the
/// guarantee, which is what makes the parallel scheme of Cafaro & Tempesta
/// work — each rank sketches its local stream, then the sketches merge.
namespace hipmer::kcount {

template <typename K, typename Hash = std::hash<K>>
class MisraGries {
 public:
  /// `capacity` is θ, the number of counter slots (paper default: 32,000).
  explicit MisraGries(std::size_t capacity) : capacity_(capacity) {
    counters_.reserve(capacity + 1);
  }

  /// Observe one occurrence of `key` (weight `w`).
  void offer(const K& key, std::uint64_t w = 1) {
    n_ += w;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second += w;
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, w);
      return;
    }
    // Decrement-all step. With weighted offers, decrement by the smaller of
    // w and the current minimum to preserve the lower-bound guarantee.
    std::uint64_t dec = w;
    for (const auto& [k, c] : counters_) dec = std::min(dec, c);
    if (dec < w) {
      // The new key survives with the remaining weight via recursion-free
      // retry: subtract dec everywhere, erase zeros, then re-offer.
      decrement_all(dec);
      n_ -= w;  // re-offer will re-add
      offer(key, w - dec);
      return;
    }
    decrement_all(w);
  }

  /// Merge another summary (mergeable-summaries construction): add counts
  /// key-wise, then reduce back to θ slots by subtracting the (θ+1)-largest
  /// count from everything.
  void merge(const MisraGries& other) {
    n_ += other.n_;
    for (const auto& [k, c] : other.counters_) counters_[k] += c;
    shrink_to_capacity();
  }

  /// Merge from a flat (key,count) list, e.g. gathered across ranks.
  void merge_items(const std::vector<std::pair<K, std::uint64_t>>& items,
                   std::uint64_t other_n) {
    n_ += other_n;
    for (const auto& [k, c] : items) counters_[k] += c;
    shrink_to_capacity();
  }

  /// Estimated (lower-bound) count for `key`; 0 if not tracked.
  [[nodiscard]] std::uint64_t count(const K& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  /// All tracked items with estimated count >= `min_count`.
  [[nodiscard]] std::vector<std::pair<K, std::uint64_t>> items(
      std::uint64_t min_count = 1) const {
    std::vector<std::pair<K, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [k, c] : counters_)
      if (c >= min_count) out.emplace_back(k, c);
    return out;
  }

  /// Total stream weight observed (n in the error bound n/θ).
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return n_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return counters_.size(); }

  /// The guarantee threshold: any item with true count >= this is tracked.
  [[nodiscard]] std::uint64_t guarantee_threshold() const noexcept {
    return n_ / (capacity_ + 1) + 1;
  }

 private:
  void decrement_all(std::uint64_t dec) {
    for (auto it = counters_.begin(); it != counters_.end();) {
      if (it->second <= dec) {
        it = counters_.erase(it);
      } else {
        it->second -= dec;
        ++it;
      }
    }
  }

  void shrink_to_capacity() {
    if (counters_.size() <= capacity_) return;
    // Find the (capacity+1)-largest count and subtract it from everyone.
    std::vector<std::uint64_t> counts;
    counts.reserve(counters_.size());
    for (const auto& [k, c] : counters_) counts.push_back(c);
    auto nth = counts.begin() + static_cast<std::ptrdiff_t>(capacity_);
    std::nth_element(counts.begin(), nth, counts.end(),
                     std::greater<std::uint64_t>());
    decrement_all(*nth);
  }

  std::size_t capacity_;
  std::uint64_t n_ = 0;
  std::unordered_map<K, std::uint64_t, Hash> counters_;
};

}  // namespace hipmer::kcount
