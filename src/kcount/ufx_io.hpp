#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kcount/kmer_tally.hpp"
#include "pgas/thread_team.hpp"
#include "seq/types.hpp"

/// UFX file I/O — the Meraculous inter-stage checkpoint format.
///
/// Meraculous materializes k-mer analysis as a "UFX" file (k-mer, count,
/// two-letter extension code) that contig generation reads back; HipMer
/// keeps the data in memory but emits the same artifact for compatibility
/// and restartability. Text, one record per line:
///
///     <KMER>\t<COUNT>\t<LEFT_EXT><RIGHT_EXT>
///
/// Parallel writing: each rank appends its shard to `<path>.<rank>`; the
/// shard set is a complete, disjoint partition, so `read_ufx_shards` on any
/// team size reloads the spectrum (re-owned by the current hash mapping).
namespace hipmer::kcount {

using UfxRecord = std::pair<seq::KmerT, KmerSummary>;

/// Write this rank's records to `<path>.<rank id>`; charges io counters.
/// Crash-consistent: the shard is staged at `<path>.<rank>.tmp` and
/// atomically renamed into place, so a reader never sees a torn shard.
bool write_ufx_shard(pgas::Rank& rank, const std::string& path,
                     const std::vector<UfxRecord>& records);

/// Load one shard file (any rank may read any shard). When `io_bytes` is
/// given it receives the shard's on-disk size — the real byte count an io
/// counter should be charged, matching what the writer charged.
[[nodiscard]] std::vector<UfxRecord> read_ufx_shard(
    const std::string& path, int shard, std::uint64_t* io_bytes = nullptr);

/// Collective: load all `num_shards` shard files, dealing shards to ranks
/// round robin; returns this rank's share. Charges each shard's actual
/// file size to the reading rank's io counters.
[[nodiscard]] std::vector<UfxRecord> read_ufx_shards(pgas::Rank& rank,
                                                     const std::string& path,
                                                     int num_shards);

}  // namespace hipmer::kcount
