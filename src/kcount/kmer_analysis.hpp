#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "kcount/bloom_filter.hpp"
#include "kcount/hyperloglog.hpp"
#include "kcount/kmer_tally.hpp"
#include "kcount/misra_gries.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/thread_team.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"
#include "seq/types.hpp"

/// Stage 1 of the pipeline: parallel k-mer analysis (§2 step 1, §3.1).
///
/// Four collective passes, all driven from `run()`:
///
///  0. **Sketch pass** — one streaming pass over the reads builds, per
///     rank, a HyperLogLog (cardinality, used to size the Bloom filters and
///     hash table: "an initial pass ... to estimate the cardinality") and a
///     Misra–Gries summary (heavy-hitter candidates). MG partial counts are
///     routed to each k-mer's owner and summed (mergeable summaries /
///     Cafaro–Tempesta); k-mers whose summed lower-bound count crosses the
///     threshold become the replicated heavy-hitter set.
///  1. **Candidate pass** — every non-heavy k-mer instance is routed to its
///     owner (chunked all-to-all = aggregated messages); the owner runs the
///     Bloom filter test-and-set and admits a k-mer into the candidate
///     table on its second sighting, keeping singletons (overwhelmingly
///     sequencing errors) out of the main table.
///  2. **Counting pass** — k-mer instances with their quality-filtered
///     neighbor bases are merged into the owners' tallies via the
///     aggregating-stores path. Heavy hitters are instead accumulated in a
///     rank-local map ("the high frequency k-mers are accumulated locally,
///     followed by a final global reduction") and exchanged once at the
///     end — this is the optimization Figure 6 measures.
///  3. **Finalize** — below-threshold k-mers are discarded and extension
///     tallies collapse into UFX records (depth + two-letter code).
namespace hipmer::kcount {

struct KmerAnalysisConfig {
  int k = 31;
  /// Discard k-mers with count below this (erroneous).
  std::uint32_t min_count = 2;
  /// Minimum Phred quality for a neighbor base to count as an extension.
  int qual_threshold = 20;
  /// Minimum support for a high-quality extension.
  std::uint32_t min_ext_count = 2;

  /// Heavy-hitter (Misra–Gries) machinery. θ is the slot count; the paper
  /// uses 32,000 and reports <10% sensitivity across 1K–64K.
  bool use_heavy_hitters = true;
  std::size_t mg_capacity = 32768;
  /// Count threshold for treating a k-mer as a heavy hitter; 0 derives the
  /// MG guarantee threshold n/θ.
  std::uint64_t hh_min_count = 0;

  bool use_bloom = true;
  /// Expected fraction of distinct k-mers that are non-singletons (sizes
  /// the candidate table relative to the cardinality estimate).
  double candidate_fraction = 0.4;

  /// Aggregating-stores batch size (elements per destination buffer).
  std::size_t flush_threshold = 512;
  /// Per-rank k-mers per exchange round in the candidate pass.
  std::size_t chunk_kmers = 32768;
};

class KmerAnalysis {
 public:
  using Map = pgas::DistHashMap<seq::KmerT, KmerTally, seq::KmerHashT,
                                KmerTallyMerge>;

  KmerAnalysis(pgas::ThreadTeam& team, KmerAnalysisConfig config);
  ~KmerAnalysis();

  /// Collective: full analysis of this rank's share of the reads. Must be
  /// called by every rank inside one team.run(). The ReadSetView overload
  /// is the core path — it scans string or packed reads alike (packed
  /// reads feed the scanner straight from their 2-bit words).
  void run(pgas::Rank& rank, const std::vector<seq::ReadSetView>& read_sets);

  void run(pgas::Rank& rank, const std::vector<seq::Read>& reads);

  /// Multi-library variant: analyse the union of several read sets without
  /// copying them together.
  void run(pgas::Rank& rank,
           const std::vector<const std::vector<seq::Read>*>& read_sets);

  // ---- results (valid after run) ----

  /// This rank's UFX records (every rank owns a disjoint shard; the union
  /// is the genome's reliable k-mer spectrum).
  [[nodiscard]] const std::vector<std::pair<seq::KmerT, KmerSummary>>& ufx(
      int rank) const {
    return ufx_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] double estimated_cardinality() const noexcept {
    return cardinality_estimate_;
  }
  /// Exact-ish number of distinct k-mers observed (first sightings at the
  /// Bloom filter, plus heavy hitters).
  [[nodiscard]] std::uint64_t distinct_kmers() const noexcept {
    return distinct_kmers_;
  }
  /// Fraction of distinct k-mers occurring exactly once — 95% for human,
  /// 36% for the wetlands metagenome per the paper.
  [[nodiscard]] double singleton_fraction() const noexcept {
    return singleton_fraction_;
  }
  [[nodiscard]] const std::vector<std::pair<seq::KmerT, std::uint64_t>>&
  heavy_hitters() const noexcept {
    return heavy_hitters_;
  }
  /// k-mer count histogram (index = count, capped at 255), global.
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }
  /// Total k-mer instances processed (n in the MG bound).
  [[nodiscard]] std::uint64_t total_kmer_instances() const noexcept {
    return total_instances_;
  }
  [[nodiscard]] std::size_t table_entries() const;
  /// Entries resident in the main table *before* the below-threshold purge
  /// — the working-set size the Bloom filter shrinks (§3.1: "memory
  /// requirement reductions of up to 85%").
  [[nodiscard]] std::size_t peak_table_entries() const noexcept {
    return peak_table_entries_;
  }
  [[nodiscard]] std::size_t bloom_bytes() const;
  [[nodiscard]] const KmerAnalysisConfig& config() const noexcept {
    return config_;
  }

 private:
  struct HeavyItem {
    seq::KmerT kmer;
    std::uint64_t count;
  };
  struct TallyItem {
    seq::KmerT kmer;
    KmerTally tally;
  };

  void sketch_pass(pgas::Rank& rank,
                   const std::vector<seq::ReadSetView>& read_sets);
  void allocate(pgas::Rank& rank);
  void candidate_pass(pgas::Rank& rank,
                      const std::vector<seq::ReadSetView>& read_sets);
  void counting_pass(pgas::Rank& rank,
                     const std::vector<seq::ReadSetView>& read_sets);
  void finalize(pgas::Rank& rank);

  [[nodiscard]] std::uint32_t owner_of(const seq::KmerT& km) const;

  pgas::ThreadTeam& team_;
  KmerAnalysisConfig config_;

  std::unique_ptr<Map> table_;
  std::vector<std::unique_ptr<BloomFilter>> blooms_;

  // Replicated heavy-hitter set (read-only after the sketch pass).
  std::unordered_set<seq::KmerT, seq::KmerHashT> hh_set_;
  std::vector<std::pair<seq::KmerT, std::uint64_t>> heavy_hitters_;

  // Per-rank outputs / partials (indexed by rank id).
  std::vector<std::vector<std::pair<seq::KmerT, KmerSummary>>> ufx_;
  std::vector<std::uint64_t> distinct_per_rank_;
  std::vector<std::uint64_t> instances_per_rank_;
  std::vector<std::vector<std::uint64_t>> histogram_per_rank_;

  double cardinality_estimate_ = 0.0;
  std::size_t peak_table_entries_ = 0;
  std::uint64_t distinct_kmers_ = 0;
  std::uint64_t total_instances_ = 0;
  double singleton_fraction_ = 0.0;
  std::vector<std::uint64_t> histogram_;
};

}  // namespace hipmer::kcount
