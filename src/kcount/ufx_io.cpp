#include "kcount/ufx_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hipmer::kcount {

namespace {

std::string shard_path(const std::string& path, int shard) {
  return path + "." + std::to_string(shard);
}

}  // namespace

bool write_ufx_shard(pgas::Rank& rank, const std::string& path,
                     const std::vector<UfxRecord>& records) {
  const auto file = shard_path(path, rank.id());
  std::ofstream out(file);
  if (!out) return false;
  std::uint64_t bytes = 0;
  for (const auto& [kmer, summary] : records) {
    const auto line = kmer.to_string() + "\t" +
                      std::to_string(summary.depth) + "\t" +
                      summary.left_ext + std::string(1, summary.right_ext) +
                      "\n";
    out << line;
    bytes += line.size();
  }
  rank.stats().add_io_write(bytes);
  return static_cast<bool>(out);
}

std::vector<UfxRecord> read_ufx_shard(const std::string& path, int shard) {
  const auto file = shard_path(path, shard);
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open UFX shard: " + file);
  std::vector<UfxRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kmer_str;
    std::uint32_t depth = 0;
    std::string ext;
    if (!(fields >> kmer_str >> depth >> ext) || ext.size() != 2)
      throw std::runtime_error("malformed UFX line in " + file + ": " + line);
    KmerSummary summary;
    summary.depth = depth;
    summary.left_ext = ext[0];
    summary.right_ext = ext[1];
    records.emplace_back(seq::KmerT::from_string(kmer_str), summary);
  }
  return records;
}

std::vector<UfxRecord> read_ufx_shards(pgas::Rank& rank,
                                       const std::string& path,
                                       int num_shards) {
  std::vector<UfxRecord> mine;
  for (int shard = rank.id(); shard < num_shards; shard += rank.nranks()) {
    auto records = read_ufx_shard(path, shard);
    std::uint64_t bytes = 0;
    for (const auto& [kmer, summary] : records)
      bytes += static_cast<std::uint64_t>(kmer.k()) + 8;
    rank.stats().add_io_read(bytes);
    mine.insert(mine.end(), std::make_move_iterator(records.begin()),
                std::make_move_iterator(records.end()));
  }
  rank.barrier();
  return mine;
}

}  // namespace hipmer::kcount
