#include "kcount/ufx_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace hipmer::kcount {

namespace {

std::string shard_path(const std::string& path, int shard) {
  return path + "." + std::to_string(shard);
}

}  // namespace

bool write_ufx_shard(pgas::Rank& rank, const std::string& path,
                     const std::vector<UfxRecord>& records) {
  // Crash consistency: write the whole shard to a temp file, then
  // atomic-rename onto the final name. A crash mid-write leaves either the
  // old complete shard or a stray .tmp — never a torn `<path>.<rank>`.
  const auto file = shard_path(path, rank.id());
  const auto tmp = file + ".tmp";
  std::uint64_t bytes = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    for (const auto& [kmer, summary] : records) {
      const auto line = kmer.to_string() + "\t" +
                        std::to_string(summary.depth) + "\t" +
                        summary.left_ext + std::string(1, summary.right_ext) +
                        "\n";
      out << line;
      bytes += line.size();
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, file, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  rank.stats().add_io_write(bytes);
  return true;
}

std::vector<UfxRecord> read_ufx_shard(const std::string& path, int shard,
                                      std::uint64_t* io_bytes) {
  const auto file = shard_path(path, shard);
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open UFX shard: " + file);
  if (io_bytes != nullptr) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(file, ec);
    *io_bytes = ec ? 0 : static_cast<std::uint64_t>(size);
  }
  std::vector<UfxRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kmer_str;
    std::uint32_t depth = 0;
    std::string ext;
    if (!(fields >> kmer_str >> depth >> ext) || ext.size() != 2)
      throw std::runtime_error("malformed UFX line in " + file + ": " + line);
    KmerSummary summary;
    summary.depth = depth;
    summary.left_ext = ext[0];
    summary.right_ext = ext[1];
    records.emplace_back(seq::KmerT::from_string(kmer_str), summary);
  }
  return records;
}

std::vector<UfxRecord> read_ufx_shards(pgas::Rank& rank,
                                       const std::string& path,
                                       int num_shards) {
  std::vector<UfxRecord> mine;
  for (int shard = rank.id(); shard < num_shards; shard += rank.nranks()) {
    std::uint64_t bytes = 0;
    auto records = read_ufx_shard(path, shard, &bytes);
    rank.stats().add_io_read(bytes);
    mine.insert(mine.end(), std::make_move_iterator(records.begin()),
                std::make_move_iterator(records.end()));
  }
  rank.barrier();
  return mine;
}

}  // namespace hipmer::kcount
