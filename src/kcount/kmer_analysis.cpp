#include "kcount/kmer_analysis.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "seq/kmer_scanner.hpp"

namespace hipmer::kcount {

using seq::KmerT;

KmerAnalysis::KmerAnalysis(pgas::ThreadTeam& team, KmerAnalysisConfig config)
    : team_(team), config_(config) {
  const auto p = static_cast<std::size_t>(team.nranks());
  ufx_.resize(p);
  distinct_per_rank_.assign(p, 0);
  instances_per_rank_.assign(p, 0);
  histogram_per_rank_.assign(p, std::vector<std::uint64_t>(256, 0));
  blooms_.resize(p);
}

KmerAnalysis::~KmerAnalysis() = default;

std::uint32_t KmerAnalysis::owner_of(const KmerT& km) const {
  return static_cast<std::uint32_t>(km.hash() %
                                    static_cast<std::uint64_t>(team_.nranks()));
}

void KmerAnalysis::run(pgas::Rank& rank, const std::vector<seq::Read>& reads) {
  run(rank, std::vector<seq::ReadSetView>{seq::ReadSetView(reads)});
}

void KmerAnalysis::run(
    pgas::Rank& rank,
    const std::vector<const std::vector<seq::Read>*>& read_sets) {
  std::vector<seq::ReadSetView> views;
  views.reserve(read_sets.size());
  for (const auto* reads : read_sets) views.emplace_back(*reads);
  run(rank, views);
}

void KmerAnalysis::run(pgas::Rank& rank,
                       const std::vector<seq::ReadSetView>& read_sets) {
  sketch_pass(rank, read_sets);
  allocate(rank);
  if (config_.use_bloom) candidate_pass(rank, read_sets);
  counting_pass(rank, read_sets);
  finalize(rank);
}

void KmerAnalysis::sketch_pass(
    pgas::Rank& rank, const std::vector<seq::ReadSetView>& read_sets) {
  HyperLogLog hll;
  MisraGries<KmerT, seq::KmerHashT> mg(config_.mg_capacity);
  std::uint64_t instances = 0;

  for (const auto& set : read_sets) {
    for (std::size_t r = 0; r < set.size(); ++r) {
      for (auto it = set.scanner<KmerT::kMaxK>(r, config_.k); !it.done();
           it.next()) {
        const KmerT& canon = it.canonical();
        hll.add_hash(canon.hash());
        if (config_.use_heavy_hitters) mg.offer(canon);
        ++instances;
        rank.stats().add_work();
      }
    }
  }
  instances_per_rank_[static_cast<std::size_t>(rank.id())] = instances;

  // Global cardinality: merge every rank's HLL registers.
  const auto all_regs = rank.allgatherv(hll.registers());
  HyperLogLog merged;
  const std::size_t reg_count = hll.registers().size();
  for (int r = 0; r < rank.nranks(); ++r) {
    std::vector<std::uint8_t> regs(
        all_regs.begin() + static_cast<std::ptrdiff_t>(
                               static_cast<std::size_t>(r) * reg_count),
        all_regs.begin() + static_cast<std::ptrdiff_t>(
                               (static_cast<std::size_t>(r) + 1) * reg_count));
    merged.merge_registers(regs);
  }
  const double cardinality = merged.estimate();
  const std::uint64_t global_n = rank.allreduce_sum(instances);

  // Single-writer on the threads fabric; on a multi-process fabric every
  // process holds its own copy of the analysis object, so each one stores
  // the (replicated) reduction results.
  if (rank.is_root() || team_.multiprocess()) {
    cardinality_estimate_ = cardinality;
    total_instances_ = global_n;
  }

  if (!config_.use_heavy_hitters) {
    rank.barrier();
    return;
  }

  // Heavy-hitter identification: route each rank's MG partials to the
  // k-mer's owner, sum the lower bounds there, keep those over threshold.
  const std::uint64_t threshold =
      config_.hh_min_count > 0
          ? config_.hh_min_count
          : global_n / static_cast<std::uint64_t>(config_.mg_capacity) + 1;

  std::vector<std::vector<HeavyItem>> outgoing(
      static_cast<std::size_t>(rank.nranks()));
  for (const auto& [kmer, count] : mg.items()) {
    outgoing[owner_of(kmer)].push_back(HeavyItem{kmer, count});
    rank.stats().add_work();
  }
  const auto incoming = rank.alltoallv(outgoing);

  std::unordered_map<KmerT, std::uint64_t, seq::KmerHashT> sums;
  sums.reserve(incoming.size());
  for (const auto& item : incoming) {
    sums[item.kmer] += item.count;
    rank.stats().add_work();
  }
  std::vector<HeavyItem> my_heavy;
  for (const auto& [kmer, count] : sums)
    if (count >= threshold) my_heavy.push_back(HeavyItem{kmer, count});

  const auto global_heavy = rank.allgatherv(my_heavy);

  // Every rank needs the replicated set; build shared state on root, then
  // let everyone read it after the barrier (allgatherv already ends with
  // one, but the set construction itself must be single-writer). Each
  // process of a multi-process team builds its own copy from the same
  // allgatherv result.
  if (rank.is_root() || team_.multiprocess()) {
    hh_set_.clear();
    heavy_hitters_.clear();
    for (const auto& item : global_heavy) {
      hh_set_.insert(item.kmer);
      heavy_hitters_.emplace_back(item.kmer, item.count);
    }
    std::sort(heavy_hitters_.begin(), heavy_hitters_.end(),
              [](const auto& a, const auto& b) { return b.second < a.second; });
  }
  rank.barrier();
}

void KmerAnalysis::allocate(pgas::Rank& rank) {
  // Root allocates on behalf of the whole team (threads fabric: shared
  // memory, the barrier publishes); every process of a multi-process team
  // constructs its own instance — cardinality_estimate_ is a replicated
  // reduction result, so the table geometry and the fabric service ids it
  // registers come out identical in every process.
  if (rank.is_root() || team_.multiprocess()) {
    const auto est = static_cast<std::size_t>(
        std::max(1024.0, cardinality_estimate_));
    Map::Config mc;
    mc.global_capacity = std::max<std::size_t>(
        1024, static_cast<std::size_t>(static_cast<double>(est) *
                                       config_.candidate_fraction));
    mc.flush_threshold = config_.flush_threshold;
    table_ = std::make_unique<Map>(team_, mc);
    table_->set_name("kcount.counts");
    if (config_.use_bloom) {
      const std::size_t per_rank =
          est / static_cast<std::size_t>(team_.nranks()) + 1024;
      for (std::size_t b = 0; b < blooms_.size(); ++b)
        if (!team_.multiprocess() || team_.is_local(static_cast<int>(b)))
          blooms_[b] = std::make_unique<BloomFilter>(per_rank);
    }
  }
  rank.barrier();
}

void KmerAnalysis::candidate_pass(
    pgas::Rank& rank, const std::vector<seq::ReadSetView>& read_sets) {
  BloomFilter& my_bloom = *blooms_[static_cast<std::size_t>(rank.id())];
  std::uint64_t distinct = 0;

  std::vector<std::vector<KmerT>> outgoing(
      static_cast<std::size_t>(rank.nranks()));
  std::size_t buffered = 0;
  std::size_t set_idx = 0;
  std::size_t read_idx = 0;
  seq::KmerScanner<KmerT::kMaxK> it("", config_.k);
  bool it_active = false;
  auto start_next_read = [&]() -> bool {
    while (set_idx < read_sets.size()) {
      if (read_idx < read_sets[set_idx].size()) {
        it = read_sets[set_idx].scanner<KmerT::kMaxK>(read_idx++, config_.k);
        return true;
      }
      ++set_idx;
      read_idx = 0;
    }
    return false;
  };
  auto stream_exhausted = [&]() {
    return set_idx >= read_sets.size() ||
           (set_idx + 1 == read_sets.size() &&
            read_idx >= read_sets[set_idx].size());
  };

  // Chunked exchange: every rank keeps participating in the collective
  // until the last rank runs out of k-mers.
  while (true) {
    // Fill the chunk from our read stream.
    while (buffered < config_.chunk_kmers) {
      if (!it_active) {
        if (!start_next_read()) break;
        it_active = true;
        continue;
      }
      if (it.done()) {
        it_active = false;
        continue;
      }
      const KmerT& canon = it.canonical();
      if (!config_.use_heavy_hitters || !hh_set_.contains(canon)) {
        outgoing[owner_of(canon)].push_back(canon);
        ++buffered;
      }
      rank.stats().add_work();
      it.next();
    }

    const int more_here = (buffered > 0 || !stream_exhausted() ||
                           (it_active && !it.done()))
                              ? 1
                              : 0;
    if (rank.allreduce_max(more_here) == 0) break;

    const auto incoming = rank.alltoallv(outgoing);
    for (auto& v : outgoing) v.clear();
    buffered = 0;

    // Owner-side: Bloom test-and-set; admit on second sighting.
    for (const KmerT& km : incoming) {
      rank.stats().add_work();
      if (my_bloom.test_and_set(km.hash())) {
        table_->update(rank, km, KmerTally{});
      } else {
        ++distinct;
      }
    }
  }
  distinct_per_rank_[static_cast<std::size_t>(rank.id())] = distinct;
  rank.barrier();
}

void KmerAnalysis::counting_pass(
    pgas::Rank& rank, const std::vector<seq::ReadSetView>& read_sets) {
  const auto policy = config_.use_bloom ? Map::Policy::kIfPresent
                                        : Map::Policy::kInsert;
  std::unordered_map<KmerT, KmerTally, seq::KmerHashT> local_heavy;
  std::string qual_scratch;

  for (const auto& set : read_sets)
  for (std::size_t r = 0; r < set.size(); ++r) {
    const std::string_view quals = set.quals(r, qual_scratch);
    const std::size_t len = set.length(r);
    for (auto it = set.scanner<KmerT::kMaxK>(r, config_.k); !it.done();
         it.next()) {
      const std::size_t i = it.position();
      KmerTally tally;
      tally.count = 1;

      // Neighbor bases, quality-filtered ("k-mers ... with high quality
      // extensions").
      const auto code_at = [&](std::size_t pos) {
        return set.code(r, static_cast<std::uint32_t>(pos));
      };
      const bool has_left = i > 0 && code_at(i - 1) != seq::kBaseInvalid &&
                            seq::phred(quals[i - 1]) >= config_.qual_threshold;
      const std::size_t ri = i + static_cast<std::size_t>(config_.k);
      const bool has_right = ri < len && code_at(ri) != seq::kBaseInvalid &&
                             seq::phred(quals[ri]) >= config_.qual_threshold;
      const std::uint8_t lcode = has_left ? code_at(i - 1) : 0;
      const std::uint8_t rcode = has_right ? code_at(ri) : 0;

      // Store extensions in the canonical frame.
      if (!it.is_flipped()) {
        if (has_left) tally.add_left(lcode);
        if (has_right) tally.add_right(rcode);
      } else {
        if (has_right) tally.add_left(seq::complement_code(rcode));
        if (has_left) tally.add_right(seq::complement_code(lcode));
      }

      const KmerT& canon = it.canonical();
      rank.stats().add_work();
      if (config_.use_heavy_hitters && hh_set_.contains(canon)) {
        local_heavy[canon].merge(tally);  // local accumulation
      } else {
        table_->update_buffered(rank, canon, tally, policy);
      }
    }
  }
  table_->flush(rank);
  rank.barrier();

  // Final global reduction of heavy hitters: one exchange, then the owner
  // merges (bypassing the Bloom filter — a heavy hitter is never a
  // singleton, so admission is unconditional; this matches the paper's
  // note that only k-mers with f'(x) > 1 are treated specially).
  if (config_.use_heavy_hitters) {
    std::vector<std::vector<TallyItem>> outgoing(
        static_cast<std::size_t>(rank.nranks()));
    for (const auto& [kmer, tally] : local_heavy) {
      outgoing[owner_of(kmer)].push_back(TallyItem{kmer, tally});
      rank.stats().add_work();
    }
    const auto incoming = rank.alltoallv(outgoing);
    for (const auto& item : incoming) {
      rank.stats().add_work();
      table_->update(rank, item.kmer, item.tally, Map::Policy::kInsert);
    }
    // Heavy hitters are distinct k-mers the Bloom pass never saw; `incoming`
    // holds one item per (source rank, k-mer), so count distinct keys.
    std::unordered_set<KmerT, seq::KmerHashT> distinct_hh;
    for (const auto& item : incoming) distinct_hh.insert(item.kmer);
    distinct_per_rank_[static_cast<std::size_t>(rank.id())] +=
        distinct_hh.size();
    rank.barrier();
  }
}

void KmerAnalysis::finalize(pgas::Rank& rank) {
  if (team_.multiprocess()) {
    // Shards live in separate address spaces: sum them collectively.
    peak_table_entries_ = rank.allreduce_sum<std::uint64_t>(
        table_->local_size(rank.id()));
  } else if (rank.is_root()) {
    peak_table_entries_ = table_->size_unsafe();
  }
  rank.barrier();
  // Discard below-threshold (erroneous) k-mers.
  const std::uint32_t min_count = std::max<std::uint32_t>(
      config_.min_count, config_.use_bloom ? 2 : config_.min_count);
  table_->erase_local_if(rank, [&](const KmerT&, const KmerTally& tally) {
    return tally.count < min_count;
  });

  // Collapse tallies into UFX records + histogram.
  auto& out = ufx_[static_cast<std::size_t>(rank.id())];
  auto& hist = histogram_per_rank_[static_cast<std::size_t>(rank.id())];
  out.clear();
  out.reserve(table_->local_size(rank.id()));
  table_->for_each_local(rank, [&](const KmerT& km, KmerTally& tally) {
    out.emplace_back(km, summarize(tally, config_.min_ext_count));
    ++hist[std::min<std::uint32_t>(tally.count, 255)];
    rank.stats().add_work();
  });
  rank.barrier();

  // Global roll-ups on root.
  const std::uint64_t global_distinct =
      rank.allreduce_sum(distinct_per_rank_[static_cast<std::size_t>(rank.id())]);
  const std::uint64_t global_kept =
      rank.allreduce_sum<std::uint64_t>(out.size());
  if (rank.is_root() || team_.multiprocess()) {
    distinct_kmers_ = global_distinct;
    singleton_fraction_ =
        global_distinct == 0
            ? 0.0
            : 1.0 - static_cast<double>(global_kept) /
                        static_cast<double>(global_distinct);
  }
  if (team_.multiprocess()) {
    // Only the local row of histogram_per_rank_ is filled in this process;
    // gather the fixed-width rows and fold (every rank contributes exactly
    // 256 buckets, so the concatenation folds by index modulo 256).
    const auto all_hist = rank.allgatherv(hist);
    histogram_.assign(256, 0);
    for (std::size_t idx = 0; idx < all_hist.size(); ++idx)
      histogram_[idx % 256] += all_hist[idx];
  } else if (rank.is_root()) {
    histogram_.assign(256, 0);
    for (const auto& h : histogram_per_rank_)
      for (std::size_t c = 0; c < h.size(); ++c) histogram_[c] += h[c];
  }
  rank.barrier();
}

std::size_t KmerAnalysis::table_entries() const {
  return table_ ? table_->size_unsafe() : 0;
}

std::size_t KmerAnalysis::bloom_bytes() const {
  std::size_t total = 0;
  for (const auto& b : blooms_)
    if (b) total += b->size_bytes();
  return total;
}

}  // namespace hipmer::kcount
