#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

/// K-mer count-histogram analysis.
///
/// Meraculous picks the erroneous-k-mer cutoff from the count histogram:
/// error k-mers pile up at low counts, true genomic k-mers form a roughly
/// Poisson hump around the sequencing depth, and the valley between the two
/// modes is the natural `min_count` threshold. HipMer inherits that
/// convention; `choose_min_count` automates it so callers need not guess a
/// threshold per dataset.
namespace hipmer::kcount {

/// First local minimum of the (smoothed) histogram between the error spike
/// at count 1..2 and the coverage hump — the classic valley heuristic.
/// Falls back to `fallback` when the histogram has no detectable valley
/// (flat metagenome-like spectra, where one global threshold is wrong
/// anyway).
[[nodiscard]] inline std::uint32_t choose_min_count(
    const std::vector<std::uint64_t>& histogram, std::uint32_t fallback = 2) {
  if (histogram.size() < 8) return fallback;
  // 3-wide moving average to suppress shot noise in small datasets.
  auto smooth = [&](std::size_t i) -> double {
    const std::size_t lo = i > 0 ? i - 1 : i;
    const std::size_t hi = i + 1 < histogram.size() ? i + 1 : i;
    return (static_cast<double>(histogram[lo]) +
            static_cast<double>(histogram[i]) +
            static_cast<double>(histogram[hi])) /
           static_cast<double>(hi - lo + 1);
  };
  // Walk down the error slope from count 2; the valley is where the curve
  // turns back up. Require a real hump afterwards (>= 1.5x the valley) so
  // flat spectra fall through to the fallback.
  for (std::size_t c = 3; c + 2 < histogram.size(); ++c) {
    if (smooth(c) <= smooth(c - 1) || smooth(c) == 0) continue;
    // c-1 is a local minimum; look for the hump.
    const double valley = smooth(c - 1);
    double peak = 0;
    for (std::size_t h = c; h < histogram.size(); ++h)
      peak = std::max(peak, smooth(h));
    if (peak >= 1.5 * std::max(1.0, valley))
      return static_cast<std::uint32_t>(c - 1);
    break;
  }
  return fallback;
}

/// Rough depth estimate: the mode of the histogram beyond the chosen
/// threshold (the center of the coverage hump).
[[nodiscard]] inline std::uint32_t estimate_kmer_depth(
    const std::vector<std::uint64_t>& histogram, std::uint32_t min_count) {
  std::uint32_t best = min_count;
  std::uint64_t best_n = 0;
  for (std::size_t c = min_count; c < histogram.size(); ++c) {
    if (histogram[c] > best_n) {
      best_n = histogram[c];
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

}  // namespace hipmer::kcount
