#pragma once

#include <cstdint>

#include "seq/extensions.hpp"

/// Per-k-mer occurrence and extension tallies.
///
/// During counting, each canonical k-mer accumulates its total occurrence
/// count plus, for each side, how many *high-quality* sightings of each of
/// the four bases were observed adjacent to it. After counting, the tally
/// collapses into the UFX record Meraculous works with: a depth plus the
/// two-letter extension code (§2 of the paper).
namespace hipmer::kcount {

struct KmerTally {
  std::uint32_t count = 0;
  std::uint16_t left[4] = {0, 0, 0, 0};
  std::uint16_t right[4] = {0, 0, 0, 0};

  void add_count(std::uint32_t n = 1) noexcept {
    // Saturate: wheat-like heavy hitters overflow 32 bits only at absurd
    // scale, but the 16-bit extension tallies saturate routinely.
    const std::uint64_t next = std::uint64_t{count} + n;
    count = next > 0xffffffffULL ? 0xffffffffU : static_cast<std::uint32_t>(next);
  }

  static void add_sat16(std::uint16_t& slot, std::uint32_t n = 1) noexcept {
    const std::uint32_t next = std::uint32_t{slot} + n;
    slot = next > 0xffffU ? 0xffffU : static_cast<std::uint16_t>(next);
  }

  void add_left(std::uint8_t base_code, std::uint32_t n = 1) noexcept {
    add_sat16(left[base_code], n);
  }
  void add_right(std::uint8_t base_code, std::uint32_t n = 1) noexcept {
    add_sat16(right[base_code], n);
  }

  /// Merge another tally into this one (commutative + associative, so the
  /// distributed reduction is order-independent).
  void merge(const KmerTally& o) noexcept {
    add_count(o.count);
    for (int b = 0; b < 4; ++b) {
      add_sat16(left[b], o.left[b]);
      add_sat16(right[b], o.right[b]);
    }
  }
};

/// Merge functor for DistHashMap.
struct KmerTallyMerge {
  void operator()(KmerTally& existing, const KmerTally& incoming) const {
    existing.merge(incoming);
  }
};

/// Finalized UFX record: count ("depth") + unique high-quality extensions.
struct KmerSummary {
  std::uint32_t depth = 0;
  char left_ext = seq::kExtNone;
  char right_ext = seq::kExtNone;

  [[nodiscard]] seq::ExtPair ext() const noexcept {
    return seq::ExtPair{left_ext, right_ext};
  }
};

/// Collapse one side's base tallies into an extension code: the unique base
/// with support >= `min_ext_count` ('F' if two or more qualify, 'X' if
/// none).
[[nodiscard]] inline char resolve_extension(const std::uint16_t tallies[4],
                                            std::uint32_t min_ext_count) {
  int qualified = -1;
  for (int b = 0; b < 4; ++b) {
    if (tallies[b] >= min_ext_count) {
      if (qualified >= 0) return seq::kExtFork;
      qualified = b;
    }
  }
  if (qualified < 0) return seq::kExtNone;
  return seq::code_to_base(static_cast<std::uint8_t>(qualified));
}

[[nodiscard]] inline KmerSummary summarize(const KmerTally& tally,
                                           std::uint32_t min_ext_count) {
  KmerSummary s;
  s.depth = tally.count;
  s.left_ext = resolve_extension(tally.left, min_ext_count);
  s.right_ext = resolve_extension(tally.right, min_ext_count);
  return s;
}

}  // namespace hipmer::kcount
