#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/alignment.hpp"
#include "pgas/shuffle.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"

/// Locality-aware read shuffle (--shuffle-reads).
///
/// After merAligner places the reads, each rank mostly holds reads that
/// align to contigs owned by *other* ranks (contigs are dealt id % P, reads
/// were dealt pair % P at ingest — the two deals are unrelated). Gap
/// closing then pays an off-node message for nearly every read projection.
/// This collective fixes that: read pairs are re-dealt so the rank that
/// owns a pair's best-aligned contig owns the pair, turning the projection
/// exchange into mostly self-sends.
///
/// The shuffle unit is the whole (library, pair) group — both mates plus
/// every alignment either mate produced travel as one record, so the
/// "mates are adjacent, partner = index ^ 1" invariant survives the move
/// and gap closing can still match alignments to local reads by
/// (library, pair_id, mate). Pairs with no alignment on this rank stay put
/// (degraded locality, never lost reads): a record carries 0..2 reads and
/// any number of alignments, which also absorbs the resume corner where a
/// re-sharded read distribution does not match a snapshot's alignment
/// distribution.
///
/// Destination rule (pure function of the pair's alignment set, so every
/// distribution of the same multiset converges to the same placement):
/// best alignment by (score desc, contig_id asc, contig_start asc, mate
/// asc), then dest = contig_id % P — the ContigStore's owner_of deal.
namespace hipmer::pipeline {

struct ReadShuffleStats {
  std::uint64_t pairs_total = 0;   ///< (library, pair) groups seen locally
  std::uint64_t pairs_moved = 0;   ///< groups shipped to another rank
  std::uint64_t reads_moved = 0;   ///< reads inside those groups
};

/// One decoded shuffle record: a (library, pair) group's reads and
/// alignments. The wire format (schema `shuffle_group`) is
///   u32 lib, u32 nreads, nreads x read_record,
///   u32 naligns, naligns x alignment_record.
struct ShuffleGroup {
  std::uint32_t lib = 0;
  std::vector<seq::Read> reads;
  std::vector<align::ReadAlignment> alignments;
};

[[nodiscard]] std::vector<std::byte> encode_shuffle_group(
    const ShuffleGroup& group);

/// Throws io::wire::Error on any malformed record — callers decode the
/// whole record before mutating any store, so a corrupt record never
/// leaves a partial append behind.
[[nodiscard]] ShuffleGroup decode_shuffle_group(const std::byte* data,
                                                std::size_t size);

/// Collective over the team. Replaces `my_libs` (per-library stores; the
/// rebuilt stores keep each store's packed/plain representation) and
/// `my_alignments` with the post-shuffle ownership. Records are exchanged
/// through `exchange` (construct one per call, in the serial context).
void shuffle_reads_by_alignment(pgas::Rank& rank,
                                pgas::ShuffleExchange& exchange,
                                std::vector<seq::ReadStore>& my_libs,
                                std::vector<align::ReadAlignment>& my_alignments,
                                ReadShuffleStats* stats = nullptr);

}  // namespace hipmer::pipeline
