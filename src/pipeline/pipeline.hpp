#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/mer_aligner.hpp"
#include "ckpt/checkpoint.hpp"
#include "dbg/contig_generator.hpp"
#include "dbg/oracle.hpp"
#include "io/fasta.hpp"
#include "kcount/kmer_analysis.hpp"
#include "pgas/chaos.hpp"
#include "pgas/machine_model.hpp"
#include "pgas/thread_team.hpp"
#include "scaffold/bubbles.hpp"
#include "scaffold/gap_closing.hpp"
#include "scaffold/links.hpp"
#include "scaffold/ordering.hpp"
#include "scaffold/sequence_builder.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"
#include "util/stats.hpp"

/// End-to-end HipMer pipeline driver.
///
/// Orchestrates the full assembly of Figure 1 — k-mer analysis → contig
/// generation → scaffolding (alignment, insert sizes, splints/spans, links,
/// ordering/orientation, gap closing) — as a sequence of bulk-synchronous
/// phases over one ThreadTeam. Each phase is timed twice: measured wall
/// seconds on this host, and modeled seconds from the machine model applied
/// to the phase's per-rank communication counters (see
/// pgas/machine_model.hpp for why). The per-stage reports are exactly the
/// series Figures 7 and 8 of the paper plot.
namespace hipmer::pipeline {

/// Thrown from serial context (between timed phases) when
/// PipelineConfig::cancel_poll reports a cancellation request. No rank
/// unwinds and no barrier shrinks, so the team stays healthy — the next
/// job needs only the usual Pipeline::reset.
struct JobCancelled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct PipelineConfig {
  int k = 31;

  kcount::KmerAnalysisConfig kmer;
  dbg::ContigGenConfig contig;
  align::AlignerConfig aligner;
  scaffold::LinkConfig links;
  scaffold::OrderingConfig ordering;
  scaffold::GapClosingConfig gaps;
  scaffold::BubbleConfig bubbles;

  /// Merge diploid bubbles before scaffolding (§4.2). Harmless but
  /// pointless for haploid genomes.
  bool merge_bubbles = true;
  /// Scaffolding rounds (wheat runs four, §5.3); each round re-aligns the
  /// reads against the previous round's scaffolds.
  int scaffolding_rounds = 1;
  /// Optional oracle partition for communication-avoiding traversal (§3.2).
  const dbg::OraclePartition* oracle = nullptr;

  /// Baseline ("Ray-like") mode: rank 0 reads the FASTQ files alone and
  /// scatters the records, modelling an assembler without parallel I/O.
  bool serial_io = false;
  /// Baseline ("ABySS-like") mode: all reads are gathered to rank 0 before
  /// scaffolding, which then runs effectively single-rank ("the subsequent
  /// scaffolding steps must be performed on a single shared memory node").
  bool serial_scaffolding = false;

  /// Keep resident reads in the 2-bit PackedReads arena instead of
  /// std::vector<seq::Read> (--packed-reads). Perf/memory-only: every stage
  /// reads through ReadSetView, so output is byte-identical either way —
  /// which is why this knob stays out of the config fingerprint.
  bool packed_reads = false;
  /// After each round's alignment, redistribute read pairs so each rank
  /// owns the reads that align to its contigs (--shuffle-reads); gap
  /// closing's read projections then become mostly local. Perf-only and
  /// fingerprint-excluded for the same reason. Ignored under
  /// serial_scaffolding (rank 0 already holds everything).
  bool shuffle_reads = false;

  /// Machine model used for the modeled-seconds column of reports.
  pgas::MachineModel machine;

  /// Checkpoint/restart (src/ckpt): with a non-empty directory, `run`
  /// snapshots each stage's artifact and `resume` restarts from the newest
  /// valid snapshot. Excluded from the config fingerprint, like the machine
  /// model — neither affects assembly results.
  ckpt::CheckpointConfig checkpoint;

  /// Lossy-fabric chaos schedule (pgas/chaos.hpp): seeded fault injection
  /// on the batched comm paths. Default-constructed = perfect fabric.
  /// Excluded from the config fingerprint: the delivery protocol makes
  /// chaos invisible to assembly results — that invariance is what the
  /// chaos tests assert.
  pgas::ChaosPlan chaos;

  /// Delivery backend selection (--fabric): threads (default) or one OS
  /// process per rank over Unix-domain sockets. Excluded from the config
  /// fingerprint — the backends are byte-identical by construction, which
  /// the cross-fabric tests assert.
  pgas::FabricConfig fabric;

  /// Polled in serial context before every timed phase (the server's
  /// cancel path). Returning true aborts the job with JobCancelled from
  /// between stages, so the team stays healthy for the next job. A control
  /// knob, not a result knob — excluded from the fingerprint.
  std::function<bool()> cancel_poll;

  /// Which retry of the same job this run is (0 = first). Informational
  /// for resume logging; excluded from the fingerprint so a retry reuses
  /// the original attempt's snapshots.
  int attempt = 0;

  /// Propagate k into the sub-configs (call after setting `k`).
  void sync_k() {
    kmer.k = k;
    contig.k = k;
    aligner.seed_k = k;
    gaps.k = k;
    bubbles.k = k;
  }
};

/// One timed bulk-synchronous phase.
struct StageReport {
  std::string name;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  pgas::CommStatsSnapshot comm;  // aggregate over ranks
};

struct PipelineResult {
  std::vector<io::FastaRecord> scaffolds;

  util::AssemblyStats contig_stats;
  util::AssemblyStats scaffold_stats;
  scaffold::ScaffoldStats closure_stats;
  std::vector<scaffold::InsertSizeEstimate> insert_estimates;

  std::uint64_t num_contigs = 0;
  std::uint64_t distinct_kmers = 0;
  double singleton_fraction = 0.0;
  std::size_t heavy_hitters = 0;

  /// Stages in execution order; repeated stage names (rounds) accumulate.
  std::vector<StageReport> stages;

  [[nodiscard]] double wall_total() const;
  [[nodiscard]] double modeled_total() const;
  [[nodiscard]] double wall_for(const std::string& stage) const;
  [[nodiscard]] double modeled_for(const std::string& stage) const;
  /// Short human-readable per-stage summary.
  [[nodiscard]] std::string format_stages() const;
};

/// Canonical stage names (shared with the benches).
inline constexpr const char* kStageIo = "io";
inline constexpr const char* kStageKmerAnalysis = "kmer_analysis";
inline constexpr const char* kStageContigGen = "contig_generation";
inline constexpr const char* kStageAligner = "merAligner";
inline constexpr const char* kStageScaffoldRest = "rest_scaffolding";
inline constexpr const char* kStageGapClosing = "gap_closing";
/// Locality shuffle between alignment and gap closing (--shuffle-reads).
inline constexpr const char* kStageShuffle = "shuffle_reads";
/// Checkpoint snapshot writes (one report per snapshotted artifact).
inline constexpr const char* kStageCheckpoint = "checkpoint";
/// Checkpoint reads on resume (also the fault-injection stage name for
/// killing a rank mid-restore; see ckpt::kRestoreFaultStage).
inline constexpr const char* kStageRestore = "restore";

class Pipeline {
 public:
  Pipeline(pgas::Topology topo, PipelineConfig config);

  /// Assemble from in-memory libraries: `library_reads[l]` holds library
  /// l's interleaved pairs; `libraries[l]` its metadata.
  [[nodiscard]] PipelineResult run(
      const std::vector<std::vector<seq::Read>>& library_reads,
      const std::vector<seq::ReadLibrary>& libraries);

  /// Assemble from FASTQ files named in `libraries` (parallel block
  /// reader; adds an "io" stage).
  [[nodiscard]] PipelineResult run_from_fastq(
      const std::vector<seq::ReadLibrary>& libraries);

  /// Restart from the newest valid checkpoint under
  /// `config().checkpoint.dir`, re-sharding snapshots to this team's size,
  /// then continue (and keep checkpointing). Falls back to a full `run`
  /// with the given in-memory reads when no snapshot survives validation.
  [[nodiscard]] PipelineResult resume(
      const std::vector<std::vector<seq::Read>>& library_reads,
      const std::vector<seq::ReadLibrary>& libraries);

  /// FASTQ variant of `resume` (falls back to `run_from_fastq`).
  [[nodiscard]] PipelineResult resume_from_fastq(
      const std::vector<seq::ReadLibrary>& libraries);

  /// The one FASTQ entry point shared by the CLI drivers and the server's
  /// job executor: `resume` selects resume_from_fastq (checkpoint restart
  /// with fallback) over a fresh run_from_fastq.
  [[nodiscard]] PipelineResult execute_from_fastq(
      const std::vector<seq::ReadLibrary>& libraries, bool resume);

  /// Re-arm this pipeline for another job on the same team (serial
  /// context, no run in flight). The delivery backend is a construction
  /// property of the team, so `config.fabric` is ignored in favor of the
  /// original; everything else — including the chaos plan and checkpoint
  /// dir — is replaced. Clears any artifact-cache hooks from the previous
  /// job.
  void reset(PipelineConfig config);

  /// Artifact-cache hook (src/server): the next run starts from these
  /// decoded UFX shards and skips the k-mer analysis stage entirely.
  /// Shards may come from any team size — contig generation re-owns every
  /// k-mer by hash, so they are dealt round robin exactly like a resume.
  /// `aux` carries the k-mer bookkeeping stats captured when the shards
  /// were produced. One-shot: consumed by the next run, cleared by reset.
  void set_preloaded_ufx(std::vector<std::vector<kcount::UfxRecord>> shards,
                         ckpt::AuxStats aux);

  /// Artifact-cache hook (src/server): invoked once after a run computes
  /// UFX from scratch, with every rank's shard encoded in the checkpoint
  /// wire format (ckpt::encode/decode_ufx_shard) plus the k-mer aux stats.
  /// Threads fabric only — on a multi-process fabric each process holds
  /// only its own shard, so the hook is skipped. One-shot like the
  /// preload.
  using UfxExportFn = std::function<void(
      std::vector<std::vector<std::byte>> encoded_shards,
      const ckpt::AuxStats& aux)>;
  void set_ufx_export(UfxExportFn fn) { ufx_export_ = std::move(fn); }

  [[nodiscard]] pgas::ThreadTeam& team() { return team_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// Fingerprint binding checkpoints to this configuration: k, every
  /// result-affecting stage parameter, and the library set (names +
  /// contigging roles). Deliberately excludes the team size (resume
  /// re-shards), scaffolding_rounds (a longer run reuses a shorter run's
  /// snapshots), and pure performance/modeling knobs.
  [[nodiscard]] std::uint64_t config_fingerprint(
      const std::vector<seq::ReadLibrary>& libraries) const;

 private:
  /// Per-rank, per-library read shares (plain or packed per
  /// config_.packed_reads).
  using RankReads = std::vector<std::vector<seq::ReadStore>>;

  /// RankReads sized for this team with every store's representation set.
  [[nodiscard]] RankReads make_rank_reads(std::size_t nlibs) const;

  [[nodiscard]] PipelineResult assemble(
      RankReads rank_reads, const std::vector<seq::ReadLibrary>& libraries,
      std::vector<StageReport> initial_stages, ckpt::ResumeState resume_state);

  void init_checkpointer(const std::vector<seq::ReadLibrary>& libraries);
  [[nodiscard]] ckpt::ResumeState load_resume_state(
      std::vector<StageReport>& stages);

  /// Time `body()` (which may run any number of collective phases) and
  /// append a report for it.
  template <typename Body>
  void run_reported(std::vector<StageReport>& stages, const std::string& name,
                    Body&& body);

  /// Run `fn` as one timed collective phase and append its report. The
  /// stage is announced to the fault injector and `fn` entry is a fault
  /// point (step 0 of a FaultPlan kills a rank at the stage boundary).
  template <typename Fn>
  void run_stage(std::vector<StageReport>& stages, const std::string& name,
                 Fn&& fn);

  /// Snapshot one artifact: every rank encodes and writes its shard
  /// (reported as a "checkpoint" stage), then the serial context commits.
  template <typename EncodeFn>
  void snapshot_stage(std::vector<StageReport>& stages,
                      const std::string& artifact, const ckpt::AuxStats& aux,
                      EncodeFn&& encode);

  pgas::ThreadTeam team_;
  PipelineConfig config_;
  std::unique_ptr<ckpt::Checkpointer> ckpt_;

  // Artifact-cache hooks (see set_preloaded_ufx / set_ufx_export).
  std::vector<std::vector<kcount::UfxRecord>> preloaded_ufx_;
  ckpt::AuxStats preloaded_aux_;
  bool has_preloaded_ufx_ = false;
  UfxExportFn ufx_export_;
};

}  // namespace hipmer::pipeline
