#include "pipeline/read_shuffle.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "align/alignment_wire.hpp"
#include "io/wire.hpp"
#include "seq/read_name.hpp"

namespace hipmer::pipeline {

namespace {

/// One (library, pair) shuffle unit under construction.
struct PairGroup {
  std::uint32_t lib = 0;
  /// Local read indices within the library store, mate-ascending.
  std::vector<std::uint32_t> read_idx;
  std::vector<align::ReadAlignment> alignments;
};

/// Streaming twin of encode_shuffle_group: same wire bytes, sourced from a
/// ReadStore without materializing seq::Read objects. wirecheck diffs both
/// writers against the reader, so the two cannot drift apart silently.
// wire-schema: shuffle_group writer
std::vector<std::byte> encode_group(const PairGroup& g,
                                    const seq::ReadStore& store) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(g.lib);
  w.put_u32(static_cast<std::uint32_t>(g.read_idx.size()));
  std::string seq_scratch;
  std::string qual_scratch;
  for (const std::uint32_t idx : g.read_idx) {
    w.put_bytes(store.name(idx));
    w.put_bytes(store.seq(idx, seq_scratch));
    w.put_bytes(store.quals(idx, qual_scratch));
  }
  w.put_u32(static_cast<std::uint32_t>(g.alignments.size()));
  for (const auto& a : g.alignments) align::put_alignment(w, a);
  return buf;
}

/// Best alignment of the group decides the destination; ties broken the
/// same way merAligner orders its report (score desc, contig asc, start
/// asc) plus mate asc, so the winner is a pure function of the set.
bool better(const align::ReadAlignment& a, const align::ReadAlignment& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  if (a.contig_start != b.contig_start) return a.contig_start < b.contig_start;
  return a.mate < b.mate;
}

}  // namespace

// wire-schema: shuffle_group writer
std::vector<std::byte> encode_shuffle_group(const ShuffleGroup& group) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(group.lib);
  w.put_u32(static_cast<std::uint32_t>(group.reads.size()));
  for (const auto& read : group.reads) io::wire::put_read(w, read);
  w.put_u32(static_cast<std::uint32_t>(group.alignments.size()));
  for (const auto& a : group.alignments) align::put_alignment(w, a);
  return buf;
}

// wire-schema: shuffle_group reader
ShuffleGroup decode_shuffle_group(const std::byte* data, std::size_t size) {
  io::wire::Reader r(data, size);
  ShuffleGroup group;
  group.lib = r.get_u32_checked("group lib");
  const std::uint32_t nreads = r.get_u32_checked("group read count");
  group.reads.reserve(std::min<std::uint32_t>(nreads, 1024));
  for (std::uint32_t i = 0; i < nreads; ++i)
    group.reads.push_back(io::wire::get_read_checked(r));
  const std::uint32_t naligns = r.get_u32_checked("group alignment count");
  group.alignments.reserve(std::min<std::uint32_t>(naligns, 1024));
  for (std::uint32_t i = 0; i < naligns; ++i)
    group.alignments.push_back(align::get_alignment_checked(r));
  if (!r.done())
    throw io::wire::CorruptError(
        "wire: corrupt: trailing bytes after shuffle group");
  return group;
}

void shuffle_reads_by_alignment(
    pgas::Rank& rank, pgas::ShuffleExchange& exchange,
    std::vector<seq::ReadStore>& my_libs,
    std::vector<align::ReadAlignment>& my_alignments, ReadShuffleStats* stats) {
  const int me = rank.id();
  const auto p = static_cast<std::uint64_t>(rank.nranks());

  // ---- Group local reads and alignments by (library, pair). ----
  // Groups are created in scan order (libraries ascending, read index
  // ascending, then leftover alignment order), so the send sequence — and
  // with it the receiver's rebuild order — is deterministic.
  std::vector<PairGroup> groups;
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> group_of(
      my_libs.size());
  const auto group_for = [&](std::uint32_t lib,
                             std::uint64_t pair_id) -> PairGroup& {
    auto [it, inserted] =
        group_of[lib].try_emplace(pair_id, static_cast<std::uint32_t>(groups.size()));
    if (inserted) {
      groups.emplace_back();
      groups.back().lib = lib;
    }
    return groups[it->second];
  };

  for (std::size_t lib = 0; lib < my_libs.size(); ++lib) {
    const auto& store = my_libs[lib];
    for (std::size_t i = 0; i < store.size(); ++i) {
      std::uint64_t pair_id = 0;
      int mate = 0;
      if (!seq::parse_read_name(store.name(i), pair_id, mate)) {
        // Unparseable name: pin the read in place under a private key so it
        // is never shipped (the aligner skipped it too).
        continue;
      }
      group_for(static_cast<std::uint32_t>(lib), pair_id)
          .read_idx.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (const auto& a : my_alignments) {
    const auto lib = static_cast<std::uint32_t>(a.library);
    if (lib >= my_libs.size()) continue;
    group_for(lib, a.pair_id).alignments.push_back(a);
  }

  // Mates travel mate-ascending inside a record; scan order already yields
  // that when mates are adjacent, but a resume reshard may not keep them
  // sorted, so enforce it.
  std::string name_scratch;
  for (auto& g : groups) {
    std::sort(g.read_idx.begin(), g.read_idx.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                std::uint64_t px = 0, py = 0;
                int mx = 0, my_ = 0;
                (void)seq::parse_read_name(my_libs[g.lib].name(x), px, mx);
                (void)seq::parse_read_name(my_libs[g.lib].name(y), py, my_);
                if (mx != my_) return mx < my_;
                return x < y;
              });
  }

  // ---- Route every group; self-destined records bypass the transport. ----
  ReadShuffleStats local;
  std::vector<std::vector<std::byte>> staying;
  for (const auto& g : groups) {
    int dest = me;
    if (!g.alignments.empty()) {
      const auto best = std::min_element(
          g.alignments.begin(), g.alignments.end(),
          [](const align::ReadAlignment& a, const align::ReadAlignment& b) {
            return better(a, b);
          });
      dest = static_cast<int>(best->contig_id % p);
    }
    local.pairs_total += 1;
    auto record = encode_group(g, my_libs[g.lib]);
    if (dest == me) {
      staying.push_back(std::move(record));
    } else {
      local.pairs_moved += 1;
      local.reads_moved += g.read_idx.size();
      exchange.send(rank, dest, std::move(record));
    }
  }

  // Reads whose names did not parse never joined a group; re-encode them as
  // stay-put singleton records so nothing is dropped.
  for (std::size_t lib = 0; lib < my_libs.size(); ++lib) {
    const auto& store = my_libs[lib];
    for (std::size_t i = 0; i < store.size(); ++i) {
      std::uint64_t pair_id = 0;
      int mate = 0;
      if (seq::parse_read_name(store.name(i), pair_id, mate)) continue;
      PairGroup g;
      g.lib = static_cast<std::uint32_t>(lib);
      g.read_idx.push_back(static_cast<std::uint32_t>(i));
      staying.push_back(encode_group(g, store));
    }
  }

  auto incoming = exchange.collect(rank);

  // ---- Rebuild: stayers first, then incoming (src asc, send order). ----
  std::vector<seq::ReadStore> fresh;
  fresh.reserve(my_libs.size());
  for (const auto& store : my_libs) fresh.emplace_back(store.packed());
  std::vector<align::ReadAlignment> fresh_aligns;

  // Decode the whole record before touching any store: a malformed record
  // (impossible unless the CRC-checked transport or a peer misbehaved) is
  // dropped atomically instead of leaving a half-appended library behind.
  const auto absorb = [&](const std::vector<std::byte>& record) {
    ShuffleGroup group;
    try {
      group = decode_shuffle_group(record.data(), record.size());
    } catch (const io::wire::Error&) {
      return;
    }
    if (group.lib >= fresh.size()) return;
    for (auto& read : group.reads)
      fresh[group.lib].append(read.name, read.seq, read.quals);
    for (const auto& a : group.alignments) fresh_aligns.push_back(a);
  };
  for (const auto& rec : staying) absorb(rec);
  for (const auto& rec : incoming) absorb(rec);
  for (auto& store : fresh) store.shrink_to_fit();

  my_libs = std::move(fresh);
  my_alignments = std::move(fresh_aligns);
  if (stats != nullptr) *stats = local;
}

}  // namespace hipmer::pipeline
