#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <iterator>
#include <numeric>
#include <optional>
#include <sstream>

#include "align/contig_store.hpp"
#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/wire.hpp"
#include "pipeline/read_shuffle.hpp"
#include "scaffold/depths.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/splints_spans.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace hipmer::pipeline {

double PipelineResult::wall_total() const {
  double total = 0;
  for (const auto& s : stages) total += s.wall_seconds;
  return total;
}

double PipelineResult::modeled_total() const {
  double total = 0;
  for (const auto& s : stages) total += s.modeled_seconds;
  return total;
}

double PipelineResult::wall_for(const std::string& stage) const {
  double total = 0;
  for (const auto& s : stages)
    if (s.name == stage) total += s.wall_seconds;
  return total;
}

double PipelineResult::modeled_for(const std::string& stage) const {
  double total = 0;
  for (const auto& s : stages)
    if (s.name == stage) total += s.modeled_seconds;
  return total;
}

std::string PipelineResult::format_stages() const {
  std::ostringstream os;
  // Accumulate by name, preserving first-seen order.
  std::vector<std::string> names;
  for (const auto& s : stages)
    if (std::find(names.begin(), names.end(), s.name) == names.end())
      names.push_back(s.name);
  for (const auto& name : names) {
    os << "  " << name << ": wall " << wall_for(name) << "s, modeled "
       << modeled_for(name) << "s\n";
  }
  return os.str();
}

Pipeline::Pipeline(pgas::Topology topo, PipelineConfig config)
    : team_(topo, config.fabric), config_(config) {
  config_.sync_k();
  team_.transport().set_plan(config_.chaos);
}

void Pipeline::reset(PipelineConfig config) {
  // The fabric was chosen at team construction; a job cannot change it.
  config.fabric = config_.fabric;
  config_ = std::move(config);
  config_.sync_k();
  ckpt_.reset();
  preloaded_ufx_.clear();
  has_preloaded_ufx_ = false;
  ufx_export_ = nullptr;
  team_.reset_for_job();
  team_.transport().set_plan(config_.chaos);
}

void Pipeline::set_preloaded_ufx(
    std::vector<std::vector<kcount::UfxRecord>> shards, ckpt::AuxStats aux) {
  preloaded_ufx_ = std::move(shards);
  preloaded_aux_ = aux;
  has_preloaded_ufx_ = true;
}

PipelineResult Pipeline::execute_from_fastq(
    const std::vector<seq::ReadLibrary>& libraries, bool resume) {
  return resume ? resume_from_fastq(libraries) : run_from_fastq(libraries);
}

std::uint64_t Pipeline::config_fingerprint(
    const std::vector<seq::ReadLibrary>& libraries) const {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  const auto put_u = [&](std::uint64_t v) { w.put_u64(v); };
  const auto put_i = [&](std::int64_t v) {
    w.put_u64(static_cast<std::uint64_t>(v));
  };
  const auto put_d = [&](double v) { w.put_pod(v); };
  const auto put_b = [&](bool v) { w.put_u32(v ? 1 : 0); };

  // Only result-affecting parameters enter the fingerprint. Batching knobs
  // (flush_threshold, chunk_kmers, lookup_chunk, read_cache_capacity,
  // expected_links) change message schedules and table sizing, not what is
  // computed; the machine model, oracle partition and checkpoint config are
  // likewise excluded, as are the team size (resume re-shards) and
  // scaffolding_rounds (a longer run reuses a shorter run's snapshots).
  w.put_u32(0x31504643);  // "CFP1"
  put_i(config_.k);
  put_u(config_.kmer.min_count);
  put_i(config_.kmer.qual_threshold);
  put_u(config_.kmer.min_ext_count);
  put_b(config_.kmer.use_heavy_hitters);
  put_u(config_.kmer.mg_capacity);
  put_u(config_.kmer.hh_min_count);
  put_b(config_.kmer.use_bloom);
  put_d(config_.kmer.candidate_fraction);
  put_u(config_.contig.min_contig_len);
  put_i(config_.aligner.seed_stride);
  put_i(config_.aligner.max_seed_hits);
  put_d(config_.aligner.min_score_fraction);
  put_i(config_.aligner.max_alignments_per_read);
  put_i(config_.aligner.sw_band);
  put_i(config_.aligner.scoring.match);
  put_i(config_.aligner.scoring.mismatch);
  put_i(config_.aligner.scoring.gap);
  put_u(config_.links.min_support);
  put_b(config_.ordering.require_mutual_best);
  put_d(config_.ordering.max_depth_factor);
  put_i(config_.gaps.walk_k_step);
  put_i(config_.gaps.max_walk_k);
  put_i(config_.gaps.anchor);
  put_d(config_.gaps.reach_sigma);
  put_i(config_.gaps.end_slack);
  put_u(config_.gaps.max_reads_per_gap);
  put_b(config_.merge_bubbles);
  put_d(config_.bubbles.max_length_skew);
  put_b(config_.serial_scaffolding);
  // Library set: names and contigging roles. Insert statistics are
  // re-estimated from alignments, paths only locate the same data.
  put_u(libraries.size());
  for (const auto& lib : libraries) {
    w.put_bytes(lib.name);
    put_b(lib.for_contigging);
  }
  return util::hash_bytes(buf.data(), buf.size());
}

void Pipeline::init_checkpointer(
    const std::vector<seq::ReadLibrary>& libraries) {
  if (!config_.checkpoint.enabled()) {
    ckpt_.reset();
    return;
  }
  ckpt_ = std::make_unique<ckpt::Checkpointer>(config_.checkpoint,
                                               config_fingerprint(libraries));
}

ckpt::ResumeState Pipeline::load_resume_state(
    std::vector<StageReport>& stages) {
  if (!ckpt_) return {};
  // Serial scaffolding concentrates the reads on rank 0 after the contig
  // stage; snapshots past that point assume the distributed layout, so cap
  // resume there.
  int max_progress = ckpt::progress_scaffolds(config_.scaffolding_rounds - 1);
  if (config_.serial_scaffolding) max_progress = ckpt::kProgressContigs;
  ckpt::ResumeState rs;
  run_reported(stages, kStageRestore, [&] {
    rs = ckpt_->load(team_, config_.scaffolding_rounds, max_progress);
  });
  return rs;
}

template <typename Body>
void Pipeline::run_reported(std::vector<StageReport>& stages,
                            const std::string& name, Body&& body) {
  // Serial-context cancel point: between phases no rank is inside the
  // team, so throwing here never shrinks a barrier or strands a peer.
  if (config_.cancel_poll && config_.cancel_poll())
    throw JobCancelled("job cancelled before stage " + name);
  // Global counters: on a multi-process fabric every process holds partial
  // mirrors; snapshot_all_global sums them so the report (and the machine
  // model) sees the same totals the threads fabric would.
  const auto before = team_.snapshot_all_global();
  util::WallTimer timer;
  body();
  StageReport report;
  report.name = name;
  report.wall_seconds = timer.seconds();
  const auto after = team_.snapshot_all_global();
  std::vector<pgas::CommStatsSnapshot> delta(after.size());
  for (std::size_t r = 0; r < after.size(); ++r) {
    delta[r] = after[r] - before[r];
    report.comm += delta[r];
  }
  report.modeled_seconds = config_.machine.phase_seconds(delta, team_.topology());
  util::log_info("stage " + name + ": wall " +
                 std::to_string(report.wall_seconds) + "s, modeled " +
                 std::to_string(report.modeled_seconds) + "s");
  stages.push_back(std::move(report));
}

template <typename Fn>
void Pipeline::run_stage(std::vector<StageReport>& stages,
                         const std::string& name, Fn&& fn) {
  run_reported(stages, name, [&] {
    team_.begin_stage(name);  // fault plans + transport blackhole rules
    team_.run([&](pgas::Rank& rank) {
      // Stage-boundary fault point: step 0 of a FaultPlan kills here,
      // before the stage does any work.
      team_.faults().on_fault_point(rank.id());
      fn(rank);
    });
  });
}

template <typename EncodeFn>
void Pipeline::snapshot_stage(std::vector<StageReport>& stages,
                              const std::string& artifact,
                              const ckpt::AuxStats& aux, EncodeFn&& encode) {
  if (!ckpt_) return;
  auto entry = ckpt_->begin_entry(artifact, team_.nranks(), aux);
  std::atomic<bool> ok{true};
  run_stage(stages, kStageCheckpoint, [&](pgas::Rank& rank) {
    const auto payload = encode(rank);
    rank.stats().add_io_write(payload.size());
    if (!ckpt_->write_shard(entry, rank.id(), payload))
      ok.store(false, std::memory_order_relaxed);
    rank.barrier();
  });
  bool all_ok = ok.load(std::memory_order_relaxed);
  if (team_.multiprocess()) {
    // Each process wrote only its own rank's shard into its copy of the
    // entry; exchange (shard, bytes, crc, failed) so every process's
    // manifest entry describes all shards and everyone agrees on success.
    const auto me = static_cast<std::size_t>(team_.my_rank());
    std::vector<std::byte> mine;
    io::wire::Writer w(mine);
    w.put_u32(static_cast<std::uint32_t>(me));
    w.put_u64(entry.shard_bytes[me]);
    w.put_u32(entry.shard_crcs[me]);
    w.put_u32(all_ok ? 0 : 1);
    for (auto& part : team_.serial_exchange(std::move(mine))) {
      io::wire::Reader rd(part);
      const auto shard = rd.get_pod_checked<std::uint32_t>("ckpt shard");
      const auto bytes = rd.get_pod_checked<std::uint64_t>("ckpt bytes");
      const auto crc = rd.get_pod_checked<std::uint32_t>("ckpt crc");
      const auto failed = rd.get_pod_checked<std::uint32_t>("ckpt failed");
      if (shard < entry.shard_count) {
        entry.shard_bytes[shard] = bytes;
        entry.shard_crcs[shard] = crc;
      }
      if (failed != 0) all_ok = false;
    }
  }
  if (all_ok) {
    // Workers mirror the entry into their in-memory manifest (keeping seq
    // numbers aligned with the primary's); only the primary writes disk.
    if (team_.is_primary())
      (void)ckpt_->commit(std::move(entry));
    else
      ckpt_->commit_local(std::move(entry));
  } else {
    util::log_warn("checkpoint: shard write failed for " + artifact +
                   "; snapshot not committed");
  }
}

Pipeline::RankReads Pipeline::make_rank_reads(std::size_t nlibs) const {
  const auto p = static_cast<std::size_t>(team_.nranks());
  return RankReads(
      p, std::vector<seq::ReadStore>(nlibs,
                                     seq::ReadStore(config_.packed_reads)));
}

PipelineResult Pipeline::run(
    const std::vector<std::vector<seq::Read>>& library_reads,
    const std::vector<seq::ReadLibrary>& libraries) {
  init_checkpointer(libraries);
  // Distribute pairs round robin so mates stay together on a rank.
  const auto p = static_cast<std::size_t>(team_.nranks());
  RankReads rank_reads = make_rank_reads(libraries.size());
  for (std::size_t lib = 0; lib < library_reads.size(); ++lib) {
    const auto& reads = library_reads[lib];
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const std::size_t pair = i / 2;
      rank_reads[pair % p][lib].append(reads[i]);
    }
  }
  return assemble(std::move(rank_reads), libraries, {}, {});
}

PipelineResult Pipeline::run_from_fastq(
    const std::vector<seq::ReadLibrary>& libraries) {
  init_checkpointer(libraries);
  const auto p = static_cast<std::size_t>(team_.nranks());
  RankReads rank_reads = make_rank_reads(libraries.size());

  std::vector<StageReport> stages;

  if (config_.serial_io) {
    // Ray-like mode: rank 0 reads each file whole and scatters pairs.
    run_stage(stages, kStageIo, [&](pgas::Rank& rank) {
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        std::vector<std::vector<std::byte>> outgoing(p);
        if (rank.is_root()) {
          const auto reads = io::read_fastq(libraries[lib].fastq_path);
          std::uint64_t bytes = 0;
          for (std::size_t i = 0; i < reads.size(); ++i) {
            const auto& r = reads[i];
            bytes += r.name.size() + r.seq.size() + r.quals.size() + 6;
            io::wire::Writer w(outgoing[(i / 2) % p]);
            io::wire::put_read(w, r);
            rank.stats().add_serial_work();
          }
          rank.stats().add_io_read(bytes);
        }
        const auto mine = rank.alltoallv(outgoing);
        auto& dest = rank_reads[static_cast<std::size_t>(rank.id())][lib];
        io::wire::Reader rd(mine);
        while (!rd.done()) {
          auto read = io::wire::get_read(rd);
          if (rd.truncated()) break;
          dest.append(std::move(read));
        }
        rank.barrier();
      }
    });
    return assemble(std::move(rank_reads), libraries, std::move(stages), {});
  }

  std::vector<std::unique_ptr<io::ParallelFastqReader>> readers;
  readers.reserve(libraries.size());
  for (const auto& lib : libraries)
    readers.push_back(std::make_unique<io::ParallelFastqReader>(lib.fastq_path));

  run_stage(stages, kStageIo, [&](pgas::Rank& rank) {
    for (std::size_t lib = 0; lib < readers.size(); ++lib) {
      readers[lib]->read_my_records(
          rank, rank_reads[static_cast<std::size_t>(rank.id())][lib]);
      rank.barrier();
    }
  });
  return assemble(std::move(rank_reads), libraries, std::move(stages), {});
}

PipelineResult Pipeline::resume(
    const std::vector<std::vector<seq::Read>>& library_reads,
    const std::vector<seq::ReadLibrary>& libraries) {
  init_checkpointer(libraries);
  std::vector<StageReport> stages;
  auto rs = load_resume_state(stages);
  if (rs.empty()) {
    util::log_info("resume: no usable checkpoint, assembling from scratch");
    const auto p = static_cast<std::size_t>(team_.nranks());
    RankReads rank_reads = make_rank_reads(libraries.size());
    for (std::size_t lib = 0; lib < library_reads.size(); ++lib) {
      const auto& reads = library_reads[lib];
      for (std::size_t i = 0; i < reads.size(); ++i)
        rank_reads[(i / 2) % p][lib].append(reads[i]);
    }
    return assemble(std::move(rank_reads), libraries, std::move(stages), {});
  }
  return assemble({}, libraries, std::move(stages), std::move(rs));
}

PipelineResult Pipeline::resume_from_fastq(
    const std::vector<seq::ReadLibrary>& libraries) {
  init_checkpointer(libraries);
  std::vector<StageReport> stages;
  auto rs = load_resume_state(stages);
  if (rs.empty()) {
    // A retry with nothing to resume from is the poison-job shape: the
    // earlier attempt died before its first snapshot committed.
    util::log_info(config_.attempt > 0
                       ? "resume: attempt " +
                             std::to_string(config_.attempt + 1) +
                             " found no usable checkpoint, assembling "
                             "from FASTQ"
                       : "resume: no usable checkpoint, assembling from "
                         "FASTQ");
    return run_from_fastq(libraries);
  }
  if (config_.attempt > 0)
    util::log_info("resume: attempt " + std::to_string(config_.attempt + 1) +
                   " resuming from the previous attempt's checkpoint");
  return assemble({}, libraries, std::move(stages), std::move(rs));
}

PipelineResult Pipeline::assemble(RankReads rank_reads,
                                  const std::vector<seq::ReadLibrary>& libraries,
                                  std::vector<StageReport> initial_stages,
                                  ckpt::ResumeState resume_state) {
  const auto p = static_cast<std::size_t>(team_.nranks());
  PipelineResult result;
  auto stages = std::move(initial_stages);

  const int progress = resume_state.progress;
  if (!resume_state.reads.empty()) {
    // Snapshot reads come back as plain records regardless of which shard
    // flavor was on disk; repack into this run's representation.
    rank_reads = make_rank_reads(libraries.size());
    for (std::size_t r = 0; r < resume_state.reads.size() && r < p; ++r) {
      auto& per_rank = resume_state.reads[r];
      for (std::size_t lib = 0; lib < per_rank.size() && lib < libraries.size();
           ++lib)
        for (auto& read : per_rank[lib])
          rank_reads[r][lib].append(std::move(read));
    }
  }
  if (rank_reads.size() != p) rank_reads = make_rank_reads(libraries.size());
  for (auto& per_rank : rank_reads) {
    if (per_rank.size() < libraries.size())
      per_rank.resize(libraries.size(), seq::ReadStore(config_.packed_reads));
    // Ingest is over: drop the arenas' growth slack (no-op for plain
    // stores) so resident read memory is what the bench reports.
    for (auto& store : per_rank) store.shrink_to_fit();
  }

  const bool shuffle_on = config_.shuffle_reads && !config_.serial_scaffolding;

  // Bookkeeping stats ride with every snapshot so a resumed run reports
  // them without redoing the stages that computed them.
  ckpt::AuxStats aux = resume_state.aux;

  if (progress < ckpt::kProgressReads) {
    snapshot_stage(stages, ckpt::kStageReads, aux, [&](pgas::Rank& rank) {
      const auto& mine = rank_reads[static_cast<std::size_t>(rank.id())];
      return config_.packed_reads ? ckpt::encode_packed_reads_shard(mine)
                                  : ckpt::encode_reads_shard(mine);
    });
  }

  // ---- Stage 1: k-mer analysis ----
  std::optional<kcount::KmerAnalysis> kmer_analysis;
  std::vector<std::vector<kcount::UfxRecord>> loaded_ufx;
  if (progress >= ckpt::kProgressUfx) {
    loaded_ufx = std::move(resume_state.ufx);
    loaded_ufx.resize(p);
  } else if (has_preloaded_ufx_) {
    // Artifact-cache hit: UFX computed by an earlier job with the same
    // fingerprint. Deal the shards round robin exactly like resume —
    // contig generation re-owns every k-mer by hash, so any producer team
    // size is valid here — and skip the k-mer analysis stage entirely
    // (which is what the per-job stage timings advertise as the hit).
    loaded_ufx.resize(p);
    for (std::size_t s = 0; s < preloaded_ufx_.size(); ++s) {
      auto& src = preloaded_ufx_[s];
      auto& dest = loaded_ufx[s % p];
      dest.insert(dest.end(), std::make_move_iterator(src.begin()),
                  std::make_move_iterator(src.end()));
    }
    preloaded_ufx_.clear();
    has_preloaded_ufx_ = false;
    aux.distinct_kmers = preloaded_aux_.distinct_kmers;
    aux.singleton_fraction = preloaded_aux_.singleton_fraction;
    aux.heavy_hitters = preloaded_aux_.heavy_hitters;
    snapshot_stage(stages, ckpt::kStageUfx, aux, [&](pgas::Rank& rank) {
      return ckpt::encode_ufx_shard(
          loaded_ufx[static_cast<std::size_t>(rank.id())]);
    });
  } else {
    kmer_analysis.emplace(team_, config_.kmer);
    run_stage(stages, kStageKmerAnalysis, [&](pgas::Rank& rank) {
      std::vector<seq::ReadSetView> sets;
      for (std::size_t lib = 0; lib < libraries.size(); ++lib)
        if (libraries[lib].for_contigging)
          sets.emplace_back(rank_reads[static_cast<std::size_t>(rank.id())][lib]);
      kmer_analysis->run(rank, sets);
    });
    aux.distinct_kmers = kmer_analysis->distinct_kmers();
    aux.singleton_fraction = kmer_analysis->singleton_fraction();
    aux.heavy_hitters = kmer_analysis->heavy_hitters().size();
    snapshot_stage(stages, ckpt::kStageUfx, aux, [&](pgas::Rank& rank) {
      return ckpt::encode_ufx_shard(kmer_analysis->ufx(rank.id()));
    });
    if (ufx_export_ && !team_.multiprocess()) {
      std::vector<std::vector<std::byte>> encoded(p);
      for (std::size_t r = 0; r < p; ++r)
        encoded[r] =
            ckpt::encode_ufx_shard(kmer_analysis->ufx(static_cast<int>(r)));
      auto export_fn = std::move(ufx_export_);
      ufx_export_ = nullptr;
      export_fn(std::move(encoded), aux);
    }
  }
  result.distinct_kmers = aux.distinct_kmers;
  result.singleton_fraction = aux.singleton_fraction;
  result.heavy_hitters = static_cast<std::size_t>(aux.heavy_hitters);

  const auto ufx_of = [&](int r) -> const std::vector<kcount::UfxRecord>& {
    return kmer_analysis ? kmer_analysis->ufx(r)
                         : loaded_ufx[static_cast<std::size_t>(r)];
  };

  // ---- Stages 2+3: contig generation, store + depths (§4.1) + bubbles
  // (§4.2) ----
  auto store = std::make_unique<align::ContigStore>(team_);
  if (progress < ckpt::kProgressContigs) {
    std::size_t total_ufx = 0;
    for (std::size_t r = 0; r < p; ++r) {
      if (team_.multiprocess() && !team_.is_local(static_cast<int>(r)))
        continue;
      total_ufx += ufx_of(static_cast<int>(r)).size();
    }
    total_ufx = team_.serial_sum(total_ufx);

    dbg::ContigGenerator contig_gen(team_, config_.contig, total_ufx);
    if (config_.oracle != nullptr) contig_gen.set_oracle(config_.oracle);
    run_stage(stages, kStageContigGen, [&](pgas::Rank& rank) {
      contig_gen.build_graph(rank, ufx_of(rank.id()));
      contig_gen.traverse(rank);
    });

    scaffold::DepthCalculator depth_calc(team_, config_.k, total_ufx,
                                         config_.kmer.flush_threshold);
    scaffold::BubbleMerger bubble_merger(
        team_, config_.bubbles, std::max<std::size_t>(64, total_ufx / 64));
    std::vector<std::vector<dbg::Contig>> merged_contigs(p);
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      store->build(rank, contig_gen.contigs(rank.id()));
      const auto depths = depth_calc.run(rank, ufx_of(rank.id()), *store);
      for (const auto& [id, depth] : depths)
        store->set_local_depth(rank, id, depth);
      rank.barrier();
      if (config_.merge_bubbles) {
        merged_contigs[static_cast<std::size_t>(rank.id())] =
            bubble_merger.run(rank, *store);
      }
    });
    if (config_.merge_bubbles) {
      auto merged_store = std::make_unique<align::ContigStore>(team_);
      run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
        merged_store->build(rank,
                            merged_contigs[static_cast<std::size_t>(rank.id())]);
      });
      store = std::move(merged_store);
    }

    // Contig statistics.
    {
      std::vector<std::uint64_t> lengths;
      std::vector<std::vector<std::uint64_t>> per_rank(p);
      team_.run([&](pgas::Rank& rank) {
        store->for_each_local(rank, [&](std::uint64_t, const dbg::Contig& c) {
          per_rank[static_cast<std::size_t>(rank.id())].push_back(c.seq.size());
        });
      });
      for (const auto& v : per_rank)
        lengths.insert(lengths.end(), v.begin(), v.end());
      if (team_.multiprocess()) {
        // Each process saw only its local shards; concatenate in rank
        // order so the stats (and num_contigs, which sizes the link table)
        // are global and identical everywhere.
        std::vector<std::byte> mine(lengths.size() * sizeof(std::uint64_t));
        if (!mine.empty())
          std::memcpy(mine.data(), lengths.data(), mine.size());
        const auto all = team_.serial_concat(std::move(mine));
        lengths.assign(all.size() / sizeof(std::uint64_t), 0);
        if (!lengths.empty())
          std::memcpy(lengths.data(), all.data(),
                      lengths.size() * sizeof(std::uint64_t));
      }
      result.num_contigs = lengths.size();
      result.contig_stats = util::compute_assembly_stats(std::move(lengths));
    }
    aux.num_contigs = result.num_contigs;
    aux.contig_stats = result.contig_stats;

    snapshot_stage(stages, ckpt::kStageContigs, aux, [&](pgas::Rank& rank) {
      std::vector<const dbg::Contig*> mine;
      store->for_each_local(rank, [&](std::uint64_t, const dbg::Contig& c) {
        mine.push_back(&c);
      });
      return ckpt::encode_contigs_shard(mine);
    });
  } else {
    result.num_contigs = aux.num_contigs;
    result.contig_stats = aux.contig_stats;
    // Round 0 scaffolds against the contig store; rebuild it from the
    // snapshot when resume lands at contigs or at round-0 alignments.
    // (Later resume points rebuild their store from scaffold records at the
    // top of the round loop instead.)
    const bool need_contig_store =
        progress == ckpt::kProgressContigs ||
        progress == ckpt::progress_alignments(0);
    if (need_contig_store) {
      run_stage(stages, kStageRestore, [&](pgas::Rank& rank) {
        static const std::vector<dbg::Contig> kNone;
        const auto r = static_cast<std::size_t>(rank.id());
        store->build(rank, r < resume_state.contigs.size()
                               ? resume_state.contigs[r]
                               : kNone);
      });
    }
  }

  // ABySS-like mode: concentrate every read on rank 0 before scaffolding;
  // the gather is charged as communication and all subsequent scaffolding
  // work lands on rank 0 (the paper's "single shared memory node").
  if (config_.serial_scaffolding) {
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      std::string seq_scratch;
      std::string qual_scratch;
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        auto& mine = rank_reads[static_cast<std::size_t>(rank.id())][lib];
        std::vector<std::vector<std::byte>> outgoing(p);
        io::wire::Writer to_root(outgoing[0]);
        for (std::size_t i = 0; i < mine.size(); ++i) {
          to_root.put_bytes(mine.name(i));
          to_root.put_bytes(mine.seq(i, seq_scratch));
          to_root.put_bytes(mine.quals(i, qual_scratch));
        }
        if (!rank.is_root()) mine.clear();
        const auto gathered = rank.alltoallv(outgoing);
        if (rank.is_root()) {
          seq::ReadStore all(config_.packed_reads);
          io::wire::Reader rd(gathered);
          while (!rd.done()) {
            auto read = io::wire::get_read(rd);
            if (rd.truncated()) break;
            all.append(std::move(read));
          }
          mine = std::move(all);
        }
        rank.barrier();
      }
    });
  }

  // ---- Scaffolding rounds ----
  std::vector<io::FastaRecord> scaffold_records =
      std::move(resume_state.scaffolds);
  int start_round = 0;
  if (ckpt::progress_is_alignments(progress))
    start_round = ckpt::progress_round(progress);
  else if (ckpt::progress_is_scaffolds(progress))
    start_round = ckpt::progress_round(progress) + 1;
  if (start_round > 0) {
    // Round-level results loaded with the scaffold snapshot; overwritten if
    // further rounds actually run.
    result.insert_estimates = resume_state.inserts;
    result.closure_stats = resume_state.closure_stats;
  }

  for (int round = start_round; round < config_.scaffolding_rounds; ++round) {
    // Feed this round: the previous round's scaffolds become the contigs
    // (round 0 uses the contig store built above).
    if (round > 0) {
      auto next_store = std::make_unique<align::ContigStore>(team_);
      run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
        std::vector<dbg::Contig> mine;
        for (std::size_t i = static_cast<std::size_t>(rank.id());
             i < scaffold_records.size(); i += p) {
          dbg::Contig contig;
          contig.id = i;
          contig.seq = scaffold_records[i].seq;
          mine.push_back(std::move(contig));
        }
        next_store->build(rank, mine);
      });
      store = std::move(next_store);
    }

    std::uint64_t contig_bases = 0;
    for (std::size_t r = 0; r < p; ++r) {
      if (team_.multiprocess() && !team_.is_local(static_cast<int>(r)))
        continue;
      contig_bases += store->local_bases(static_cast<int>(r));
    }
    contig_bases = team_.serial_sum(contig_bases);

    // merAligner (§4.3) — skipped when this round's alignments were loaded
    // from a snapshot.
    std::vector<std::vector<align::ReadAlignment>> alignments(p);
    if (resume_state.aligned_round == round) {
      alignments = std::move(resume_state.alignments);
      alignments.resize(p);
    } else {
      align::MerAligner aligner(team_, config_.aligner,
                                static_cast<std::size_t>(contig_bases));
      run_stage(stages, kStageAligner, [&](pgas::Rank& rank) {
        aligner.build_index(rank, *store);
        auto& mine = alignments[static_cast<std::size_t>(rank.id())];
        mine.clear();
        for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
          auto found = aligner.align_reads(
              rank, *store, rank_reads[static_cast<std::size_t>(rank.id())][lib],
              static_cast<int>(lib));
          mine.insert(mine.end(), found.begin(), found.end());
        }
      });
      if (config_.checkpoint.granularity ==
          ckpt::CheckpointConfig::Granularity::kStage) {
        snapshot_stage(stages, ckpt::stage_alignments(round), aux,
                       [&](pgas::Rank& rank) {
                         return ckpt::encode_alignments_shard(
                             alignments[static_cast<std::size_t>(rank.id())]);
                       });
      }
    }

    // Insert sizes (§4.4), splints/spans (§4.5), links (§4.6), ordering
    // (§4.7) — the "rest of scaffolding" series of Figure 7.
    std::vector<scaffold::InsertSizeEstimate> inserts(libraries.size());
    scaffold::LinkConfig link_cfg = config_.links;
    link_cfg.expected_links =
        std::max<std::size_t>(1024, result.num_contigs * 4);
    scaffold::LinkGenerator links(team_, link_cfg);
    std::vector<scaffold::ScaffoldRecord> scaffolds;
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      const auto& mine = alignments[static_cast<std::size_t>(rank.id())];
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        const auto est =
            scaffold::estimate_insert_size(rank, mine, static_cast<int>(lib));
        // The estimate is a replicated allreduce result; worker processes
        // keep their own copy (their rank is never root).
        if (rank.is_root() || team_.multiprocess()) inserts[lib] = est;
      }
      rank.barrier();

      auto observations = scaffold::locate_splints(rank, mine);
      const auto spans = scaffold::locate_spans(rank, mine, inserts);
      observations.insert(observations.end(), spans.begin(), spans.end());
      links.add_observations(rank, observations);
      const auto ties = links.assess(rank);

      std::vector<scaffold::ContigLen> lens;
      store->for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& c) {
        lens.push_back(scaffold::ContigLen{
            id, static_cast<std::uint32_t>(c.seq.size()),
            static_cast<float>(c.avg_depth)});
      });
      auto records = scaffold::order_and_orient(rank, ties, lens,
                                                config_.ordering);
      // Replicated (built from allgathered ties/lengths on every rank).
      if (rank.is_root() || team_.multiprocess())
        scaffolds = std::move(records);
      rank.barrier();
    });

    // Locality shuffle (--shuffle-reads): re-deal read pairs (and their
    // alignments) to the owners of their best-aligned contigs, so the read
    // projections of gap closing become mostly self-sends. Output is
    // unchanged — only message counts move.
    if (shuffle_on) {
      pgas::ShuffleExchange exchange(
          team_, "pipeline.read_shuffle.r" + std::to_string(round));
      std::vector<ReadShuffleStats> shuffle_stats(p);
      run_stage(stages, kStageShuffle, [&](pgas::Rank& rank) {
        const auto r = static_cast<std::size_t>(rank.id());
        shuffle_reads_by_alignment(rank, exchange, rank_reads[r],
                                   alignments[r], &shuffle_stats[r]);
      });
      std::uint64_t moved = 0;
      std::uint64_t total = 0;
      for (const auto& s : shuffle_stats) {
        moved += s.pairs_moved;
        total += s.pairs_total;
      }
      moved = team_.serial_sum(moved);
      total = team_.serial_sum(total);
      util::log_info("shuffle_reads: round " + std::to_string(round) +
                     " moved " + std::to_string(moved) + "/" +
                     std::to_string(total) + " pairs to their contig owners");
    }

    // Gap closing (§4.8).
    const auto gaps = scaffold::enumerate_gaps(scaffolds);
    scaffold::GapClosingConfig gap_cfg = config_.gaps;
    gap_cfg.locality_aware_owners = shuffle_on;
    scaffold::GapCloser closer(team_, gap_cfg);
    std::vector<std::vector<scaffold::Closure>> closures(p);
    run_stage(stages, kStageGapClosing, [&](pgas::Rank& rank) {
      std::vector<seq::ReadSetView> my_reads;
      for (std::size_t lib = 0; lib < libraries.size(); ++lib)
        my_reads.emplace_back(rank_reads[static_cast<std::size_t>(rank.id())][lib]);
      closures[static_cast<std::size_t>(rank.id())] = closer.run(
          rank, gaps, *store, my_reads,
          alignments[static_cast<std::size_t>(rank.id())], inserts);
    });

    // Materialize the round's scaffold sequences.
    scaffold::ScaffoldStats closure_stats;
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      auto records = scaffold::build_scaffold_sequences(
          rank, scaffolds, *store, gaps,
          closures[static_cast<std::size_t>(rank.id())],
          rank.is_root() ? &closure_stats : nullptr);
      // Replicated (allgathered record blobs); workers need the records to
      // feed the next round's store rebuild.
      if (rank.is_root() || team_.multiprocess())
        scaffold_records = std::move(records);
      rank.barrier();
    });
    result.closure_stats = closure_stats;
    if (round == 0) result.insert_estimates = inserts;

    // Snapshot the round's scaffold state (with the round-level results,
    // so a resume here reports them too).
    {
      ckpt::ScaffoldExtras extras;
      extras.closure_stats = closure_stats;
      extras.inserts = result.insert_estimates;
      snapshot_stage(stages, ckpt::stage_scaffolds(round), aux,
                     [&](pgas::Rank& rank) {
                       return ckpt::encode_scaffolds_shard(
                           scaffold_records, rank.id(), team_.nranks(),
                           rank.is_root() ? &extras : nullptr);
                     });
    }
  }

  result.scaffolds = std::move(scaffold_records);
  {
    std::vector<std::uint64_t> lengths;
    for (const auto& rec : result.scaffolds) lengths.push_back(rec.seq.size());
    result.scaffold_stats = util::compute_assembly_stats(std::move(lengths));
  }
  result.stages = std::move(stages);
  return result;
}

}  // namespace hipmer::pipeline
