#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "align/contig_store.hpp"
#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/wire.hpp"
#include "scaffold/depths.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/splints_spans.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace hipmer::pipeline {

double PipelineResult::wall_total() const {
  double total = 0;
  for (const auto& s : stages) total += s.wall_seconds;
  return total;
}

double PipelineResult::modeled_total() const {
  double total = 0;
  for (const auto& s : stages) total += s.modeled_seconds;
  return total;
}

double PipelineResult::wall_for(const std::string& stage) const {
  double total = 0;
  for (const auto& s : stages)
    if (s.name == stage) total += s.wall_seconds;
  return total;
}

double PipelineResult::modeled_for(const std::string& stage) const {
  double total = 0;
  for (const auto& s : stages)
    if (s.name == stage) total += s.modeled_seconds;
  return total;
}

std::string PipelineResult::format_stages() const {
  std::ostringstream os;
  // Accumulate by name, preserving first-seen order.
  std::vector<std::string> names;
  for (const auto& s : stages)
    if (std::find(names.begin(), names.end(), s.name) == names.end())
      names.push_back(s.name);
  for (const auto& name : names) {
    os << "  " << name << ": wall " << wall_for(name) << "s, modeled "
       << modeled_for(name) << "s\n";
  }
  return os.str();
}

Pipeline::Pipeline(pgas::Topology topo, PipelineConfig config)
    : team_(topo), config_(config) {
  config_.sync_k();
}

template <typename Fn>
void Pipeline::run_stage(std::vector<StageReport>& stages,
                         const std::string& name, Fn&& fn) {
  const auto before = team_.snapshot_all();
  util::WallTimer timer;
  team_.run(std::forward<Fn>(fn));
  StageReport report;
  report.name = name;
  report.wall_seconds = timer.seconds();
  const auto after = team_.snapshot_all();
  std::vector<pgas::CommStatsSnapshot> delta(after.size());
  for (std::size_t r = 0; r < after.size(); ++r) {
    delta[r] = after[r] - before[r];
    report.comm += delta[r];
  }
  report.modeled_seconds = config_.machine.phase_seconds(delta, team_.topology());
  util::log_info("stage " + name + ": wall " +
                 std::to_string(report.wall_seconds) + "s, modeled " +
                 std::to_string(report.modeled_seconds) + "s");
  stages.push_back(std::move(report));
}

PipelineResult Pipeline::run(
    const std::vector<std::vector<seq::Read>>& library_reads,
    const std::vector<seq::ReadLibrary>& libraries) {
  // Distribute pairs round robin so mates stay together on a rank.
  const auto p = static_cast<std::size_t>(team_.nranks());
  RankReads rank_reads(p, std::vector<std::vector<seq::Read>>(libraries.size()));
  for (std::size_t lib = 0; lib < library_reads.size(); ++lib) {
    const auto& reads = library_reads[lib];
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const std::size_t pair = i / 2;
      rank_reads[pair % p][lib].push_back(reads[i]);
    }
  }
  return assemble(std::move(rank_reads), libraries, {});
}

PipelineResult Pipeline::run_from_fastq(
    const std::vector<seq::ReadLibrary>& libraries) {
  const auto p = static_cast<std::size_t>(team_.nranks());
  RankReads rank_reads(p, std::vector<std::vector<seq::Read>>(libraries.size()));

  std::vector<StageReport> stages;

  if (config_.serial_io) {
    // Ray-like mode: rank 0 reads each file whole and scatters pairs.
    run_stage(stages, kStageIo, [&](pgas::Rank& rank) {
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        std::vector<std::vector<std::byte>> outgoing(p);
        if (rank.is_root()) {
          const auto reads = io::read_fastq(libraries[lib].fastq_path);
          std::uint64_t bytes = 0;
          for (std::size_t i = 0; i < reads.size(); ++i) {
            const auto& r = reads[i];
            bytes += r.name.size() + r.seq.size() + r.quals.size() + 6;
            io::wire::Writer w(outgoing[(i / 2) % p]);
            io::wire::put_read(w, r);
            rank.stats().add_serial_work();
          }
          rank.stats().add_io_read(bytes);
        }
        const auto mine = rank.alltoallv(outgoing);
        io::wire::get_reads(mine,
                            rank_reads[static_cast<std::size_t>(rank.id())][lib]);
        rank.barrier();
      }
    });
    return assemble(std::move(rank_reads), libraries, std::move(stages));
  }

  std::vector<std::unique_ptr<io::ParallelFastqReader>> readers;
  readers.reserve(libraries.size());
  for (const auto& lib : libraries)
    readers.push_back(std::make_unique<io::ParallelFastqReader>(lib.fastq_path));

  run_stage(stages, kStageIo, [&](pgas::Rank& rank) {
    for (std::size_t lib = 0; lib < readers.size(); ++lib) {
      rank_reads[static_cast<std::size_t>(rank.id())][lib] =
          readers[lib]->read_my_records(rank);
      rank.barrier();
    }
  });
  return assemble(std::move(rank_reads), libraries, std::move(stages));
}

PipelineResult Pipeline::assemble(RankReads rank_reads,
                                  const std::vector<seq::ReadLibrary>& libraries,
                                  std::vector<StageReport> initial_stages) {
  const auto p = static_cast<std::size_t>(team_.nranks());
  PipelineResult result;
  auto stages = std::move(initial_stages);

  // ---- Stage 1: k-mer analysis ----
  kcount::KmerAnalysis kmer_analysis(team_, config_.kmer);
  run_stage(stages, kStageKmerAnalysis, [&](pgas::Rank& rank) {
    std::vector<const std::vector<seq::Read>*> sets;
    for (std::size_t lib = 0; lib < libraries.size(); ++lib)
      if (libraries[lib].for_contigging)
        sets.push_back(&rank_reads[static_cast<std::size_t>(rank.id())][lib]);
    kmer_analysis.run(rank, sets);
  });
  result.distinct_kmers = kmer_analysis.distinct_kmers();
  result.singleton_fraction = kmer_analysis.singleton_fraction();
  result.heavy_hitters = kmer_analysis.heavy_hitters().size();

  std::size_t total_ufx = 0;
  for (std::size_t r = 0; r < p; ++r)
    total_ufx += kmer_analysis.ufx(static_cast<int>(r)).size();

  // ---- Stage 2: contig generation ----
  dbg::ContigGenerator contig_gen(team_, config_.contig, total_ufx);
  if (config_.oracle != nullptr) contig_gen.set_oracle(config_.oracle);
  run_stage(stages, kStageContigGen, [&](pgas::Rank& rank) {
    contig_gen.build_graph(rank, kmer_analysis.ufx(rank.id()));
    contig_gen.traverse(rank);
  });

  // ---- Stage 3: contig store + depths (§4.1) + bubbles (§4.2) ----
  auto store = std::make_unique<align::ContigStore>(team_);
  scaffold::DepthCalculator depth_calc(team_, config_.k, total_ufx,
                                       config_.kmer.flush_threshold);
  scaffold::BubbleMerger bubble_merger(team_, config_.bubbles,
                                       std::max<std::size_t>(64, total_ufx / 64));
  std::vector<std::vector<dbg::Contig>> merged_contigs(p);
  run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
    store->build(rank, contig_gen.contigs(rank.id()));
    const auto depths =
        depth_calc.run(rank, kmer_analysis.ufx(rank.id()), *store);
    for (const auto& [id, depth] : depths)
      store->set_local_depth(rank, id, depth);
    rank.barrier();
    if (config_.merge_bubbles) {
      merged_contigs[static_cast<std::size_t>(rank.id())] =
          bubble_merger.run(rank, *store);
    }
  });
  if (config_.merge_bubbles) {
    auto merged_store = std::make_unique<align::ContigStore>(team_);
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      merged_store->build(rank,
                          merged_contigs[static_cast<std::size_t>(rank.id())]);
    });
    store = std::move(merged_store);
  }

  // Contig statistics.
  {
    std::vector<std::uint64_t> lengths;
    std::vector<std::vector<std::uint64_t>> per_rank(p);
    team_.run([&](pgas::Rank& rank) {
      store->for_each_local(rank, [&](std::uint64_t, const dbg::Contig& c) {
        per_rank[static_cast<std::size_t>(rank.id())].push_back(c.seq.size());
      });
    });
    for (const auto& v : per_rank) lengths.insert(lengths.end(), v.begin(), v.end());
    result.num_contigs = lengths.size();
    result.contig_stats = util::compute_assembly_stats(std::move(lengths));
  }

  // ABySS-like mode: concentrate every read on rank 0 before scaffolding;
  // the gather is charged as communication and all subsequent scaffolding
  // work lands on rank 0 (the paper's "single shared memory node").
  if (config_.serial_scaffolding) {
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        auto& mine = rank_reads[static_cast<std::size_t>(rank.id())][lib];
        std::vector<std::vector<std::byte>> outgoing(p);
        io::wire::Writer to_root(outgoing[0]);
        for (const auto& r : mine) io::wire::put_read(to_root, r);
        if (!rank.is_root()) mine.clear();
        const auto gathered = rank.alltoallv(outgoing);
        if (rank.is_root()) {
          std::vector<seq::Read> all;
          io::wire::get_reads(gathered, all);
          mine = std::move(all);
        }
        rank.barrier();
      }
    });
  }

  // ---- Scaffolding rounds ----
  std::vector<io::FastaRecord> scaffold_records;
  for (int round = 0; round < config_.scaffolding_rounds; ++round) {
    std::uint64_t contig_bases = 0;
    for (std::size_t r = 0; r < p; ++r)
      contig_bases += store->local_bases(static_cast<int>(r));

    // merAligner (§4.3).
    align::MerAligner aligner(team_, config_.aligner,
                              static_cast<std::size_t>(contig_bases));
    std::vector<std::vector<align::ReadAlignment>> alignments(p);
    run_stage(stages, kStageAligner, [&](pgas::Rank& rank) {
      aligner.build_index(rank, *store);
      auto& mine = alignments[static_cast<std::size_t>(rank.id())];
      mine.clear();
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        auto found = aligner.align_reads(
            rank, *store, rank_reads[static_cast<std::size_t>(rank.id())][lib],
            static_cast<int>(lib));
        mine.insert(mine.end(), found.begin(), found.end());
      }
    });

    // Insert sizes (§4.4), splints/spans (§4.5), links (§4.6), ordering
    // (§4.7) — the "rest of scaffolding" series of Figure 7.
    std::vector<scaffold::InsertSizeEstimate> inserts(libraries.size());
    scaffold::LinkConfig link_cfg = config_.links;
    link_cfg.expected_links =
        std::max<std::size_t>(1024, result.num_contigs * 4);
    scaffold::LinkGenerator links(team_, link_cfg);
    std::vector<scaffold::ScaffoldRecord> scaffolds;
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      const auto& mine = alignments[static_cast<std::size_t>(rank.id())];
      for (std::size_t lib = 0; lib < libraries.size(); ++lib) {
        const auto est =
            scaffold::estimate_insert_size(rank, mine, static_cast<int>(lib));
        if (rank.is_root()) inserts[lib] = est;
      }
      rank.barrier();

      auto observations = scaffold::locate_splints(rank, mine);
      const auto spans = scaffold::locate_spans(rank, mine, inserts);
      observations.insert(observations.end(), spans.begin(), spans.end());
      links.add_observations(rank, observations);
      const auto ties = links.assess(rank);

      std::vector<scaffold::ContigLen> lens;
      store->for_each_local(rank, [&](std::uint64_t id, const dbg::Contig& c) {
        lens.push_back(scaffold::ContigLen{
            id, static_cast<std::uint32_t>(c.seq.size()),
            static_cast<float>(c.avg_depth)});
      });
      auto records = scaffold::order_and_orient(rank, ties, lens,
                                                config_.ordering);
      if (rank.is_root()) scaffolds = std::move(records);
      rank.barrier();
    });

    // Gap closing (§4.8).
    const auto gaps = scaffold::enumerate_gaps(scaffolds);
    scaffold::GapCloser closer(team_, config_.gaps);
    std::vector<std::vector<scaffold::Closure>> closures(p);
    run_stage(stages, kStageGapClosing, [&](pgas::Rank& rank) {
      std::vector<const std::vector<seq::Read>*> my_reads;
      for (std::size_t lib = 0; lib < libraries.size(); ++lib)
        my_reads.push_back(&rank_reads[static_cast<std::size_t>(rank.id())][lib]);
      closures[static_cast<std::size_t>(rank.id())] = closer.run(
          rank, gaps, *store, my_reads,
          alignments[static_cast<std::size_t>(rank.id())], inserts);
    });

    // Materialize the round's scaffold sequences.
    scaffold::ScaffoldStats closure_stats;
    run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
      auto records = scaffold::build_scaffold_sequences(
          rank, scaffolds, *store, gaps,
          closures[static_cast<std::size_t>(rank.id())],
          rank.is_root() ? &closure_stats : nullptr);
      if (rank.is_root()) scaffold_records = std::move(records);
      rank.barrier();
    });
    result.closure_stats = closure_stats;
    if (round == 0) result.insert_estimates = inserts;

    // Feed the next round: scaffolds become contigs.
    if (round + 1 < config_.scaffolding_rounds) {
      auto next_store = std::make_unique<align::ContigStore>(team_);
      run_stage(stages, kStageScaffoldRest, [&](pgas::Rank& rank) {
        std::vector<dbg::Contig> mine;
        for (std::size_t i = static_cast<std::size_t>(rank.id());
             i < scaffold_records.size(); i += p) {
          dbg::Contig contig;
          contig.id = i;
          contig.seq = scaffold_records[i].seq;
          mine.push_back(std::move(contig));
        }
        next_store->build(rank, mine);
      });
      store = std::move(next_store);
    }
  }

  result.scaffolds = std::move(scaffold_records);
  {
    std::vector<std::uint64_t> lengths;
    for (const auto& rec : result.scaffolds) lengths.push_back(rec.seq.size());
    result.scaffold_stats = util::compute_assembly_stats(std::move(lengths));
  }
  result.stages = std::move(stages);
  return result;
}

}  // namespace hipmer::pipeline
