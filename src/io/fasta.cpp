#include "io/fasta.hpp"

#include <fstream>
#include <stdexcept>

namespace hipmer::io {

bool write_fasta(const std::string& path,
                 const std::vector<FastaRecord>& records,
                 std::size_t line_width) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  for (const auto& rec : records) {
    out << '>' << rec.name << '\n';
    for (std::size_t i = 0; i < rec.seq.size(); i += line_width) {
      out.write(rec.seq.data() + i,
                static_cast<std::streamsize>(
                    std::min(line_width, rec.seq.size() - i)));
      out << '\n';
    }
  }
  return static_cast<bool>(out);
}

std::vector<FastaRecord> read_fasta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  std::vector<FastaRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.push_back(FastaRecord{line.substr(1), {}});
    } else {
      if (records.empty())
        throw std::runtime_error("FASTA parse error: sequence before header in " + path);
      records.back().seq += line;
    }
  }
  return records;
}

}  // namespace hipmer::io
