#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "seq/read.hpp"

/// Length-prefixed wire framing for cross-rank byte exchanges.
///
/// Every structure that ships through alltoallv byte streams — reads in the
/// pipeline's scatter/gather paths, contigs in the traversal's renumbering
/// and the bubble merger — frames its records here instead of rolling its
/// own byte format. Records are self-describing on length (a u32 prefix per
/// variable field, PODs verbatim), so payloads may contain any byte value
/// (newlines, NULs), concatenated streams from different senders parse
/// without sentinels, and a truncated buffer is detected instead of
/// misparsed.
///
/// Layout rules:
///   - PODs are memcpy'd verbatim (host byte order: both ends of an
///     exchange are ranks of the same process).
///   - Variable-length fields are [u32 length][bytes].
/// The Writer appends to a caller-owned std::vector<std::byte> (the
/// alltoallv unit), the Reader walks a borrowed buffer.
namespace hipmer::io::wire {

/// Base of every wire decode failure. Two refinements let callers react
/// differently to "the frame is short" (ask the sender again / keep
/// reading) versus "the frame is the right length but the bytes are wrong"
/// (checksum mismatch: retransmit, never trust the contents):
///   - TruncatedError — a field ran off the end of the buffer; the message
///     names the field, so a partial write or chopped stream is
///     diagnosable without a hex dump.
///   - CorruptError — framing that is present but inconsistent (bad magic,
///     CRC mismatch, length fields that disagree).
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TruncatedError : public Error {
 public:
  TruncatedError(const char* field, std::size_t need, std::size_t have)
      : Error(std::string("wire: truncated: field '") + field + "' needs " +
              std::to_string(need) + " bytes, " + std::to_string(have) +
              " remain") {}
};

class CorruptError : public Error {
 public:
  using Error::Error;
};

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& buf) : buf_(&buf) {}

  template <typename T>
  void put_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire PODs must be trivially copyable");
    append(&value, sizeof value);
  }

  void put_u32(std::uint32_t v) { put_pod(v); }
  void put_u64(std::uint64_t v) { put_pod(v); }

  /// [u32 length][bytes] — the framing for variable-length fields.
  void put_bytes(std::string_view bytes) {
    put_u32(static_cast<std::uint32_t>(bytes.size()));
    append(bytes.data(), bytes.size());
  }

 private:
  void append(const void* data, std::size_t n) {
    // resize + memcpy rather than insert(end, p, p + n): the range insert
    // trips GCC 12's -Wstringop-overflow false positive when the growth
    // path is inlined, and this form codegens identically.
    const std::size_t old = buf_->size();
    buf_->resize(old + n);
    std::memcpy(buf_->data() + old, data, n);
  }

  std::vector<std::byte>* buf_;
};

class Reader {
 public:
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::byte>& buf)
      : Reader(buf.data(), buf.size()) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Set when a read ran off the end of the buffer (truncated/corrupt
  /// stream); all subsequent reads return empty values.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  template <typename T>
  [[nodiscard]] T get_pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire PODs must be trivially copyable");
    T value{};
    if (!take(&value, sizeof value)) return T{};
    return value;
  }

  [[nodiscard]] std::uint32_t get_u32() { return get_pod<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_pod<std::uint64_t>(); }

  /// Checked variant of the cursor: throw TruncatedError (naming `field`)
  /// unless `n` more bytes are available. The legacy getters above keep
  /// their non-throwing truncated() protocol for streaming callers
  /// (get_reads); new framed decoders (the transport envelope) use this so
  /// the error says *which* field ran off the end.
  void require(std::size_t n, const char* field) const {
    if (truncated_ || n > remaining()) throw TruncatedError(field, n, remaining());
  }

  /// require(n, field) + copy out `n` raw bytes.
  void get_raw(void* out, std::size_t n, const char* field) {
    require(n, field);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  template <typename T>
  [[nodiscard]] T get_pod_checked(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire PODs must be trivially copyable");
    T value{};
    get_raw(&value, sizeof value, field);
    return value;
  }

  [[nodiscard]] std::uint32_t get_u32_checked(const char* field) {
    return get_pod_checked<std::uint32_t>(field);
  }
  [[nodiscard]] std::uint64_t get_u64_checked(const char* field) {
    return get_pod_checked<std::uint64_t>(field);
  }

  /// Checked [u32 length][bytes]: throws TruncatedError naming `field` if
  /// either the prefix or the payload runs off the end. The length is
  /// validated *before* any allocation, so a corrupt prefix cannot drive a
  /// huge resize.
  [[nodiscard]] std::string get_bytes_checked(const char* field) {
    const std::uint32_t n = get_u32_checked(field);
    require(n, field);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::string get_bytes() {
    const std::uint32_t n = get_u32();
    std::string out;
    if (truncated_ || n > remaining()) {
      truncated_ = true;
      pos_ = size_;
      return out;
    }
    out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

 private:
  bool take(void* out, std::size_t n) {
    if (truncated_ || n > remaining()) {
      truncated_ = true;
      pos_ = size_;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

// ---- record framings shared across stages ----

/// Sequencing read: three length-prefixed fields (name, bases, quals).
// wire-schema: read_record writer
inline void put_read(Writer& w, const seq::Read& read) {
  w.put_bytes(read.name);
  w.put_bytes(read.seq);
  w.put_bytes(read.quals);
}

/// Streaming (non-throwing) decoder: only for buffers produced in-process
/// by put_read — untrusted bytes go through get_read_checked.
// wire-schema: read_record reader trusted
inline seq::Read get_read(Reader& r) {
  seq::Read read;
  read.name = r.get_bytes();
  read.seq = r.get_bytes();
  read.quals = r.get_bytes();
  return read;
}

/// Throwing decoder for reads arriving from disk or socket bytes.
// wire-schema: read_record reader
inline seq::Read get_read_checked(Reader& r) {
  seq::Read read;
  read.name = r.get_bytes_checked("read name");
  read.seq = r.get_bytes_checked("read seq");
  read.quals = r.get_bytes_checked("read quals");
  return read;
}

/// Append every framed read in `buf` to `out`; returns false if the stream
/// was truncated (partial trailing record).
inline bool get_reads(const std::vector<std::byte>& buf,
                      std::vector<seq::Read>& out) {
  Reader r(buf);
  while (!r.done()) {
    auto read = get_read(r);
    if (r.truncated()) return false;
    out.push_back(std::move(read));
  }
  return true;
}

}  // namespace hipmer::io::wire
