#include "io/fs_faults.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::io {

namespace fs = std::filesystem;

const char* fs_fate_name(FsFate fate) {
  switch (fate) {
    case FsFate::kOk:
      return "ok";
    case FsFate::kEnospc:
      return "enospc";
    case FsFate::kEio:
      return "eio";
    case FsFate::kShortWrite:
      return "short-write";
    case FsFate::kCrashBeforeRename:
      return "crash-before-rename";
    case FsFate::kCrashAfterRename:
      return "crash-after-rename";
  }
  return "unknown";
}

namespace {

FsFate fate_from_name(const std::string& name) {
  if (name == "enospc") return FsFate::kEnospc;
  if (name == "eio") return FsFate::kEio;
  if (name == "short") return FsFate::kShortWrite;
  if (name == "crash_before") return FsFate::kCrashBeforeRename;
  if (name == "crash_after") return FsFate::kCrashAfterRename;
  throw std::invalid_argument("fs-faults: unknown fate '" + name + "'");
}

/// Map a 64-bit hash to [0, 1) — same mapping as pgas::chaos_unit.
double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FsFaultPlan FsFaultPlan::parse(std::uint64_t seed, const std::string& spec) {
  FsFaultPlan plan;
  plan.seed = seed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string clause =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fs-faults: clause '" + clause +
                                  "' has no '='");
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "path") {
      plan.path_filter = value;
      continue;
    }
    if (key == "at") {
      const auto colon = value.find(':');
      if (colon == std::string::npos)
        throw std::invalid_argument("fs-faults: at=N:fate expected, got '" +
                                    clause + "'");
      plan.one_shot_op = std::atol(value.substr(0, colon).c_str());
      plan.one_shot_fate = fate_from_name(value.substr(colon + 1));
      if (plan.one_shot_op < 0)
        throw std::invalid_argument("fs-faults: at index must be >= 0");
      continue;
    }
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
      throw std::invalid_argument("fs-faults: bad probability in '" + clause +
                                  "'");
    switch (fate_from_name(key)) {
      case FsFate::kEnospc:
        plan.probs.enospc = p;
        break;
      case FsFate::kEio:
        plan.probs.eio = p;
        break;
      case FsFate::kShortWrite:
        plan.probs.short_write = p;
        break;
      case FsFate::kCrashBeforeRename:
        plan.probs.crash_before_rename = p;
        break;
      case FsFate::kCrashAfterRename:
        plan.probs.crash_after_rename = p;
        break;
      default:
        break;
    }
  }
  return plan;
}

FsFaults& FsFaults::instance() {
  static FsFaults shim;
  return shim;
}

void FsFaults::arm(FsFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  global_op_ = 0;
  per_path_op_.clear();
  injected_.store(0, std::memory_order_relaxed);
  operations_.store(0, std::memory_order_relaxed);
  armed_.store(plan_.enabled(), std::memory_order_relaxed);
}

void FsFaults::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FsFaultPlan{};
}

std::uint64_t FsFaults::mix(const fs::path& path, std::uint64_t op,
                            std::uint64_t salt) const {
  // Hash the file name, not the full path: fates stay stable under a
  // relocated state dir (tests run in fresh temp dirs every time).
  const std::string name = path.filename().string();
  std::uint64_t h = util::hash_combine(plan_.seed,
                                       util::hash_bytes(name.data(),
                                                        name.size()));
  h = util::hash_combine(h, op);
  h = util::hash_combine(h, salt);
  return util::mix64(h);
}

FsFate FsFaults::next_fate(const fs::path& path) {
  if (!armed()) return FsFate::kOk;
  std::lock_guard<std::mutex> lock(mu_);
  if (!plan_.enabled()) return FsFate::kOk;
  const std::string full = path.string();
  if (!plan_.path_filter.empty() &&
      full.find(plan_.path_filter) == std::string::npos)
    return FsFate::kOk;
  const std::uint64_t op = global_op_++;
  const std::uint64_t path_op = per_path_op_[path.filename().string()]++;
  operations_.fetch_add(1, std::memory_order_relaxed);

  FsFate fate = FsFate::kOk;
  if (plan_.one_shot_op >= 0) {
    if (op == static_cast<std::uint64_t>(plan_.one_shot_op))
      fate = plan_.one_shot_fate;
  } else {
    const double u = unit(mix(path, path_op, 0x66736674ULL));  // "fsft"
    double edge = plan_.probs.enospc;
    if (u < edge)
      fate = FsFate::kEnospc;
    else if (u < (edge += plan_.probs.eio))
      fate = FsFate::kEio;
    else if (u < (edge += plan_.probs.short_write))
      fate = FsFate::kShortWrite;
    else if (u < (edge += plan_.probs.crash_before_rename))
      fate = FsFate::kCrashBeforeRename;
    else if (u < (edge += plan_.probs.crash_after_rename))
      fate = FsFate::kCrashAfterRename;
  }
  if (fate != FsFate::kOk) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    util::log_warn("fs-faults: injecting " + std::string(fs_fate_name(fate)) +
                   " on " + full + " (op " + std::to_string(op) + ")");
  }
  return fate;
}

AtomicWriteStatus write_file_atomic(const fs::path& final_path,
                                    const void* data, std::size_t size) {
  FsFaults& shim = FsFaults::instance();
  const FsFate fate =
      shim.armed() ? shim.next_fate(final_path) : FsFate::kOk;
  if (fate == FsFate::kEnospc || fate == FsFate::kEio) {
    // Clean failure: the real write path never ran, nothing to clean.
    return AtomicWriteStatus::kFailed;
  }

  const fs::path tmp = final_path.string() + ".tmp";
  std::size_t write_size = size;
  if (fate == FsFate::kShortWrite && size > 0) {
    // Deterministic torn length: some strict prefix of the payload.
    write_size = static_cast<std::size_t>(
        shim.mix(final_path, 0, 0x746F726EULL) % size);  // "torn"
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return AtomicWriteStatus::kFailed;
    if (write_size > 0)
      out.write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(write_size));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return AtomicWriteStatus::kFailed;
    }
  }
  if (fate == FsFate::kShortWrite || fate == FsFate::kCrashBeforeRename) {
    // The "process died" before the commit rename: the torn (or whole)
    // temp file stays on disk for the startup sweep to collect.
    return AtomicWriteStatus::kCrashed;
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return AtomicWriteStatus::kFailed;
  }
  if (fate == FsFate::kCrashAfterRename) return AtomicWriteStatus::kCrashed;
  return AtomicWriteStatus::kOk;
}

std::optional<std::vector<std::byte>> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in) return std::nullopt;
  }
  return bytes;
}

std::size_t sweep_tmp_files(const fs::path& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return 0;
  std::size_t removed = 0;
  for (const auto& entry :
       fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec)) {
    if (ec) break;
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    if (entry.path().extension() != ".tmp") continue;
    if (fs::remove(entry.path(), file_ec)) ++removed;
  }
  if (removed > 0)
    util::log_info("fs: swept " + std::to_string(removed) +
                   " orphaned .tmp file(s) under " + root.string());
  return removed;
}

}  // namespace hipmer::io
