#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgas/thread_team.hpp"
#include "seq/read.hpp"

/// SeqDB-style binary read storage (§3.3).
///
/// The authors' earlier pipeline "relied on the SeqDB binary format ...
/// for fast parallel I/O", a compressed random-access container for
/// sequence data; HipMer added the parallel FASTQ reader so users would
/// not need a conversion step, while SeqDB remained the throughput
/// yardstick ("our method obtains close to the I/O bandwidth achieved by
/// reading SeqDB (up to compression factor differences)").
///
/// This is a compatible-in-spirit container:
///   - sequences are 2-bit packed (pure-ACGT records; others fall back to
///     raw bytes, flagged per record), qualities stored verbatim;
///   - records are grouped into fixed-count blocks, with a block-offset
///     index in the footer — the random-access handle that makes *exact*
///     parallel splitting trivial (no boundary fast-forwarding needed,
///     which is precisely why SeqDB reads were the baseline to match).
///
/// Layout:  [magic u32][version u32][num_records u64]
///          block*     (each: [count u32] record*)
///          footer:    [block_offset u64]*  [num_blocks u64][footer_off u64]
///
/// Record:  [name_len u32][seq_len u32][flags u8]
///          [name name_len][seq packed(seq_len) | raw seq_len]
///          [quals seq_len iff flags bit1]
/// flags: bit0 = 2-bit packed sequence, bit1 = per-base quals present.
///
/// v2 framed quals behind the bit1 flag: v1 appended `read.quals` verbatim
/// while the reader always consumed seq_len bytes, so one FASTA-sourced
/// read (no quals) desynced every record after it in the block.
namespace hipmer::io {

inline constexpr std::uint32_t kSeqdbMagic = 0x48534442;  // "HSDB"
inline constexpr std::uint32_t kSeqdbVersion = 2;
inline constexpr std::uint32_t kSeqdbBlockRecords = 1024;

/// Single-record codec (the Record layout above). Public so the
/// wire-schema corruption sweeps can drive it directly;
/// seqdb_deserialize_record advances `pos` past the record and throws
/// std::runtime_error on any malformed framing (truncation, unknown flag
/// bits, non-canonical packed tail).
void seqdb_serialize_record(std::string& out, const seq::Read& read);
[[nodiscard]] seq::Read seqdb_deserialize_record(const std::string& buf,
                                                 std::size_t& pos);

/// Write all reads; returns false on I/O failure.
bool write_seqdb(const std::string& path, const std::vector<seq::Read>& reads);

/// Serial read of the whole container. Throws std::runtime_error on a
/// malformed file.
[[nodiscard]] std::vector<seq::Read> read_seqdb(const std::string& path);

/// Block-parallel reader: blocks are dealt to ranks contiguously; the
/// concatenation across ranks reproduces the file exactly.
class ParallelSeqdbReader {
 public:
  explicit ParallelSeqdbReader(std::string path);
  ~ParallelSeqdbReader();
  ParallelSeqdbReader(const ParallelSeqdbReader&) = delete;
  ParallelSeqdbReader& operator=(const ParallelSeqdbReader&) = delete;

  /// Collective: this rank's share of the records (byte counts charged to
  /// the rank's io counters).
  [[nodiscard]] std::vector<seq::Read> read_my_records(pgas::Rank& rank);

  [[nodiscard]] std::uint64_t num_records() const noexcept { return num_records_; }
  [[nodiscard]] std::uint64_t file_size() const noexcept { return file_size_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t file_size_ = 0;
  std::uint64_t num_records_ = 0;
  std::vector<std::uint64_t> block_offsets_;
};

}  // namespace hipmer::io
