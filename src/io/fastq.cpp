#include "io/fastq.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hipmer::io {

void append_fastq_record(std::string& out, const seq::Read& read) {
  out += '@';
  out += read.name;
  out += '\n';
  out += read.seq;
  out += "\n+\n";
  out += read.quals;
  out += '\n';
}

bool write_fastq(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::string buffer;
  buffer.reserve(1 << 20);
  for (const auto& read : reads) {
    append_fastq_record(buffer, read);
    if (buffer.size() > (1u << 20)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

std::vector<seq::Read> read_fastq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open FASTQ file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fastq(buf.str());
}

std::vector<seq::Read> parse_fastq(const std::string& buffer) {
  std::vector<seq::Read> reads;
  std::size_t pos = 0;
  auto next_line = [&](std::string& line) -> bool {
    if (pos >= buffer.size()) return false;
    const std::size_t nl = buffer.find('\n', pos);
    const std::size_t end = (nl == std::string::npos) ? buffer.size() : nl;
    line.assign(buffer, pos, end - pos);
    pos = (nl == std::string::npos) ? buffer.size() : nl + 1;
    return true;
  };

  std::string header, sequence, plus, quals;
  while (next_line(header)) {
    if (header.empty()) continue;  // tolerate trailing blank lines
    if (header[0] != '@')
      throw std::runtime_error("FASTQ parse error: header must start with @, got: " + header);
    if (!next_line(sequence) || !next_line(plus) || !next_line(quals))
      throw std::runtime_error("FASTQ parse error: truncated record: " + header);
    if (plus.empty() || plus[0] != '+')
      throw std::runtime_error("FASTQ parse error: missing + separator for: " + header);
    if (sequence.size() != quals.size())
      throw std::runtime_error("FASTQ parse error: seq/qual length mismatch for: " + header);
    seq::Read read;
    read.name = header.substr(1);
    read.seq = std::move(sequence);
    read.quals = std::move(quals);
    reads.push_back(std::move(read));
    sequence.clear();
    quals.clear();
  }
  return reads;
}

}  // namespace hipmer::io
