#include "io/fastq.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace hipmer::io {

void append_fastq_record(std::string& out, const seq::Read& read) {
  out += '@';
  out += read.name;
  out += '\n';
  out += read.seq;
  out += "\n+\n";
  out += read.quals;
  out += '\n';
}

bool write_fastq(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::string buffer;
  buffer.reserve(1 << 20);
  for (const auto& read : reads) {
    append_fastq_record(buffer, read);
    if (buffer.size() > (1u << 20)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

std::vector<seq::Read> read_fastq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open FASTQ file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fastq(buf.str());
}

std::vector<seq::Read> parse_fastq(const std::string& buffer) {
  // Lines are carved out of `buffer` as views; the only allocations are the
  // three owned strings of each emitted Read (no per-record line-buffer
  // churn, no copy-then-substr for the header).
  std::vector<seq::Read> reads;
  const std::string_view bv(buffer);
  std::size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= bv.size()) return false;
    const std::size_t nl = bv.find('\n', pos);
    const std::size_t end = (nl == std::string_view::npos) ? bv.size() : nl;
    line = bv.substr(pos, end - pos);
    pos = (nl == std::string_view::npos) ? bv.size() : nl + 1;
    return true;
  };

  std::string_view header, sequence, plus, quals;
  while (next_line(header)) {
    if (header.empty()) continue;  // tolerate trailing blank lines
    if (header[0] != '@')
      throw std::runtime_error("FASTQ parse error: header must start with @, got: " + std::string(header));
    if (!next_line(sequence) || !next_line(plus) || !next_line(quals))
      throw std::runtime_error("FASTQ parse error: truncated record: " + std::string(header));
    if (plus.empty() || plus[0] != '+')
      throw std::runtime_error("FASTQ parse error: missing + separator for: " + std::string(header));
    if (sequence.size() != quals.size())
      throw std::runtime_error("FASTQ parse error: seq/qual length mismatch for: " + std::string(header));
    reads.push_back(seq::Read{std::string(header.substr(1)),
                              std::string(sequence), std::string(quals)});
  }
  return reads;
}

}  // namespace hipmer::io
