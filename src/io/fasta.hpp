#pragma once

#include <string>
#include <vector>

/// FASTA reading/writing for references, contigs and scaffolds.
namespace hipmer::io {

struct FastaRecord {
  std::string name;
  std::string seq;
};

/// Write records to `path` with 80-column wrapping. Returns false on error.
bool write_fasta(const std::string& path,
                 const std::vector<FastaRecord>& records,
                 std::size_t line_width = 80);

/// Read all records. Throws std::runtime_error on open/parse failure.
[[nodiscard]] std::vector<FastaRecord> read_fasta(const std::string& path);

}  // namespace hipmer::io
