#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "pgas/thread_team.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"

/// Parallel block FASTQ reader (§3.3 of the paper).
///
/// The paper's algorithm, reproduced here:
///   1. **Sample**: each rank samples records near the start of its region
///      to estimate the average record length (the paper samples ~1M reads
///      to estimate id lengths; id length variation is why record length
///      cannot be assumed constant).
///   2. **Split**: the file is divided into P byte ranges of equal size.
///   3. **Fast-forward**: a split point generally lands mid-record, so a
///      rank scans forward to the next true record boundary; the partial
///      record it skipped is processed by the previous rank, which reads
///      *past* its end offset until it completes the record it started.
///      Record-boundary detection uses the standard FASTQ disambiguation:
///      a line starting with '@' is a header only if the line after next
///      starts with '+' (quality lines may also start with '@').
///   4. **Buffered reads**: data is pulled with large pread() calls (the
///      MPI_File_read_at analogue) and parsed in memory.
///
/// Every byte read is charged to the rank's `io_read_bytes` so the machine
/// model can apply the saturating-filesystem term.
namespace hipmer::io {

struct ParallelFastqStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t records = 0;
  double sampled_avg_record_bytes = 0.0;
};

class ParallelFastqReader {
 public:
  /// `block_size` is the pread granularity (paper: "large buffer sizes").
  explicit ParallelFastqReader(std::string path,
                               std::size_t block_size = 4u << 20);

  /// Collective: returns the records whose byte offset falls in this rank's
  /// range. Must be called by every rank of the team. The union over ranks
  /// is exactly the file, with no duplicates.
  [[nodiscard]] std::vector<seq::Read> read_my_records(pgas::Rank& rank);

  /// Same collective, appending into a ReadStore. With a packed store the
  /// record fields go straight from the parse buffer into the 2-bit arena —
  /// no per-record std::string triple ever exists.
  void read_my_records(pgas::Rank& rank, seq::ReadStore& out);

  /// Stats from the last read_my_records call on this rank.
  [[nodiscard]] const ParallelFastqStats& stats(int rank_id) const {
    return stats_[static_cast<std::size_t>(rank_id)];
  }

  [[nodiscard]] std::uint64_t file_size() const noexcept { return file_size_; }

  /// Estimate average record length by parsing up to `max_records` records
  /// starting at `offset` (rounded forward to a record boundary).
  [[nodiscard]] double sample_record_length(std::uint64_t offset,
                                            int max_records) const;

  /// Exposed for tests: offset of the first record boundary at or after
  /// `offset` (file_size if none).
  [[nodiscard]] std::uint64_t next_record_boundary(std::uint64_t offset) const;

 private:
  /// Record sink: (name, bases, quals) viewing the parse buffer; only valid
  /// for the duration of the call.
  using RecordSink = std::function<void(
      std::string_view, std::string_view, std::string_view)>;

  /// Shared body of both read_my_records flavors.
  void read_records_impl(pgas::Rank& rank, const RecordSink& sink);

  [[nodiscard]] std::string pread_range(std::uint64_t offset,
                                        std::size_t length) const;

  std::string path_;
  std::size_t block_size_;
  std::uint64_t file_size_ = 0;
  int fd_ = -1;
  std::vector<ParallelFastqStats> stats_;

 public:
  ~ParallelFastqReader();
  ParallelFastqReader(const ParallelFastqReader&) = delete;
  ParallelFastqReader& operator=(const ParallelFastqReader&) = delete;
};

}  // namespace hipmer::io
