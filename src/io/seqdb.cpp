#include "io/seqdb.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "seq/dna.hpp"

namespace hipmer::io {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(const std::string& buf, std::size_t& pos) {
  if (pos + sizeof(T) > buf.size())
    throw std::runtime_error("seqdb: truncated file");
  T v;
  std::memcpy(&v, buf.data() + pos, sizeof v);
  pos += sizeof v;
  return v;
}

}  // namespace

// wire-schema: seqdb_record writer
// wire-decl: u32 name_len
// wire-decl: u32 seq_len
// wire-decl: u8 flags
// wire-decl: blob name[name_len]
// wire-decl: blob seq[packed(seq_len)|seq_len]
// wire-decl: opt blob quals[seq_len]
void seqdb_serialize_record(std::string& out, const seq::Read& read) {
  const bool packable = seq::is_valid_dna(read.seq);
  // Per-base quals are exactly seq-length when present. v1 appended
  // `read.quals` verbatim with no framing while the reader always consumed
  // seq_len bytes, so a FASTA-sourced read (empty quals) desynced every
  // record after it.
  const bool has_quals = !read.quals.empty();
  put_u32(out, static_cast<std::uint32_t>(read.name.size()));
  put_u32(out, static_cast<std::uint32_t>(read.seq.size()));
  out.push_back(static_cast<char>((packable ? 1 : 0) | (has_quals ? 2 : 0)));
  out += read.name;
  if (packable) {
    // 2-bit packing, 4 bases per byte. Unused high bits of the tail byte
    // stay zero — the canonical form the reader enforces.
    std::uint8_t acc = 0;
    int filled = 0;
    for (char c : read.seq) {
      acc = static_cast<std::uint8_t>(acc | (seq::base_to_code(c) << (2 * filled)));
      if (++filled == 4) {
        out.push_back(static_cast<char>(acc));
        acc = 0;
        filled = 0;
      }
    }
    if (filled > 0) out.push_back(static_cast<char>(acc));
  } else {
    out += read.seq;
  }
  if (has_quals) {
    if (read.quals.size() == read.seq.size()) {
      out += read.quals;
    } else {
      // Defensive: pad/truncate malformed quals rather than desync.
      std::string q = read.quals;
      q.resize(read.seq.size(), '#');
      out += q;
    }
  }
}

// wire-schema: seqdb_record reader
// wire-decl: u32 name_len
// wire-decl: u32 seq_len
// wire-decl: u8 flags
// wire-decl: blob name[name_len]
// wire-decl: blob seq[packed(seq_len)|seq_len]
// wire-decl: opt blob quals[seq_len]
seq::Read seqdb_deserialize_record(const std::string& buf, std::size_t& pos) {
  const auto name_len = get<std::uint32_t>(buf, pos);
  const auto seq_len = get<std::uint32_t>(buf, pos);
  const auto flags = get<std::uint8_t>(buf, pos);
  if ((flags & ~std::uint8_t{3}) != 0)
    throw std::runtime_error("seqdb: corrupt record flags");
  const bool packed = (flags & 1) != 0;
  const bool has_quals = (flags & 2) != 0;
  seq::Read read;
  if (pos + name_len > buf.size())
    throw std::runtime_error("seqdb: truncated record name");
  read.name.assign(buf, pos, name_len);
  pos += name_len;
  if (packed) {
    const std::size_t bytes = (seq_len + 3) / 4;
    if (pos + bytes > buf.size())
      throw std::runtime_error("seqdb: truncated packed sequence");
    read.seq.resize(seq_len);
    for (std::uint32_t i = 0; i < seq_len; ++i) {
      const auto byte = static_cast<std::uint8_t>(buf[pos + i / 4]);
      read.seq[i] = seq::code_to_base((byte >> (2 * (i % 4))) & 3);
    }
    // Reject non-canonical dead bits in the tail byte: the writer zeroes
    // them, so anything else is corruption a round-trip would mask.
    if (seq_len % 4 != 0) {
      const auto tail = static_cast<std::uint8_t>(buf[pos + bytes - 1]);
      if ((tail >> (2 * (seq_len % 4))) != 0)
        throw std::runtime_error("seqdb: non-canonical packed tail");
    }
    pos += bytes;
  } else {
    if (pos + seq_len > buf.size())
      throw std::runtime_error("seqdb: truncated raw sequence");
    read.seq.assign(buf, pos, seq_len);
    pos += seq_len;
  }
  if (has_quals) {
    if (pos + seq_len > buf.size())
      throw std::runtime_error("seqdb: truncated qualities");
    read.quals.assign(buf, pos, seq_len);
    pos += seq_len;
  }
  return read;
}

bool write_seqdb(const std::string& path, const std::vector<seq::Read>& reads) {
  std::string out;
  put_u32(out, kSeqdbMagic);
  put_u32(out, kSeqdbVersion);
  put_u64(out, reads.size());

  std::vector<std::uint64_t> block_offsets;
  for (std::size_t i = 0; i < reads.size(); i += kSeqdbBlockRecords) {
    block_offsets.push_back(out.size());
    const std::size_t n = std::min<std::size_t>(kSeqdbBlockRecords,
                                                reads.size() - i);
    put_u32(out, static_cast<std::uint32_t>(n));
    for (std::size_t j = 0; j < n; ++j) seqdb_serialize_record(out, reads[i + j]);
  }
  const std::uint64_t footer_offset = out.size();
  for (auto off : block_offsets) put_u64(out, off);
  put_u64(out, block_offsets.size());
  put_u64(out, footer_offset);

  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(file);
}

std::vector<seq::Read> read_seqdb(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("seqdb: cannot open " + path);
  std::string buf((std::istreambuf_iterator<char>(file)),
                  std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  if (get<std::uint32_t>(buf, pos) != kSeqdbMagic)
    throw std::runtime_error("seqdb: bad magic in " + path);
  if (get<std::uint32_t>(buf, pos) != kSeqdbVersion)
    throw std::runtime_error("seqdb: unsupported version in " + path);
  const auto n = get<std::uint64_t>(buf, pos);
  // Sanity-bound the declared count before allocating: every record costs
  // at least 9 header bytes (two u32 lengths + the packed flag), so a count
  // the file couldn't possibly hold is corruption, not a big file.
  if (n > (buf.size() - pos) / 9)
    throw std::runtime_error("seqdb: corrupt record count in " + path);
  std::vector<seq::Read> reads;
  reads.reserve(n);
  while (reads.size() < n) {
    const auto count = get<std::uint32_t>(buf, pos);
    if (count > n - reads.size())
      throw std::runtime_error("seqdb: corrupt block record count in " + path);
    for (std::uint32_t i = 0; i < count; ++i)
      reads.push_back(seqdb_deserialize_record(buf, pos));
  }
  return reads;
}

ParallelSeqdbReader::ParallelSeqdbReader(std::string path)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) throw std::runtime_error("seqdb: cannot open " + path_);
  struct stat st{};
  if (::fstat(fd_, &st) != 0 || st.st_size < 32) {
    ::close(fd_);
    throw std::runtime_error("seqdb: cannot stat / too small: " + path_);
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);

  auto pread_exact = [&](void* dst, std::size_t len, std::uint64_t off) {
    std::size_t done = 0;
    while (done < len) {
      const ssize_t r = ::pread(fd_, static_cast<char*>(dst) + done,
                                len - done, static_cast<off_t>(off + done));
      if (r <= 0) throw std::runtime_error("seqdb: pread failed on " + path_);
      done += static_cast<std::size_t>(r);
    }
  };

  std::uint32_t magic = 0;
  pread_exact(&magic, sizeof magic, 0);
  if (magic != kSeqdbMagic)
    throw std::runtime_error("seqdb: bad magic in " + path_);
  std::uint32_t version = 0;
  pread_exact(&version, sizeof version, 4);
  if (version != kSeqdbVersion)
    throw std::runtime_error("seqdb: unsupported version in " + path_);
  pread_exact(&num_records_, sizeof num_records_, 8);

  std::uint64_t trailer[2];  // num_blocks, footer_offset
  pread_exact(trailer, sizeof trailer, file_size_ - 16);
  const std::uint64_t num_blocks = trailer[0];
  const std::uint64_t footer_offset = trailer[1];
  // Bound num_blocks by what the file can hold *before* the size identity:
  // a garbage count would overflow `num_blocks * 8` (making the identity
  // pass by wraparound) and then drive a monster allocation below. The
  // header is 16 bytes, so no footer can start before offset 16 either.
  if (num_blocks > (file_size_ - 16) / 8 || footer_offset < 16 ||
      footer_offset + num_blocks * 8 + 16 != file_size_) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("seqdb: corrupt footer in " + path_);
  }
  block_offsets_.resize(num_blocks + 1);
  if (num_blocks > 0)
    pread_exact(block_offsets_.data(), num_blocks * 8, footer_offset);
  // Sentinel: end of the last block == start of the footer.
  block_offsets_[num_blocks] = footer_offset;
  // Offsets must start at the header boundary and step strictly forward;
  // anything else sends read_my_records off the end of the file (or into
  // a negative-length block) before any record check could fire.
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const bool first_ok = b > 0 || block_offsets_[b] == 16;
    if (!first_ok || block_offsets_[b] >= block_offsets_[b + 1]) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("seqdb: corrupt block index in " + path_);
    }
  }
}

ParallelSeqdbReader::~ParallelSeqdbReader() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<seq::Read> ParallelSeqdbReader::read_my_records(pgas::Rank& rank) {
  const auto nblocks = block_offsets_.size() - 1;
  const auto p = static_cast<std::size_t>(rank.nranks());
  const auto me = static_cast<std::size_t>(rank.id());
  // Contiguous block ranges so rank-order concatenation == file order.
  const std::size_t per = (nblocks + p - 1) / p;
  const std::size_t first = std::min(me * per, nblocks);
  const std::size_t last = std::min(first + per, nblocks);

  std::vector<seq::Read> reads;
  std::uint64_t bytes = 0;
  for (std::size_t b = first; b < last; ++b) {
    const std::uint64_t off = block_offsets_[b];
    const std::uint64_t len = block_offsets_[b + 1] - off;
    std::string buf(len, '\0');
    std::size_t done = 0;
    while (done < len) {
      const ssize_t r = ::pread(fd_, buf.data() + done, len - done,
                                static_cast<off_t>(off + done));
      if (r <= 0) throw std::runtime_error("seqdb: pread failed on " + path_);
      done += static_cast<std::size_t>(r);
    }
    bytes += len;
    std::size_t pos = 0;
    const auto count = get<std::uint32_t>(buf, pos);
    if (count > (buf.size() - pos) / 9)
      throw std::runtime_error("seqdb: corrupt block record count in " + path_);
    for (std::uint32_t i = 0; i < count; ++i)
      reads.push_back(seqdb_deserialize_record(buf, pos));
  }
  rank.stats().add_io_read(bytes);
  rank.barrier();
  return reads;
}

}  // namespace hipmer::io
