#pragma once

#include <string>
#include <vector>

#include "seq/read.hpp"

/// Serial FASTQ reading/writing.
///
/// The serial reader is used by tests, by the baseline ("Ray-like")
/// assembler that the paper criticizes for lacking parallel I/O, and as the
/// ground truth the parallel block reader is validated against. Files are
/// plain 4-line-per-record FASTQ; paired-end libraries are interleaved
/// (mate 0 then mate 1).
namespace hipmer::io {

/// Append one record to an open FASTQ stream representation.
void append_fastq_record(std::string& out, const seq::Read& read);

/// Write all reads to `path` (overwrites). Returns false on I/O error.
bool write_fastq(const std::string& path, const std::vector<seq::Read>& reads);

/// Read an entire FASTQ file serially. Throws std::runtime_error on parse
/// errors (truncated record, length mismatch between seq and quals).
[[nodiscard]] std::vector<seq::Read> read_fastq(const std::string& path);

/// Parse FASTQ records from an in-memory buffer; `buffer` must start at a
/// record boundary and contain only whole records.
[[nodiscard]] std::vector<seq::Read> parse_fastq(const std::string& buffer);

}  // namespace hipmer::io
