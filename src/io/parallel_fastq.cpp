#include "io/parallel_fastq.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "io/fastq.hpp"

namespace hipmer::io {

namespace {

/// True if `pos` in `data` is the start of a FASTQ record: an '@' at the
/// start of a line whose line-after-next starts with '+'. `pos` may equal 0
/// (file start) or follow a '\n'.
bool is_record_start(const std::string& data, std::size_t pos) {
  if (pos >= data.size() || data[pos] != '@') return false;
  if (pos != 0 && data[pos - 1] != '\n') return false;
  // Skip the header line, then the sequence line; the next line must be '+'.
  std::size_t nl1 = data.find('\n', pos);
  if (nl1 == std::string::npos) return false;
  std::size_t nl2 = data.find('\n', nl1 + 1);
  if (nl2 == std::string::npos) return false;
  return nl2 + 1 < data.size() && data[nl2 + 1] == '+';
}

}  // namespace

ParallelFastqReader::ParallelFastqReader(std::string path,
                                         std::size_t block_size)
    : path_(std::move(path)), block_size_(block_size) {
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) throw std::runtime_error("cannot open FASTQ file: " + path_);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    throw std::runtime_error("cannot stat FASTQ file: " + path_);
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);
}

ParallelFastqReader::~ParallelFastqReader() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ParallelFastqReader::pread_range(std::uint64_t offset,
                                             std::size_t length) const {
  if (offset >= file_size_) return {};
  length = static_cast<std::size_t>(
      std::min<std::uint64_t>(length, file_size_ - offset));
  std::string out(length, '\0');
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd_, out.data() + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) throw std::runtime_error("pread failed on: " + path_);
    if (n == 0) break;  // unexpected EOF (file shrank); return what we have
    done += static_cast<std::size_t>(n);
  }
  out.resize(done);
  return out;
}

std::uint64_t ParallelFastqReader::next_record_boundary(
    std::uint64_t offset) const {
  if (offset == 0) return 0;
  // Read a window generously larger than a record; grow on pathological
  // inputs (very long reads).
  std::size_t window = 64 << 10;
  while (offset < file_size_) {
    const std::string data = pread_range(offset, window);
    // Candidate boundaries are positions after a newline.
    for (std::size_t i = 0; i + 1 < data.size(); ++i) {
      if (data[i] == '\n' && is_record_start(data, i + 1))
        return offset + i + 1;
    }
    if (offset + data.size() >= file_size_) return file_size_;
    if (window >= (64u << 20))
      throw std::runtime_error("no FASTQ record boundary found in 64MB: " + path_);
    window *= 4;
  }
  return file_size_;
}

double ParallelFastqReader::sample_record_length(std::uint64_t offset,
                                                 int max_records) const {
  const std::uint64_t start = next_record_boundary(offset);
  if (start >= file_size_) return 0.0;
  const std::string data = pread_range(start, block_size_);
  int records = 0;
  std::size_t pos = 0;
  std::size_t last_end = 0;
  while (records < max_records) {
    // A record is 4 lines.
    std::size_t p = pos;
    for (int line = 0; line < 4; ++line) {
      const std::size_t nl = data.find('\n', p);
      if (nl == std::string::npos) { p = std::string::npos; break; }
      p = nl + 1;
    }
    if (p == std::string::npos) break;
    last_end = p;
    pos = p;
    ++records;
  }
  if (records == 0) return 0.0;
  return static_cast<double>(last_end) / records;
}

std::vector<seq::Read> ParallelFastqReader::read_my_records(pgas::Rank& rank) {
  std::vector<seq::Read> reads;
  read_records_impl(rank, [&](std::string_view name, std::string_view bases,
                              std::string_view quals) {
    reads.push_back(seq::Read{std::string(name), std::string(bases),
                              std::string(quals)});
  });
  return reads;
}

void ParallelFastqReader::read_my_records(pgas::Rank& rank,
                                          seq::ReadStore& out) {
  read_records_impl(rank, [&](std::string_view name, std::string_view bases,
                              std::string_view quals) {
    out.append(name, bases, quals);
  });
}

void ParallelFastqReader::read_records_impl(pgas::Rank& rank,
                                            const RecordSink& sink) {
  const int p = rank.nranks();
  const int me = rank.id();
  // Root sizes the per-rank stats table; the barrier publishes it before
  // any rank takes a reference into it (a lazy any-rank resize would race
  // with slot writers). Under the multi-process fabric every process holds
  // its own reader, so each sizes its own copy.
  if ((rank.is_root() || rank.team().multiprocess()) &&
      stats_.size() != static_cast<std::size_t>(p))
    stats_.assign(static_cast<std::size_t>(p), ParallelFastqStats{});
  rank.barrier();
  ParallelFastqStats& st = stats_[static_cast<std::size_t>(me)];
  st = ParallelFastqStats{};

  // --- Step 1: sampling pass (each rank samples its own region; the
  // average record length feeds the boundary-scan window sizing and is the
  // direct analogue of the paper's id-length estimation). ---
  const std::uint64_t nominal =
      (file_size_ + static_cast<std::uint64_t>(p) - 1) / static_cast<std::uint64_t>(p);
  const std::uint64_t my_start_nominal = std::min<std::uint64_t>(
      nominal * static_cast<std::uint64_t>(me), file_size_);
  st.sampled_avg_record_bytes =
      sample_record_length(my_start_nominal, /*max_records=*/1024);
  rank.barrier();

  // --- Steps 2+3: byte-range split with boundary fast-forward. Rank i
  // fast-forwards past a partial record at its start (rank i-1 finishes
  // it by reading past its own end). ---
  const std::uint64_t my_start = next_record_boundary(my_start_nominal);
  const std::uint64_t next_start_nominal = std::min<std::uint64_t>(
      nominal * static_cast<std::uint64_t>(me + 1), file_size_);
  const std::uint64_t my_end = next_record_boundary(next_start_nominal);

  // --- Step 4: large buffered preads, parsed in memory. Record fields are
  // handed to the sink as views into `carry` — no per-record allocations in
  // the reader itself. ---
  if (my_start >= my_end) {
    rank.stats().add_io_read(0);
    return;
  }
  std::string carry;
  std::uint64_t offset = my_start;
  while (offset < my_end) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_, my_end - offset));
    std::string block = pread_range(offset, want);
    st.bytes_read += block.size();
    offset += block.size();
    carry += block;
    // Parse all complete records currently in `carry`.
    const std::string_view cv(carry);
    std::size_t pos = 0;
    while (true) {
      std::size_t probe = pos;
      std::size_t line_starts[4];
      bool complete = true;
      for (int line = 0; line < 4; ++line) {
        line_starts[line] = probe;
        const std::size_t nl = carry.find('\n', probe);
        if (nl == std::string::npos) { complete = false; break; }
        probe = nl + 1;
      }
      if (!complete) break;
      const std::size_t h_end = carry.find('\n', line_starts[0]);
      const std::size_t s_end = carry.find('\n', line_starts[1]);
      const std::size_t q_end = carry.find('\n', line_starts[3]);
      if (carry[line_starts[0]] != '@')
        throw std::runtime_error("parallel FASTQ reader desynchronized in: " + path_);
      const auto name =
          cv.substr(line_starts[0] + 1, h_end - line_starts[0] - 1);
      const auto bases = cv.substr(line_starts[1], s_end - line_starts[1]);
      const auto quals = cv.substr(line_starts[3], q_end - line_starts[3]);
      if (bases.size() != quals.size())
        throw std::runtime_error("FASTQ seq/qual length mismatch: " +
                                 std::string(name));
      sink(name, bases, quals);
      ++st.records;
      pos = probe;
    }
    carry.erase(0, pos);
  }
  if (!carry.empty()) {
    // Partial trailing record: only legal at the very end of our range when
    // my_end coincided with a block boundary mid-record — cannot happen
    // because my_end is a record boundary. Guard anyway.
    throw std::runtime_error("parallel FASTQ reader left a partial record in: " + path_);
  }
  rank.stats().add_io_read(st.bytes_read);
}

}  // namespace hipmer::io
