#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

/// Seeded, deterministic filesystem fault injection.
///
/// The durability layers (job journal, ckpt::SnapshotStore,
/// server::ArtifactCache) all funnel their durable writes through the
/// helpers below. An armed `FsFaultPlan` makes those helpers misbehave the
/// way a sick disk or an ill-timed crash would: ENOSPC, EIO, a short write
/// that tears the temp file, or a "process death" just before / just after
/// the commit rename. Like `pgas::ChaosPlan`, every decision is a pure
/// hash of (seed, file name, per-path op index) — no RNG state — so a
/// sweep with the same seed injects the same faults regardless of thread
/// interleaving, and `at=N:fate` pins a single fault on the Nth matching
/// operation for exhaustive every-injection-point sweeps.
///
/// When no plan is armed the shim costs one relaxed atomic load per write.
namespace hipmer::io {

/// What happens to one durable-write operation.
enum class FsFate : std::uint8_t {
  kOk = 0,
  kEnospc,             ///< write fails cleanly, as if the disk filled
  kEio,                ///< write fails cleanly with an I/O error
  kShortWrite,         ///< a prefix lands, then the "process dies"
  kCrashBeforeRename,  ///< temp file fully written, rename never happens
  kCrashAfterRename,   ///< rename lands, then the "process dies"
};

[[nodiscard]] const char* fs_fate_name(FsFate fate);

struct FsFaultProbs {
  double enospc = 0.0;
  double eio = 0.0;
  double short_write = 0.0;
  double crash_before_rename = 0.0;
  double crash_after_rename = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return enospc > 0 || eio > 0 || short_write > 0 ||
           crash_before_rename > 0 || crash_after_rename > 0;
  }
};

class FsFaultPlan {
 public:
  std::uint64_t seed = 1;
  FsFaultProbs probs;
  /// Only paths containing this substring are eligible; empty = all.
  std::string path_filter;
  /// >= 0 pins `one_shot_fate` on exactly the Nth eligible operation
  /// (counted from 0 across all paths) and nothing else.
  std::int64_t one_shot_op = -1;
  FsFate one_shot_fate = FsFate::kEio;

  [[nodiscard]] bool enabled() const noexcept {
    return probs.any() || one_shot_op >= 0;
  }

  /// Parse an `--fs-faults` spec. Grammar (clauses separated by ','):
  ///   clause := ('enospc'|'eio'|'short'|'crash_before'|'crash_after') '=' FLOAT
  ///           | 'path' '=' SUBSTRING
  ///           | 'at' '=' N ':' FATE
  /// Example: "enospc=0.05,eio=0.02,path=cache" or "at=3:crash_before".
  /// Throws std::invalid_argument on malformed input.
  static FsFaultPlan parse(std::uint64_t seed, const std::string& spec);
};

/// Process-wide injectable fault source. Armed once (tests, `serve
/// --fs-faults` drills), consulted by every durable-write helper.
class FsFaults {
 public:
  static FsFaults& instance();

  void arm(FsFaultPlan plan);
  void disarm();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Decide the fate of the next durable-write op targeting `path` and
  /// advance the op counters. Always kOk when nothing is armed.
  [[nodiscard]] FsFate next_fate(const std::filesystem::path& path);

  /// Deterministic sub-stream for the armed seed (short-write lengths).
  [[nodiscard]] std::uint64_t mix(const std::filesystem::path& path,
                                  std::uint64_t op, std::uint64_t salt) const;

  /// Total faults injected since arm().
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }
  /// Total eligible operations observed since arm() (fault or not); a
  /// sweep walks `at=` from 0 to this.
  [[nodiscard]] std::uint64_t operations() const noexcept {
    return operations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> operations_{0};
  mutable std::mutex mu_;
  FsFaultPlan plan_;
  std::uint64_t global_op_ = 0;
  std::unordered_map<std::string, std::uint64_t> per_path_op_;
};

/// RAII armer for tests: arms on construction, disarms on destruction.
struct ScopedFsFaults {
  explicit ScopedFsFaults(FsFaultPlan plan) {
    FsFaults::instance().arm(std::move(plan));
  }
  ~ScopedFsFaults() { FsFaults::instance().disarm(); }
  ScopedFsFaults(const ScopedFsFaults&) = delete;
  ScopedFsFaults& operator=(const ScopedFsFaults&) = delete;
};

/// Outcome of a fault-aware atomic write.
enum class AtomicWriteStatus : std::uint8_t {
  kOk = 0,
  /// Clean failure: no temp file remains, the final path is untouched.
  kFailed,
  /// Simulated process death mid-commit: on-disk state is whatever the
  /// crash left (a torn `.tmp` sibling, or — for crash-after-rename — the
  /// committed file). Callers treat it as failure; recovery sweeps clean
  /// the debris on the next startup.
  kCrashed,
};

/// Write `size` bytes to `final_path` via a `.tmp` sibling + atomic
/// rename, consulting the armed fault plan. The shared implementation of
/// the idiom SnapshotStore and ArtifactCache previously duplicated.
AtomicWriteStatus write_file_atomic(const std::filesystem::path& final_path,
                                    const void* data, std::size_t size);

/// Read a whole file; nullopt when absent or unreadable.
[[nodiscard]] std::optional<std::vector<std::byte>> read_file(
    const std::filesystem::path& path);

/// Startup sweep: remove every `*.tmp` file under `root` (recursive) —
/// debris from a crash between temp write and rename. Returns the number
/// removed. Best effort; never throws.
std::size_t sweep_tmp_files(const std::filesystem::path& root);

}  // namespace hipmer::io
