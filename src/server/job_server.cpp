#include "server/job_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <thread>

#include "ckpt/artifacts.hpp"
#include "io/fasta.hpp"
#include "io/fs_faults.hpp"
#include "pgas/chaos.hpp"
#include "pgas/fault.hpp"
#include "io/wire.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::server {

namespace fs = std::filesystem;

namespace {

/// The shared-cache key: the pipeline's config fingerprint folded with
/// the identity of the input files (path + size + mtime). The fingerprint
/// alone treats paths as locators — two tenants' different datasets under
/// the same config must not collide — and size alone misses a file
/// rewritten in place, which must not hit on the old data's artifacts.
std::uint64_t artifact_key(pipeline::Pipeline& pipe, const JobSpec& spec) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u64(pipe.config_fingerprint(spec.libraries));
  for (const auto& lib : spec.libraries) {
    w.put_bytes(lib.fastq_path);
    std::error_code ec;
    const auto size = fs::file_size(lib.fastq_path, ec);
    w.put_u64(ec ? 0 : static_cast<std::uint64_t>(size));
    const auto mtime = fs::last_write_time(lib.fastq_path, ec);
    w.put_u64(ec ? 0
                 : static_cast<std::uint64_t>(
                       mtime.time_since_epoch().count()));
  }
  return util::hash_bytes(buf.data(), buf.size());
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::uint64_t now_wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// True once the job's wall-clock budget is spent.
bool deadline_expired(const JobSpec& spec) {
  return spec.deadline_ms > 0 &&
         now_wall_ms() >= spec.submit_wall_ms + spec.deadline_ms;
}

}  // namespace

std::uint64_t JobServer::retry_backoff_ms(std::uint32_t base_ms,
                                          std::uint32_t attempt,
                                          std::uint64_t job_id) {
  // Exponential with a 64x cap, plus deterministic +-25% jitter from the
  // same hash family the chaos plan uses — reproducible, no RNG state.
  const std::uint32_t shift = attempt < 6 ? attempt : 6;
  const std::uint64_t base = static_cast<std::uint64_t>(base_ms) << shift;
  const std::uint64_t h = util::mix64(
      util::hash_combine(util::hash_combine(0x626B6F66ULL, job_id), attempt));
  const std::uint64_t jitter = base > 0 ? (h % (base / 2 + 1)) : 0;
  return base - base / 4 + jitter;
}

bool JobServer::parse_submit(const Command& cmd, JobSpec* spec,
                             std::string* error) {
  const std::string reads = cmd.get("reads");
  if (reads.empty()) {
    *error = "missing-reads";
    return false;
  }
  // reads=path[:insert[:s]],...  (":s" marks a scaffold-only library).
  // Library names are assigned lib0, lib1, ... — the same scheme the CLI
  // uses, so fingerprints agree between served and one-shot runs.
  std::istringstream is(reads);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    seq::ReadLibrary lib;
    lib.name = "lib" + std::to_string(spec->libraries.size());
    lib.mean_insert = 400.0;
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      lib.fastq_path = item;
    } else {
      lib.fastq_path = item.substr(0, colon);
      std::string rest = item.substr(colon + 1);
      const auto colon2 = rest.find(':');
      if (colon2 != std::string::npos) {
        if (rest.substr(colon2 + 1) == "s") lib.for_contigging = false;
        rest = rest.substr(0, colon2);
      }
      if (!rest.empty()) lib.mean_insert = std::atof(rest.c_str());
    }
    std::error_code ec;
    const auto size = fs::file_size(lib.fastq_path, ec);
    if (ec) {
      *error = "input-missing";
      return false;
    }
    spec->estimated_bytes += static_cast<std::uint64_t>(size);
    spec->libraries.push_back(std::move(lib));
  }
  if (spec->libraries.empty()) {
    *error = "missing-reads";
    return false;
  }

  spec->output_path = cmd.get("out");
  if (spec->output_path.empty()) {
    *error = "missing-out";
    return false;
  }
  spec->tenant = cmd.get("tenant", "default");
  if (spec->tenant.find('/') != std::string::npos ||
      spec->tenant.find("..") != std::string::npos) {
    *error = "bad-tenant";
    return false;
  }
  spec->priority = std::atoi(cmd.get("priority", "0").c_str());
  spec->k = std::atoi(cmd.get("k", "31").c_str());
  spec->min_count = static_cast<std::uint32_t>(
      std::strtoul(cmd.get("min_count", "0").c_str(), nullptr, 10));
  spec->rounds = std::atoi(cmd.get("rounds", "1").c_str());
  spec->diploid = cmd.get("diploid", "0") == "1";
  spec->resume = cmd.get("resume", "0") == "1";
  spec->use_cache = cmd.get("cache", "1") != "0";
  spec->kill_spec = cmd.get("kill");
  if (!spec->kill_spec.empty()) {
    try {
      // A hard kill SIGKILLs the hosting process at the fault point. On
      // the server's in-process team that is the whole multi-tenant
      // server, not the submitting job — containment demands rejection.
      if (pgas::FaultPlan::parse(spec->kill_spec).hard) {
        *error = "bad-kill";
        return false;
      }
    } catch (const std::exception&) {
      *error = "bad-kill";
      return false;
    }
  }
  spec->chaos_spec = cmd.get("chaos");
  spec->chaos_seed = static_cast<std::uint64_t>(
      std::strtoull(cmd.get("chaos_seed", "1").c_str(), nullptr, 10));
  spec->max_attempts = static_cast<std::uint32_t>(
      std::strtoul(cmd.get("attempts", "0").c_str(), nullptr, 10));
  spec->deadline_ms = static_cast<std::uint64_t>(
      std::strtoull(cmd.get("deadline", "0").c_str(), nullptr, 10));
  if (spec->k < 5 || spec->rounds < 1) {
    *error = "bad-config";
    return false;
  }
  return true;
}

JobServer::JobServer(ServerConfig config)
    : config_(std::move(config)), queue_(config_.admission) {
  if (config_.enable_cache)
    cache_ = std::make_unique<ArtifactCache>(fs::path(config_.state_dir) /
                                             "cache");
}

JobServer::~JobServer() {
  queue_.shutdown();
  stop_.store(true, std::memory_order_relaxed);
  if (io_thread_.joinable()) io_thread_.join();
}

std::string JobServer::tenant_dir(const std::string& tenant) const {
  return (fs::path(config_.state_dir) / "tenants" / tenant).string();
}

void JobServer::journal_event(const JournalEvent& event) {
  if (!journal_) return;
  std::string error_name;
  if (!journal_->append(event, &error_name))
    // Durability degrades by name; availability does not: the server keeps
    // running and the operator sees exactly which write was lost.
    util::log_warn("server: journal append (" +
                   std::string(journal_event_name(event.type)) + " job " +
                   std::to_string(event.job_id) + ") failed: " + error_name);
}

void JobServer::recover_from_journal() {
  auto replay = journal_->open_and_replay();
  if (!replay) {
    util::log_warn("server: journal unusable at " + journal_->path() +
                   "; running without durability");
    journal_.reset();
    return;
  }
  const auto jobs = reconstruct_jobs(replay->events);
  std::size_t backlog = 0;
  std::size_t resumed = 0;
  std::vector<JournalEvent> live;
  for (const auto& [id, job] : jobs) {
    JobSpec spec = job.spec;
    JobState state = job.state;
    if (state == JobState::kRunning) {
      // The interrupted job: re-admit queued, resume from its tenant
      // checkpoint. Its consumed attempt is not re-charged — the server
      // died, not the job.
      spec.resume = true;
      state = JobState::kQueued;
      ++resumed;
    }
    if (state == JobState::kQueued) ++backlog;
    if (queue_.restore(spec, state, job.attempt, job.outcome,
                       job.fault_log) == nullptr)
      continue;
    // Compacted journal: one SUBMIT per live/retained job (attempt and
    // fault log folded in), plus the terminal record when there is one.
    JournalEvent submit;
    submit.type = JournalEventType::kSubmit;
    submit.job_id = id;
    submit.attempt = job.attempt;
    submit.error = job.fault_log;
    submit.spec = spec;
    live.push_back(std::move(submit));
    if (job_state_terminal(state)) {
      JournalEvent fin;
      fin.type = JournalEventType::kFinish;
      fin.job_id = id;
      fin.final_state = state;
      fin.scaffolds = job.outcome.scaffolds;
      fin.scaffold_bases = job.outcome.scaffold_bases;
      fin.cache_hit = job.outcome.cache_hit;
      fin.error = job.outcome.error;
      live.push_back(std::move(fin));
    }
  }
  if (!replay->events.empty() || replay->tail_truncated)
    journal_->compact(live);
  if (backlog > 0 || replay->tail_truncated)
    util::log_info("server: journal replay recovered " +
                   std::to_string(backlog) + " queued job(s), " +
                   std::to_string(resumed) + " interrupted run(s) resumed" +
                   (replay->tail_truncated ? " (torn tail truncated)" : ""));
}

int JobServer::serve() {
  std::error_code ec;
  fs::create_directories(fs::path(config_.state_dir) / "tenants", ec);
  if (ec) {
    util::log_warn("server: cannot create " + config_.state_dir + ": " +
                   ec.message());
    return 1;
  }

  if (!config_.fs_fault_spec.empty()) {
    try {
      io::FsFaults::instance().arm(io::FsFaultPlan::parse(
          config_.fs_fault_seed, config_.fs_fault_spec));
      util::log_info("server: fs-fault drill armed: " +
                     config_.fs_fault_spec);
    } catch (const std::exception& e) {
      util::log_warn(std::string("server: bad --fs-faults spec: ") +
                     e.what());
      return 1;
    }
  }

  // Reclaim temp-file debris a previous life left between write and
  // rename — under tenants, the cache, and the journal alike.
  io::sweep_tmp_files(config_.state_dir);

  if (config_.enable_journal) {
    std::string journal_path = config_.journal_path;
    if (journal_path.empty())
      journal_path = (fs::path(config_.state_dir) / "journal.bin").string();
    journal_ = std::make_unique<JobJournal>(journal_path);
    recover_from_journal();
  }

  // One persistent team for the server's whole life; jobs re-arm it via
  // Pipeline::reset.
  pipeline::PipelineConfig boot;
  boot.sync_k();
  pipe_ = std::make_unique<pipeline::Pipeline>(
      pgas::Topology{config_.ranks, config_.cores}, boot);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.listen_path.size() >= sizeof addr.sun_path) {
    util::log_warn("server: socket path too long: " + config_.listen_path);
    return 1;
  }
  std::strncpy(addr.sun_path, config_.listen_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(config_.listen_path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0 ||
      ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    util::log_warn("server: cannot listen on " + config_.listen_path + ": " +
                   std::strerror(errno));
    if (listen_fd >= 0) ::close(listen_fd);
    return 1;
  }
  util::log_info("server: listening on " + config_.listen_path + " with " +
                 std::to_string(config_.ranks) + " ranks");

  io_thread_ = std::thread([this, listen_fd] { io_loop(listen_fd); });

  // Executor: one job at a time over the shared team.
  while (JobRecord* job = queue_.pop_next()) execute(job);

  stop_.store(true, std::memory_order_relaxed);
  io_thread_.join();
  ::close(listen_fd);
  ::unlink(config_.listen_path.c_str());
  util::log_info("server: shut down cleanly");
  return 0;
}

void JobServer::io_loop(int listen_fd) {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    // One thread per control connection: an idle or slow client must not
    // wedge STATUS/CANCEL/SHUTDOWN for every other tenant. The queue is
    // mutex-protected for concurrent handlers, and the reader's idle
    // timeout plus the stop flag bound each thread's life.
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    std::thread([this, fd] {
      handle_connection(fd);
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_release);
    }).detach();
  }
  // Handlers borrow `this`; do not return (and let the server die) until
  // the last one is gone. Each exits within one poll slice of stop_.
  while (active_connections_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void JobServer::handle_connection(int fd) {
  LineReader reader(fd, config_.client_idle_timeout_ms, &stop_);
  while (auto raw = reader.next()) {
    const auto text = unframe_line(*raw);
    if (!text) {
      send_line(fd, "ERR bad-frame");
      send_line(fd, kEnd);
      continue;
    }
    const Command cmd = parse_command(*text);

    if (cmd.verb == "PING") {
      send_line(fd, "OK pong");
    } else if (cmd.verb == "SUBMIT") {
      JobSpec spec;
      std::string error;
      if (!parse_submit(cmd, &spec, &error)) {
        send_line(fd, "ERR " + error);
      } else {
        spec.submit_wall_ms = now_wall_ms();
        if (spec.max_attempts == 0) spec.max_attempts = config_.max_attempts;
        if (spec.max_attempts == 0) spec.max_attempts = 1;
        // Write-ahead: the SUBMIT record is fsync'd (inside the queue
        // lock, before the job is visible) or the admission is refused —
        // an acknowledged job is never lost to a crash.
        const auto precommit = [this](const JobSpec& admitted) {
          if (!journal_) return true;
          JournalEvent event;
          event.type = JournalEventType::kSubmit;
          event.job_id = admitted.id;
          event.spec = admitted;
          std::string journal_error;
          if (journal_->append(event, &journal_error)) return true;
          util::log_warn("server: refusing job: " + journal_error);
          return false;
        };
        const std::uint64_t id =
            queue_.submit(std::move(spec), &error, precommit);
        if (id == 0)
          send_line(fd, "ERR " + error);
        else
          send_line(fd, "OK id=" + std::to_string(id));
      }
    } else if (cmd.verb == "STATUS" || cmd.verb == "RESULT") {
      const std::uint64_t id = static_cast<std::uint64_t>(
          std::strtoull(cmd.get("id", "0").c_str(), nullptr, 10));
      const auto snap = queue_.status(id);
      if (!snap) {
        send_line(fd, "ERR unknown-job");
      } else {
        std::string line = "JOB id=" + std::to_string(snap->id) + " state=" +
                           job_state_name(snap->state);
        if (snap->queue_position >= 0)
          line += " pos=" + std::to_string(snap->queue_position);
        if (snap->attempt > 0)
          line += " attempts=" + std::to_string(snap->attempt);
        if (job_state_terminal(snap->state)) {
          line += " scaffolds=" + std::to_string(snap->outcome.scaffolds) +
                  " bases=" + std::to_string(snap->outcome.scaffold_bases) +
                  " cache_hit=" + (snap->outcome.cache_hit ? "1" : "0");
          if (!snap->output_path.empty()) line += " out=" + snap->output_path;
          if (!snap->outcome.error.empty()) {
            std::string err = snap->outcome.error;
            // One-line protocol: the reason must not smuggle in framing.
            for (auto& c : err)
              if (c == ' ' || c == '\n') c = '_';
            line += " error=" + err;
          }
        }
        send_line(fd, line);
        if (cmd.verb == "RESULT" && job_state_terminal(snap->state)) {
          for (const auto& stage : snap->outcome.stages)
            send_line(fd, "STAGE " + stage.name + " " +
                              format_double(stage.wall_seconds) + " " +
                              format_double(stage.modeled_seconds));
        }
      }
    } else if (cmd.verb == "CANCEL") {
      const std::uint64_t id = static_cast<std::uint64_t>(
          std::strtoull(cmd.get("id", "0").c_str(), nullptr, 10));
      const bool cancelled = queue_.cancel(id);
      if (cancelled) {
        JournalEvent event;
        event.type = JournalEventType::kCancel;
        event.job_id = id;
        journal_event(event);
      }
      send_line(fd, cancelled ? "OK cancelled" : "ERR unknown-job");
    } else if (cmd.verb == "STATS") {
      const auto c = queue_.counters();
      std::string line =
          "STATS queued=" + std::to_string(c.queued) +
          " running=" + std::to_string(c.running) +
          " completed=" + std::to_string(c.completed) +
          " failed=" + std::to_string(c.failed) +
          " cancelled=" + std::to_string(c.cancelled) +
          " quarantined=" + std::to_string(c.quarantined) +
          " resident_estimate=" + std::to_string(c.resident_estimate);
      if (cache_ != nullptr)
        line += " cache_hits=" + std::to_string(cache_->hits()) +
                " cache_misses=" + std::to_string(cache_->misses());
      send_line(fd, line);
    } else if (cmd.verb == "SHUTDOWN") {
      send_line(fd, "OK shutting-down");
      send_line(fd, kEnd);
      queue_.shutdown();
      return;
    } else {
      send_line(fd, "ERR unknown-verb");
    }
    send_line(fd, kEnd);
  }
}

void JobServer::execute(JobRecord* job) {
  const JobSpec& spec = job->spec;
  // finish() may evict the record under the retention cap; anything
  // logged afterwards must not reach back through `job`.
  const std::uint64_t job_id = spec.id;
  const std::uint32_t attempt = job->attempt;
  const std::uint32_t max_attempts =
      spec.max_attempts > 0 ? spec.max_attempts : config_.max_attempts;

  // Terminal-record helper: the journal record lands (fsync'd) before the
  // state becomes visible through finish().
  const auto land = [&](JobState state, JobOutcome outcome) {
    JournalEvent event;
    event.type = JournalEventType::kFinish;
    event.job_id = job_id;
    event.attempt = attempt;
    event.final_state = state;
    event.scaffolds = outcome.scaffolds;
    event.scaffold_bases = outcome.scaffold_bases;
    event.cache_hit = outcome.cache_hit;
    event.error = state == JobState::kQuarantined ? job->fault_log
                                                  : outcome.error;
    journal_event(event);
    if (state == JobState::kQuarantined) outcome.error = job->fault_log;
    queue_.finish(job, state, std::move(outcome));
  };

  // A job whose wall-clock budget expired while queued (or during a retry
  // backoff) fails at dispatch without burning team time.
  if (deadline_expired(spec)) {
    JobOutcome outcome;
    outcome.error = "deadline-exceeded";
    land(JobState::kFailed, std::move(outcome));
    util::log_info("server: job " + std::to_string(job_id) +
                   " missed its deadline while queued");
    return;
  }

  {
    JournalEvent event;
    event.type = JournalEventType::kStart;
    event.job_id = job_id;
    event.attempt = attempt;
    journal_event(event);
  }
  util::log_info("server: job " + std::to_string(job_id) + " (tenant " +
                 spec.tenant + ") starting" +
                 (attempt > 0 ? " (attempt " + std::to_string(attempt + 1) +
                                    "/" + std::to_string(max_attempts) + ")"
                              : ""));

  JobOutcome outcome;
  try {
    pipeline::PipelineConfig cfg;
    cfg.k = spec.k;
    if (spec.min_count > 0) cfg.kmer.min_count = spec.min_count;
    cfg.scaffolding_rounds = spec.rounds;
    cfg.merge_bubbles = spec.diploid;
    cfg.checkpoint.dir = tenant_dir(spec.tenant);
    cfg.checkpoint.keep_last = config_.keep_last;
    if (!spec.chaos_spec.empty())
      cfg.chaos = pgas::ChaosPlan::parse(spec.chaos_seed, spec.chaos_spec);
    cfg.attempt = static_cast<int>(attempt);
    // The deadline rides the cancel hook: both stop the pipeline at the
    // next stage boundary; the catch below tells them apart.
    const JobSpec* spec_ptr = &job->spec;
    cfg.cancel_poll = [job, spec_ptr] {
      return job->cancel_requested.load(std::memory_order_relaxed) ||
             deadline_expired(*spec_ptr);
    };
    cfg.sync_k();

    // Re-arm the persistent team: clears fault plans, drops the previous
    // job's channels, rebuilds the barrier a faulted job may have shrunk.
    pipe_->reset(std::move(cfg));
    if (!spec.kill_spec.empty())
      pipe_->team().faults().set_plan(pgas::FaultPlan::parse(spec.kill_spec));

    if (cache_ != nullptr && spec.use_cache) {
      const std::uint64_t key = artifact_key(*pipe_, spec);
      if (auto hit = cache_->lookup_ufx(key)) {
        std::vector<std::vector<kcount::UfxRecord>> decoded;
        bool ok = true;
        for (const auto& shard : hit->shards) {
          auto records = ckpt::decode_ufx_shard(shard);
          if (!records) {
            ok = false;
            break;
          }
          decoded.push_back(std::move(*records));
        }
        if (ok) {
          pipe_->set_preloaded_ufx(std::move(decoded), hit->aux);
          outcome.cache_hit = true;
        }
      }
      if (!outcome.cache_hit) {
        ArtifactCache* cache = cache_.get();
        pipe_->set_ufx_export(
            [cache, key](std::vector<std::vector<std::byte>> shards,
                         const ckpt::AuxStats& aux) {
              cache->store_ufx(key, shards, aux);
            });
      }
    }

    // A retry resumes from the tenant checkpoint: work the dead attempt
    // already committed is not re-done.
    auto result =
        pipe_->execute_from_fastq(spec.libraries, spec.resume || attempt > 0);

    if (!io::write_fasta(spec.output_path, result.scaffolds))
      throw std::runtime_error("cannot write " + spec.output_path);
    outcome.scaffolds = result.scaffolds.size();
    for (const auto& rec : result.scaffolds)
      outcome.scaffold_bases += rec.seq.size();
    outcome.stages = std::move(result.stages);
    land(JobState::kDone, std::move(outcome));
    util::log_info("server: job " + std::to_string(job_id) + " done");
  } catch (const pipeline::JobCancelled& e) {
    if (!job->cancel_requested.load(std::memory_order_relaxed) &&
        deadline_expired(job->spec)) {
      // The deadline tripped the cancel hook, not the client. Terminal —
      // retrying a job that is already out of budget cannot help.
      outcome.error = "deadline-exceeded";
      land(JobState::kFailed, std::move(outcome));
      util::log_info("server: job " + std::to_string(job_id) +
                     " exceeded its deadline");
    } else {
      outcome.error = e.what();
      land(JobState::kCancelled, std::move(outcome));
      util::log_info("server: job " + std::to_string(job_id) + " cancelled");
    }
  } catch (const std::exception& e) {
    // RankKilled / PeerSuspect / any worker crash land here: the job's
    // attempt dies, the server does not — the next reset rebuilds the
    // team's sync state. Retry with backoff until the budget is spent,
    // then quarantine with the accumulated fault record.
    const std::string reason = e.what();
    if (!job->fault_log.empty()) job->fault_log += "; ";
    job->fault_log += "attempt " + std::to_string(attempt) + ": " + reason;
    if (attempt + 1 < max_attempts) {
      JournalEvent event;
      event.type = JournalEventType::kFail;
      event.job_id = job_id;
      event.attempt = attempt;
      event.error = reason;
      journal_event(event);
      const std::uint64_t backoff =
          retry_backoff_ms(config_.retry_backoff_ms, attempt, job_id);
      job->attempt = attempt + 1;
      queue_.requeue(job, std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(backoff));
      util::log_warn("server: job " + std::to_string(job_id) +
                     " attempt " + std::to_string(attempt + 1) + "/" +
                     std::to_string(max_attempts) + " failed (" + reason +
                     "); retrying in " + std::to_string(backoff) + "ms");
    } else {
      job->attempt = attempt + 1;
      outcome.error = reason;
      land(JobState::kQuarantined, std::move(outcome));
      util::log_warn("server: job " + std::to_string(job_id) +
                     " quarantined after " + std::to_string(attempt + 1) +
                     " attempt(s): " + reason);
    }
  }
}

}  // namespace hipmer::server
