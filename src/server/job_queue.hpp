#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "seq/read.hpp"

/// Job queue with admission control for the assembly server.
///
/// Submissions are admitted against two budgets — a queue-depth cap and a
/// resident-memory estimate summed over every queued+running job (the
/// estimate is the total input FASTQ size, a good proxy for the resident
/// read store that dominates a job's footprint). Admitted jobs are
/// scheduled highest priority first, FIFO within a priority. One executor
/// drains the queue; any number of control connections submit, poll and
/// cancel concurrently.
namespace hipmer::server {

/// kQuarantined is the poison-job terminal state: the job died
/// `max_attempts` times, the retry policy gave up, and its accumulated
/// fault record stays retrievable via STATUS while later jobs run clean.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled,
                      kQuarantined };

[[nodiscard]] const char* job_state_name(JobState state);

/// True for states a job can never leave.
[[nodiscard]] inline bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kQuarantined;
}

/// Everything the executor needs to run one job, parsed from SUBMIT.
struct JobSpec {
  std::uint64_t id = 0;
  std::string tenant = "default";
  int priority = 0;

  std::vector<seq::ReadLibrary> libraries;
  std::string output_path;

  int k = 31;
  /// 0 = keep the pipeline default.
  std::uint32_t min_count = 0;
  int rounds = 1;
  /// Merge diploid bubbles before scaffolding (the CLI's --diploid). Off by
  /// default so a served job matches a one-shot `assemble` byte for byte.
  bool diploid = false;
  bool resume = false;
  bool use_cache = true;

  /// Fault injection riders (tests / chaos drills): same specs the CLI's
  /// --kill and --chaos-spec take. A job carrying these can only hurt
  /// itself — containment is the server's job.
  std::string kill_spec;
  std::string chaos_spec;
  std::uint64_t chaos_seed = 1;

  /// Admission estimate: total input bytes (filled at submit).
  std::uint64_t estimated_bytes = 0;

  /// Retry budget: attempts before quarantine. 0 = take the server
  /// default; resolved to a concrete value before the job is journaled.
  std::uint32_t max_attempts = 0;
  /// Wall-clock budget in ms from submission; 0 = none. Enforced through
  /// the pipeline's cancel_poll and at dispatch time.
  std::uint64_t deadline_ms = 0;
  /// system_clock ms at admission — the deadline's anchor. Journaled, so a
  /// restart doesn't reset a job's clock.
  std::uint64_t submit_wall_ms = 0;
};

/// Filled in by the executor as the job finishes (any terminal state).
struct JobOutcome {
  std::uint64_t scaffolds = 0;
  std::uint64_t scaffold_bases = 0;
  bool cache_hit = false;
  std::string error;
  std::vector<pipeline::StageReport> stages;
};

struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kQueued;
  JobOutcome outcome;
  /// Set by CANCEL on a running job; the pipeline's cancel_poll reads it
  /// between stages.
  std::atomic<bool> cancel_requested{false};
  /// Attempts started so far; the executor's retry policy bumps it after
  /// each failed attempt.
  std::uint32_t attempt = 0;
  /// Exponential-backoff gate: a queued job is not dispatchable before
  /// this instant.
  std::chrono::steady_clock::time_point not_before{};
  /// Accumulated per-attempt failure reasons — the quarantine fault
  /// record STATUS reports.
  std::string fault_log;
};

struct AdmissionConfig {
  std::size_t max_queued = 16;
  /// Sum of estimated_bytes over queued+running jobs may not exceed this.
  std::uint64_t max_resident_bytes = 4ull << 30;
  /// Terminal job records retained per tenant for STATUS/RESULT queries;
  /// older ones are evicted so a long-lived server's history (and the
  /// map every submit/status scans) stays bounded.
  std::size_t max_retained_terminal = 32;
};

class JobQueue {
 public:
  explicit JobQueue(AdmissionConfig admission) : admission_(admission) {}

  /// Admission-checked enqueue. On success assigns spec.id and returns
  /// the id; on rejection returns 0 and sets `error` to a one-word reason
  /// (queue-full / memory-budget). `precommit`, when set, runs under the
  /// queue lock after the id is assigned but before the job becomes
  /// visible — the write-ahead hook: returning false aborts the admission
  /// with error "journal-io", so no job exists that the journal missed.
  std::uint64_t submit(JobSpec spec, std::string* error,
                       const std::function<bool(const JobSpec&)>& precommit =
                           nullptr);

  /// Block until a job is runnable (marked kRunning before return) or the
  /// queue shuts down (nullptr). Jobs inside their retry-backoff window
  /// are held back until `not_before`. The returned record stays owned by
  /// the queue and outlives the job.
  JobRecord* pop_next();

  /// Retry hand-back: a running job whose attempt died goes back to
  /// queued, not dispatchable before `not_before`.
  void requeue(JobRecord* job, std::chrono::steady_clock::time_point
                                   not_before);

  /// Journal-replay hand-back: re-create a job with its original id and
  /// recovered state (kQueued or a terminal state — never kRunning; an
  /// interrupted run is re-admitted as queued). Bypasses admission: the
  /// job was already admitted in a previous life. Returns the record, or
  /// nullptr when the id is already present.
  JobRecord* restore(JobSpec spec, JobState state, std::uint32_t attempt,
                     JobOutcome outcome, std::string fault_log);

  /// Queued jobs cancel immediately; running jobs get the flag (the
  /// executor lands the terminal state). False for unknown/terminal jobs.
  bool cancel(std::uint64_t id);

  /// Executor hand-back: record the terminal state + outcome.
  void finish(JobRecord* job, JobState state, JobOutcome outcome);

  struct Snapshot {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    /// 0-based position among queued jobs in dispatch order; -1 once off
    /// the queue.
    int queue_position = -1;
    JobOutcome outcome;
    std::string tenant;
    std::string output_path;
    std::uint32_t attempt = 0;
  };
  [[nodiscard]] std::optional<Snapshot> status(std::uint64_t id);

  struct Counters {
    std::size_t queued = 0;
    std::size_t running = 0;
    std::uint64_t resident_estimate = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t quarantined = 0;
  };
  [[nodiscard]] Counters counters();

  /// Wake the executor with nullptr; subsequent submits are rejected.
  void shutdown();

 private:
  /// Queued ids in dispatch order (priority desc, then submit order).
  [[nodiscard]] std::vector<std::uint64_t> queued_order_locked() const;

  /// Drop the tenant's oldest terminal records beyond
  /// admission_.max_retained_terminal (by value: the caller's record may
  /// itself be evicted).
  void evict_terminal_locked(std::string tenant);

  AdmissionConfig admission_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::uint64_t next_id_ = 1;
  /// unique_ptr: records hold an atomic and must stay address-stable for
  /// the executor while the map grows.
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_;
  Counters totals_;
};

}  // namespace hipmer::server
