#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "pipeline/pipeline.hpp"
#include "server/artifact_cache.hpp"
#include "server/job_queue.hpp"
#include "server/journal.hpp"
#include "server/protocol.hpp"

/// Assembly-as-a-service: a long-lived job server owning one persistent
/// rank team.
///
/// `serve()` binds a Unix control socket, answers the line protocol
/// (server/protocol.hpp) on an IO thread, and drains the job queue on the
/// calling thread: one assembly at a time over the shared team, with
/// `Pipeline::reset` re-arming the pipeline between jobs. Failure is
/// contained per job — a rank killed by an injected fault or a suspect
/// peer fails that job, the team's sync state is rebuilt, and the next
/// job runs as if nothing happened.
///
/// Per-tenant state lives under `<state_dir>/tenants/<tenant>` (each
/// tenant's checkpoint dir, quota-bounded by keep-last pruning) and the
/// shared artifact cache under `<state_dir>/cache` — a cache hit on a
/// resubmitted (input, config) skips the k-mer analysis stage outright.
namespace hipmer::server {

struct ServerConfig {
  /// Unix socket path to listen on.
  std::string listen_path;
  int ranks = 4;
  /// Cores-per-node knob of the Topology (matches the CLI's default).
  int cores = 4;
  /// Root for tenant checkpoint dirs and the artifact cache.
  std::string state_dir = "hipmer-server-state";
  AdmissionConfig admission;
  /// Per-tenant checkpoint quota: snapshots kept per job fingerprint.
  int keep_last = 2;
  bool enable_cache = true;
  /// Drop a control connection that sends no byte for this long; -1
  /// disables the timeout. Bounds how long an idle client can hold a
  /// connection handler.
  int client_idle_timeout_ms = 10'000;

  /// Write-ahead job journal: every transition fsync'd before it is
  /// acknowledged; replayed on startup to recover the backlog.
  bool enable_journal = true;
  /// Journal file; empty = `<state_dir>/journal.bin`.
  std::string journal_path;
  /// Retry budget before a poison job is quarantined (per-job `attempts=`
  /// overrides downward or upward; 0 is clamped to 1).
  std::uint32_t max_attempts = 3;
  /// Base of the exponential retry backoff (doubles per attempt, with
  /// deterministic jitter, capped at 64x).
  std::uint32_t retry_backoff_ms = 200;
  /// Filesystem fault-injection drill (io::FsFaultPlan::parse grammar),
  /// armed process-wide for the server's life. Empty = disabled.
  std::string fs_fault_spec;
  std::uint64_t fs_fault_seed = 1;
};

class JobServer {
 public:
  explicit JobServer(ServerConfig config);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Bind, serve until SHUTDOWN, tear down. Returns a process exit code.
  int serve();

  [[nodiscard]] JobQueue& queue() { return queue_; }
  [[nodiscard]] ArtifactCache* cache() { return cache_.get(); }

  /// Parse a SUBMIT command into a JobSpec (shared with tests). Returns
  /// false with `error` set on a malformed or inadmissible spec.
  static bool parse_submit(const Command& cmd, JobSpec* spec,
                           std::string* error);

  /// Milliseconds a failed attempt waits before redispatch: exponential
  /// in `attempt` with deterministic jitter (exposed for tests).
  [[nodiscard]] static std::uint64_t retry_backoff_ms(
      std::uint32_t base_ms, std::uint32_t attempt, std::uint64_t job_id);

 private:
  void io_loop(int listen_fd);
  void handle_connection(int fd);
  void execute(JobRecord* job);
  [[nodiscard]] std::string tenant_dir(const std::string& tenant) const;

  /// Startup recovery: replay the journal, restore terminal history,
  /// re-admit the backlog (running job first re-queued with resume), and
  /// compact the log to the live state.
  void recover_from_journal();
  /// Append + fsync one transition; a failure is logged by name and the
  /// server degrades (keeps running without that record).
  void journal_event(const JournalEvent& event);

  ServerConfig config_;
  JobQueue queue_;
  std::unique_ptr<JobJournal> journal_;
  std::unique_ptr<ArtifactCache> cache_;
  std::unique_ptr<pipeline::Pipeline> pipe_;
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  /// Detached connection-handler threads still running; io_loop drains
  /// this to zero before returning, so handlers never outlive the server.
  std::atomic<int> active_connections_{0};
};

}  // namespace hipmer::server
