#include "server/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "io/fs_faults.hpp"
#include "io/wire.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::server {

namespace fs = std::filesystem;

const char* journal_event_name(JournalEventType type) {
  switch (type) {
    case JournalEventType::kSubmit:
      return "submit";
    case JournalEventType::kStart:
      return "start";
    case JournalEventType::kCancel:
      return "cancel";
    case JournalEventType::kFail:
      return "fail";
    case JournalEventType::kFinish:
      return "finish";
  }
  return "unknown";
}

namespace {

constexpr std::uint32_t kMaxLibraries = 4096;

bool valid_event_type(std::uint8_t v) {
  return v >= static_cast<std::uint8_t>(JournalEventType::kSubmit) &&
         v <= static_cast<std::uint8_t>(JournalEventType::kFinish);
}

bool valid_state(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(JobState::kQuarantined);
}

}  // namespace

// wire-schema: journal_event writer
std::vector<std::byte> encode_journal_event(const JournalEvent& event) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(static_cast<std::uint32_t>(event.type));
  w.put_u64(event.job_id);
  w.put_u32(event.attempt);
  w.put_u32(static_cast<std::uint32_t>(event.final_state));
  w.put_u64(event.scaffolds);
  w.put_u64(event.scaffold_bases);
  w.put_u32(event.cache_hit ? 1 : 0);
  w.put_bytes(event.error);
  // The spec rides along flat (default-empty outside kSubmit): a single
  // fixed field list keeps the codec and its corruption sweeps simple.
  const JobSpec& s = event.spec;
  w.put_bytes(s.tenant);
  w.put_u32(static_cast<std::uint32_t>(s.priority));
  w.put_bytes(s.output_path);
  w.put_u32(static_cast<std::uint32_t>(s.k));
  w.put_u32(s.min_count);
  w.put_u32(static_cast<std::uint32_t>(s.rounds));
  w.put_u32((s.diploid ? 1u : 0u) | (s.resume ? 2u : 0u) |
            (s.use_cache ? 4u : 0u));
  w.put_bytes(s.kill_spec);
  w.put_bytes(s.chaos_spec);
  w.put_u64(s.chaos_seed);
  w.put_u64(s.estimated_bytes);
  w.put_u32(s.max_attempts);
  w.put_u64(s.deadline_ms);
  w.put_u64(s.submit_wall_ms);
  w.put_u32(static_cast<std::uint32_t>(s.libraries.size()));
  for (const auto& lib : s.libraries) {  // wire: loop libraries
    w.put_bytes(lib.name);
    w.put_bytes(lib.fastq_path);
    w.put_pod(lib.mean_insert);  // wire: pod double
    w.put_u32(lib.for_contigging ? 1 : 0);
  }
  return buf;
}

// wire-schema: journal_event reader
std::optional<JournalEvent> decode_journal_event(
    const std::vector<std::byte>& payload) {
  io::wire::Reader r(payload.data(), payload.size());
  try {
    JournalEvent event;
    const auto type = r.get_u32_checked("journal type");
    if (type > 0xff || !valid_event_type(static_cast<std::uint8_t>(type)))
      return std::nullopt;
    event.type = static_cast<JournalEventType>(type);
    event.job_id = r.get_u64_checked("journal job id");
    event.attempt = r.get_u32_checked("journal attempt");
    const auto state = r.get_u32_checked("journal final state");
    if (state > 0xff || !valid_state(static_cast<std::uint8_t>(state)))
      return std::nullopt;
    event.final_state = static_cast<JobState>(state);
    event.scaffolds = r.get_u64_checked("journal scaffolds");
    event.scaffold_bases = r.get_u64_checked("journal bases");
    const auto cache_hit = r.get_u32_checked("journal cache hit");
    if (cache_hit > 1) return std::nullopt;
    event.cache_hit = cache_hit != 0;
    event.error = r.get_bytes_checked("journal error");
    JobSpec& s = event.spec;
    s.id = event.job_id;
    s.tenant = r.get_bytes_checked("journal tenant");
    s.priority = static_cast<int>(r.get_u32_checked("journal priority"));
    s.output_path = r.get_bytes_checked("journal out");
    s.k = static_cast<int>(r.get_u32_checked("journal k"));
    s.min_count = r.get_u32_checked("journal min count");
    s.rounds = static_cast<int>(r.get_u32_checked("journal rounds"));
    const auto flags = r.get_u32_checked("journal flags");
    if (flags > 7) return std::nullopt;
    s.diploid = (flags & 1) != 0;
    s.resume = (flags & 2) != 0;
    s.use_cache = (flags & 4) != 0;
    s.kill_spec = r.get_bytes_checked("journal kill spec");
    s.chaos_spec = r.get_bytes_checked("journal chaos spec");
    s.chaos_seed = r.get_u64_checked("journal chaos seed");
    s.estimated_bytes = r.get_u64_checked("journal estimated bytes");
    s.max_attempts = r.get_u32_checked("journal max attempts");
    s.deadline_ms = r.get_u64_checked("journal deadline");
    s.submit_wall_ms = r.get_u64_checked("journal submit wall");
    const auto nlibs = r.get_u32_checked("journal library count");
    if (nlibs > kMaxLibraries) return std::nullopt;
    s.libraries.reserve(nlibs);
    for (std::uint32_t i = 0; i < nlibs; ++i) {  // wire: loop libraries
      seq::ReadLibrary lib;
      lib.name = r.get_bytes_checked("journal lib name");
      lib.fastq_path = r.get_bytes_checked("journal lib path");
      lib.mean_insert = r.get_pod_checked<double>("journal lib insert");
      const auto contigging = r.get_u32_checked("journal lib contigging");
      if (contigging > 1) return std::nullopt;
      lib.for_contigging = contigging != 0;
      s.libraries.push_back(std::move(lib));
    }
    if (!r.done()) return std::nullopt;
    return event;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

std::vector<std::byte> encode_journal_record(const JournalEvent& event) {
  const auto payload = encode_journal_event(event);
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32c(payload.data(), payload.size());
  io::wire::Writer tail(buf);
  tail.put_u32(crc);
  return buf;
}

std::optional<JournalEvent> decode_journal_record(
    const std::vector<std::byte>& record) {
  if (record.size() < 2 * sizeof(std::uint32_t)) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, record.data(), sizeof len);
  if (len > kJournalMaxRecordBytes ||
      record.size() != 2 * sizeof(std::uint32_t) + len)
    return std::nullopt;
  std::uint32_t stored = 0;
  std::memcpy(&stored, record.data() + sizeof len + len, sizeof stored);
  std::vector<std::byte> payload(record.begin() + sizeof len,
                                 record.begin() + sizeof len + len);
  if (util::crc32c(payload.data(), payload.size()) != stored)
    return std::nullopt;
  return decode_journal_event(payload);
}

std::map<std::uint64_t, RecoveredJob> reconstruct_jobs(
    const std::vector<JournalEvent>& events) {
  std::map<std::uint64_t, RecoveredJob> jobs;
  for (const auto& event : events) {
    if (event.type == JournalEventType::kSubmit) {
      RecoveredJob job;
      job.spec = event.spec;
      job.state = JobState::kQueued;
      // Compacted journals carry consumed attempts and the fault log on
      // the SUBMIT record itself.
      job.attempt = event.attempt;
      job.fault_log = event.error;
      jobs[event.job_id] = std::move(job);
      continue;
    }
    const auto it = jobs.find(event.job_id);
    // An orphan transition (its SUBMIT compacted away after the job went
    // terminal and was evicted) carries no recoverable state.
    if (it == jobs.end()) continue;
    RecoveredJob& job = it->second;
    if (job_state_terminal(job.state)) continue;
    switch (event.type) {
      case JournalEventType::kStart:
        job.state = JobState::kRunning;
        job.attempt = event.attempt;
        break;
      case JournalEventType::kCancel:
        if (job.state == JobState::kQueued) {
          job.state = JobState::kCancelled;
        } else {
          // Running: the executor never landed the terminal record before
          // the crash; honor the cancellation instead of resuming.
          job.cancel_requested = true;
        }
        break;
      case JournalEventType::kFail:
        // One attempt died retryably; the job went back to the queue with
        // the next attempt number.
        job.state = JobState::kQueued;
        job.attempt = event.attempt + 1;
        if (!job.fault_log.empty()) job.fault_log += "; ";
        job.fault_log += "attempt " + std::to_string(event.attempt) + ": " +
                         event.error;
        break;
      case JournalEventType::kFinish:
        job.state = event.final_state;
        job.outcome.scaffolds = event.scaffolds;
        job.outcome.scaffold_bases = event.scaffold_bases;
        job.outcome.cache_hit = event.cache_hit;
        job.outcome.error = event.error;
        break;
      case JournalEventType::kSubmit:
        break;
    }
  }
  // A cancel observed while running turns terminal here: the interrupted
  // attempt will never finish, and the user asked for it to stop.
  for (auto& [id, job] : jobs) {
    if (job.state == JobState::kRunning && job.cancel_requested) {
      job.state = JobState::kCancelled;
      job.outcome.error = "cancelled before restart";
    }
  }
  return jobs;
}

JobJournal::~JobJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  close_locked();
}

void JobJournal::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JobJournal::open_for_append_locked() {
  close_locked();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    util::log_warn("journal: cannot open " + path_ + ": " +
                   std::strerror(errno));
    return false;
  }
  std::error_code ec;
  const auto size = fs::file_size(path_, ec);
  size_ = ec ? 0 : static_cast<std::uint64_t>(size);
  return true;
}

std::optional<JobJournal::ReplayResult> JobJournal::open_and_replay() {
  std::lock_guard<std::mutex> lock(mu_);
  ReplayResult result;

  std::error_code ec;
  const fs::path dir = fs::path(path_).parent_path();
  if (!dir.empty()) fs::create_directories(dir, ec);
  // A compaction that died mid-commit leaves journal.bin.tmp next to a
  // still-valid journal; sweep it before anything else.
  fs::remove(path_ + ".tmp", ec);

  auto bytes = io::read_file(path_);
  const std::size_t header = 2 * sizeof(std::uint32_t);
  bool fresh = !bytes.has_value();
  if (bytes && bytes->size() >= header) {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::memcpy(&magic, bytes->data(), sizeof magic);
    std::memcpy(&version, bytes->data() + sizeof magic, sizeof version);
    if (magic != kJournalMagic || version != kJournalVersion) {
      // Nothing in a foreign file is recoverable; move it aside rather
      // than silently destroy whatever it was.
      util::log_warn("journal: " + path_ +
                     " has a corrupt or foreign header; starting fresh");
      fs::rename(path_, path_ + ".corrupt", ec);
      fresh = true;
      result.tail_truncated = true;
    }
  } else if (bytes && !bytes->empty()) {
    // Shorter than a header: torn creation.
    fresh = true;
    result.tail_truncated = true;
  } else if (bytes && bytes->empty()) {
    fresh = true;
  }

  if (fresh) {
    std::vector<std::byte> head;
    io::wire::Writer w(head);
    w.put_u32(kJournalMagic);
    w.put_u32(kJournalVersion);
    const int fd =
        ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      util::log_warn("journal: cannot create " + path_ + ": " +
                     std::strerror(errno));
      return std::nullopt;
    }
    const auto n = ::write(fd, head.data(), head.size());
    ::fsync(fd);
    ::close(fd);
    if (n != static_cast<ssize_t>(head.size())) {
      util::log_warn("journal: cannot write header to " + path_);
      return std::nullopt;
    }
    if (!open_for_append_locked()) return std::nullopt;
    result.valid_bytes = header;
    return result;
  }

  // Scan: accept records while framing and CRC hold; the first torn or
  // corrupt record ends the valid prefix.
  std::size_t pos = header;
  const auto& data = *bytes;
  while (pos + 2 * sizeof(std::uint32_t) <= data.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, data.data() + pos, sizeof len);
    if (len > kJournalMaxRecordBytes ||
        pos + 2 * sizeof(std::uint32_t) + len > data.size())
      break;
    std::vector<std::byte> record(
        data.begin() + static_cast<std::ptrdiff_t>(pos),
        data.begin() +
            static_cast<std::ptrdiff_t>(pos + 2 * sizeof(std::uint32_t) +
                                        len));
    auto event = decode_journal_record(record);
    if (!event) break;
    result.events.push_back(std::move(*event));
    pos += 2 * sizeof(std::uint32_t) + len;
  }
  if (pos < data.size()) {
    result.tail_truncated = true;
    util::log_warn("journal: truncating torn tail of " + path_ + " (" +
                   std::to_string(data.size() - pos) + " bytes after " +
                   std::to_string(result.events.size()) + " valid records)");
    const int fd = ::open(path_.c_str(), O_WRONLY);
    if (fd >= 0) {
      if (::ftruncate(fd, static_cast<off_t>(pos)) != 0)
        util::log_warn("journal: cannot truncate " + path_ + ": " +
                       std::strerror(errno));
      ::fsync(fd);
      ::close(fd);
    }
  }
  result.valid_bytes = pos;
  if (!open_for_append_locked()) return std::nullopt;
  return result;
}

bool JobJournal::append(const JournalEvent& event, std::string* error_name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto set_error = [&](const char* name) {
    if (error_name != nullptr) *error_name = name;
    return false;
  };
  if (fd_ < 0) return set_error("journal-closed");

  const auto record = encode_journal_record(event);
  io::FsFaults& shim = io::FsFaults::instance();
  const io::FsFate fate =
      shim.armed() ? shim.next_fate(path_) : io::FsFate::kOk;

  std::size_t write_size = record.size();
  bool injected_fail = false;
  const char* fate_name = "journal-io";
  switch (fate) {
    case io::FsFate::kOk:
      break;
    case io::FsFate::kEnospc:
      return set_error("journal-enospc");
    case io::FsFate::kEio:
      return set_error("journal-eio");
    case io::FsFate::kShortWrite:
    case io::FsFate::kCrashBeforeRename:
      // For an append there is no rename; both tear the record mid-write.
      write_size = record.size() > 1
                       ? static_cast<std::size_t>(
                             shim.mix(path_, size_, 0x746F726EULL) %
                             record.size())
                       : 0;
      injected_fail = true;
      fate_name = "journal-short-write";
      break;
    case io::FsFate::kCrashAfterRename:
      // The bytes land but the "process dies" before acking: the caller
      // sees failure, replay sees the record. At-least-once is the safe
      // direction for a WAL.
      injected_fail = true;
      fate_name = "journal-crash";
      break;
  }

  const std::uint64_t before = size_;
  bool failed = false;
  if (write_size > 0) {
    const auto n = ::write(fd_, record.data(), write_size);
    if (n < 0) {
      failed = true;
    } else {
      size_ += static_cast<std::uint64_t>(n);
      failed = static_cast<std::size_t>(n) != record.size();
    }
  } else {
    failed = true;
  }

  if (failed || injected_fail) {
    if (fate != io::FsFate::kCrashAfterRename) {
      // Self-heal: a failed append must not leave torn bytes for the next
      // append to bury mid-file — truncate back to the valid prefix.
      if (::ftruncate(fd_, static_cast<off_t>(before)) == 0) size_ = before;
    }
    ::fsync(fd_);
    return set_error(fate_name);
  }
  if (::fsync(fd_) != 0) return set_error("journal-fsync");
  return true;
}

bool JobJournal::compact(const std::vector<JournalEvent>& live) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(kJournalMagic);
  w.put_u32(kJournalVersion);
  for (const auto& event : live) {
    const auto record = encode_journal_record(event);
    buf.insert(buf.end(), record.begin(), record.end());
  }
  close_locked();
  const auto status = io::write_file_atomic(path_, buf.data(), buf.size());
  if (status != io::AtomicWriteStatus::kOk) {
    std::error_code ec;
    fs::remove(path_ + ".tmp", ec);
    util::log_warn("journal: compaction of " + path_ +
                   " failed; keeping the uncompacted log");
  }
  // Either way the on-disk journal is valid (new on success, old on
  // failure) — reopen for appends.
  return open_for_append_locked() &&
         status == io::AtomicWriteStatus::kOk;
}

}  // namespace hipmer::server
