#include "server/artifact_cache.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

#include "io/wire.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::server {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMetaMagic = 0x43584655;  // "UFXC"
constexpr std::uint32_t kMetaVersion = 1;

/// tmp+rename, same idiom as the checkpoint store: the final name never
/// holds a partial file.
bool write_file_atomic(const fs::path& final_path, const std::byte* data,
                       std::size_t size) {
  const fs::path tmp = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    if (size > 0)
      out.write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::vector<std::byte>> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> bytes(size);
  in.seekg(0);
  if (size > 0)
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return bytes;
}

std::string key_name(std::uint64_t key) {
  char name[24];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(key));
  return name;
}

}  // namespace

ArtifactCache::ArtifactCache(fs::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    util::log_warn("artifact cache: cannot create " + dir_.string() + ": " +
                   ec.message());
}

fs::path ArtifactCache::entry_dir(std::uint64_t key) const {
  return dir_ / key_name(key);
}

std::optional<ArtifactCache::UfxArtifact> ArtifactCache::lookup_ufx(
    std::uint64_t key) {
  const fs::path entry = entry_dir(key);
  const auto miss = [&](const char* why) -> std::optional<UfxArtifact> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (why != nullptr) {
      // A validation failure (as opposed to a plain absence) leaves a
      // poisoned entry behind; drop it so the next producer repopulates.
      util::log_warn("artifact cache: dropping " + entry.string() + ": " +
                     why);
      std::error_code ec;
      fs::remove_all(entry, ec);
    }
    return std::nullopt;
  };

  const auto meta_bytes = read_file(entry / "meta.bin");
  if (!meta_bytes) return miss(nullptr);

  UfxArtifact artifact;
  std::vector<std::uint64_t> shard_bytes;
  std::vector<std::uint32_t> shard_crcs;
  try {
    io::wire::Reader r(*meta_bytes);
    if (r.get_pod_checked<std::uint32_t>("cache magic") != kMetaMagic)
      return miss("bad magic");
    if (r.get_pod_checked<std::uint32_t>("cache version") != kMetaVersion)
      return miss("bad version");
    if (r.get_pod_checked<std::uint64_t>("cache key") != key)
      return miss("key mismatch");
    artifact.aux.distinct_kmers =
        r.get_pod_checked<std::uint64_t>("cache distinct");
    artifact.aux.singleton_fraction =
        r.get_pod_checked<double>("cache singletons");
    artifact.aux.heavy_hitters = r.get_pod_checked<std::uint64_t>("cache hh");
    const auto count = r.get_pod_checked<std::uint32_t>("cache shards");
    if (count > 4096) return miss("absurd shard count");
    for (std::uint32_t i = 0; i < count; ++i) {
      shard_bytes.push_back(r.get_pod_checked<std::uint64_t>("cache bytes"));
      shard_crcs.push_back(r.get_pod_checked<std::uint32_t>("cache crc"));
    }
  } catch (const io::wire::Error&) {
    return miss("truncated meta");
  }

  artifact.shards.reserve(shard_bytes.size());
  for (std::size_t i = 0; i < shard_bytes.size(); ++i) {
    auto bytes = read_file(entry / ("ufx." + std::to_string(i)));
    if (!bytes || bytes->size() != shard_bytes[i] ||
        util::crc32c(bytes->data(), bytes->size()) != shard_crcs[i])
      return miss("shard corrupt");
    artifact.shards.push_back(std::move(*bytes));
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return artifact;
}

bool ArtifactCache::store_ufx(std::uint64_t key,
                              const std::vector<std::vector<std::byte>>& shards,
                              const ckpt::AuxStats& aux) {
  const fs::path entry = entry_dir(key);
  std::error_code ec;
  fs::create_directories(entry, ec);
  if (ec) return false;

  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!write_file_atomic(entry / ("ufx." + std::to_string(i)),
                           shards[i].data(), shards[i].size()))
      return false;
  }

  std::vector<std::byte> meta;
  io::wire::Writer w(meta);
  w.put_u32(kMetaMagic);
  w.put_u32(kMetaVersion);
  w.put_u64(key);
  w.put_u64(aux.distinct_kmers);
  w.put_pod(aux.singleton_fraction);
  w.put_u64(aux.heavy_hitters);
  w.put_u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& shard : shards) {
    w.put_u64(shard.size());
    w.put_u32(util::crc32c(shard.data(), shard.size()));
  }
  // Commit point: lookups only believe entries whose meta landed whole.
  return write_file_atomic(entry / "meta.bin", meta.data(), meta.size());
}

}  // namespace hipmer::server
