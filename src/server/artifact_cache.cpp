#include "server/artifact_cache.hpp"

#include <cstdio>
#include <cstring>
#include <system_error>

#include "io/fs_faults.hpp"
#include "io/wire.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::server {

namespace fs = std::filesystem;

namespace {

/// tmp+rename through the fault-aware shared helper (io/fs_faults.hpp) —
/// the final name never holds a partial file, and an injected crash
/// leaves debris only where the startup sweep reclaims it.
bool write_file_atomic(const fs::path& final_path, const std::byte* data,
                       std::size_t size) {
  return io::write_file_atomic(final_path, data, size) ==
         io::AtomicWriteStatus::kOk;
}

std::string key_name(std::uint64_t key) {
  char name[24];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(key));
  return name;
}

}  // namespace

// wire-schema: cache_meta writer
std::vector<std::byte> encode_cache_meta(const CacheMeta& meta) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(kCacheMetaMagic);  // wire: magic kCacheMetaMagic
  w.put_u32(kCacheMetaVersion);
  w.put_u64(meta.key);
  w.put_u64(meta.distinct_kmers);
  w.put_pod(meta.singleton_fraction);  // wire: pod double
  w.put_u64(meta.heavy_hitters);
  w.put_u32(static_cast<std::uint32_t>(meta.shards.size()));
  for (const auto& [bytes, crc] : meta.shards) {
    w.put_u64(bytes);
    w.put_u32(crc);
  }
  w.put_u32(util::crc32c(buf.data(), buf.size()));  // wire: crc32
  return buf;
}

// wire-schema: cache_meta reader
std::optional<CacheMeta> decode_cache_meta(const std::vector<std::byte>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return std::nullopt;
  // Verify the trailing CRC over everything before it, first: no field of
  // a corrupt meta is worth interpreting.
  // wire: crc32
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof stored);
  if (util::crc32c(bytes.data(), body) != stored) return std::nullopt;

  io::wire::Reader r(bytes.data(), body);
  try {
    const auto magic =
        r.get_u32_checked("cache magic");  // wire: magic kCacheMetaMagic
    if (magic != kCacheMetaMagic) return std::nullopt;
    if (r.get_u32_checked("cache version") != kCacheMetaVersion)
      return std::nullopt;
    CacheMeta meta;
    meta.key = r.get_u64_checked("cache key");
    meta.distinct_kmers = r.get_u64_checked("cache distinct");
    meta.singleton_fraction = r.get_pod_checked<double>("cache singletons");
    meta.heavy_hitters = r.get_u64_checked("cache hh");
    const auto count = r.get_u32_checked("cache shard count");
    if (count > 4096) return std::nullopt;
    meta.shards.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto shard_size = r.get_u64_checked("cache shard bytes");
      const auto shard_crc = r.get_u32_checked("cache shard crc");
      meta.shards.emplace_back(shard_size, shard_crc);
    }
    if (!r.done()) return std::nullopt;
    return meta;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

ArtifactCache::ArtifactCache(fs::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    util::log_warn("artifact cache: cannot create " + dir_.string() + ": " +
                   ec.message());
  // A producer that died mid-store leaves torn `.tmp` siblings; entries
  // without a committed meta.bin are ordinary misses, but the temp files
  // themselves would leak forever without this sweep.
  io::sweep_tmp_files(dir_);
}

fs::path ArtifactCache::entry_dir(std::uint64_t key) const {
  return dir_ / key_name(key);
}

std::optional<ArtifactCache::UfxArtifact> ArtifactCache::lookup_ufx(
    std::uint64_t key) {
  const fs::path entry = entry_dir(key);
  const auto miss = [&](const char* why) -> std::optional<UfxArtifact> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (why != nullptr) {
      // A validation failure (as opposed to a plain absence) leaves a
      // poisoned entry behind; drop it so the next producer repopulates.
      util::log_warn("artifact cache: dropping " + entry.string() + ": " +
                     why);
      std::error_code ec;
      fs::remove_all(entry, ec);
    }
    return std::nullopt;
  };

  const auto meta_bytes = io::read_file(entry / "meta.bin");
  if (!meta_bytes) return miss(nullptr);

  const auto meta = decode_cache_meta(*meta_bytes);
  if (!meta) return miss("corrupt meta");
  if (meta->key != key) return miss("key mismatch");

  UfxArtifact artifact;
  artifact.aux.distinct_kmers = meta->distinct_kmers;
  artifact.aux.singleton_fraction = meta->singleton_fraction;
  artifact.aux.heavy_hitters = meta->heavy_hitters;
  artifact.shards.reserve(meta->shards.size());
  for (std::size_t i = 0; i < meta->shards.size(); ++i) {
    auto bytes = io::read_file(entry / ("ufx." + std::to_string(i)));
    if (!bytes || bytes->size() != meta->shards[i].first ||
        util::crc32c(bytes->data(), bytes->size()) != meta->shards[i].second)
      return miss("shard corrupt");
    artifact.shards.push_back(std::move(*bytes));
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return artifact;
}

bool ArtifactCache::store_ufx(std::uint64_t key,
                              const std::vector<std::vector<std::byte>>& shards,
                              const ckpt::AuxStats& aux) {
  const fs::path entry = entry_dir(key);
  std::error_code ec;
  fs::create_directories(entry, ec);
  if (ec) return false;

  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!write_file_atomic(entry / ("ufx." + std::to_string(i)),
                           shards[i].data(), shards[i].size()))
      return false;
  }

  CacheMeta meta;
  meta.key = key;
  meta.distinct_kmers = aux.distinct_kmers;
  meta.singleton_fraction = aux.singleton_fraction;
  meta.heavy_hitters = aux.heavy_hitters;
  meta.shards.reserve(shards.size());
  for (const auto& shard : shards)
    meta.shards.emplace_back(shard.size(),
                             util::crc32c(shard.data(), shard.size()));
  const auto bytes = encode_cache_meta(meta);
  // Commit point: lookups only believe entries whose meta landed whole.
  return write_file_atomic(entry / "meta.bin", bytes.data(), bytes.size());
}

}  // namespace hipmer::server
