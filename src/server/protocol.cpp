#include "server/protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/hash.hpp"

namespace hipmer::server {

// wire-schema: server_line writer
// wire-decl: crc32 hex8
// wire-decl: blob text[to-newline]
std::string frame_line(const std::string& text) {
  const std::uint32_t crc = util::crc32c(text.data(), text.size());
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "%08x ", crc);
  return std::string(prefix) + text + "\n";
}

// wire-schema: server_line reader
// wire-decl: crc32 hex8
// wire-decl: blob text[to-newline]
std::optional<std::string> unframe_line(const std::string& line) {
  // "xxxxxxxx " + text: exactly 8 hex digits and one space.
  if (line.size() < 9 || line[8] != ' ') return std::nullopt;
  std::uint32_t claimed = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      return std::nullopt;
    claimed = (claimed << 4) | static_cast<std::uint32_t>(digit);
  }
  std::string text = line.substr(9);
  if (util::crc32c(text.data(), text.size()) != claimed) return std::nullopt;
  return text;
}

Command parse_command(const std::string& text) {
  Command cmd;
  std::istringstream is(text);
  std::string token;
  if (is >> token) cmd.verb = token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      cmd.kv[token] = "";
    else
      cmd.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return cmd;
}

bool send_line(int fd, const std::string& text) {
  const std::string framed = frame_line(text);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineReader::next() {
  for (;;) {
    const auto nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      return line;
    }
    // No complete line buffered: discard the consumed prefix in one move
    // before reading more.
    buf_.erase(0, pos_);
    pos_ = 0;
    if (eof_) return std::nullopt;
    if (buf_.size() >= kMaxLineBytes) return std::nullopt;

    // Wait for readability in short slices so the stop flag and the idle
    // budget are both honoured while blocked.
    int waited_ms = 0;
    for (;;) {
      if (stop_ != nullptr && stop_->load(std::memory_order_relaxed))
        return std::nullopt;
      const bool sliced = stop_ != nullptr || idle_timeout_ms_ >= 0;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, sliced ? 100 : -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (ready > 0) break;
      waited_ms += 100;
      if (idle_timeout_ms_ >= 0 && waited_ms >= idle_timeout_ms_)
        return std::nullopt;
    }

    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) {
      // EOF: an unterminated trailing fragment is dropped — a line is
      // only a line once its '\n' arrives.
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hipmer::server
