#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

/// Line-based control protocol for the job server.
///
/// Every line on the wire — request or response — is framed as
///
///   <8-hex-crc32c> <text>\n
///
/// mirroring the fabric's CRC'd envelopes: a corrupted line is detected
/// and rejected instead of mis-parsed. A request is one framed line; a
/// response is a sequence of framed lines terminated by an `END` line, so
/// clients read every reply the same way regardless of verb.
///
/// Verbs: SUBMIT, STATUS, RESULT, CANCEL, STATS, PING, SHUTDOWN.
/// Arguments are space-separated `key=value` tokens (values must not
/// contain spaces; paths with spaces are not supported by the protocol).
namespace hipmer::server {

/// CRC-frame one line of text (`text` has no trailing newline).
[[nodiscard]] std::string frame_line(const std::string& text);

/// Unframe one line (without its trailing newline). nullopt when the CRC
/// prefix is missing, malformed, or does not match the text.
[[nodiscard]] std::optional<std::string> unframe_line(const std::string& line);

/// A parsed command line: leading verb plus `key=value` arguments. Tokens
/// without '=' land in `kv` with an empty value.
struct Command {
  std::string verb;
  std::map<std::string, std::string> kv;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) != 0;
  }
};

[[nodiscard]] Command parse_command(const std::string& text);

/// Write one framed line to `fd` (blocking, handles short writes).
bool send_line(int fd, const std::string& text);

/// Incremental reader of newline-terminated lines from a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next raw line without its '\n' (still framed; pass to unframe_line).
  /// nullopt on EOF or read error.
  [[nodiscard]] std::optional<std::string> next();

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

/// Terminator text for every response.
inline constexpr const char* kEnd = "END";

}  // namespace hipmer::server
