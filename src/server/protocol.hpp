#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// Line-based control protocol for the job server.
///
/// Every line on the wire — request or response — is framed as
///
///   <8-hex-crc32c> <text>\n
///
/// mirroring the fabric's CRC'd envelopes: a corrupted line is detected
/// and rejected instead of mis-parsed. A request is one framed line; a
/// response is a sequence of framed lines terminated by an `END` line, so
/// clients read every reply the same way regardless of verb.
///
/// Verbs: SUBMIT, STATUS, RESULT, CANCEL, STATS, PING, SHUTDOWN.
/// Arguments are space-separated `key=value` tokens (values must not
/// contain spaces; paths with spaces are not supported by the protocol).
namespace hipmer::server {

/// CRC-frame one line of text (`text` has no trailing newline).
[[nodiscard]] std::string frame_line(const std::string& text);

/// Unframe one line (without its trailing newline). nullopt when the CRC
/// prefix is missing, malformed, or does not match the text.
[[nodiscard]] std::optional<std::string> unframe_line(const std::string& line);

/// A parsed command line: leading verb plus `key=value` arguments. Tokens
/// without '=' land in `kv` with an empty value.
struct Command {
  std::string verb;
  std::map<std::string, std::string> kv;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) != 0;
  }
};

[[nodiscard]] Command parse_command(const std::string& text);

/// Write one framed line to `fd` (blocking, handles short writes).
bool send_line(int fd, const std::string& text);

/// Longest line the reader will buffer while waiting for its '\n'. A peer
/// streaming bytes with no newline is dropped at this bound instead of
/// growing server memory without limit; real protocol lines are tiny.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Incremental reader of newline-terminated lines from a socket.
///
/// `idle_timeout_ms >= 0` bounds how long next() waits for bytes to
/// arrive (nullopt on expiry, dropping the connection); -1 blocks
/// indefinitely. A non-null `stop` flag is polled while waiting so a
/// shutting-down server reclaims its connection handlers promptly.
class LineReader {
 public:
  explicit LineReader(int fd, int idle_timeout_ms = -1,
                      const std::atomic<bool>* stop = nullptr)
      : fd_(fd), idle_timeout_ms_(idle_timeout_ms), stop_(stop) {}

  /// Next raw line without its '\n' (still framed; pass to unframe_line).
  /// nullopt on EOF, read error, idle timeout, stop flag, or a line
  /// exceeding kMaxLineBytes.
  [[nodiscard]] std::optional<std::string> next();

 private:
  int fd_;
  int idle_timeout_ms_;
  const std::atomic<bool>* stop_;
  std::string buf_;
  /// Start of unconsumed bytes in buf_; already-returned lines are kept
  /// until the next read so many buffered lines cost one compaction, not
  /// one erase each.
  std::size_t pos_ = 0;
  bool eof_ = false;
};

/// Terminator text for every response.
inline constexpr const char* kEnd = "END";

}  // namespace hipmer::server
