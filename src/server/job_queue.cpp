#include "server/job_queue.hpp"

#include <algorithm>

namespace hipmer::server {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::vector<std::uint64_t> JobQueue::queued_order_locked() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, job] : jobs_)
    if (job->state == JobState::kQueued) ids.push_back(id);
  // Higher priority first; map iteration already gave submit order, and
  // stable_sort preserves it within a priority.
  std::stable_sort(ids.begin(), ids.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return jobs_.at(a)->spec.priority >
                            jobs_.at(b)->spec.priority;
                   });
  return ids;
}

std::uint64_t JobQueue::submit(
    JobSpec spec, std::string* error,
    const std::function<bool(const JobSpec&)>& precommit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    if (error != nullptr) *error = "shutting-down";
    return 0;
  }
  std::size_t queued = 0;
  std::uint64_t resident = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) {
      ++queued;
      resident += job->spec.estimated_bytes;
    } else if (job->state == JobState::kRunning) {
      resident += job->spec.estimated_bytes;
    }
  }
  if (queued >= admission_.max_queued) {
    if (error != nullptr) *error = "queue-full";
    return 0;
  }
  if (resident + spec.estimated_bytes > admission_.max_resident_bytes) {
    if (error != nullptr) *error = "memory-budget";
    return 0;
  }
  const std::uint64_t id = next_id_++;
  spec.id = id;
  // Write-ahead hook: the journal record must be durable before the job
  // becomes visible to pop_next or status. Under the lock so no observer
  // sees a job the journal missed.
  if (precommit && !precommit(spec)) {
    if (error != nullptr) *error = "journal-io";
    --next_id_;
    return 0;
  }
  auto job = std::make_unique<JobRecord>();
  job->spec = std::move(spec);
  jobs_.emplace(id, std::move(job));
  cv_.notify_all();
  return id;
}

JobRecord* JobQueue::pop_next() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Shutdown wins over remaining queued work: SHUTDOWN means "finish
    // the running job and stop", not "drain the backlog".
    if (shutdown_) return nullptr;
    const auto now = std::chrono::steady_clock::now();
    const auto order = queued_order_locked();
    // Dispatch the first queued job (priority order) whose retry backoff
    // has elapsed; jobs still inside their window only set the wakeup.
    auto wake = std::chrono::steady_clock::time_point::max();
    JobRecord* pick = nullptr;
    for (const auto id : order) {
      JobRecord* job = jobs_.at(id).get();
      if (job->not_before <= now) {
        pick = job;
        break;
      }
      wake = std::min(wake, job->not_before);
    }
    if (pick != nullptr) {
      pick->state = JobState::kRunning;
      return pick;
    }
    if (wake == std::chrono::steady_clock::time_point::max())
      cv_.wait(lock);
    else
      cv_.wait_until(lock, wake);
  }
}

void JobQueue::requeue(JobRecord* job,
                       std::chrono::steady_clock::time_point not_before) {
  std::lock_guard<std::mutex> lock(mu_);
  job->state = JobState::kQueued;
  job->not_before = not_before;
  cv_.notify_all();
}

JobRecord* JobQueue::restore(JobSpec spec, JobState state,
                             std::uint32_t attempt, JobOutcome outcome,
                             std::string fault_log) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = spec.id;
  if (id == 0 || jobs_.count(id) != 0) return nullptr;
  next_id_ = std::max(next_id_, id + 1);
  auto job = std::make_unique<JobRecord>();
  job->spec = std::move(spec);
  job->state = state == JobState::kRunning ? JobState::kQueued : state;
  job->attempt = attempt;
  job->outcome = std::move(outcome);
  job->fault_log = std::move(fault_log);
  // Recovered history must keep the totals honest across restarts.
  switch (job->state) {
    case JobState::kDone:
      ++totals_.completed;
      break;
    case JobState::kFailed:
      ++totals_.failed;
      break;
    case JobState::kCancelled:
      ++totals_.cancelled;
      break;
    case JobState::kQuarantined:
      ++totals_.quarantined;
      break;
    default:
      break;
  }
  JobRecord* raw = job.get();
  jobs_.emplace(id, std::move(job));
  cv_.notify_all();
  return raw;
}

bool JobQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord* job = it->second.get();
  if (job_state_terminal(job->state)) return false;
  if (job->state == JobState::kQueued) {
    job->state = JobState::kCancelled;
    ++totals_.cancelled;
    evict_terminal_locked(job->spec.tenant);
    return true;
  }
  // Running: the executor observes the flag at the next stage boundary
  // and lands kCancelled through finish().
  job->cancel_requested.store(true, std::memory_order_relaxed);
  return true;
}

void JobQueue::finish(JobRecord* job, JobState state, JobOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  job->state = state;
  job->outcome = std::move(outcome);
  switch (state) {
    case JobState::kDone:
      ++totals_.completed;
      break;
    case JobState::kFailed:
      ++totals_.failed;
      break;
    case JobState::kCancelled:
      ++totals_.cancelled;
      break;
    case JobState::kQuarantined:
      ++totals_.quarantined;
      break;
    default:
      break;
  }
  evict_terminal_locked(job->spec.tenant);
}

// `tenant` is taken by value: the caller's record may itself be evicted,
// which would invalidate a reference into it mid-scan.
void JobQueue::evict_terminal_locked(std::string tenant) {
  // Map order is id order = submission order, so the front of `terminal`
  // is the tenant's oldest history. Only terminal records are evicted —
  // the executor's pointer to the running job stays valid.
  std::vector<std::uint64_t> terminal;
  for (const auto& [id, rec] : jobs_)
    if (job_state_terminal(rec->state) && rec->spec.tenant == tenant)
      terminal.push_back(id);
  if (terminal.size() <= admission_.max_retained_terminal) return;
  const std::size_t excess = terminal.size() - admission_.max_retained_terminal;
  for (std::size_t i = 0; i < excess; ++i) jobs_.erase(terminal[i]);
}

std::optional<JobQueue::Snapshot> JobQueue::status(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const JobRecord& job = *it->second;
  Snapshot snap;
  snap.id = id;
  snap.state = job.state;
  snap.outcome = job.outcome;
  snap.tenant = job.spec.tenant;
  snap.output_path = job.spec.output_path;
  snap.attempt = job.attempt;
  if (job.state == JobState::kQueued) {
    const auto order = queued_order_locked();
    const auto pos = std::find(order.begin(), order.end(), id);
    if (pos != order.end())
      snap.queue_position = static_cast<int>(pos - order.begin());
  }
  return snap;
}

JobQueue::Counters JobQueue::counters() {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = totals_;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) {
      ++c.queued;
      c.resident_estimate += job->spec.estimated_bytes;
    } else if (job->state == JobState::kRunning) {
      ++c.running;
      c.resident_estimate += job->spec.estimated_bytes;
    }
  }
  return c;
}

void JobQueue::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

}  // namespace hipmer::server
