#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "server/job_queue.hpp"

/// Write-ahead job journal: the control plane's crash safety.
///
/// Every job state transition (SUBMIT / START / CANCEL / FAIL / FINISH) is
/// appended as one CRC-framed record and fsync'd *before* the transition
/// is acknowledged to the client or acted on by the executor. On startup
/// the server replays the journal, reconstructs the job table
/// (`reconstruct_jobs`), re-admits the backlog in priority order, re-queues
/// the previously-running job with resume-from-checkpoint semantics, and
/// compacts the log down to the live state.
///
/// File format (same wire idiom as ckpt/manifest.hpp):
///
///     [u32 magic "HJNL"][u32 version]
///     record*   where record := [u32 len][payload][u32 crc32c(payload)]
///
/// A torn tail — a record cut short by a crash mid-append, or one whose
/// CRC fails — ends the replay at the last valid record and is truncated
/// away, so the journal self-heals: appends always extend a valid prefix.
namespace hipmer::server {

inline constexpr std::uint32_t kJournalMagic = 0x4C4E4A48;  // "HJNL"
inline constexpr std::uint32_t kJournalVersion = 1;
/// Upper bound on one record's payload; anything larger is torn framing.
inline constexpr std::uint32_t kJournalMaxRecordBytes = 1u << 20;

enum class JournalEventType : std::uint8_t {
  kSubmit = 1,  ///< job admitted; carries the full JobSpec
  kStart = 2,   ///< executor picked the job up (attempt = which try)
  kCancel = 3,  ///< client CANCEL (terminal for queued, a flag for running)
  kFail = 4,    ///< one attempt died retryably; a retry will follow
  kFinish = 5,  ///< terminal: carries the final state + outcome summary
};

[[nodiscard]] const char* journal_event_name(JournalEventType type);

/// One journal record. Every field is always encoded (a flat wire schema);
/// which ones are meaningful depends on `type`.
struct JournalEvent {
  JournalEventType type = JournalEventType::kSubmit;
  std::uint64_t job_id = 0;
  /// kStart/kFail: which attempt. kSubmit: attempts already consumed (0 on
  /// first admission; >0 only in compacted journals).
  std::uint32_t attempt = 0;
  /// kFinish: the terminal JobState (done/failed/cancelled/quarantined).
  JobState final_state = JobState::kDone;
  /// Terminal outcome summary (kFinish) or the attempt's failure reason
  /// (kFail).
  std::uint64_t scaffolds = 0;
  std::uint64_t scaffold_bases = 0;
  bool cache_hit = false;
  std::string error;
  /// kSubmit only (default-empty otherwise, still encoded).
  JobSpec spec;
};

/// Flat payload codec (wirecheck-annotated; the CRC frame is applied by
/// encode_journal_record / the journal's scanner).
[[nodiscard]] std::vector<std::byte> encode_journal_event(
    const JournalEvent& event);
[[nodiscard]] std::optional<JournalEvent> decode_journal_event(
    const std::vector<std::byte>& payload);

/// One framed record: [u32 len][payload][u32 crc]. decode rejects bad
/// framing, bad CRC, and trailing bytes — the corruption-sweep surface.
[[nodiscard]] std::vector<std::byte> encode_journal_record(
    const JournalEvent& event);
[[nodiscard]] std::optional<JournalEvent> decode_journal_record(
    const std::vector<std::byte>& record);

/// A job's state as reconstructed from a replayed event sequence — the
/// same transitions the live queue performs, minus the threads.
struct RecoveredJob {
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::uint32_t attempt = 0;
  bool cancel_requested = false;
  JobOutcome outcome;
  std::string fault_log;
};

/// Fold an event sequence into the job table it describes. Pure: the
/// property tests drive it directly against a reference simulator, and
/// JobServer recovery feeds its output to JobQueue::restore. A job whose
/// last event left it kRunning is the interrupted job — the caller
/// re-admits it with resume semantics.
[[nodiscard]] std::map<std::uint64_t, RecoveredJob> reconstruct_jobs(
    const std::vector<JournalEvent>& events);

class JobJournal {
 public:
  explicit JobJournal(std::string path) : path_(std::move(path)) {}
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  struct ReplayResult {
    std::vector<JournalEvent> events;
    /// True when a torn or corrupt tail was truncated away (or a corrupt
    /// header forced a fresh journal).
    bool tail_truncated = false;
    /// Bytes of valid prefix retained.
    std::uint64_t valid_bytes = 0;
  };

  /// Open the journal (creating it if absent), replay every valid record,
  /// truncate any torn tail, and leave the file open for appends. nullopt
  /// only when the path is unusable (named warning logged) — the server
  /// then runs without durability rather than not at all.
  [[nodiscard]] std::optional<ReplayResult> open_and_replay();

  /// Append one record and fsync. False on failure (named reason in
  /// `error_name`, e.g. "journal-io"); a failed append never leaves torn
  /// bytes behind — the file is truncated back to its pre-append length,
  /// so the valid-prefix invariant holds for the next append.
  bool append(const JournalEvent& event, std::string* error_name = nullptr);

  /// Atomically replace the journal with just `live` (tmp+rename through
  /// the fs-fault shim) and reopen for appends. Failure keeps the old
  /// journal — compaction is an optimization, never a durability risk.
  bool compact(const std::vector<JournalEvent>& live);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  bool open_for_append_locked();
  void close_locked();

  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::mutex mu_;
};

}  // namespace hipmer::server
